// Figure 1: the operator execution sequence with and without a buffer
// operator, recorded from the real executor:
//   (a) original:  PCPCPCPCPCP...
//   (b) buffered:  PCCCCCPPPPP... (with B marking the buffer itself)

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "profile/calibration_queries.h"
#include "profile/call_sequence.h"

using namespace bufferdb;  // NOLINT

namespace {

void Run(Table* table, size_t buffer_size, const char* title) {
  OperatorPtr plan = std::make_unique<SeqScanOperator>(table, nullptr);
  if (buffer_size > 0) {
    plan = std::make_unique<BufferOperator>(std::move(plan), buffer_size);
  }
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  AggregationOperator agg(std::move(plan), std::move(specs));

  profile::CallSequenceRecorder recorder;
  sim::SimCpu cpu;
  cpu.set_call_graph_sink(&recorder);
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(&agg, &ctx);
  if (!rows.ok()) std::exit(1);

  std::fprintf(stderr, "%s\n  %s\n  legend: %s\n  transitions: %llu\n\n", title,
              recorder.Compressed(4).c_str(), recorder.Legend().c_str(),
              static_cast<unsigned long long>(recorder.Transitions()));
}

}  // namespace

int main(int argc, char** argv) {
  bufferdb::bench::PrintJsonHeader(
      "fig01_pattern", bufferdb::bench::ScaleFactorFromArgs(argc, argv));
  std::fprintf(stderr, "Figure 1: operator execution sequence (30-tuple input)\n\n");
  auto table = profile::BuildSyntheticItems(30, /*seed=*/3);
  Run(table.get(), 0, "(a) original (demand-pull, one tuple per call):");
  Run(table.get(), 5, "(b) buffered (buffer size 5):");
  Run(table.get(), 15, "(c) buffered (buffer size 15):");
  return 0;
}

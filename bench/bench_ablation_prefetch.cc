// Ablation: hardware prefetching vs none, across buffer sizes. §7.4's
// claim: large buffers mean more intermediate data in flight, but the
// accesses are sequential so the stride prefetcher hides the extra L2
// latency — without it, large buffers pay visible L2 penalties.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("ablation_prefetch", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Ablation: hardware prefetch on/off (Query 1, buffered)\n\n");
  std::fprintf(stderr, "%-10s %16s %16s %16s %16s\n", "size", "L2 miss (pf on)",
              "sec (pf on)", "L2 miss (pf off)", "sec (pf off)");
  for (size_t size : {100u, 1000u, 10000u, 50000u}) {
    RunOptions on;
    on.refine = true;
    on.buffer_size = size;
    QueryRun with = RunQuery(catalog, kQuery1, on);
    RunOptions off = on;
    off.sim_config.hardware_prefetch = false;
    QueryRun without = RunQuery(catalog, kQuery1, off);
    std::fprintf(stderr, "%-10zu %16llu %16.4f %16llu %16.4f\n", size,
                static_cast<unsigned long long>(
                    with.breakdown.counters.l2_misses),
                with.breakdown.seconds(),
                static_cast<unsigned long long>(
                    without.breakdown.counters.l2_misses),
                without.breakdown.seconds());
  }
  return 0;
}

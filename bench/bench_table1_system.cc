// Table 1: specifications of the simulated system (the paper's Pentium 4
// testbed; OCR-ambiguous digits reconstructed as documented in DESIGN.md).

#include <cstdio>

#include "bench_util.h"
#include "sim/cost_model.h"

int main(int argc, char** argv) {
  bufferdb::bench::PrintJsonHeader(
      "table1_system", bufferdb::bench::ScaleFactorFromArgs(argc, argv));
  bufferdb::sim::SimConfig config;
  std::fprintf(stderr, "Table 1: simulated system specification\n");
  std::fprintf(stderr, "----------------------------------------------------\n");
  std::fprintf(stderr, "CPU clock                     %.1f GHz\n", config.clock_ghz);
  std::fprintf(stderr, "L1 I-cache (trace cache eq.)  %llu KB, %llu-way, %lluB lines\n",
              static_cast<unsigned long long>(config.l1i.capacity_bytes / 1024),
              static_cast<unsigned long long>(config.l1i.ways),
              static_cast<unsigned long long>(config.l1i.line_bytes));
  std::fprintf(stderr, "L1 D-cache                    %llu KB, %llu-way, %lluB lines\n",
              static_cast<unsigned long long>(config.l1d.capacity_bytes / 1024),
              static_cast<unsigned long long>(config.l1d.ways),
              static_cast<unsigned long long>(config.l1d.line_bytes));
  std::fprintf(stderr, "L2 unified cache              %llu KB, %llu-way, %lluB lines\n",
              static_cast<unsigned long long>(config.l2.capacity_bytes / 1024),
              static_cast<unsigned long long>(config.l2.ways),
              static_cast<unsigned long long>(config.l2.line_bytes));
  std::fprintf(stderr, "ITLB                          %u entries, %uB pages\n",
              config.itlb_entries, config.page_bytes);
  std::fprintf(stderr, "Branch predictor              %s, %u entries\n",
              config.predictor == bufferdb::sim::PredictorKind::kBimodal
                  ? "bimodal 2-bit"
                  : "gshare",
              config.predictor_entries);
  std::fprintf(stderr, "Hardware prefetch             %s (%u streams, degree %u)\n",
              config.hardware_prefetch ? "yes" : "no",
              config.prefetch_streams, config.prefetch_degree);
  std::fprintf(stderr, "Trace cache miss latency      %.0f cycles\n",
              config.l1i_miss_cycles);
  std::fprintf(stderr, "L1 data miss latency          %.0f cycles\n",
              config.l1d_miss_cycles);
  std::fprintf(stderr, "L2 miss latency               %.0f cycles\n",
              config.l2_miss_cycles);
  std::fprintf(stderr, "Branch misprediction latency  %.0f cycles\n",
              config.mispredict_cycles);
  std::fprintf(stderr, "ITLB miss latency             %.0f cycles\n",
              config.itlb_miss_cycles);
  return 0;
}

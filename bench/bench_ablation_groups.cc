// Ablation: execution-group merging vs buffering above every eligible
// operator — the "too much buffering" regime of §6. Merging avoids useless
// buffers inside already-cache-resident pipelines (Query 2) while matching
// the everywhere strategy when footprints genuinely overflow (Query 1/3).

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("ablation_groups", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Ablation: group merging vs buffer-everywhere\n\n");
  std::fprintf(stderr, "%-10s %14s %16s %8s %18s %8s\n", "query", "original(s)",
              "merged-groups(s)", "bufs", "buffer-everywhere", "bufs");
  struct Item {
    const char* name;
    const char* sql;
  } items[] = {{"Query 1", kQuery1}, {"Query 2", kQuery2},
               {"Query 3", kQuery3}};
  for (const Item& item : items) {
    QueryRun original = RunQuery(catalog, item.sql);
    RunOptions merged;
    merged.refine = true;
    QueryRun grouped = RunQuery(catalog, item.sql, merged);
    RunOptions everywhere;
    everywhere.refine = true;
    everywhere.refinement.merge_execution_groups = false;
    QueryRun ungrouped = RunQuery(catalog, item.sql, everywhere);
    std::fprintf(stderr, "%-10s %14.4f %16.4f %8d %18.4f %8d\n", item.name,
                original.breakdown.seconds(), grouped.breakdown.seconds(),
                grouped.report.buffers_added, ungrouped.breakdown.seconds(),
                ungrouped.report.buffers_added);
  }
  return 0;
}

// Ablation: grouped-aggregation pipeline shape under buffering. Compares
// TPC-H Q1's grouping executed as (a) HashAggregation directly over the
// scan (one pipeline) vs (b) Sort + StreamAggregation (the sort breaks the
// pipeline: the scan is buffered below it, the streaming aggregation runs
// above it). Both benefit from refinement; the hash variant keeps a single
// long pipeline, which is where buffering pays most.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/date.h"
#include "core/plan_refiner.h"
#include "exec/hash_aggregation.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "exec/stream_aggregation.h"
#include "plan/cardinality.h"
#include "plan/plan_printer.h"
#include "sim/sim_cpu.h"

using namespace bufferdb;         // NOLINT
using namespace bufferdb::bench;  // NOLINT

namespace {

ExprPtr Col(const Schema& s, const char* name) {
  auto r = MakeColumnRef(s, name);
  return std::move(*r);
}

std::vector<GroupKeyExpr> Groups(const Schema& s) {
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(s, "l_returnflag"), "l_returnflag"});
  groups.push_back(GroupKeyExpr{Col(s, "l_linestatus"), "l_linestatus"});
  return groups;
}

std::vector<AggSpec> Specs(const Schema& s) {
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, Col(s, "l_quantity"), "sum_qty"});
  specs.push_back(
      AggSpec{AggFunc::kAvg, Col(s, "l_extendedprice"), "avg_price"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "count_order"});
  return specs;
}

OperatorPtr Scan(Table* lineitem) {
  const Schema& s = lineitem->schema();
  auto pred = MakeBinary(BinaryOp::kLe, Col(s, "l_shipdate"),
                         MakeLiteral(Value::Date(MakeDate(1998, 9, 2))));
  auto scan =
      std::make_unique<SeqScanOperator>(lineitem, std::move(*pred));
  scan->set_estimated_rows(EstimateSelectivity(*scan->predicate(), lineitem) *
                           static_cast<double>(lineitem->num_rows()));
  return scan;
}

double Run(OperatorPtr plan, bool refine, const char* name) {
  if (refine) {
    PlanRefiner refiner;
    plan = refiner.Refine(std::move(plan));
  }
  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(plan.get(), &ctx);
  if (!rows.ok()) std::exit(1);
  if (refine) std::fprintf(stderr, "%s (refined):\n%s", name, PrintPlan(*plan).c_str());
  return cpu.Breakdown().seconds();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("ablation_agg_pipeline", sf);
  Catalog& catalog = SharedTpch(sf);
  Table* lineitem = catalog.GetTable("lineitem");
  const Schema& s = lineitem->schema();

  std::fprintf(stderr, "Ablation: grouped-aggregation pipeline shape (TPC-H Q1)\n\n");

  auto hash_plan = [&] {
    auto agg = std::make_unique<HashAggregationOperator>(Scan(lineitem),
                                                         Groups(s), Specs(s));
    agg->set_estimated_rows(4);
    return agg;
  };
  auto stream_plan = [&] {
    std::vector<SortKey> keys;
    keys.push_back(SortKey{Col(s, "l_returnflag"), false});
    keys.push_back(SortKey{Col(s, "l_linestatus"), false});
    auto scan = Scan(lineitem);
    double rows = scan->estimated_rows();
    auto sort =
        std::make_unique<SortOperator>(std::move(scan), std::move(keys));
    sort->set_estimated_rows(rows);
    auto agg = std::make_unique<StreamAggregationOperator>(
        std::move(sort), Groups(s), Specs(s));
    agg->set_estimated_rows(4);
    return agg;
  };

  double hash_orig = Run(hash_plan(), false, "hash");
  double hash_refined = Run(hash_plan(), true, "hash aggregation");
  double stream_orig = Run(stream_plan(), false, "stream");
  double stream_refined = Run(stream_plan(), true, "sort + stream aggregation");

  std::fprintf(stderr, "\n%-28s %12s %12s %12s\n", "pipeline", "original(s)",
              "refined(s)", "improvement");
  std::fprintf(stderr, "%-28s %12.4f %12.4f %11.1f%%\n", "scan -> hash agg", hash_orig,
              hash_refined, 100.0 * (1.0 - hash_refined / hash_orig));
  std::fprintf(stderr, "%-28s %12.4f %12.4f %11.1f%%\n", "scan -> sort -> stream agg",
              stream_orig, stream_refined,
              100.0 * (1.0 - stream_refined / stream_orig));
  return 0;
}

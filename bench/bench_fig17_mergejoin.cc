// Figure 17: Query 3 with a merge join. The Sort is blocking (no buffer
// above it), but the index scan feeding the merge IS buffered, unlike the
// nested-loop case. Paper: 79% fewer trace-cache misses.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig17_mergejoin", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  RunOptions base;
  base.join_strategy = bufferdb::JoinStrategy::kMergeJoin;
  QueryRun original = RunQuery(catalog, kQuery3, base);
  RunOptions refined = base;
  refined.refine = true;
  QueryRun buffered = RunQuery(catalog, kQuery3, refined);

  std::fprintf(stderr, "Figure 17: Query 3, merge join plans\n\n");
  std::fprintf(stderr, "%s\n", buffered.report.ToString().c_str());
  PrintComparison("Merge join", original, buffered);
  return 0;
}

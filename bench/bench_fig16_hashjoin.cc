// Figure 16: Query 3 with a hash join. Build and probe are separate
// footprint modules; the build side is blocking, so only the scans (and the
// probe group) are buffered. Paper: 70% fewer trace-cache misses, 44% fewer
// branch mispredictions.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig16_hashjoin", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  RunOptions base;
  base.join_strategy = bufferdb::JoinStrategy::kHashJoin;
  QueryRun original = RunQuery(catalog, kQuery3, base);
  RunOptions refined = base;
  refined.refine = true;
  QueryRun buffered = RunQuery(catalog, kQuery3, refined);

  std::fprintf(stderr, "Figure 16: Query 3, hash join plans\n\n");
  std::fprintf(stderr, "%s\n", buffered.report.ToString().c_str());
  PrintComparison("Hash join", original, buffered);
  return 0;
}

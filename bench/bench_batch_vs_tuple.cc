// Batch-at-a-time vs tuple-at-a-time execution, measured in real wall-clock
// time (no CPU simulator) on the pipeline the batch fast path targets:
//
//   SeqScan -> Filter -> HashAggregation (many groups, table >> cache)
//
// The tuple path pulls one row per virtual Next() call and probes the group
// hash table with dependent cache misses; the batch path drains the child
// through NextBatch, hashes the whole batch up front, and software-prefetches
// every row's bucket head and first chain node before touching them. Both
// paths run the identical plan and their outputs are compared row-for-row
// before any timing is reported.
//
// Output is JSON lines only (the bench_util run header plus one result
// object), so CI can archive stdout directly as an artifact.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/buffer_operator.h"
#include "exec/filter.h"
#include "exec/hash_aggregation.h"
#include "exec/seq_scan.h"
#include "expr/expression.h"
#include "profile/calibration_queries.h"
#include "sim/sim_cpu.h"

namespace bufferdb {
namespace {

ExprPtr Col(const Schema& schema, const std::string& name) {
  auto r = MakeColumnRef(schema, name);
  if (!r.ok()) {
    std::fprintf(stderr, "column ref failed: %s\n", name.c_str());
    std::exit(1);
  }
  return std::move(*r);
}

ExprPtr SelPredicate(const Schema& schema, double keep_fraction) {
  auto r = MakeBinary(BinaryOp::kLe, Col(schema, "sel"),
                      MakeLiteral(Value::Double(keep_fraction)));
  if (!r.ok()) {
    std::fprintf(stderr, "predicate build failed\n");
    std::exit(1);
  }
  return std::move(*r);
}

// scan(items) -> filter(sel <= keep) [-> buffer] -> hash-agg(by key:
// SUM(price), COUNT).
OperatorPtr MakePlan(Table* items, double keep_fraction, size_t batch_size,
                     size_t buffer_size = 0) {
  const Schema& schema = items->schema();
  OperatorPtr plan = std::make_unique<SeqScanOperator>(items, nullptr);
  plan = std::make_unique<FilterOperator>(std::move(plan),
                                          SelPredicate(schema, keep_fraction));
  if (buffer_size > 0) {
    plan = std::make_unique<BufferOperator>(std::move(plan), buffer_size);
  }
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(schema, "key"), "key"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, Col(schema, "price"), "sum_price"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt"});
  auto agg = std::make_unique<HashAggregationOperator>(
      std::move(plan), std::move(groups), std::move(specs));
  agg->set_batch_size(batch_size);
  return agg;
}

using Rows = std::vector<std::vector<Value>>;

// The batch x buffer interaction under the CPU simulator: a batch-draining
// parent executes the buffer's own module once per slice instead of once per
// tuple, so instructions and L1-I pressure attributable to the buffer shrink
// by the batch width. Returns the simulated counters for one run.
sim::SimCounters SimRun(Table* items, double keep_fraction, size_t batch_size,
                        size_t buffer_size) {
  OperatorPtr plan = MakePlan(items, keep_fraction, batch_size, buffer_size);
  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(plan.get(), &ctx);
  if (!rows.ok()) {
    std::fprintf(stderr, "sim exec failed: %s\n",
                 rows.status().ToString().c_str());
    std::exit(1);
  }
  return cpu.counters();
}

// Executes the plan once (no simulator attached) and returns wall seconds
// plus the materialized output for verification.
std::pair<double, Rows> TimedRun(Table* items, double keep_fraction,
                                 size_t batch_size) {
  OperatorPtr plan = MakePlan(items, keep_fraction, batch_size);
  ExecContext ctx;  // ctx.cpu == nullptr: real execution, no sim counters.
  auto start = std::chrono::steady_clock::now();
  auto rows = ExecutePlanRows(plan.get(), &ctx);
  auto stop = std::chrono::steady_clock::now();
  if (!rows.ok()) {
    std::fprintf(stderr, "exec failed: %s\n", rows.status().ToString().c_str());
    std::exit(1);
  }
  double seconds = std::chrono::duration<double>(stop - start).count();
  return {seconds, std::move(*rows)};
}

bool SameRows(const Rows& a, const Rows& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!(a[i][j] == b[i][j])) return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace bufferdb

int main(int argc, char** argv) {
  using namespace bufferdb;  // NOLINT
  double sf = bench::ScaleFactorFromArgs(argc, argv);
  bench::PrintJsonHeader("batch_vs_tuple", sf);

  // The smoke run only checks that both paths still execute and agree; the
  // full run sizes the table and group count so the aggregation hash table
  // far exceeds the cache hierarchy and prefetching has misses to hide.
  const size_t rows = bench::SmokeMode() ? 60000 : 4000000;
  const int64_t key_range = bench::SmokeMode() ? (1 << 12) : (1 << 19);
  const double keep_fraction = 0.75;
  const size_t batch = bench::BatchSizeArg() > 1
                           ? bench::BatchSizeArg()
                           : Operator::kDefaultBatchSize;
  const int iters = bench::SmokeIters(3);

  auto items = profile::BuildSyntheticItems(rows, /*seed=*/42, key_range);

  // Verification run: identical outputs, group order included (both paths
  // absorb rows in scan order, so first-seen group order must match too).
  auto tuple_check = TimedRun(items.get(), keep_fraction, /*batch_size=*/1);
  auto batch_check = TimedRun(items.get(), keep_fraction, batch);
  if (!SameRows(tuple_check.second, batch_check.second)) {
    std::fprintf(stderr,
                 "FAIL: batch output differs from tuple output "
                 "(%zu vs %zu rows)\n",
                 batch_check.second.size(), tuple_check.second.size());
    return 1;
  }

  double tuple_best = tuple_check.first;
  double batch_best = batch_check.first;
  for (int i = 1; i < iters; ++i) {
    double t = TimedRun(items.get(), keep_fraction, 1).first;
    double b = TimedRun(items.get(), keep_fraction, batch).first;
    if (t < tuple_best) tuple_best = t;
    if (b < batch_best) batch_best = b;
  }

  // Simulated i-cache interaction with the buffer operator (smaller table:
  // the simulator is orders of magnitude slower than real execution).
  const size_t sim_rows = bench::SmokeMode() ? 20000 : 50000;
  auto sim_items = profile::BuildSyntheticItems(sim_rows, /*seed=*/42,
                                                /*key_range=*/512);
  sim::SimCounters sim_tuple =
      SimRun(sim_items.get(), keep_fraction, 1, bench::BufferSizeArg());
  sim::SimCounters sim_batch =
      SimRun(sim_items.get(), keep_fraction, batch, bench::BufferSizeArg());

  double speedup = tuple_best / batch_best;
  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"batch_vs_tuple\", \"rows\": %zu, \"key_range\": %lld, "
      "\"keep_fraction\": %.2f, \"batch_size\": %zu, \"iters\": %d, "
      "\"groups_out\": %zu, \"outputs_identical\": true, "
      "\"tuple_seconds\": %.6f, \"batch_seconds\": %.6f, "
      "\"speedup\": %.3f, "
      "\"sim_rows\": %zu, \"sim_buffer_size\": %zu, "
      "\"sim_tuple_instructions\": %llu, \"sim_batch_instructions\": %llu, "
      "\"sim_tuple_l1i_misses\": %llu, \"sim_batch_l1i_misses\": %llu}",
      rows, static_cast<long long>(key_range), keep_fraction, batch, iters,
      tuple_check.second.size(), tuple_best, batch_best, speedup, sim_rows,
      bench::BufferSizeArg(),
      static_cast<unsigned long long>(sim_tuple.instructions),
      static_cast<unsigned long long>(sim_batch.instructions),
      static_cast<unsigned long long>(sim_tuple.l1i_misses),
      static_cast<unsigned long long>(sim_batch.l1i_misses));
  bench::EmitJsonLine(json);
  return 0;
}

// Figure 12: buffered Query 1 performance as a function of the buffer
// size. The paper: small buffers pay overhead; beyond ~1000 entries there is
// no further benefit.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig12_buffer_size", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  QueryRun original = RunQuery(catalog, kQuery1);
  std::fprintf(stderr, "Figure 12: varied buffer sizes (Query 1)\n\n");
  std::fprintf(stderr, "%-12s %14s\n", "buffer size", "elapsed (sim s)");
  std::fprintf(stderr, "%-12s %14.4f\n", "original", original.breakdown.seconds());
  for (size_t size : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                      2048u, 4096u, 8192u, 16384u, 32768u}) {
    RunOptions options;
    options.refine = true;
    options.buffer_size = size;
    QueryRun run = RunQuery(catalog, kQuery1, options);
    std::fprintf(stderr, "%-12zu %14.4f\n", size, run.breakdown.seconds());
  }
  return 0;
}

// Figure 12: buffered Query 1 performance as a function of the buffer
// size. The paper: small buffers pay overhead; beyond ~1000 entries there is
// no further benefit.
//
// This bench also runs the runtime-adaptive series (DESIGN.md §14): one run
// per sweep config with adaptive_buffering on, starting from the fixed
// default capacity. Gated in-bench:
//   - the adaptive run must land within kAdaptiveGapPct of that config's
//     best static point (simulated seconds), and
//   - on at least one sweep config it must strictly beat the fixed default
//     (kDefaultBufferSize) static run.
// Two sweep configs:
//   "default"         — Query 1 on the Table-1 machine. The static default
//                       sits in the flat region of the curve, so the gate
//                       here is that calibration costs (nearly) nothing and
//                       hysteresis keeps the default.
//   "low-cardinality" — the regime where the fixed default is *wrong*:
//                       Query 1 with an equality ship-date predicate leaves
//                       a post-scan stream of a handful of rows, which the
//                       refiner buffers anyway (cardinality_threshold forced
//                       to 0, modeling an estimation error). The plan runs
//                       several times like a prepared statement: static
//                       plans pay the buffering overhead on a sub-threshold
//                       stream in every execution; the adaptive controller
//                       observes the under-floor cardinality at the first
//                       stream end, demotes the buffer (§6/§7.3
//                       re-refinement), and serves later executions
//                       pass-through.
//   "rescan-replay"   — the other direction of mis-sizing: the fixed
//                       default is too *small*. A naive nested-loop join
//                       (hand-built — the SQL planner always upgrades to
//                       hash/merge/index joins) rescans a buffered inner
//                       stream once per outer row. A buffer that holds the
//                       whole stream replays rescans from its array; one
//                       sized under the stream re-executes the inner scan
//                       every time. The adaptive controller learns the
//                       stream's exact length from the first failed replay
//                       (OnRescanMiss) and grows past it, so only the first
//                       two inner executions run the scan.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/adaptive_buffer.h"
#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/nested_loop_join.h"
#include "exec/seq_scan.h"
#include "expr/expression.h"
#include "profile/calibration_queries.h"
#include "storage/table.h"

using namespace bufferdb::bench;  // NOLINT

namespace {

constexpr double kAdaptiveGapPct = 10.0;

// Rescan-replay scenario shape. Synthetic tables, so the config is
// scale-factor-invariant (the sweep's story is the rescan count, not the
// data volume). The inner stream (1500 rows) straddles the sweep: static
// capacities under it re-execute the scan per outer row, capacities over it
// replay from the array.
constexpr size_t kRescanOuterRows = 128;
constexpr size_t kRescanInnerRows = 1500;
constexpr int64_t kRescanKeyRange = 64;

bufferdb::ExprPtr ColAt(int column, bufferdb::DataType type,
                        const char* name) {
  return bufferdb::MakeColumnRefUnchecked(column, type, name);
}

bufferdb::ExprPtr Bin(bufferdb::BinaryOp op, bufferdb::ExprPtr l,
                      bufferdb::ExprPtr r) {
  auto res = bufferdb::MakeBinary(op, std::move(l), std::move(r));
  if (!res.ok()) {
    std::fprintf(stderr, "expr build failed: %s\n",
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*res);
}

// Agg(SUM(outer.quantity * inner.price), COUNT(*)) over
// NestLoop(Scan(outer), [Buffer(]Scan(inner)[)]) on outer.key == inner.key.
// The SUM makes the result fingerprint sensitive to exactly which pairs
// matched, so a replay that served wrong tuples would show up.
bufferdb::OperatorPtr BuildRescanPlan(bufferdb::Table* outer_table,
                                      bufferdb::Table* inner_table,
                                      bool buffered, size_t buffer_size,
                                      bool adaptive) {
  using bufferdb::AggFunc;
  using bufferdb::AggSpec;
  using bufferdb::BinaryOp;
  using bufferdb::DataType;
  using bufferdb::OperatorPtr;
  OperatorPtr inner =
      std::make_unique<bufferdb::SeqScanOperator>(inner_table, nullptr);
  if (buffered) {
    auto buffer = std::make_unique<bufferdb::BufferOperator>(std::move(inner),
                                                             buffer_size);
    if (adaptive) buffer->EnableAdaptive(bufferdb::AdaptiveBufferOptions());
    inner = std::move(buffer);
  }
  OperatorPtr outer =
      std::make_unique<bufferdb::SeqScanOperator>(outer_table, nullptr);
  // Both synthetic tables share column names, so the inner half of the
  // concatenated join row is addressed by index.
  const int w = static_cast<int>(outer_table->schema().num_columns());
  OperatorPtr join = std::make_unique<bufferdb::NestLoopJoinOperator>(
      std::move(outer), std::move(inner),
      Bin(BinaryOp::kEq, ColAt(1, DataType::kInt64, "key"),
          ColAt(w + 1, DataType::kInt64, "key")));
  std::vector<AggSpec> specs;
  specs.push_back(
      AggSpec{AggFunc::kSum,
              Bin(BinaryOp::kMul, ColAt(5, DataType::kDouble, "quantity"),
                  ColAt(w + 2, DataType::kDouble, "price")),
              "sum_qty_price"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "count_pairs"});
  return std::make_unique<bufferdb::AggregationOperator>(std::move(join),
                                                         std::move(specs));
}

std::string RowsFingerprint(const QueryRun& run) {
  std::string out;
  for (const auto& row : run.rows) {
    for (const auto& v : row) {
      out += v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig12_buffer_size", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);

  // Query 1 with an equality ship-date predicate: the scan's work is
  // unchanged but the buffered (post-predicate) stream is a handful of rows
  // — the same shape CalibrateCardinalityThreshold measures the §7.3
  // crossover on, and far under it at smoke and default scale factors.
  const char kSelectiveQuery[] =
      "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) "
      "AS sum_charge, AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order "
      "FROM lineitem WHERE l_shipdate = DATE '1992-01-03'";

  struct SweepConfig {
    const char* name;
    const char* sql;
    bufferdb::sim::SimConfig sim;
    int executions = 1;
    // Refinement overrides; negative keeps the RefinementOptions default.
    double cardinality_threshold = -1.0;
    double demote_row_floor = -1.0;
    // Hand-built rescan nested-loop plan instead of planning `sql`.
    bool rescan = false;
    // Per-config static sweep points; empty uses the full default list.
    std::vector<size_t> sizes;
  };
  std::vector<SweepConfig> configs;
  {
    SweepConfig def;
    def.name = "default";
    def.sql = kQuery1;
    configs.push_back(def);
  }
  {
    SweepConfig low;
    low.name = "low-cardinality";
    low.sql = kSelectiveQuery;
    // Force the refiner to buffer the sub-threshold stream (a cardinality
    // mis-estimate); the controller's demotion floor stays at the paper's
    // measured threshold and must undo the mistake at runtime.
    low.cardinality_threshold = 0.0;
    low.demote_row_floor = 128.0;
    low.executions = 8;
    configs.push_back(low);
  }
  {
    SweepConfig rescan;
    rescan.name = "rescan-replay";
    rescan.sql = "";
    rescan.rescan = true;
    // Trimmed sweep: the sub-stream capacities all cost the same (a full
    // inner re-scan per outer row) and each such run is ~128x the scan work.
    rescan.sizes = {256, 512, 1024, 2048, 4096, 8192};
    configs.push_back(rescan);
  }

  // Tables for the rescan-replay config (fixed size: see kRescan* above).
  std::unique_ptr<bufferdb::Table> rescan_outer =
      bufferdb::profile::BuildSyntheticItems(kRescanOuterRows, /*seed=*/101,
                                             kRescanKeyRange);
  std::unique_ptr<bufferdb::Table> rescan_inner =
      bufferdb::profile::BuildSyntheticItems(kRescanInnerRows, /*seed=*/202,
                                             kRescanKeyRange);

  const std::vector<size_t> kSizes = {1,    2,    4,    8,    16,   32,
                                      64,   128,  256,  512,  1024, 2048,
                                      4096, 8192, 16384, 32768};
  const size_t kDefault = bufferdb::BufferOperator::kDefaultBufferSize;

  int failures = 0;
  bool beats_default_somewhere = false;
  for (const SweepConfig& config : configs) {
    RunOptions base;
    base.sim_config = config.sim;
    base.executions = config.executions;
    if (config.cardinality_threshold >= 0.0) {
      base.refinement.cardinality_threshold = config.cardinality_threshold;
    }
    if (config.demote_row_floor >= 0.0) {
      base.refinement.adaptive.demote_row_floor = config.demote_row_floor;
    }
    // One runner for every series of this config: SQL configs plan `sql`
    // with/without refinement; the rescan config builds its tree by hand.
    auto run_one = [&](bool buffered, size_t size, bool adaptive) {
      if (config.rescan) {
        return RunPlan(
            [&] {
              return BuildRescanPlan(rescan_outer.get(), rescan_inner.get(),
                                     buffered, size, adaptive);
            },
            base);
      }
      RunOptions options = base;
      options.refine = buffered;
      options.buffer_size = size;
      options.adaptive_buffering = adaptive;
      return RunQuery(catalog, config.sql, options);
    };
    QueryRun original = run_one(false, kDefault, false);
    Note("Figure 12 [%s]: varied buffer sizes (%d execution%s)\n\n",
         config.name, config.executions, config.executions == 1 ? "" : "s");
    Note("%-12s %14s\n", "buffer size", "elapsed (sim s)");
    Note("%-12s %14.4f\n", "original", original.breakdown.seconds());
    // Records embed the full SimCounters JSON, so build them append-form on a
    // std::string; a fixed char buffer holds only the bounded scalar prefix.
    char prefix[512];
    std::string line;
    std::snprintf(prefix, sizeof(prefix),
                  "{\"bench\": \"fig12_buffer_size\", \"config\": \"%s\", "
                  "\"series\": \"original\", \"sim_seconds\": %.6f, "
                  "\"sim\": ",
                  config.name, original.breakdown.seconds());
    line = prefix;
    line += original.breakdown.counters.ToJson();
    line += "}";
    EmitJsonLine(line);

    size_t best_static = 0;
    double best_static_seconds = 0.0;
    double fixed_default_seconds = 0.0;
    std::string fixed_default_rows;
    const std::vector<size_t>& sizes =
        config.sizes.empty() ? kSizes : config.sizes;
    for (size_t size : sizes) {
      QueryRun run = run_one(true, size, false);
      double seconds = run.breakdown.seconds();
      Note("%-12zu %14.4f\n", size, seconds);
      std::snprintf(prefix, sizeof(prefix),
                    "{\"bench\": \"fig12_buffer_size\", \"config\": \"%s\", "
                    "\"series\": \"static\", \"buffer_size\": %zu, "
                    "\"sim_seconds\": %.6f, \"sim\": ",
                    config.name, size, seconds);
      line = prefix;
      line += run.breakdown.counters.ToJson();
      line += "}";
      EmitJsonLine(line);
      if (best_static == 0 || seconds < best_static_seconds) {
        best_static = size;
        best_static_seconds = seconds;
      }
      if (size == kDefault) {
        fixed_default_seconds = seconds;
        fixed_default_rows = RowsFingerprint(run);
      }
    }
    if (fixed_default_seconds == 0.0) {
      // kDefault (1000) is not one of the power-of-two sweep points; run it
      // explicitly — it is the baseline the adaptive series must beat.
      QueryRun run = run_one(true, kDefault, false);
      fixed_default_seconds = run.breakdown.seconds();
      fixed_default_rows = RowsFingerprint(run);
      Note("%-12zu %14.4f  (fixed default)\n", kDefault,
           fixed_default_seconds);
      std::snprintf(prefix, sizeof(prefix),
                    "{\"bench\": \"fig12_buffer_size\", \"config\": \"%s\", "
                    "\"series\": \"fixed_default\", \"buffer_size\": %zu, "
                    "\"sim_seconds\": %.6f, \"sim\": ",
                    config.name, kDefault, run.breakdown.seconds());
      line = prefix;
      line += run.breakdown.counters.ToJson();
      line += "}";
      EmitJsonLine(line);
    }

    QueryRun adaptive_run = run_one(true, kDefault, true);
    double adaptive_seconds = adaptive_run.breakdown.seconds();
    size_t chosen = kDefault;
    bool demoted = false;
    for (const bufferdb::BufferRuntimeStats& b : adaptive_run.buffers) {
      if (!b.adaptive) continue;
      chosen = b.final_capacity;
      demoted = demoted || b.demoted;
      Note("adaptive buffer [%s]: %s capacity %zu -> %zu (%s)\n", config.name,
           b.label.c_str(), b.initial_capacity, b.final_capacity,
           b.state.c_str());
    }
    if (RowsFingerprint(adaptive_run) != fixed_default_rows) {
      Note("FAIL [%s]: adaptive run's result differs from the static run\n",
           config.name);
      ++failures;
    }
    double gap_pct =
        best_static_seconds > 0
            ? 100.0 * (adaptive_seconds / best_static_seconds - 1.0)
            : 0.0;
    double improvement_pct =
        fixed_default_seconds > 0
            ? 100.0 * (1.0 - adaptive_seconds / fixed_default_seconds)
            : 0.0;
    Note("%-12s %14.4f  (chose %zu; best static %zu @ %.4f; gap %.2f%%; "
         "vs default %+.2f%%)\n\n",
         "adaptive", adaptive_seconds, chosen, best_static,
         best_static_seconds, gap_pct, improvement_pct);
    std::snprintf(
        prefix, sizeof(prefix),
        "{\"bench\": \"fig12_buffer_size\", \"config\": \"%s\", "
        "\"series\": \"adaptive\", \"buffer_size\": %zu, "
        "\"adaptive_chosen_size\": %zu, \"adaptive_demoted\": %s, "
        "\"best_static\": %zu, \"best_static_seconds\": %.6f, "
        "\"fixed_default_seconds\": %.6f, \"adaptive_seconds\": %.6f, "
        "\"adaptive_gap_vs_best_pct\": %.2f, "
        "\"adaptive_improvement_pct\": %.2f, \"sim\": ",
        config.name, kDefault, chosen, demoted ? "true" : "false",
        best_static, best_static_seconds, fixed_default_seconds,
        adaptive_seconds, gap_pct, improvement_pct);
    line = prefix;
    line += adaptive_run.breakdown.counters.ToJson();
    line += "}";
    EmitJsonLine(line);

    if (adaptive_seconds > best_static_seconds * (1.0 + kAdaptiveGapPct / 100.0)) {
      Note("FAIL [%s]: adaptive series %.4fs is more than %.0f%% over the "
           "best static point %.4fs (size %zu)\n",
           config.name, adaptive_seconds, kAdaptiveGapPct,
           best_static_seconds, best_static);
      ++failures;
    }
    if (adaptive_seconds < fixed_default_seconds) {
      beats_default_somewhere = true;
    }
  }

  if (!beats_default_somewhere) {
    Note("FAIL: adaptive series never strictly beat the fixed-%zu default "
         "on any sweep config\n",
         kDefault);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

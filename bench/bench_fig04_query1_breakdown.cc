// Figure 4: execution time breakdown of the unbuffered Query 1 on a
// memory-resident TPC-H database — the instruction-cache-thrashing baseline.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig04_query1_breakdown", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  QueryRun run = RunQuery(catalog, kQuery1);
  std::fprintf(stderr, "Figure 4: Query 1, conventional demand-pull plan\n\n");
  std::fprintf(stderr, "plan:\n%s\n", run.plan_text.c_str());
  std::fprintf(stderr, "%s\n", run.breakdown.ToString("Query 1 (original)").c_str());
  std::fprintf(stderr, "result row: ");
  for (const auto& v : run.rows[0]) std::fprintf(stderr, "%s  ", v.ToString().c_str());
  std::fprintf(stderr, "\n");
  return 0;
}

// Google-benchmark microbenchmarks: real (wall-clock) per-tuple overhead of
// the buffer operator on this host, without the CPU simulator. Supports the
// paper's claim that the buffer operator is light-weight.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "profile/calibration_queries.h"

namespace bufferdb {
namespace {

// Set by --smoke (CI bench-bitrot check): shrink the table and cut
// measurement time so the whole binary finishes in a couple of seconds.
bool g_smoke = false;

Table* SharedItems() {
  static Table* table =
      profile::BuildSyntheticItems(g_smoke ? 10000 : 100000, /*seed=*/99)
          .release();
  return table;
}

OperatorPtr MakeCountPlan(Table* table, size_t buffer_size) {
  OperatorPtr plan = std::make_unique<SeqScanOperator>(table, nullptr);
  if (buffer_size > 0) {
    plan = std::make_unique<BufferOperator>(std::move(plan), buffer_size);
  }
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  return std::make_unique<AggregationOperator>(std::move(plan),
                                               std::move(specs));
}

void BM_ScanAggregate(benchmark::State& state) {
  Table* table = SharedItems();
  for (auto _ : state) {
    OperatorPtr plan = MakeCountPlan(table, 0);
    ExecContext ctx;
    auto rows = ExecutePlan(plan.get(), &ctx);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(table->num_rows()));
}
BENCHMARK(BM_ScanAggregate);

void BM_ScanAggregateBuffered(benchmark::State& state) {
  Table* table = SharedItems();
  size_t buffer_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    OperatorPtr plan = MakeCountPlan(table, buffer_size);
    ExecContext ctx;
    auto rows = ExecutePlan(plan.get(), &ctx);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(table->num_rows()));
}
BENCHMARK(BM_ScanAggregateBuffered)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BufferRefillOnly(benchmark::State& state) {
  Table* table = SharedItems();
  for (auto _ : state) {
    BufferOperator buffer(std::make_unique<SeqScanOperator>(table, nullptr),
                          static_cast<size_t>(state.range(0)));
    ExecContext ctx;
    if (!buffer.Open(&ctx).ok()) state.SkipWithError("open failed");
    while (buffer.Next() != nullptr) {
    }
    buffer.Close();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(table->num_rows()));
}
BENCHMARK(BM_BufferRefillOnly)->Arg(1)->Arg(1000);

void BM_CopyingBuffer(benchmark::State& state) {
  Table* table = SharedItems();
  for (auto _ : state) {
    BufferOperator buffer(std::make_unique<SeqScanOperator>(table, nullptr),
                          1000, /*copy_tuples=*/true);
    ExecContext ctx;
    if (!buffer.Open(&ctx).ok()) state.SkipWithError("open failed");
    while (buffer.Next() != nullptr) {
    }
    buffer.Close();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(table->num_rows()));
}
BENCHMARK(BM_CopyingBuffer);

}  // namespace
}  // namespace bufferdb

// BENCHMARK_MAIN(), plus a --smoke flag google-benchmark doesn't know:
// strip it from argv and inject a tiny --benchmark_min_time instead.
int main(int argc, char** argv) {
  bufferdb::bench::PrintJsonHeader(
      "micro_buffer", bufferdb::bench::ScaleFactorFromArgs(argc, argv));
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      bufferdb::g_smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (bufferdb::g_smoke) args.push_back(min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

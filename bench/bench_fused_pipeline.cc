// Intra-group operator fusion (DESIGN.md §15), fused vs. unfused:
//
//   A. fig-10-style chain: Scan(pred) -> Filter x3 -> Project over a wide
//      synthetic table, hand-built and then collapsed with
//      FusedPipelineOperator::TryFuse — wall-clock at batch width 1024, with
//      the CPU simulator's i-cache counters measured alongside on a smaller
//      table. The gated pair runs over the table's columnar image
//      (ColumnScan source — the engine's default scan when one exists);
//      the row-store (SeqScan source) pair is reported as an informational
//      metric, since there fusion saves only the per-stage staging, not the
//      decode work that dominates a packed-row pipeline either way.
//   B. TPC-H filter-heavy sweep: selection queries planned twice through the
//      refined engine (RunQuery), once with RefinementOptions::fuse_pipelines
//      off and once on; results must be value-identical and the fused plans'
//      simulated i-cache references must drop with misses no worse.
//
// Acceptance gates IN the bench: after emitting its JSON lines the bench
// re-parses them and exits nonzero unless speedup_fused >= 1.3, every fused
// run reduced sim l1i accesses, and no fused run's l1i misses exceed its
// unfused pair. Outputs are compared (byte-for-byte for the hand-built
// chain, value-for-value for the SQL sweep) before any timing is reported.
//
// Output is JSON lines only (the bench_util run header plus one record per
// comparison), so CI can archive stdout directly as an artifact.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/column_scan.h"
#include "exec/filter.h"
#include "exec/fused_pipeline.h"
#include "exec/project.h"
#include "exec/seq_scan.h"
#include "expr/expression.h"
#include "sim/sim_cpu.h"
#include "storage/column_table.h"

namespace bufferdb {
namespace {

constexpr size_t kBenchBatch = 1024;

ExprPtr Col(const Schema& schema, const std::string& name) {
  auto r = MakeColumnRef(schema, name);
  if (!r.ok()) {
    std::fprintf(stderr, "column ref failed: %s\n", name.c_str());
    std::exit(1);
  }
  return std::move(*r);
}

ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto res = MakeBinary(op, std::move(l), std::move(r));
  if (!res.ok()) {
    std::fprintf(stderr, "expr build failed\n");
    std::exit(1);
  }
  return std::move(*res);
}

// Wide table (12 numeric columns + 2 string columns) with a columnar image:
// wide enough that each unfused stage pays a real decode while the fused
// loop decodes its input union exactly once.
std::unique_ptr<Table> BuildWideTable(size_t rows, uint64_t seed) {
  Schema schema({{"k", DataType::kInt64},
                 {"a", DataType::kDouble},
                 {"b", DataType::kDouble},
                 {"c", DataType::kDouble},
                 {"d", DataType::kDouble},
                 {"e", DataType::kInt64},
                 {"f", DataType::kInt64},
                 {"g", DataType::kInt64},
                 {"h", DataType::kInt64},
                 {"p", DataType::kDouble},
                 {"q", DataType::kDouble},
                 {"t", DataType::kInt64},
                 {"s", DataType::kString},
                 {"u", DataType::kString}});
  const char* kVocab[] = {"shipped", "shelved", "shipping", "pending",
                          "packed",  "held",    "returned", "refunded",
                          "lost",    "listed"};
  auto table = std::make_unique<Table>("wide", schema);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> v;
    v.push_back(Value::Int64(rng.Uniform(0, 1 << 20)));
    for (int j = 0; j < 4; ++j) v.push_back(Value::Double(rng.NextDouble()));
    for (int j = 0; j < 4; ++j) v.push_back(Value::Int64(rng.Uniform(0, 999)));
    v.push_back(Value::Double(rng.NextDouble() * 100.0));
    v.push_back(Value::Double(rng.NextDouble() * 10.0));
    v.push_back(Value::Int64(rng.Uniform(-50, 50)));
    v.push_back(Value::String(kVocab[rng.Uniform(0, 9)]));
    v.push_back(Value::String(kVocab[rng.Uniform(0, 9)]));
    table->AppendRow(v);
  }
  table->AttachColumnar(ColumnarTable::Build(*table));
  return table;
}

// The fig-10-style chain: filter-heavy (three predicates over five columns)
// with mostly-passing stages, so every unfused edge pays its per-stage
// decode/compact/publish on nearly the full row stream — exactly the
// intermediate work fusion eliminates.
//
//   Scan(a + b < 1.6)        ~92% pass
//   Filter(c + d < 1.6)      ~92% pass
//   Filter(e != 7)           ~99.9% pass
//   Filter(p < 90)           ~90% pass
//   Project(a * 2 + b, k + e, c - d, p + q)
OperatorPtr BuildChain(Table* table, bool columnar) {
  const Schema& s = table->schema();
  ExprPtr scan_pred = Bin(BinaryOp::kLt,
                          Bin(BinaryOp::kAdd, Col(s, "a"), Col(s, "b")),
                          MakeLiteral(Value::Double(1.6)));
  OperatorPtr op;
  if (columnar) {
    op = std::make_unique<ColumnScanOperator>(table, std::move(scan_pred));
  } else {
    op = std::make_unique<SeqScanOperator>(table, std::move(scan_pred));
  }
  op = std::make_unique<FilterOperator>(
      std::move(op), Bin(BinaryOp::kLt,
                         Bin(BinaryOp::kAdd, Col(s, "c"), Col(s, "d")),
                         MakeLiteral(Value::Double(1.6))));
  op = std::make_unique<FilterOperator>(
      std::move(op),
      Bin(BinaryOp::kNe, Col(s, "e"), MakeLiteral(Value::Int64(7))));
  op = std::make_unique<FilterOperator>(
      std::move(op),
      Bin(BinaryOp::kLt, Col(s, "p"), MakeLiteral(Value::Double(90.0))));
  std::vector<ProjectItem> items;
  items.push_back({Bin(BinaryOp::kAdd,
                       Bin(BinaryOp::kMul, Col(s, "a"),
                           MakeLiteral(Value::Double(2.0))),
                       Col(s, "b")),
                   "ab"});
  items.push_back({Bin(BinaryOp::kAdd, Col(s, "k"), Col(s, "e")), "ke"});
  items.push_back({Bin(BinaryOp::kSub, Col(s, "c"), Col(s, "d")), "cd"});
  items.push_back({Bin(BinaryOp::kAdd, Col(s, "p"), Col(s, "q")), "pq"});
  return std::make_unique<ProjectOperator>(std::move(op), std::move(items));
}

OperatorPtr BuildFusedChain(Table* table, bool columnar) {
  OperatorPtr fused =
      FusedPipelineOperator::TryFuse(BuildChain(table, columnar),
                                     FusedPipelineOptions());
  if (dynamic_cast<FusedPipelineOperator*>(fused.get()) == nullptr) {
    std::fprintf(stderr, "FAIL: bench chain did not fuse\n");
    std::exit(1);
  }
  return fused;
}

// Drains `plan` through NextBatch at width 1024 (no simulator attached).
// When `snapshot` is set, the emitted rows are copied out byte-for-byte
// (size-prefixed row format) so fused and unfused outputs can be compared
// after their arenas die.
double TimedRun(const OperatorPtr& plan, size_t* rows_out,
                std::vector<uint8_t>* snapshot) {
  ExecContext ctx;
  auto start = std::chrono::steady_clock::now();
  auto rows = ExecutePlanBatched(plan.get(), &ctx, kBenchBatch);
  auto stop = std::chrono::steady_clock::now();
  if (!rows.ok()) {
    std::fprintf(stderr, "exec failed: %s\n", rows.status().ToString().c_str());
    std::exit(1);
  }
  *rows_out = rows->size();
  if (snapshot != nullptr) {
    for (const uint8_t* row : *rows) {
      uint32_t size = 0;
      std::memcpy(&size, row, sizeof(size));
      snapshot->insert(snapshot->end(), row, row + size);
    }
  }
  return std::chrono::duration<double>(stop - start).count();
}

sim::SimCounters SimRun(const OperatorPtr& plan) {
  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanBatched(plan.get(), &ctx, kBenchBatch);
  if (!rows.ok()) {
    std::fprintf(stderr, "sim exec failed: %s\n",
                 rows.status().ToString().c_str());
    std::exit(1);
  }
  return cpu.counters();
}

struct Comparison {
  double unfused_best = 0;
  double fused_best = 0;
  size_t rows_out = 0;
  double speedup() const { return unfused_best / fused_best; }
};

Comparison Compare(Table* table, bool columnar, int iters) {
  std::vector<uint8_t> unfused_bytes;
  std::vector<uint8_t> fused_bytes;
  Comparison c;
  size_t fused_rows = 0;
  c.unfused_best =
      TimedRun(BuildChain(table, columnar), &c.rows_out, &unfused_bytes);
  c.fused_best =
      TimedRun(BuildFusedChain(table, columnar), &fused_rows, &fused_bytes);
  if (c.rows_out != fused_rows || unfused_bytes != fused_bytes) {
    std::fprintf(stderr,
                 "FAIL: fused output differs from unfused "
                 "(%zu vs %zu rows, %zu vs %zu bytes)\n",
                 fused_rows, c.rows_out, fused_bytes.size(),
                 unfused_bytes.size());
    std::exit(1);
  }
  for (int i = 1; i < iters; ++i) {
    size_t n = 0;
    double u = TimedRun(BuildChain(table, columnar), &n, nullptr);
    double f = TimedRun(BuildFusedChain(table, columnar), &n, nullptr);
    if (u < c.unfused_best) c.unfused_best = u;
    if (f < c.fused_best) c.fused_best = f;
  }
  return c;
}

// Pulls `"key": <number>` out of a JSON line the bench just emitted; the
// acceptance thresholds are checked against the published artifact, not
// against in-memory state that could diverge from it.
double JsonField(const std::string& json, const char* key) {
  std::string needle = std::string("\"") + key + "\": ";
  size_t at = json.find(needle);
  if (at == std::string::npos) {
    std::fprintf(stderr, "FAIL: field %s missing from emitted JSON\n", key);
    std::exit(1);
  }
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

// Gates one emitted record's i-cache pair: references reduced, misses no
// worse than the unfused run.
bool GateICache(const std::string& line, const char* what) {
  bool ok = true;
  double ua = JsonField(line, "sim_unfused_l1i_accesses");
  double fa = JsonField(line, "sim_fused_l1i_accesses");
  double um = JsonField(line, "sim_unfused_l1i_misses");
  double fm = JsonField(line, "sim_fused_l1i_misses");
  if (fa >= ua) {
    std::fprintf(stderr,
                 "FAIL: %s fused l1i accesses %.0f not reduced "
                 "(unfused %.0f)\n",
                 what, fa, ua);
    ok = false;
  }
  if (fm > um) {
    std::fprintf(stderr,
                 "FAIL: %s fused l1i misses %.0f worse than unfused %.0f\n",
                 what, fm, um);
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace bufferdb

int main(int argc, char** argv) {
  using namespace bufferdb;  // NOLINT
  double sf = bench::ScaleFactorFromArgs(argc, argv);
  bench::PrintJsonHeader("fused_pipeline", sf);

  // --- A. hand-built chain, wall clock + sim counters -----------------------
  const size_t rows = bench::SmokeMode() ? 200000 : 2000000;
  const int iters = bench::SmokeIters(5, 3);
  auto table = BuildWideTable(rows, /*seed=*/42);

  bench::Note("fused_pipeline: %zu rows, batch %zu, %d iters\n", rows,
              kBenchBatch, iters);
  Comparison seq = Compare(table.get(), /*columnar=*/false, iters);
  Comparison col = Compare(table.get(), /*columnar=*/true, iters);

  // Simulated i-cache counters on a smaller table (the simulator is orders
  // of magnitude slower than real execution).
  auto sim_table = BuildWideTable(bench::SmokeMode() ? 20000 : 50000,
                                  /*seed=*/42);
  sim::SimCounters sim_unfused = SimRun(BuildChain(sim_table.get(), true));
  sim::SimCounters sim_fused = SimRun(BuildFusedChain(sim_table.get(), true));

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"fused_pipeline\", \"config\": \"chain\", "
      "\"rows\": %zu, \"batch_size\": %zu, \"iters\": %d, "
      "\"outputs_identical\": true, \"rows_out\": %zu, "
      "\"unfused_seconds\": %.6f, \"fused_seconds\": %.6f, "
      "\"speedup_fused\": %.3f, "
      "\"rowsource_unfused_seconds\": %.6f, "
      "\"rowsource_fused_seconds\": %.6f, "
      "\"speedup_fused_rowsource\": %.3f, "
      "\"sim_unfused_instructions\": %llu, "
      "\"sim_fused_instructions\": %llu, "
      "\"sim_unfused_l1i_accesses\": %llu, "
      "\"sim_fused_l1i_accesses\": %llu, "
      "\"sim_unfused_l1i_misses\": %llu, \"sim_fused_l1i_misses\": %llu}",
      rows, kBenchBatch, iters, col.rows_out, col.unfused_best, col.fused_best,
      col.speedup(), seq.unfused_best, seq.fused_best, seq.speedup(),
      static_cast<unsigned long long>(sim_unfused.instructions),
      static_cast<unsigned long long>(sim_fused.instructions),
      static_cast<unsigned long long>(sim_unfused.l1i_accesses),
      static_cast<unsigned long long>(sim_fused.l1i_accesses),
      static_cast<unsigned long long>(sim_unfused.l1i_misses),
      static_cast<unsigned long long>(sim_fused.l1i_misses));
  std::string chain_line(json);
  bench::EmitJsonLine(chain_line);

  // --- B. TPC-H filter-heavy sweep through the refined planner --------------
  struct SweepQuery {
    const char* name;
    const char* sql;
  };
  const SweepQuery kSweep[] = {
      {"sel_lineitem",
       "SELECT l_orderkey, l_quantity FROM lineitem "
       "WHERE l_shipdate <= DATE '1998-09-02'"},
      {"sel_orders",
       "SELECT o_orderkey, o_totalprice FROM orders "
       "WHERE o_orderpriority = '1-URGENT'"},
  };
  Catalog& catalog = bench::SharedTpch(sf);
  std::vector<std::string> sweep_lines;
  for (const SweepQuery& q : kSweep) {
    bench::RunOptions off;
    off.refine = true;
    off.batch_size = kBenchBatch;
    bench::RunOptions on = off;
    on.refinement.fuse_pipelines = true;
    bench::QueryRun unfused = bench::RunQuery(catalog, q.sql, off);
    bench::QueryRun fused = bench::RunQuery(catalog, q.sql, on);
    if (unfused.rows != fused.rows) {
      std::fprintf(stderr,
                   "FAIL: %s fused results differ (%zu vs %zu rows)\n", q.name,
                   fused.rows.size(), unfused.rows.size());
      return 1;
    }
    bench::Note("tpch %s fused plan:\n%s", q.name, fused.plan_text.c_str());
    const sim::SimCounters& a = unfused.breakdown.counters;
    const sim::SimCounters& b = fused.breakdown.counters;
    std::snprintf(
        json, sizeof(json),
        "{\"bench\": \"fused_pipeline\", \"config\": \"tpch_%s\", "
        "\"batch_size\": %zu, \"outputs_identical\": true, "
        "\"rows_out\": %zu, "
        "\"sim_unfused_instructions\": %llu, "
        "\"sim_fused_instructions\": %llu, "
        "\"sim_unfused_l1i_accesses\": %llu, "
        "\"sim_fused_l1i_accesses\": %llu, "
        "\"sim_unfused_l1i_misses\": %llu, "
        "\"sim_fused_l1i_misses\": %llu, "
        "\"sim_unfused_seconds\": %.6f, \"sim_fused_seconds\": %.6f}",
        q.name, kBenchBatch, unfused.rows.size(),
        static_cast<unsigned long long>(a.instructions),
        static_cast<unsigned long long>(b.instructions),
        static_cast<unsigned long long>(a.l1i_accesses),
        static_cast<unsigned long long>(b.l1i_accesses),
        static_cast<unsigned long long>(a.l1i_misses),
        static_cast<unsigned long long>(b.l1i_misses),
        unfused.breakdown.seconds(), fused.breakdown.seconds());
    sweep_lines.emplace_back(json);
    bench::EmitJsonLine(sweep_lines.back());
  }

  // Acceptance gates, read back from the emitted artifact lines.
  bool ok = true;
  double speedup_fused = JsonField(chain_line, "speedup_fused");
  if (speedup_fused < 1.3) {
    std::fprintf(stderr,
                 "FAIL: speedup_fused %.3f < 1.3 (fused vs unfused "
                 "scan-filter-project at batch %zu)\n",
                 speedup_fused, kBenchBatch);
    ok = false;
  }
  ok = GateICache(chain_line, "chain") && ok;
  // The refined TPC-H pairs also gate the simulated batch-path speedup: the
  // simulator is deterministic, so a fused plan that stops being faster than
  // its unfused twin is an engine regression, not noise.
  for (const std::string& line : sweep_lines) {
    double su = JsonField(line, "sim_unfused_seconds");
    double sf_fused = JsonField(line, "sim_fused_seconds");
    if (sf_fused * 1.3 > su) {
      std::fprintf(stderr,
                   "FAIL: simulated fused speedup %.3f < 1.3 (%s)\n",
                   su / sf_fused, line.c_str());
      ok = false;
    }
  }
  for (size_t i = 0; i < sweep_lines.size(); ++i) {
    ok = GateICache(sweep_lines[i], kSweep[i].name) && ok;
  }
  return ok ? 0 : 1;
}

// Figure 9: Query 2 (COUNT only) — buffering is NOT beneficial because the
// combined Scan+Aggregation footprint already fits in the L1 instruction
// cache. The refiner correctly declines to buffer; we force a buffer in
// (via the buffer-everywhere ablation mode) to reproduce the figure's
// comparison and show the slight slowdown.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig09_query2", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);

  QueryRun original = RunQuery(catalog, kQuery2);

  RunOptions refined;
  refined.refine = true;
  QueryRun auto_refined = RunQuery(catalog, kQuery2, refined);

  RunOptions forced;
  forced.refine = true;
  forced.refinement.merge_execution_groups = false;  // Force the buffer in.
  QueryRun forced_buffer = RunQuery(catalog, kQuery2, forced);

  std::fprintf(stderr, "Figure 9: Query 2 — buffering not beneficial\n\n");
  std::fprintf(stderr, "plan refinement adds %d buffer(s) (expected 0: combined "
              "footprint fits in L1-I)\n\n",
              auto_refined.report.buffers_added);
  PrintComparison("Query 2: original vs forced-buffer", original,
                  forced_buffer);
  double delta = 100.0 * (forced_buffer.breakdown.seconds() /
                              original.breakdown.seconds() -
                          1.0);
  std::fprintf(stderr, "forced buffering changes elapsed time by %+.2f%% "
              "(paper: slightly worse)\n",
              delta);
  return 0;
}

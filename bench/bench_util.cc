#include "bench_util.h"

#include <unistd.h>

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "perf/profiled_operator.h"
#include "plan/plan_printer.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

namespace bufferdb::bench {

const char kQuery1[] =
    "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) "
    "AS sum_charge, AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order "
    "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'";

const char kQuery2[] =
    "SELECT COUNT(*) AS count_order FROM lineitem "
    "WHERE l_shipdate <= DATE '1998-09-02'";

const char kQuery3[] =
    "SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount) "
    "FROM lineitem, orders "
    "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";

namespace {
bool g_smoke_mode = false;
bool g_hw_mode = false;
bool g_adaptive_mode = false;
bool g_fuse_mode = false;
bool g_json_strict = false;
size_t g_batch_size = 1;
size_t g_buffer_size = BufferOperator::kDefaultBufferSize;
std::string g_calibration_path;
std::string g_bench_name = "bench";
// Under --json-strict, the real stdout lives here and fd 1 points at a
// capture file that must stay empty (see SetupJsonStrict).
std::FILE* g_json_stream = nullptr;
std::string g_capture_path;

std::FILE* JsonOut() { return g_json_stream != nullptr ? g_json_stream : stdout; }

void CheckJsonStrictAtExit() {
  std::fflush(stdout);
  std::FILE* f = std::fopen(g_capture_path.c_str(), "rb");
  if (f == nullptr) return;
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(g_capture_path.c_str());
  if (n == 0) return;
  buf[n] = '\0';
  std::fprintf(stderr,
               "json-strict violation: %zu stray byte(s) written to stdout "
               "outside the JSON emitter; first capture:\n%s\n",
               n, buf);
  // atexit context: normal unwinding is over, fail the process hard.
  std::_Exit(1);
}

void SetupJsonStrict() {
  std::fflush(stdout);
  int saved = dup(STDOUT_FILENO);
  if (saved < 0) return;
  g_json_stream = fdopen(saved, "w");
  char tmpl[] = "/tmp/bench_stdout_capture_XXXXXX";
  int capture_fd = mkstemp(tmpl);
  if (capture_fd < 0) return;
  g_capture_path = tmpl;
  dup2(capture_fd, STDOUT_FILENO);
  close(capture_fd);
  std::atexit(CheckJsonStrictAtExit);
}
}  // namespace

Catalog& SharedTpch(double scale_factor) {
  static std::map<long, std::unique_ptr<Catalog>>* catalogs =
      new std::map<long, std::unique_ptr<Catalog>>();
  long key = static_cast<long>(scale_factor * 1e6);
  auto it = catalogs->find(key);
  if (it == catalogs->end()) {
    auto catalog = std::make_unique<Catalog>();
    tpch::TpchConfig config;
    config.scale_factor = scale_factor;
    Status st = tpch::LoadTpch(config, catalog.get());
    if (!st.ok()) {
      std::fprintf(stderr, "TPC-H load failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    Note("# TPC-H scale factor %.3f (%zu lineitem rows)\n", scale_factor,
         catalog->GetTable("lineitem")->num_rows());
    it = catalogs->emplace(key, std::move(catalog)).first;
  }
  return *it->second;
}

bool SmokeMode() { return g_smoke_mode; }

bool HwMode() { return g_hw_mode; }

bool JsonStrictMode() { return g_json_strict; }

size_t BatchSizeArg() { return g_batch_size; }

size_t BufferSizeArg() { return g_buffer_size; }

bool AdaptiveArg() { return g_adaptive_mode; }

bool FuseArg() { return g_fuse_mode; }

const std::string& CalibrationArg() { return g_calibration_path; }

void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
}

void EmitJsonLine(const std::string& line) {
  std::fprintf(JsonOut(), "%s\n", line.c_str());
  std::fflush(JsonOut());
}

double ScaleFactorFromArgs(int argc, char** argv) {
  double sf = kDefaultScaleFactor;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      g_smoke_mode = true;
      continue;
    }
    if (arg == "--hw") {
      g_hw_mode = true;
      continue;
    }
    if (arg == "--adaptive") {
      g_adaptive_mode = true;
      continue;
    }
    if (arg == "--fuse") {
      g_fuse_mode = true;
      continue;
    }
    if (arg == "--json-strict") {
      if (!g_json_strict) SetupJsonStrict();
      g_json_strict = true;
      continue;
    }
    if (arg.rfind("--batch=", 0) == 0) {
      long v = std::atol(arg.c_str() + 8);
      g_batch_size = v > 0 ? static_cast<size_t>(v) : 1;
      continue;
    }
    if (arg.rfind("--buffer=", 0) == 0) {
      long v = std::atol(arg.c_str() + 9);
      g_buffer_size = v > 0 ? static_cast<size_t>(v)
                            : BufferOperator::kDefaultBufferSize;
      continue;
    }
    if (arg.rfind("--calibration=", 0) == 0) {
      g_calibration_path = arg.substr(std::strlen("--calibration="));
      std::string error;
      if (!sim::CodeLayout::LoadCalibration(g_calibration_path, &error)) {
        std::fprintf(stderr, "--calibration failed: %s\n", error.c_str());
        std::exit(2);
      }
      Note("# code layout calibrated from %s (total %llu bytes)\n",
           g_calibration_path.c_str(),
           static_cast<unsigned long long>(
               sim::CodeLayout::Default().total_code_bytes()));
      continue;
    }
    double v = std::atof(arg.c_str());
    if (v > 0) sf = v;
  }
  if (g_smoke_mode && sf > kSmokeScaleFactor) sf = kSmokeScaleFactor;
  return sf;
}

void PrintJsonHeader(const char* bench_name, double scale_factor) {
  g_bench_name = bench_name;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\": \"%s\", \"scale_factor\": %.6g, \"smoke\": %s, "
      "\"hw\": %s, \"batch_size\": %zu, \"buffer_size\": %zu, "
      "\"calibrated\": %s, \"adaptive\": %s, \"fused\": %s}",
      bench_name, scale_factor, g_smoke_mode ? "true" : "false",
      g_hw_mode ? "true" : "false", g_batch_size, g_buffer_size,
      g_calibration_path.empty() ? "false" : "true",
      g_adaptive_mode ? "true" : "false", g_fuse_mode ? "true" : "false");
  EmitJsonLine(buf);
}

QueryRun RunQuery(Catalog& catalog, const std::string& sql,
                  const RunOptions& options) {
  sql::Binder binder(&catalog);
  auto query = binder.BindSql(sql);
  if (!query.ok()) {
    std::fprintf(stderr, "bind failed: %s\n  %s\n",
                 query.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  PlannerOptions planner_options;
  planner_options.refine = options.refine;
  planner_options.join_strategy = options.join_strategy;
  planner_options.batch_size =
      options.batch_size > 0 ? options.batch_size : BatchSizeArg();
  planner_options.refinement = options.refinement;
  planner_options.refinement.buffer_size = options.buffer_size;
  planner_options.refinement.adaptive_buffering =
      options.adaptive_buffering || g_adaptive_mode;
  planner_options.refinement.fuse_pipelines =
      options.refinement.fuse_pipelines || g_fuse_mode;
  PhysicalPlanner planner(&catalog, planner_options);

  QueryRun run;
  auto plan = planner.CreatePlan(*query, &run.report);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  run.plan_text = PrintPlan(**plan);
  OperatorPtr root = std::move(*plan);

  bool hw = options.hw_profile || g_hw_mode;
  size_t sim_rows = 0;
  if (options.simulate) {
    sim::SimCpu cpu(options.sim_config);
    ExecContext ctx;
    ctx.cpu = &cpu;
    auto t0 = std::chrono::steady_clock::now();
    auto rows = ExecutePlanRows(root.get(), &ctx);
    for (int e = 1; e < options.executions && rows.ok(); ++e) {
      rows = ExecutePlanRows(root.get(), &ctx);
    }
    run.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!rows.ok()) {
      std::fprintf(stderr, "exec failed: %s\n",
                   rows.status().ToString().c_str());
      std::exit(1);
    }
    run.rows = std::move(*rows);
    sim_rows = run.rows.size();
    run.breakdown = cpu.Breakdown();
  }

  if (hw) {
    // Separate pass with the simulator detached: the hardware counters must
    // measure the engine's instruction stream, not the cache simulator's.
    root = perf::ProfilePlan(std::move(root), &run.profile);
    ExecContext ctx;
    auto t0 = std::chrono::steady_clock::now();
    auto rows = ExecutePlanRows(root.get(), &ctx);
    for (int e = 1; e < options.executions && rows.ok(); ++e) {
      rows = ExecutePlanRows(root.get(), &ctx);
    }
    run.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!rows.ok()) {
      std::fprintf(stderr, "hw-profiled exec failed: %s\n",
                   rows.status().ToString().c_str());
      std::exit(1);
    }
    if (options.simulate && rows->size() != sim_rows) {
      std::fprintf(stderr,
                   "hw-profiled run produced %zu rows, simulated run %zu\n",
                   rows->size(), sim_rows);
      std::exit(1);
    }
    if (!options.simulate) run.rows = std::move(*rows);
    run.profile.AttributeGroups(run.report);
  }
  // Post-run buffer telemetry (walks through profiler wrappers).
  CollectBufferStats(*root, &run.buffers);
  return run;
}

QueryRun RunPlan(const std::function<OperatorPtr()>& build,
                 const RunOptions& options) {
  QueryRun run;
  OperatorPtr root = build();
  run.plan_text = PrintPlan(*root);
  sim::SimCpu cpu(options.sim_config);
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto t0 = std::chrono::steady_clock::now();
  auto rows = ExecutePlanRows(root.get(), &ctx);
  for (int e = 1; e < options.executions && rows.ok(); ++e) {
    rows = ExecutePlanRows(root.get(), &ctx);
  }
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!rows.ok()) {
    std::fprintf(stderr, "exec failed: %s\n", rows.status().ToString().c_str());
    std::exit(1);
  }
  run.rows = std::move(*rows);
  run.breakdown = cpu.Breakdown();
  CollectBufferStats(*root, &run.buffers);
  return run;
}

namespace {

/// {"sim": {...}, "sim_seconds": s[, "hw": {...}, "hw_wall_ns": n]}
std::string RunJson(const QueryRun& run) {
  std::string out = "{\"sim\": " + run.breakdown.counters.ToJson();
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", \"sim_seconds\": %.6f",
                run.breakdown.seconds());
  out += buf;
  std::snprintf(buf, sizeof(buf), ", \"wall_seconds\": %.6f",
                run.wall_seconds);
  out += buf;
  if (!run.profile.empty()) {
    out += ", \"hw\": " + run.profile.RootHw().ToJson();
    std::snprintf(buf, sizeof(buf), ", \"hw_wall_ns\": %llu",
                  static_cast<unsigned long long>(run.profile.RootWallNs()));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace

void EmitComparisonJson(const std::string& title, const QueryRun& original,
                        const QueryRun& buffered) {
  const sim::SimCounters& a = original.breakdown.counters;
  const sim::SimCounters& b = buffered.breakdown.counters;
  auto reduction = [](uint64_t orig, uint64_t buf) {
    return orig == 0 ? 0.0
                     : 100.0 * (1.0 - static_cast<double>(buf) /
                                          static_cast<double>(orig));
  };
  std::string out = "{\"bench\": \"" + g_bench_name + "\", \"comparison\": \"" +
                    title + "\"";
  out += ", \"original\": " + RunJson(original);
  out += ", \"buffered\": " + RunJson(buffered);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ", \"sim_l1i_reduction_pct\": %.2f, "
                "\"sim_mispredict_reduction_pct\": %.2f, "
                "\"sim_improvement_pct\": %.2f",
                reduction(a.l1i_misses, b.l1i_misses),
                reduction(a.mispredicts, b.mispredicts),
                original.breakdown.seconds() > 0
                    ? 100.0 * (1.0 - buffered.breakdown.seconds() /
                                         original.breakdown.seconds())
                    : 0.0);
  out += buf;
  bool hw = !original.profile.empty() && !buffered.profile.empty();
  out += ", \"hw_available\": ";
  out += hw && original.profile.hw_available() ? "true" : "false";
  if (hw && !original.profile.hw_available()) {
    out += ", \"hw_unavailable_reason\": \"" +
           original.profile.unavailable_reason() + "\"";
  }
  if (hw && original.profile.hw_available()) {
    perf::HwCounters ha = original.profile.RootHw();
    perf::HwCounters hb = buffered.profile.RootHw();
    std::snprintf(buf, sizeof(buf),
                  ", \"hw_l1i_reduction_pct\": %.2f, "
                  "\"hw_branch_miss_reduction_pct\": %.2f",
                  reduction(ha.l1i_misses, hb.l1i_misses),
                  reduction(ha.branch_misses, hb.branch_misses));
    out += buf;
  }
  out += "}";
  EmitJsonLine(out);
}

void PrintComparison(const std::string& title, const QueryRun& original,
                     const QueryRun& buffered) {
  Note("== %s ==\n", title.c_str());
  Note("original plan:\n%s", original.plan_text.c_str());
  Note("buffered plan:\n%s", buffered.plan_text.c_str());
  Note("%s", original.breakdown.ToString("original").c_str());
  Note("%s", buffered.breakdown.ToString("buffered").c_str());

  const sim::SimCounters& a = original.breakdown.counters;
  const sim::SimCounters& b = buffered.breakdown.counters;
  auto reduction = [](uint64_t orig, uint64_t buf) {
    return orig == 0 ? 0.0
                     : 100.0 * (1.0 - static_cast<double>(buf) /
                                          static_cast<double>(orig));
  };
  Note(
      "trace-cache misses  %12llu -> %12llu  (%.1f%% reduction)\n"
      "branch mispredicts  %12llu -> %12llu  (%.1f%% reduction)\n"
      "ITLB misses         %12llu -> %12llu  (%.1f%% reduction)\n"
      "L2 misses           %12llu -> %12llu\n"
      "instructions        %12llu -> %12llu\n"
      "elapsed (sim)       %12.4f -> %12.4f s  (%.1f%% improvement)\n\n",
      static_cast<unsigned long long>(a.l1i_misses),
      static_cast<unsigned long long>(b.l1i_misses),
      reduction(a.l1i_misses, b.l1i_misses),
      static_cast<unsigned long long>(a.mispredicts),
      static_cast<unsigned long long>(b.mispredicts),
      reduction(a.mispredicts, b.mispredicts),
      static_cast<unsigned long long>(a.itlb_misses),
      static_cast<unsigned long long>(b.itlb_misses),
      reduction(a.itlb_misses, b.itlb_misses),
      static_cast<unsigned long long>(a.l2_misses),
      static_cast<unsigned long long>(b.l2_misses),
      static_cast<unsigned long long>(a.instructions),
      static_cast<unsigned long long>(b.instructions),
      original.breakdown.seconds(), buffered.breakdown.seconds(),
      100.0 * (1.0 - buffered.breakdown.seconds() /
                         original.breakdown.seconds()));
  if (!original.profile.empty()) {
    Note("original hw profile:\n%s", original.profile.ToText().c_str());
  }
  if (!buffered.profile.empty()) {
    Note("buffered hw profile:\n%s", buffered.profile.ToText().c_str());
  }
  EmitComparisonJson(title, original, buffered);
}

}  // namespace bufferdb::bench

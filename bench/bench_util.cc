#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "plan/plan_printer.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

namespace bufferdb::bench {

const char kQuery1[] =
    "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) "
    "AS sum_charge, AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order "
    "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'";

const char kQuery2[] =
    "SELECT COUNT(*) AS count_order FROM lineitem "
    "WHERE l_shipdate <= DATE '1998-09-02'";

const char kQuery3[] =
    "SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount) "
    "FROM lineitem, orders "
    "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";

Catalog& SharedTpch(double scale_factor) {
  static std::map<long, std::unique_ptr<Catalog>>* catalogs =
      new std::map<long, std::unique_ptr<Catalog>>();
  long key = static_cast<long>(scale_factor * 1e6);
  auto it = catalogs->find(key);
  if (it == catalogs->end()) {
    auto catalog = std::make_unique<Catalog>();
    tpch::TpchConfig config;
    config.scale_factor = scale_factor;
    Status st = tpch::LoadTpch(config, catalog.get());
    if (!st.ok()) {
      std::fprintf(stderr, "TPC-H load failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    std::printf("# TPC-H scale factor %.3f (%zu lineitem rows)\n",
                scale_factor, catalog->GetTable("lineitem")->num_rows());
    it = catalogs->emplace(key, std::move(catalog)).first;
  }
  return *it->second;
}

namespace {
bool g_smoke_mode = false;
size_t g_batch_size = 1;
size_t g_buffer_size = BufferOperator::kDefaultBufferSize;
}  // namespace

bool SmokeMode() { return g_smoke_mode; }

size_t BatchSizeArg() { return g_batch_size; }

size_t BufferSizeArg() { return g_buffer_size; }

double ScaleFactorFromArgs(int argc, char** argv) {
  double sf = kDefaultScaleFactor;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      g_smoke_mode = true;
      continue;
    }
    if (arg.rfind("--batch=", 0) == 0) {
      long v = std::atol(arg.c_str() + 8);
      g_batch_size = v > 0 ? static_cast<size_t>(v) : 1;
      continue;
    }
    if (arg.rfind("--buffer=", 0) == 0) {
      long v = std::atol(arg.c_str() + 9);
      g_buffer_size = v > 0 ? static_cast<size_t>(v)
                            : BufferOperator::kDefaultBufferSize;
      continue;
    }
    double v = std::atof(arg.c_str());
    if (v > 0) sf = v;
  }
  if (g_smoke_mode && sf > kSmokeScaleFactor) sf = kSmokeScaleFactor;
  return sf;
}

void PrintJsonHeader(const char* bench_name, double scale_factor) {
  std::printf(
      "{\"bench\": \"%s\", \"scale_factor\": %.6g, \"smoke\": %s, "
      "\"batch_size\": %zu, \"buffer_size\": %zu}\n",
      bench_name, scale_factor, g_smoke_mode ? "true" : "false", g_batch_size,
      g_buffer_size);
}

QueryRun RunQuery(Catalog& catalog, const std::string& sql,
                  const RunOptions& options) {
  sql::Binder binder(&catalog);
  auto query = binder.BindSql(sql);
  if (!query.ok()) {
    std::fprintf(stderr, "bind failed: %s\n  %s\n",
                 query.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  PlannerOptions planner_options;
  planner_options.refine = options.refine;
  planner_options.join_strategy = options.join_strategy;
  planner_options.batch_size =
      options.batch_size > 0 ? options.batch_size : BatchSizeArg();
  planner_options.refinement = options.refinement;
  planner_options.refinement.buffer_size = options.buffer_size;
  PhysicalPlanner planner(&catalog, planner_options);

  QueryRun run;
  auto plan = planner.CreatePlan(*query, &run.report);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  run.plan_text = PrintPlan(**plan);

  sim::SimCpu cpu(options.sim_config);
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(plan->get(), &ctx);
  if (!rows.ok()) {
    std::fprintf(stderr, "exec failed: %s\n", rows.status().ToString().c_str());
    std::exit(1);
  }
  run.rows = std::move(*rows);
  run.breakdown = cpu.Breakdown();
  return run;
}

void PrintComparison(const std::string& title, const QueryRun& original,
                     const QueryRun& buffered) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("original plan:\n%s", original.plan_text.c_str());
  std::printf("buffered plan:\n%s", buffered.plan_text.c_str());
  std::printf("%s", original.breakdown.ToString("original").c_str());
  std::printf("%s", buffered.breakdown.ToString("buffered").c_str());

  const sim::SimCounters& a = original.breakdown.counters;
  const sim::SimCounters& b = buffered.breakdown.counters;
  auto reduction = [](uint64_t orig, uint64_t buf) {
    return orig == 0 ? 0.0
                     : 100.0 * (1.0 - static_cast<double>(buf) /
                                          static_cast<double>(orig));
  };
  std::printf(
      "trace-cache misses  %12llu -> %12llu  (%.1f%% reduction)\n"
      "branch mispredicts  %12llu -> %12llu  (%.1f%% reduction)\n"
      "ITLB misses         %12llu -> %12llu  (%.1f%% reduction)\n"
      "L2 misses           %12llu -> %12llu\n"
      "instructions        %12llu -> %12llu\n"
      "elapsed (sim)       %12.4f -> %12.4f s  (%.1f%% improvement)\n\n",
      static_cast<unsigned long long>(a.l1i_misses),
      static_cast<unsigned long long>(b.l1i_misses),
      reduction(a.l1i_misses, b.l1i_misses),
      static_cast<unsigned long long>(a.mispredicts),
      static_cast<unsigned long long>(b.mispredicts),
      reduction(a.mispredicts, b.mispredicts),
      static_cast<unsigned long long>(a.itlb_misses),
      static_cast<unsigned long long>(b.itlb_misses),
      reduction(a.itlb_misses, b.itlb_misses),
      static_cast<unsigned long long>(a.l2_misses),
      static_cast<unsigned long long>(b.l2_misses),
      static_cast<unsigned long long>(a.instructions),
      static_cast<unsigned long long>(b.instructions),
      original.breakdown.seconds(), buffered.breakdown.seconds(),
      100.0 * (1.0 - buffered.breakdown.seconds() /
                         original.breakdown.seconds()));
}

}  // namespace bufferdb::bench

// Ablation: branch predictor model. The bimodal predictor exposes the full
// context-flapping effect of interleaved operators (§4); gshare's global
// history partially separates the calling contexts, shrinking (but not
// eliminating) buffering's branch-prediction benefit.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT
using bufferdb::sim::PredictorKind;

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("ablation_branch", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Ablation: branch predictor model (Query 1)\n\n");
  std::fprintf(stderr, "%-10s %16s %16s %12s\n", "predictor", "mispred orig",
              "mispred buffered", "reduction");
  for (PredictorKind kind : {PredictorKind::kBimodal, PredictorKind::kGshare}) {
    RunOptions base;
    base.sim_config.predictor = kind;
    QueryRun original = RunQuery(catalog, kQuery1, base);
    RunOptions refined = base;
    refined.refine = true;
    QueryRun buffered = RunQuery(catalog, kQuery1, refined);
    uint64_t orig = original.breakdown.counters.mispredicts;
    uint64_t buf = buffered.breakdown.counters.mispredicts;
    std::fprintf(stderr, "%-10s %16llu %16llu %11.1f%%\n",
                kind == PredictorKind::kBimodal ? "bimodal" : "gshare",
                static_cast<unsigned long long>(orig),
                static_cast<unsigned long long>(buf),
                100.0 * (1.0 - static_cast<double>(buf) /
                                   static_cast<double>(orig)));
  }
  return 0;
}

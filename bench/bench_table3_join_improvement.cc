// Table 3: overall improvement of buffered over original plans for the
// three join schemes (paper: 15% / 15% / 12%).

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT
using bufferdb::JoinStrategy;

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("table3_join_improvement", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Table 3: overall improvement (Query 3)\n\n");
  std::fprintf(stderr, "%-12s %14s %14s %12s\n", "join", "original(s)", "buffered(s)",
              "improvement");
  for (JoinStrategy strategy :
       {JoinStrategy::kIndexNestLoop, JoinStrategy::kHashJoin,
        JoinStrategy::kMergeJoin}) {
    RunOptions base;
    base.join_strategy = strategy;
    QueryRun original = RunQuery(catalog, kQuery3, base);
    RunOptions refined = base;
    refined.refine = true;
    QueryRun buffered = RunQuery(catalog, kQuery3, refined);
    std::fprintf(stderr, "%-12s %14.4f %14.4f %11.1f%%\n",
                bufferdb::JoinStrategyName(strategy),
                original.breakdown.seconds(), buffered.breakdown.seconds(),
                100.0 * (1.0 - buffered.breakdown.seconds() /
                                   original.breakdown.seconds()));
  }
  return 0;
}

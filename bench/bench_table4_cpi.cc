// Table 4: cycles-per-instruction of original vs buffered plans for the
// three join schemes. Better instruction cache behaviour means lower CPI;
// instruction counts stay (nearly) identical — buffer operators are
// light-weight.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT
using bufferdb::JoinStrategy;

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("table4_cpi", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Table 4: CPI comparison (Query 3)\n\n");
  std::fprintf(stderr, "%-12s %10s %10s %16s %16s %10s\n", "join", "CPI orig",
              "CPI buf", "instr orig", "instr buf", "instr +%");
  for (JoinStrategy strategy :
       {JoinStrategy::kIndexNestLoop, JoinStrategy::kHashJoin,
        JoinStrategy::kMergeJoin}) {
    RunOptions base;
    base.join_strategy = strategy;
    QueryRun original = RunQuery(catalog, kQuery3, base);
    RunOptions refined = base;
    refined.refine = true;
    QueryRun buffered = RunQuery(catalog, kQuery3, refined);
    double instr_delta =
        100.0 * (static_cast<double>(buffered.breakdown.counters.instructions) /
                     static_cast<double>(
                         original.breakdown.counters.instructions) -
                 1.0);
    std::fprintf(stderr, "%-12s %10.3f %10.3f %16llu %16llu %9.2f%%\n",
                bufferdb::JoinStrategyName(strategy),
                original.breakdown.cpi(), buffered.breakdown.cpi(),
                static_cast<unsigned long long>(
                    original.breakdown.counters.instructions),
                static_cast<unsigned long long>(
                    buffered.breakdown.counters.instructions),
                instr_delta);
  }
  return 0;
}

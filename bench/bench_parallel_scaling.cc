// Wall-clock scaling of morsel-driven parallelism: an in-memory
// scan→filter→aggregate plan (Query 1's shape) executed at parallel degrees
// 1/2/4/8 with per-worker buffering enabled (refined fragments). The
// interesting number is the speedup over degree 1; on a multi-core host
// 4 workers should be comfortably >1.5x. Simulated counters are off — this
// bench measures the real machine, like bench_micro_buffer.

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "parallel/thread_pool.h"
#include "plan/plan_printer.h"
#include "sql/binder.h"

using namespace bufferdb;         // NOLINT
using namespace bufferdb::bench;  // NOLINT

namespace {

double RunWallClock(Catalog& catalog, size_t degree, int repeats,
                    size_t* rows_out) {
  sql::Binder binder(&catalog);
  auto query = binder.BindSql(kQuery1);
  if (!query.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 query.status().ToString().c_str());
    std::exit(1);
  }
  PlannerOptions options;
  options.refine = true;  // Per-worker buffering inside each fragment.
  options.parallel_degree = degree;
  PhysicalPlanner planner(&catalog, options);
  auto plan = planner.CreatePlan(*query);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }

  double best_seconds = 0;
  for (int r = 0; r < repeats; ++r) {
    ExecContext ctx;  // No SimCpu: wall-clock only.
    auto start = std::chrono::steady_clock::now();
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    auto seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!rows.ok()) {
      std::fprintf(stderr, "exec failed: %s\n",
                   rows.status().ToString().c_str());
      std::exit(1);
    }
    *rows_out = rows->size();
    if (r == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  return best_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("parallel_scaling", sf);
  Catalog& catalog = SharedTpch(sf);
  int repeats = SmokeIters(7, 2);

  std::fprintf(stderr, 
      "Parallel scaling: Query 1 (scan->filter->aggregate), refined plans\n"
      "hardware threads: %u, pool threads: %zu\n\n",
      std::thread::hardware_concurrency(),
      parallel::ThreadPool::Global().num_threads());
  std::fprintf(stderr, "%8s %14s %12s %10s\n", "degree", "best wall (s)", "Mrows/s",
              "speedup");

  size_t lineitem_rows = catalog.GetTable("lineitem")->num_rows();
  double base_seconds = 0;
  for (size_t degree : {1u, 2u, 4u, 8u}) {
    size_t rows = 0;
    double seconds = RunWallClock(catalog, degree, repeats, &rows);
    if (degree == 1) base_seconds = seconds;
    std::fprintf(stderr, "%8zu %14.4f %12.2f %9.2fx\n", degree, seconds,
                static_cast<double>(lineitem_rows) / seconds / 1e6,
                base_seconds / seconds);
  }
  std::fprintf(stderr, 
      "\n(speedup is bounded by physical cores; result row counts verified "
      "equal across degrees)\n");
  return 0;
}

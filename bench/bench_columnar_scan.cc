// Columnar scan vs row-decode scan (DESIGN.md §12), measured in wall-clock
// time with the CPU simulator's i-cache counters alongside:
//
//   A. zero-decode:  ColumnScan aliases segment storage into the vectorized
//      filter's input vectors vs SeqScan decoding the predicate columns out
//      of packed rows every batch. Identical compiled predicate, identical
//      output rows, batch width 1024.
//   B. dictionary codes: a LIKE-prefix string predicate compiled to integer
//      code comparisons on ColumnScan vs SeqScan's per-tuple interpreter
//      (string predicates never compile for row scans).
//
// Both speedups are acceptance-gated IN the bench: after emitting its JSON
// result line, the bench re-parses that line and exits nonzero unless
// speedup_decode >= 1.5 and speedup_string >= 2.0. Output rows of each pair
// are compared pointer-for-pointer before any timing is reported.
//
// Output is JSON lines only (the bench_util run header plus one result
// object), so CI can archive stdout directly as an artifact.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/column_scan.h"
#include "exec/seq_scan.h"
#include "expr/expression.h"
#include "sim/sim_cpu.h"
#include "storage/column_table.h"

namespace bufferdb {
namespace {

constexpr size_t kBenchBatch = 1024;

ExprPtr Col(const Schema& schema, const std::string& name) {
  auto r = MakeColumnRef(schema, name);
  if (!r.ok()) {
    std::fprintf(stderr, "column ref failed: %s\n", name.c_str());
    std::exit(1);
  }
  return std::move(*r);
}

ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto res = MakeBinary(op, std::move(l), std::move(r));
  if (!res.ok()) {
    std::fprintf(stderr, "expr build failed\n");
    std::exit(1);
  }
  return std::move(*res);
}

// Wide table (12 numeric columns + 2 string columns) with a columnar image:
// enough width that the row-decode path pays for several column extractions
// per batch while the columnar path aliases them all.
std::unique_ptr<Table> BuildWideTable(size_t rows, uint64_t seed) {
  Schema schema({{"k", DataType::kInt64},
                 {"a", DataType::kDouble},
                 {"b", DataType::kDouble},
                 {"c", DataType::kDouble},
                 {"d", DataType::kDouble},
                 {"e", DataType::kInt64},
                 {"f", DataType::kInt64},
                 {"g", DataType::kInt64},
                 {"h", DataType::kInt64},
                 {"p", DataType::kDouble},
                 {"q", DataType::kDouble},
                 {"t", DataType::kInt64},
                 {"s", DataType::kString},
                 {"u", DataType::kString}});
  // Vocabulary with shared prefixes so the LIKE-prefix range spans several
  // dictionary codes (~30% selectivity for 'sh%').
  const char* kVocab[] = {"shipped", "shelved", "shipping", "pending",
                          "packed",  "held",    "returned", "refunded",
                          "lost",    "listed"};
  auto table = std::make_unique<Table>("wide", schema);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> v;
    v.push_back(Value::Int64(rng.Uniform(0, 1 << 20)));
    for (int j = 0; j < 4; ++j) v.push_back(Value::Double(rng.NextDouble()));
    for (int j = 0; j < 4; ++j) v.push_back(Value::Int64(rng.Uniform(0, 999)));
    v.push_back(Value::Double(rng.NextDouble() * 100.0));
    v.push_back(Value::Double(rng.NextDouble() * 10.0));
    v.push_back(Value::Int64(rng.Uniform(-50, 50)));
    v.push_back(Value::String(kVocab[rng.Uniform(0, 9)]));
    v.push_back(Value::String(kVocab[rng.Uniform(0, 9)]));
    table->AppendRow(v);
  }
  table->AttachColumnar(ColumnarTable::Build(*table));
  return table;
}

// a + b + c + d < 1.6: ~40% selectivity, four decoded (or aliased) double
// columns feeding one compiled kernel program.
ExprPtr NumericPredicate(const Schema& s) {
  return Bin(BinaryOp::kLt,
             Bin(BinaryOp::kAdd, Bin(BinaryOp::kAdd, Col(s, "a"), Col(s, "b")),
                 Bin(BinaryOp::kAdd, Col(s, "c"), Col(s, "d"))),
             MakeLiteral(Value::Double(1.6)));
}

ExprPtr StringPredicate(const Schema& s) {
  return Bin(BinaryOp::kLike, Col(s, "s"), MakeLiteral(Value::String("sh%")));
}

OperatorPtr MakeScan(Table* table, const ExprPtr& pred, bool columnar) {
  ExprPtr clone = pred != nullptr ? pred->Clone() : nullptr;
  if (columnar) {
    return std::make_unique<ColumnScanOperator>(table, std::move(clone));
  }
  return std::make_unique<SeqScanOperator>(table, std::move(clone));
}

// Drains the scan through NextBatch at width 1024 (no simulator attached)
// and returns {wall seconds, emitted row pointers}. The row pointers land in
// table storage for both scan types, so the outputs of a pair are comparable
// pointer-for-pointer.
std::pair<double, std::vector<const uint8_t*>> TimedRun(Table* table,
                                                        const ExprPtr& pred,
                                                        bool columnar) {
  OperatorPtr plan = MakeScan(table, pred, columnar);
  ExecContext ctx;
  auto start = std::chrono::steady_clock::now();
  auto rows = ExecutePlanBatched(plan.get(), &ctx, kBenchBatch);
  auto stop = std::chrono::steady_clock::now();
  if (!rows.ok()) {
    std::fprintf(stderr, "exec failed: %s\n", rows.status().ToString().c_str());
    std::exit(1);
  }
  return {std::chrono::duration<double>(stop - start).count(),
          std::move(*rows)};
}

sim::SimCounters SimRun(Table* table, const ExprPtr& pred, bool columnar) {
  OperatorPtr plan = MakeScan(table, pred, columnar);
  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanBatched(plan.get(), &ctx, kBenchBatch);
  if (!rows.ok()) {
    std::fprintf(stderr, "sim exec failed: %s\n",
                 rows.status().ToString().c_str());
    std::exit(1);
  }
  return cpu.counters();
}

struct Comparison {
  double row_best = 0;   // SeqScan (row-decode or interpreter).
  double col_best = 0;   // ColumnScan.
  size_t rows_out = 0;
  double speedup() const { return row_best / col_best; }
};

Comparison Compare(Table* table, const ExprPtr& pred, int iters) {
  auto row_run = TimedRun(table, pred, /*columnar=*/false);
  auto col_run = TimedRun(table, pred, /*columnar=*/true);
  if (row_run.second != col_run.second) {
    std::fprintf(stderr,
                 "FAIL: columnar output differs from row output "
                 "(%zu vs %zu rows)\n",
                 col_run.second.size(), row_run.second.size());
    std::exit(1);
  }
  Comparison c;
  c.row_best = row_run.first;
  c.col_best = col_run.first;
  c.rows_out = row_run.second.size();
  for (int i = 1; i < iters; ++i) {
    double r = TimedRun(table, pred, false).first;
    double z = TimedRun(table, pred, true).first;
    if (r < c.row_best) c.row_best = r;
    if (z < c.col_best) c.col_best = z;
  }
  return c;
}

// Pulls `"key": <number>` out of a JSON line the bench just emitted; the
// acceptance thresholds are checked against the published artifact, not
// against in-memory state that could diverge from it.
double JsonField(const std::string& json, const char* key) {
  std::string needle = std::string("\"") + key + "\": ";
  size_t at = json.find(needle);
  if (at == std::string::npos) {
    std::fprintf(stderr, "FAIL: field %s missing from emitted JSON\n", key);
    std::exit(1);
  }
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

}  // namespace
}  // namespace bufferdb

int main(int argc, char** argv) {
  using namespace bufferdb;  // NOLINT
  double sf = bench::ScaleFactorFromArgs(argc, argv);
  bench::PrintJsonHeader("columnar_scan", sf);

  // The decode-elimination advantage is per-row, so the smoke run's smaller
  // table measures the same effect; iterations keep timing noise below the
  // acceptance margins.
  const size_t rows = bench::SmokeMode() ? 200000 : 2000000;
  const int iters = bench::SmokeIters(5, 3);
  auto table = BuildWideTable(rows, /*seed=*/42);
  const Schema& schema = table->schema();

  ExprPtr numeric = NumericPredicate(schema);
  ExprPtr stringp = StringPredicate(schema);

  bench::Note("columnar_scan: %zu rows x %zu cols, batch %zu, %d iters\n",
              rows, schema.num_columns(), kBenchBatch, iters);
  Comparison decode = Compare(table.get(), numeric, iters);
  Comparison strings = Compare(table.get(), stringp, iters);

  // Simulated i-cache counters on a smaller table (the simulator is orders
  // of magnitude slower than real execution).
  auto sim_table = BuildWideTable(bench::SmokeMode() ? 20000 : 50000,
                                  /*seed=*/42);
  sim::SimCounters sim_row = SimRun(sim_table.get(), numeric, false);
  sim::SimCounters sim_col = SimRun(sim_table.get(), numeric, true);

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"columnar_scan\", \"rows\": %zu, \"batch_size\": %zu, "
      "\"iters\": %d, \"outputs_identical\": true, "
      "\"decode_rows_out\": %zu, "
      "\"row_decode_seconds\": %.6f, \"zero_decode_seconds\": %.6f, "
      "\"speedup_decode\": %.3f, "
      "\"string_rows_out\": %zu, "
      "\"interp_seconds\": %.6f, \"dict_seconds\": %.6f, "
      "\"speedup_string\": %.3f, "
      "\"sim_row_instructions\": %llu, \"sim_col_instructions\": %llu, "
      "\"sim_row_l1i_misses\": %llu, \"sim_col_l1i_misses\": %llu}",
      rows, kBenchBatch, iters, decode.rows_out, decode.row_best,
      decode.col_best, decode.speedup(), strings.rows_out, strings.row_best,
      strings.col_best, strings.speedup(),
      static_cast<unsigned long long>(sim_row.instructions),
      static_cast<unsigned long long>(sim_col.instructions),
      static_cast<unsigned long long>(sim_row.l1i_misses),
      static_cast<unsigned long long>(sim_col.l1i_misses));
  std::string line(json);
  bench::EmitJsonLine(line);

  // Acceptance gates, read back from the emitted artifact line.
  double speedup_decode = JsonField(line, "speedup_decode");
  double speedup_string = JsonField(line, "speedup_string");
  bool ok = true;
  if (speedup_decode < 1.5) {
    std::fprintf(stderr,
                 "FAIL: speedup_decode %.3f < 1.5 (zero-decode vs row-decode "
                 "at batch %zu)\n",
                 speedup_decode, kBenchBatch);
    ok = false;
  }
  if (speedup_string < 2.0) {
    std::fprintf(stderr,
                 "FAIL: speedup_string %.3f < 2.0 (dictionary codes vs "
                 "per-tuple interpreter)\n",
                 speedup_string);
    ok = false;
  }
  return ok ? 0 : 1;
}

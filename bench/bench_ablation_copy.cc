// Ablation: pointer buffers vs copying buffers. The paper stores tuple
// *pointers* because "the overhead of copying would reduce the benefit of
// buffering instructions" (§5). The copying variant pays extra instructions
// and data-cache traffic per tuple.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "sql/binder.h"

using namespace bufferdb;        // NOLINT
using namespace bufferdb::bench;  // NOLINT

namespace {

sim::CycleBreakdown RunQuery1Manually(Catalog& catalog, bool buffered,
                                      bool copy_tuples) {
  Table* lineitem = catalog.GetTable("lineitem");
  const Schema& s = lineitem->schema();
  auto col = [&s](const char* name) {
    auto r = MakeColumnRef(s, name);
    return std::move(*r);
  };
  auto lit_d = [](double v) { return MakeLiteral(Value::Double(v)); };

  auto charge = MakeBinary(
      BinaryOp::kMul,
      std::move(*MakeBinary(BinaryOp::kMul, col("l_extendedprice"),
                            std::move(*MakeBinary(BinaryOp::kSub, lit_d(1.0),
                                                  col("l_discount"))))),
      std::move(*MakeBinary(BinaryOp::kAdd, lit_d(1.0), col("l_tax"))));

  OperatorPtr plan = std::make_unique<SeqScanOperator>(
      lineitem, std::move(*MakeBinary(BinaryOp::kGe, col("l_quantity"),
                                      lit_d(0.0))));
  if (buffered) {
    plan = std::make_unique<BufferOperator>(std::move(plan), 1000,
                                            copy_tuples);
  }
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, std::move(*charge), "sum_charge"});
  specs.push_back(AggSpec{AggFunc::kAvg, col("l_quantity"), "avg_qty"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "count"});
  plan = std::make_unique<AggregationOperator>(std::move(plan),
                                               std::move(specs));
  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(plan.get(), &ctx);
  if (!rows.ok()) std::exit(1);
  return cpu.Breakdown();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("ablation_copy", sf);
  Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Ablation: pointer vs copying buffer (Query 1 template)\n\n");
  auto original = RunQuery1Manually(catalog, false, false);
  auto pointer = RunQuery1Manually(catalog, true, false);
  auto copying = RunQuery1Manually(catalog, true, true);
  std::fprintf(stderr, "%-18s %12s %14s %14s\n", "variant", "sim sec", "L1D misses",
              "L2 misses");
  auto row = [](const char* name, const sim::CycleBreakdown& b) {
    std::fprintf(stderr, "%-18s %12.4f %14llu %14llu\n", name, b.seconds(),
                static_cast<unsigned long long>(b.counters.l1d_misses),
                static_cast<unsigned long long>(b.counters.l2_misses));
  };
  row("unbuffered", original);
  row("buffer (pointers)", pointer);
  row("buffer (copies)", copying);
  std::fprintf(stderr, "\ncopy overhead vs pointers: %+.2f%% elapsed\n",
              100.0 * (copying.seconds() / pointer.seconds() - 1.0));
  return 0;
}

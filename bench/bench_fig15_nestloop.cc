// Figure 15: Query 3 with nested-loop joins. The inner foreign-key
// IndexScan is never buffered ("the optimizer knows that at most one row
// matches each outer tuple"); the outer scan (and the join group) are.
// Paper: 53% fewer trace-cache misses, 26% fewer mispredictions.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig15_nestloop", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  RunOptions base;
  base.join_strategy = bufferdb::JoinStrategy::kIndexNestLoop;
  QueryRun original = RunQuery(catalog, kQuery3, base);
  RunOptions refined = base;
  refined.refine = true;
  QueryRun buffered = RunQuery(catalog, kQuery3, refined);

  std::fprintf(stderr, "Figure 15: Query 3, nested-loop join plans\n\n");
  std::fprintf(stderr, "%s\n", buffered.report.ToString().c_str());
  PrintComparison("NestLoop join", original, buffered);
  return 0;
}

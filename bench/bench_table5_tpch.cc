// Table 5: improvement from plan refinement on TPC-H queries. The paper
// reports noticeable gains for pipeline-heavy queries without subqueries
// (7%, 4%, 15%, 10% for four of them). Our SQL subset covers Q1, Q6 and the
// paper's Query 3, plus simplified Q12/Q14 variants (no CASE/LIKE — the
// simplifications keep the operator pipelines, which is what buffering
// exercises; see EXPERIMENTS.md).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("table5_tpch", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);

  struct NamedQuery {
    const char* name;
    std::string sql;
  };
  std::vector<NamedQuery> queries = {
      {"Q1 (full, grouped)",
       "SELECT l_returnflag, l_linestatus, "
       "SUM(l_quantity) AS sum_qty, "
       "SUM(l_extendedprice) AS sum_base_price, "
       "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
       "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
       "AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, "
       "AVG(l_discount) AS avg_disc, COUNT(*) AS count_order "
       "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
       "GROUP BY l_returnflag, l_linestatus "
       "ORDER BY l_returnflag, l_linestatus"},
      {"Q3* (paper's Query 3)", kQuery3},
      {"Q3 (full, 3-table)",
       "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM customer, orders, lineitem "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND c_mktsegment = 'BUILDING' "
       "AND o_orderdate < DATE '1995-03-15' "
       "AND l_shipdate > DATE '1995-03-15' "
       "GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 10"},
      {"Q10~ (returned items)",
       "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) "
       "AS revenue "
       "FROM customer, orders, lineitem "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND o_orderdate >= DATE '1993-10-01' "
       "AND o_orderdate < DATE '1994-01-01' "
       "AND l_returnflag = 'R' "
       "GROUP BY c_custkey, c_name ORDER BY revenue DESC LIMIT 20"},
      {"Q6 (forecast revenue)",
       "SELECT SUM(l_extendedprice * l_discount) AS revenue "
       "FROM lineitem "
       "WHERE l_shipdate >= DATE '1994-01-01' "
       "AND l_shipdate < DATE '1995-01-01' "
       "AND l_discount >= 0.05 AND l_discount <= 0.07 "
       "AND l_quantity < 24"},
      {"Q12~ (shipmode counts)",
       "SELECT l_shipmode, COUNT(*) AS line_count "
       "FROM orders, lineitem "
       "WHERE o_orderkey = l_orderkey "
       "AND (l_shipmode = 'MAIL' OR l_shipmode = 'SHIP') "
       "AND l_receiptdate >= DATE '1994-01-01' "
       "AND l_receiptdate < DATE '1995-01-01' "
       "GROUP BY l_shipmode ORDER BY l_shipmode"},
      {"Q14~ (promo-ish revenue)",
       "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue, "
       "COUNT(*) AS lines "
       "FROM lineitem, part "
       "WHERE l_partkey = p_partkey "
       "AND l_shipdate >= DATE '1995-09-01' "
       "AND l_shipdate < DATE '1995-10-01'"},
  };

  std::fprintf(stderr, "Table 5: TPC-H queries, original vs refined plans\n\n");
  std::fprintf(stderr, "%-24s %14s %14s %12s %8s\n", "query", "original(s)",
              "buffered(s)", "improvement", "buffers");
  for (const NamedQuery& q : queries) {
    QueryRun original = RunQuery(catalog, q.sql);
    RunOptions refined;
    refined.refine = true;
    QueryRun buffered = RunQuery(catalog, q.sql, refined);
    std::fprintf(stderr, "%-24s %14.4f %14.4f %11.1f%% %8d\n", q.name,
                original.breakdown.seconds(), buffered.breakdown.seconds(),
                100.0 * (1.0 - buffered.breakdown.seconds() /
                                   original.breakdown.seconds()),
                buffered.report.buffers_added);
  }
  return 0;
}

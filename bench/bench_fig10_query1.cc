// Figure 10: Query 1 original vs buffered — the headline result. The paper
// reports ~80% fewer trace-cache misses, ~21% fewer branch mispredictions,
// ~86% fewer ITLB misses and a ~12% faster query.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig10_query1", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  QueryRun original = RunQuery(catalog, kQuery1);
  RunOptions options;
  options.refine = true;
  QueryRun buffered = RunQuery(catalog, kQuery1, options);

  std::fprintf(stderr, "Figure 10: Query 1 original vs buffered\n\n");
  std::fprintf(stderr, "%s\n", buffered.report.ToString().c_str());
  PrintComparison("Query 1", original, buffered);
  return 0;
}

// Figure 11: cardinality effects — elapsed time of original vs buffered
// Query-1-template plans as the child operator's output cardinality varies
// (controlled through predicate selectivity), and the resulting calibration
// threshold (§6, §7.3).

#include <cstdio>

#include "bench_util.h"
#include "core/threshold_calibration.h"

int main(int argc, char** argv) {
  bufferdb::bench::PrintJsonHeader(
      "fig11_cardinality", bufferdb::bench::ScaleFactorFromArgs(argc, argv));
  size_t rows = 20000;
  if (argc > 1) rows = static_cast<size_t>(atof(argv[1]) * 1000000);
  if (rows < 8192) rows = 20000;
  std::fprintf(stderr, "Figure 11: cardinality effects (table of %zu rows)\n\n", rows);
  auto result = bufferdb::CalibrateCardinalityThreshold(
      bufferdb::sim::SimConfig(), /*buffer_size=*/1000, rows);
  std::fprintf(stderr, "%s\n", result.ToString().c_str());
  std::fprintf(stderr, "-> cardinality threshold for the plan refiner: %.0f\n",
              result.threshold);
  return 0;
}

// Ablation for §6.1: refine plans with naive *static* footprint estimates
// instead of dynamically measured ones. The static call graph charges every
// operator cold error/recovery code it never executes, so even Query 2's
// cache-resident pipeline "exceeds" L1-I and gets a useless buffer.

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("ablation_static_footprint", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Ablation: dynamic vs static footprint estimates (§6.1)\n\n");
  std::fprintf(stderr, "%-10s %14s %4s %16s %4s %18s\n", "query", "dynamic(s)",
              "bufs", "static-est(s)", "bufs", "delta static/dyn");
  struct Item {
    const char* name;
    const char* sql;
  } items[] = {{"Query 1", kQuery1}, {"Query 2", kQuery2},
               {"Query 3", kQuery3}};
  for (const Item& item : items) {
    RunOptions dynamic_opts;
    dynamic_opts.refine = true;
    QueryRun dynamic_run = RunQuery(catalog, item.sql, dynamic_opts);

    RunOptions static_opts = dynamic_opts;
    static_opts.refinement.assume_static_footprints = true;
    QueryRun static_run = RunQuery(catalog, item.sql, static_opts);

    std::fprintf(stderr, "%-10s %14.4f %4d %16.4f %4d %17.2f%%\n", item.name,
                dynamic_run.breakdown.seconds(),
                dynamic_run.report.buffers_added,
                static_run.breakdown.seconds(),
                static_run.report.buffers_added,
                100.0 * (static_run.breakdown.seconds() /
                             dynamic_run.breakdown.seconds() -
                         1.0));
  }
  std::fprintf(stderr, 
      "\nStatic estimates buffer pipelines that already fit in L1-I "
      "(Query 2),\npaying overhead for nothing — the reason §6.1 profiles "
      "dynamic call graphs.\n");
  return 0;
}

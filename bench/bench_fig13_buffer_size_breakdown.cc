// Figure 13: execution time breakdown for varied buffer sizes — the
// trace-cache miss penalty drops roughly as 1/buffersize while buffering
// adds a little L2 data traffic (mostly hidden by the sequential hardware
// prefetcher, §7.4).

#include <cstdio>

#include "bench_util.h"

using namespace bufferdb::bench;  // NOLINT

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("fig13_buffer_size_breakdown", sf);
  bufferdb::Catalog& catalog = SharedTpch(sf);
  std::fprintf(stderr, "Figure 13: breakdown vs buffer size (Query 1)\n\n");
  std::fprintf(stderr, "%-10s %12s %12s %12s %12s %12s\n", "size", "trace-miss",
              "L2-miss", "br-mispred", "other", "total Mcyc");
  QueryRun original = RunQuery(catalog, kQuery1);
  const auto& ob = original.breakdown;
  std::fprintf(stderr, "%-10s %12.2f %12.2f %12.2f %12.2f %12.2f\n", "orig",
              ob.l1i_penalty / 1e6, ob.l2_penalty / 1e6,
              ob.branch_penalty / 1e6, ob.other_cycles() / 1e6,
              ob.total_cycles() / 1e6);
  for (size_t size : {8u, 32u, 128u, 512u, 1000u, 2048u, 8192u, 32768u}) {
    RunOptions options;
    options.refine = true;
    options.buffer_size = size;
    QueryRun run = RunQuery(catalog, kQuery1, options);
    const auto& b = run.breakdown;
    std::fprintf(stderr, "%-10zu %12.2f %12.2f %12.2f %12.2f %12.2f\n", size,
                b.l1i_penalty / 1e6, b.l2_penalty / 1e6,
                b.branch_penalty / 1e6, b.other_cycles() / 1e6,
                b.total_cycles() / 1e6);
  }

  // §7.4's caveat: plans with large data structures (the hash table) see
  // large buffers compete for cache memory.
  std::fprintf(stderr, "\nhash-join plan (Query 3): large buffers vs the hash table\n");
  std::fprintf(stderr, "%-10s %14s %14s %12s\n", "size", "L2 misses", "L1D misses",
              "total Mcyc");
  for (size_t size : {1000u, 8192u, 65536u, 262144u}) {
    RunOptions options;
    options.refine = true;
    options.buffer_size = size;
    options.join_strategy = bufferdb::JoinStrategy::kHashJoin;
    QueryRun run = RunQuery(catalog, kQuery3, options);
    std::fprintf(stderr, "%-10zu %14llu %14llu %12.2f\n", size,
                static_cast<unsigned long long>(
                    run.breakdown.counters.l2_misses),
                static_cast<unsigned long long>(
                    run.breakdown.counters.l1d_misses),
                run.breakdown.total_cycles() / 1e6);
  }
  return 0;
}

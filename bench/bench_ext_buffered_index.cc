// Extension bench: batched index probes (the authors' companion paper,
// "Buffering Accesses to Memory-Resident Index Structures"). Compares the
// paper's Query 3 under:
//   1. plain index nested-loop join (the Fig. 15 baseline),
//   2. the §6.2-refined plan (buffer above the outer scan),
//   3. BufferedIndexJoin: refined + key-sorted batched probes.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/date.h"
#include "core/buffer_operator.h"
#include "core/buffered_index_join.h"
#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "sim/sim_cpu.h"

using namespace bufferdb;         // NOLINT
using namespace bufferdb::bench;  // NOLINT

namespace {

std::vector<AggSpec> Query3Aggs(const Schema& joined) {
  auto col = [&joined](const std::string& name) {
    auto r = MakeColumnRef(joined, name);
    return std::move(*r);
  };
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, col("o_totalprice"), "sum"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "count"});
  specs.push_back(AggSpec{AggFunc::kAvg, col("l_discount"), "avg"});
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("ext_buffered_index", sf);
  Catalog& catalog = SharedTpch(sf);

  // Baselines via the SQL path.
  RunOptions nlj;
  nlj.join_strategy = JoinStrategy::kIndexNestLoop;
  QueryRun plain = RunQuery(catalog, kQuery3, nlj);
  RunOptions refined = nlj;
  refined.refine = true;
  QueryRun buffered = RunQuery(catalog, kQuery3, refined);

  // Batched-probe plan, hand-built.
  Table* lineitem = catalog.GetTable("lineitem");
  const IndexInfo* orders_pk = catalog.GetIndex("orders_pk");
  const Schema& ls = lineitem->schema();

  std::fprintf(stderr, "Extension: batched index probes (Query 3, nested loop)\n\n");
  std::fprintf(stderr, "%-28s %12s %14s %14s\n", "plan", "sim sec", "L1I misses",
              "L1D misses");
  auto print = [](const char* name, const sim::CycleBreakdown& b) {
    std::fprintf(stderr, "%-28s %12.4f %14llu %14llu\n", name, b.seconds(),
                static_cast<unsigned long long>(b.counters.l1i_misses),
                static_cast<unsigned long long>(b.counters.l1d_misses));
  };
  print("index NLJ (original)", plain.breakdown);
  print("index NLJ (refined)", buffered.breakdown);

  for (size_t batch : {100u, 1000u, 10000u}) {
    auto pred = MakeBinary(BinaryOp::kLe, std::move(*MakeColumnRef(ls, "l_shipdate")),
                           MakeLiteral(Value::Date(MakeDate(1998, 9, 2))));
    OperatorPtr outer =
        std::make_unique<SeqScanOperator>(lineitem, std::move(*pred));
    outer = std::make_unique<BufferOperator>(std::move(outer), 1000);
    auto join = std::make_unique<BufferedIndexJoinOperator>(
        std::move(outer), orders_pk, std::move(*MakeColumnRef(ls, "l_orderkey")),
        batch);
    std::vector<AggSpec> specs = Query3Aggs(join->output_schema());
    AggregationOperator agg(std::move(join), std::move(specs));

    sim::SimCpu cpu;
    ExecContext ctx;
    ctx.cpu = &cpu;
    auto rows = ExecutePlanRows(&agg, &ctx);
    if (!rows.ok()) {
      std::fprintf(stderr, "exec: %s\n", rows.status().ToString().c_str());
      return 1;
    }
    // Sanity: same aggregate as the SQL plans.
    if ((*rows)[0][1].int64_value() !=
        buffered.rows[0][1].int64_value()) {
      std::fprintf(stderr, "count mismatch!\n");
      return 1;
    }
    char name[64];
    std::snprintf(name, sizeof(name), "batched probes (batch=%zu)", batch);
    print(name, cpu.Breakdown());
  }
  std::fprintf(stderr, "\nBatched probes run the index code in long runs AND visit "
              "B+-tree nodes in key order,\ncutting both instruction and "
              "data misses relative to tuple-at-a-time probing.\n");
  return 0;
}

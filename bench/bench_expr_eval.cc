// Interpreted vs vectorized expression evaluation, measured in real
// wall-clock time (no CPU simulator) on the 3-op predicate the issue's
// acceptance criterion names:
//
//   k * 7 + v > threshold        (mul, add, compare over int64 columns)
//
// Three engines run the identical predicate over the identical rows:
//
//   interpreted      Expression::Evaluate per row (virtual dispatch per
//                    node, Value boxing per intermediate).
//   vectorized       CompiledExpr::RunFilter with the scalar kernels
//                    (set_use_avx2(false)); timing includes the
//                    RowBatchDecoder pass, so the decode overhead the
//                    operators actually pay is charged to the kernel side.
//   vectorized_avx2  Same program with the AVX2 specializations, present
//                    only when the binary was built with BUFFERDB_AVX2
//                    (otherwise this mode reports the scalar numbers and
//                    "avx2": false).
//
// All engines' selection vectors are compared bit-for-bit before any timing
// is reported. Output is JSON lines only (bench_util run header plus one
// object per batch width), so CI archives stdout directly.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/arena.h"
#include "common/rng.h"
#include "exec/row_batch_decoder.h"
#include "expr/evaluator.h"
#include "expr/expression.h"
#include "expr/vector.h"
#include "expr/vector_eval.h"
#include "storage/tuple.h"

namespace bufferdb {
namespace {

ExprPtr MustBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto res = MakeBinary(op, std::move(l), std::move(r));
  if (!res.ok()) {
    std::fprintf(stderr, "predicate build failed: %s\n",
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*res);
}

// k * 7 + v > threshold
ExprPtr MakePredicate(int64_t threshold) {
  ExprPtr mul = MustBinary(BinaryOp::kMul,
                           MakeColumnRefUnchecked(0, DataType::kInt64, "k"),
                           MakeLiteral(Value::Int64(7)));
  ExprPtr add = MustBinary(BinaryOp::kAdd, std::move(mul),
                           MakeColumnRefUnchecked(1, DataType::kInt64, "v"));
  return MustBinary(BinaryOp::kGt, std::move(add),
                    MakeLiteral(Value::Int64(threshold)));
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

// One full pass, interpreter engine: returns selected-row count (used both
// as the verification value and to keep the loop from being optimized out).
size_t InterpretedPass(const Expression& pred, const Schema& schema,
                       const std::vector<const uint8_t*>& rows,
                       std::vector<uint32_t>* selected) {
  selected->clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (EvaluatePredicate(pred, TupleView(rows[i], &schema))) {
      selected->push_back(static_cast<uint32_t>(i));
    }
  }
  return selected->size();
}

// One full pass, vectorized engine at the given batch width. Decode is
// inside the timed region on purpose.
size_t VectorizedPass(CompiledExpr* program, const Schema& schema,
                      const std::vector<const uint8_t*>& rows, size_t width,
                      VectorBatch* batch, SelectionVector* sel,
                      std::vector<uint32_t>* selected) {
  selected->clear();
  for (size_t base = 0; base < rows.size(); base += width) {
    const size_t n = std::min(width, rows.size() - base);
    RowBatchDecoder::Decode(rows.data() + base, n, schema,
                            program->input_columns(), batch);
    program->RunFilter(*batch, sel);
    for (size_t k = 0; k < sel->count; ++k) {
      selected->push_back(static_cast<uint32_t>(base + sel->idx[k]));
    }
  }
  return selected->size();
}

}  // namespace
}  // namespace bufferdb

int main(int argc, char** argv) {
  using namespace bufferdb;  // NOLINT
  double sf = bench::ScaleFactorFromArgs(argc, argv);
  bench::PrintJsonHeader("expr_eval", sf);

  const size_t num_rows = bench::SmokeMode() ? 65536 : 1048576;
  const int iters = bench::SmokeIters(7, 2);
  const int64_t threshold = 1500;  // ~50% selectivity for k,v in [0, 1000).

  Schema schema({{"k", DataType::kInt64},
                 {"v", DataType::kInt64},
                 {"a", DataType::kDouble}});
  Arena arena;
  Rng rng(42);
  std::vector<const uint8_t*> rows;
  rows.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    TupleBuilder b(&schema);
    b.SetInt64(0, rng.Uniform(0, 999));
    b.SetInt64(1, rng.Uniform(0, 999));
    b.SetDouble(2, rng.NextDouble());
    rows.push_back(b.Finish(&arena));
  }

  ExprPtr pred = MakePredicate(threshold);
  auto scalar = CompiledExpr::Compile(*pred, schema);
  auto avx = CompiledExpr::Compile(*pred, schema);
  if (scalar == nullptr || avx == nullptr) {
    std::fprintf(stderr, "FAIL: predicate did not compile\n");
    return 1;
  }
  scalar->set_use_avx2(false);
  const bool have_avx2 = CompiledExpr::AvxEnabled();

  std::vector<uint32_t> sel_interp, sel_scalar, sel_avx;
  VectorBatch batch;
  SelectionVector sel;

  for (size_t width : {size_t{256}, size_t{1024}}) {
    // Verification: all engines agree on the selection before timing.
    InterpretedPass(*pred, schema, rows, &sel_interp);
    VectorizedPass(scalar.get(), schema, rows, width, &batch, &sel,
                   &sel_scalar);
    VectorizedPass(avx.get(), schema, rows, width, &batch, &sel, &sel_avx);
    if (sel_interp != sel_scalar || sel_interp != sel_avx) {
      std::fprintf(stderr,
                   "FAIL: engines disagree at width %zu "
                   "(interp=%zu scalar=%zu avx=%zu rows selected)\n",
                   width, sel_interp.size(), sel_scalar.size(),
                   sel_avx.size());
      return 1;
    }

    double interp_best = 1e99, scalar_best = 1e99, avx_best = 1e99;
    size_t sink = 0;
    for (int i = 0; i < iters; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      sink += InterpretedPass(*pred, schema, rows, &sel_interp);
      auto t1 = std::chrono::steady_clock::now();
      sink += VectorizedPass(scalar.get(), schema, rows, width, &batch, &sel,
                             &sel_scalar);
      auto t2 = std::chrono::steady_clock::now();
      sink += VectorizedPass(avx.get(), schema, rows, width, &batch, &sel,
                             &sel_avx);
      auto t3 = std::chrono::steady_clock::now();
      interp_best = std::min(interp_best, Seconds(t0, t1));
      scalar_best = std::min(scalar_best, Seconds(t1, t2));
      avx_best = std::min(avx_best, Seconds(t2, t3));
    }

    const double n = static_cast<double>(num_rows);
    char json[640];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\": \"expr_eval\", \"predicate\": \"k * 7 + v > %lld\", "
        "\"rows\": %zu, \"batch_width\": %zu, \"iters\": %d, "
        "\"selected\": %zu, \"outputs_identical\": true, \"avx2\": %s, "
        "\"interpreted_ns_per_row\": %.2f, "
        "\"vectorized_ns_per_row\": %.2f, "
        "\"vectorized_avx2_ns_per_row\": %.2f, "
        "\"speedup_vectorized\": %.3f, \"speedup_avx2\": %.3f, "
        "\"sink\": %zu}",
        static_cast<long long>(threshold), num_rows, width, iters,
        sel_interp.size(), have_avx2 ? "true" : "false",
        interp_best / n * 1e9, scalar_best / n * 1e9, avx_best / n * 1e9,
        interp_best / scalar_best, interp_best / avx_best, sink);
    bufferdb::bench::EmitJsonLine(json);
  }
  return 0;
}

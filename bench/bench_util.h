#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/plan_refiner.h"
#include "perf/query_profile.h"
#include "plan/physical_planner.h"
#include "sim/cost_model.h"
#include "sim/sim_cpu.h"

namespace bufferdb::bench {

/// Paper queries (§4, §7.2, §7.5) against the TPC-H schema.
extern const char kQuery1[];  // SUM/AVG/COUNT over filtered lineitem scan.
extern const char kQuery2[];  // COUNT over filtered lineitem scan.
extern const char kQuery3[];  // lineitem x orders aggregate join.

/// Default scale factor used by the benches; override with argv[1].
constexpr double kDefaultScaleFactor = 0.02;

/// Scale factor cap applied in smoke mode (see `--smoke` below).
constexpr double kSmokeScaleFactor = 0.002;

/// Loads (once per process) and returns the shared TPC-H catalog.
Catalog& SharedTpch(double scale_factor);

/// Parses the bench command line: a positional scale factor (argv[1]) plus
/// the flags below. Must be the first bench_util call in main().
///
///   --smoke        CI mode: caps the scale factor at kSmokeScaleFactor and
///                  tells benches (via SmokeMode) to cut iteration counts.
///   --batch=N      NextBatch width for batch-aware consumers (default 1).
///   --buffer=N     Buffer operator capacity in tuples.
///   --adaptive     Turn on runtime-adaptive buffer sizing
///                  (RefinementOptions::adaptive_buffering) for every
///                  refined RunQuery: buffers sweep candidate capacities at
///                  refill boundaries and lock the cheapest (DESIGN.md §14).
///   --fuse         Turn on intra-group operator fusion
///                  (RefinementOptions::fuse_pipelines) for every refined
///                  RunQuery: maximal scan-filter-project chains collapse
///                  into one compiled pipeline kernel (DESIGN.md §15).
///   --calibration=PATH
///                  Loads a measured code-layout calibration (the file
///                  `tools/footprint_audit.py --emit-calibration` writes)
///                  via sim::CodeLayout::LoadCalibration before anything
///                  executes, so the simulator runs with the *audited*
///                  per-module instruction footprints of the real binary
///                  instead of the hand-calibrated Table-2 layout. Exits 2
///                  with the parse error on a bad file.
///   --hw           Collect real hardware counters (perf_event_open) per
///                  operator: RunQuery re-executes each plan wrapped in the
///                  perf profiler with the CPU simulator detached, so the
///                  `hw` blocks in the JSON output measure the engine, not
///                  the simulator. Degrades to zeros + a reason string where
///                  the PMU is unavailable (containers, perf_event_paranoid).
///   --json-strict  Self-check for CI: stdout is redirected to a capture
///                  file and only bench_util's JSON emitter writes to the
///                  real stream; any stray stdout bytes (a debug printf, a
///                  library banner) fail the bench at exit with the captured
///                  text on stderr.
///
/// Contract: benches write JSON lines to stdout via EmitJsonLine()/the
/// helpers below, and everything human-readable to stderr (Note()).
double ScaleFactorFromArgs(int argc, char** argv);

/// True once ScaleFactorFromArgs has seen `--smoke`.
bool SmokeMode();

/// Batch width selected by `--batch=N` (1 when absent).
size_t BatchSizeArg();

/// Buffer capacity selected by `--buffer=N` (kDefaultBufferSize when absent).
size_t BufferSizeArg();

/// True once ScaleFactorFromArgs has seen `--adaptive`.
bool AdaptiveArg();

/// True once ScaleFactorFromArgs has seen `--fuse`.
bool FuseArg();

/// Calibration file selected by `--calibration=PATH` (empty when absent).
const std::string& CalibrationArg();

/// True once ScaleFactorFromArgs has seen `--hw`.
bool HwMode();

/// True once ScaleFactorFromArgs has seen `--json-strict`.
bool JsonStrictMode();

/// Human-readable commentary (figure text, plan dumps, progress): printf to
/// stderr, never stdout — stdout carries only JSON lines.
void Note(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Writes one pre-formatted JSON line to the bench's JSON stream (the real
/// stdout, even under --json-strict) and flushes.
void EmitJsonLine(const std::string& line);

/// Emits the one-line JSON run header every bench starts with: bench name,
/// scale factor, smoke/hw flags and the selected batch and buffer sizes, so
/// archived bench output is self-describing. Also records the bench name
/// used by EmitComparisonJson.
void PrintJsonHeader(const char* bench_name, double scale_factor);

/// `normal` iterations usually, `smoke` in smoke mode.
inline int SmokeIters(int normal, int smoke = 1) {
  return SmokeMode() ? smoke : normal;
}

struct QueryRun {
  std::vector<std::vector<Value>> rows;
  sim::CycleBreakdown breakdown;
  std::string plan_text;
  RefinementReport report;
  /// Wall time of the (simulator-free) hardware pass when hw profiling ran,
  /// else of the simulated pass.
  double wall_seconds = 0;
  /// Per-operator hardware attribution; empty() unless hw profiling ran.
  perf::QueryProfile profile;
  /// Post-run per-BufferOperator runtime stats (chosen capacity, demotion,
  /// refill counts), in plan pre-order. Empty when the plan has no buffers.
  std::vector<BufferRuntimeStats> buffers;
};

struct RunOptions {
  bool refine = false;
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  size_t buffer_size = 1000;
  /// NextBatch width for batch-aware consumers (PlannerOptions::batch_size).
  /// 0 — the default — defers to the `--batch=N` command-line knob.
  size_t batch_size = 0;
  /// Drive the plan through the CPU simulator (breakdown/counters). Off for
  /// pure hardware-measurement runs.
  bool simulate = true;
  /// Collect per-operator hardware counters. Defaults to the `--hw` flag.
  /// When both simulate and hw profiling are on, RunQuery executes the plan
  /// twice — simulated first, then profiled with the simulator detached —
  /// so neither measurement observes the other's overhead.
  bool hw_profile = false;
  /// Runtime-adaptive buffer sizing for refined plans. Defaults to the
  /// `--adaptive` flag; setting it here forces it for this run regardless.
  bool adaptive_buffering = false;
  /// How many times to execute the plan (Open -> drain -> Close), modeling a
  /// re-executed prepared statement. Counters accumulate across executions
  /// and `rows` holds the last execution's output. Operators keep their
  /// state across executions, so an adaptive buffer that calibrated or
  /// demoted itself in the first execution serves the later ones frozen.
  int executions = 1;
  sim::SimConfig sim_config;
  RefinementOptions refinement;  // cardinality/l1i defaults; buffer_size and
                                 // merge flags applied from above.
};

/// Plans and executes `sql` on the simulated CPU (and/or the real one, see
/// RunOptions); dies on error.
QueryRun RunQuery(Catalog& catalog, const std::string& sql,
                  const RunOptions& options = RunOptions());

/// Simulates a hand-built operator tree — for bench scenarios the SQL
/// planner never emits (e.g. the naive rescan nested-loop join, which the
/// planner always replaces with a hash/merge/index join). `build` constructs
/// a fresh tree, which then runs `options.executions` times on one simulated
/// CPU exactly like RunQuery's simulated pass; only the simulate path is
/// supported (refine/hw_profile/buffer_size are the builder's business).
QueryRun RunPlan(const std::function<OperatorPtr()>& build,
                 const RunOptions& options = RunOptions());

/// Prints (stderr) an original-vs-buffered comparison in the paper's figure
/// format, and emits (stdout) one JSON line with both runs' sim counters,
/// simulated seconds, and — when hw profiling ran — the hardware counter
/// block and profiler wall time next to them.
void PrintComparison(const std::string& title, const QueryRun& original,
                     const QueryRun& buffered);

/// The JSON-emitting half of PrintComparison, usable standalone.
void EmitComparisonJson(const std::string& title, const QueryRun& original,
                        const QueryRun& buffered);

}  // namespace bufferdb::bench

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/plan_refiner.h"
#include "plan/physical_planner.h"
#include "sim/cost_model.h"
#include "sim/sim_cpu.h"

namespace bufferdb::bench {

/// Paper queries (§4, §7.2, §7.5) against the TPC-H schema.
extern const char kQuery1[];  // SUM/AVG/COUNT over filtered lineitem scan.
extern const char kQuery2[];  // COUNT over filtered lineitem scan.
extern const char kQuery3[];  // lineitem x orders aggregate join.

/// Default scale factor used by the benches; override with argv[1].
constexpr double kDefaultScaleFactor = 0.02;

/// Scale factor cap applied in smoke mode (see `--smoke` below).
constexpr double kSmokeScaleFactor = 0.002;

/// Loads (once per process) and returns the shared TPC-H catalog.
Catalog& SharedTpch(double scale_factor);

/// Parses the bench command line: a positional scale factor (argv[1]), the
/// `--smoke` flag, and the execution knobs `--batch=N` (NextBatch width for
/// batch-aware consumers, default 1 = tuple-at-a-time) and `--buffer=N`
/// (buffer operator capacity in tuples, default
/// BufferOperator::kDefaultBufferSize). Smoke mode is for CI: it caps the
/// scale factor at kSmokeScaleFactor and tells benches (via SmokeMode) to
/// cut their iteration counts, so a bench run finishes in seconds and only
/// checks that the bench still executes, not that its numbers are stable.
double ScaleFactorFromArgs(int argc, char** argv);

/// True once ScaleFactorFromArgs has seen `--smoke`.
bool SmokeMode();

/// Batch width selected by `--batch=N` (1 when absent).
size_t BatchSizeArg();

/// Buffer capacity selected by `--buffer=N` (kDefaultBufferSize when absent).
size_t BufferSizeArg();

/// Prints the one-line JSON run header every bench emits before its figure
/// output: bench name, scale factor, smoke flag, and the *selected* batch
/// and buffer sizes, so archived bench output is self-describing.
void PrintJsonHeader(const char* bench_name, double scale_factor);

/// `normal` iterations usually, `smoke` in smoke mode.
inline int SmokeIters(int normal, int smoke = 1) {
  return SmokeMode() ? smoke : normal;
}

struct QueryRun {
  std::vector<std::vector<Value>> rows;
  sim::CycleBreakdown breakdown;
  std::string plan_text;
  RefinementReport report;
};

struct RunOptions {
  bool refine = false;
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  size_t buffer_size = 1000;
  /// NextBatch width for batch-aware consumers (PlannerOptions::batch_size).
  /// 0 — the default — defers to the `--batch=N` command-line knob.
  size_t batch_size = 0;
  sim::SimConfig sim_config;
  RefinementOptions refinement;  // cardinality/l1i defaults; buffer_size and
                                 // merge flags applied from above.
};

/// Plans and executes `sql` on the simulated CPU; dies on error.
QueryRun RunQuery(Catalog& catalog, const std::string& sql,
                  const RunOptions& options = RunOptions());

/// Prints an original-vs-buffered comparison in the paper's figure format,
/// including miss/misprediction reductions and the net improvement.
void PrintComparison(const std::string& title, const QueryRun& original,
                     const QueryRun& buffered);

}  // namespace bufferdb::bench


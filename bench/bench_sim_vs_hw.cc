// Simulator-fidelity experiment: runs the paper's buffered-vs-original
// comparisons (fig10-style Query 1 scan-aggregate, fig16-style Query 3
// hash join) across a matrix of buffer sizes, measuring each configuration
// BOTH ways — once on the deterministic CPU simulator (the repo's stand-in
// for the paper's Pentium 4 counters) and once on the real machine through
// the perf_event_open subsystem (src/perf/) with the simulator detached.
//
// Each configuration emits one JSON line pairing the simulated and the
// hardware L1i-miss / branch-miss / cycle deltas. tools/validate_sim.py
// consumes this stream and reports how often the simulator predicts the
// *direction* of the real buffered-vs-unbuffered L1i delta, plus the rank
// correlation of the effect sizes — the first empirical check of the
// simulator's fidelity. On hosts without PMU access (containers,
// perf_event_paranoid) the hw fields are emitted with hw_available=false
// and the validator skips them.

#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace bufferdb;        // NOLINT
using namespace bufferdb::bench; // NOLINT

namespace {

struct Config {
  std::string name;
  const char* query_tag;
  const char* sql;
  JoinStrategy join;
  size_t buffer_size;
};

// One original-vs-buffered pair, sim pass + hw pass per side.
void RunConfig(Catalog& catalog, const Config& cfg, int hw_iters) {
  RunOptions original;
  original.join_strategy = cfg.join;
  original.buffer_size = cfg.buffer_size;
  RunOptions buffered = original;
  buffered.refine = true;

  // Simulated pass (deterministic; one run is exact).
  RunOptions sim_orig = original;
  RunOptions sim_buf = buffered;
  sim_orig.simulate = sim_buf.simulate = true;
  QueryRun s_orig = RunQuery(catalog, cfg.sql, sim_orig);
  QueryRun s_buf = RunQuery(catalog, cfg.sql, sim_buf);

  // Hardware pass: simulator detached, plan wrapped in the perf profiler.
  // Keep the iteration with the fewest root cycles (fallback: wall time) to
  // shed warm-up and scheduling noise.
  RunOptions hw_orig = original;
  RunOptions hw_buf = buffered;
  hw_orig.simulate = hw_buf.simulate = false;
  hw_orig.hw_profile = hw_buf.hw_profile = true;
  QueryRun h_orig = RunQuery(catalog, cfg.sql, hw_orig);
  QueryRun h_buf = RunQuery(catalog, cfg.sql, hw_buf);
  auto better = [](const QueryRun& a, const QueryRun& b) {
    perf::HwCounters ca = a.profile.RootHw();
    perf::HwCounters cb = b.profile.RootHw();
    if (ca.cycles != cb.cycles) return ca.cycles < cb.cycles;
    return a.profile.RootWallNs() < b.profile.RootWallNs();
  };
  for (int i = 1; i < hw_iters; ++i) {
    QueryRun o = RunQuery(catalog, cfg.sql, hw_orig);
    QueryRun b = RunQuery(catalog, cfg.sql, hw_buf);
    if (better(o, h_orig)) h_orig = std::move(o);
    if (better(b, h_buf)) h_buf = std::move(b);
  }

  const sim::SimCounters& so = s_orig.breakdown.counters;
  const sim::SimCounters& sb = s_buf.breakdown.counters;
  perf::HwCounters ho = h_orig.profile.RootHw();
  perf::HwCounters hb = h_buf.profile.RootHw();
  bool hw_ok = h_orig.profile.hw_available();

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"sim_vs_hw\", \"config\": \"%s\", \"query\": \"%s\", "
      "\"buffer_size\": %zu, \"buffers_added\": %d, "
      "\"sim_orig_l1i\": %llu, \"sim_buf_l1i\": %llu, "
      "\"sim_orig_itlb\": %llu, \"sim_buf_itlb\": %llu, "
      "\"sim_orig_mispredicts\": %llu, \"sim_buf_mispredicts\": %llu, "
      "\"sim_orig_seconds\": %.6f, \"sim_buf_seconds\": %.6f, "
      "\"hw_available\": %s, "
      "\"hw_orig_l1i\": %llu, \"hw_buf_l1i\": %llu, "
      "\"hw_orig_itlb\": %llu, \"hw_buf_itlb\": %llu, "
      "\"hw_orig_branch_miss\": %llu, \"hw_buf_branch_miss\": %llu, "
      "\"hw_orig_cycles\": %llu, \"hw_buf_cycles\": %llu, "
      "\"hw_orig_wall_ns\": %llu, \"hw_buf_wall_ns\": %llu}",
      cfg.name.c_str(), cfg.query_tag, cfg.buffer_size,
      s_buf.report.buffers_added,
      static_cast<unsigned long long>(so.l1i_misses),
      static_cast<unsigned long long>(sb.l1i_misses),
      static_cast<unsigned long long>(so.itlb_misses),
      static_cast<unsigned long long>(sb.itlb_misses),
      static_cast<unsigned long long>(so.mispredicts),
      static_cast<unsigned long long>(sb.mispredicts),
      s_orig.breakdown.seconds(), s_buf.breakdown.seconds(),
      hw_ok ? "true" : "false",
      static_cast<unsigned long long>(ho.l1i_misses),
      static_cast<unsigned long long>(hb.l1i_misses),
      static_cast<unsigned long long>(ho.itlb_misses),
      static_cast<unsigned long long>(hb.itlb_misses),
      static_cast<unsigned long long>(ho.branch_misses),
      static_cast<unsigned long long>(hb.branch_misses),
      static_cast<unsigned long long>(ho.cycles),
      static_cast<unsigned long long>(hb.cycles),
      static_cast<unsigned long long>(h_orig.profile.RootWallNs()),
      static_cast<unsigned long long>(h_buf.profile.RootWallNs()));
  EmitJsonLine(json);
  if (!hw_ok) {
    Note("config %s: hw counters unavailable (%s)\n", cfg.name.c_str(),
         h_orig.profile.unavailable_reason().c_str());
  } else {
    Note("config %s: sim L1i %llu->%llu, hw L1i %llu->%llu\n",
         cfg.name.c_str(),
         static_cast<unsigned long long>(so.l1i_misses),
         static_cast<unsigned long long>(sb.l1i_misses),
         static_cast<unsigned long long>(ho.l1i_misses),
         static_cast<unsigned long long>(hb.l1i_misses));
  }
}

}  // namespace

int main(int argc, char** argv) {
  double sf = ScaleFactorFromArgs(argc, argv);
  PrintJsonHeader("sim_vs_hw", sf);
  Catalog& catalog = SharedTpch(sf);

  const size_t kSmokeBuffers[] = {1000};
  const size_t kFullBuffers[] = {100, 500, 1000, 4000, 8000};
  const int hw_iters = SmokeIters(5, 2);

  std::vector<Config> configs;
  auto add_query = [&](const char* tag, const char* sql, JoinStrategy join) {
    const size_t* begin = SmokeMode() ? kSmokeBuffers : kFullBuffers;
    const size_t* end = SmokeMode() ? kSmokeBuffers + 1 : kFullBuffers + 5;
    for (const size_t* b = begin; b != end; ++b) {
      std::string name = std::string(tag) + "_buf" + std::to_string(*b);
      configs.push_back(Config{std::move(name), tag, sql, join, *b});
    }
  };
  add_query("q1", kQuery1, JoinStrategy::kAuto);  // fig10: scan-aggregate
  add_query("q3_hash", kQuery3, JoinStrategy::kHashJoin);  // fig16: hash join
  if (!SmokeMode()) {
    add_query("q3_merge", kQuery3, JoinStrategy::kMergeJoin);  // fig17 flavor
  }

  for (const Config& cfg : configs) RunConfig(catalog, cfg, hw_iters);
  return 0;
}

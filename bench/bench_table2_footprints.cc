// Table 2: per-module instruction footprints measured via dynamic call
// graphs over the calibration query set (§7.1), plus the per-aggregate
// function sizes read from the (synthetic) binary.
//
// Emits one JSON line per operator module (simulated shared-once bytes plus
// the naive static estimate) so tools/validate_sim.py can cross-check the
// simulated footprints against tools/footprint_audit.py's measurement of
// the real binary. With --calibration=FILE the emitted bytes reflect the
// loaded layout, closing the audit -> simulator loop.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/execution_group.h"
#include "profile/calibration_queries.h"
#include "sim/code_layout.h"

using bufferdb::sim::CodeLayout;
using bufferdb::sim::FuncId;
using bufferdb::sim::ModuleId;

int main(int argc, char** argv) {
  bufferdb::bench::PrintJsonHeader(
      "table2_footprints", bufferdb::bench::ScaleFactorFromArgs(argc, argv));
  auto table = bufferdb::profile::CalibrateFootprints();
  for (int m = 0; m < bufferdb::sim::kNumModuleIds; ++m) {
    auto module = static_cast<ModuleId>(m);
    // Modules the calibration query set does not reach fall back to their
    // base function sets, so every module emits a record.
    uint64_t bytes;
    const char* source;
    if (table.has(module)) {
      bytes = table.footprint_bytes(module);
      source = "dynamic";
    } else {
      bufferdb::FuncSet base;
      base.AddAll(bufferdb::sim::ModuleBaseFuncs(module));
      bytes = base.TotalBytes();
      source = "base";
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"table2_footprints\", \"module\": \"%s\", "
                  "\"bytes\": %llu, \"static_bytes\": %llu, "
                  "\"source\": \"%s\"}",
                  bufferdb::sim::ModuleName(module),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(
                      table.StaticEstimateBytes(module)),
                  source);
    bufferdb::bench::EmitJsonLine(buf);
  }
  std::fprintf(stderr, "Table 2: Postgres-style instruction footprints (measured)\n");
  std::fprintf(stderr, "%s\n", table.ToString().c_str());

  const CodeLayout& layout = CodeLayout::Default();
  std::fprintf(stderr, "Aggregate functions (binary sizes):\n");
  for (FuncId f : {FuncId::kAggCount, FuncId::kAggMin, FuncId::kAggMax,
                   FuncId::kAggSum, FuncId::kAggAvgExtra}) {
    std::fprintf(stderr, "  %-16s %5u bytes\n", layout.info(f).name,
                layout.info(f).size_bytes);
  }
  std::fprintf(stderr, "  (AVG executes agg_sum + agg_avg_extra = %u bytes; see "
              "DESIGN.md for the deviation from the paper's 6.3K)\n\n",
              layout.info(FuncId::kAggSum).size_bytes +
                  layout.info(FuncId::kAggAvgExtra).size_bytes);

  ModuleId q1[] = {ModuleId::kSeqScanFiltered, ModuleId::kAggregation};
  std::fprintf(stderr, "Combined footprints (shared functions counted once):\n");
  std::fprintf(stderr, "  Scan(pred) + Aggregation(COUNT)      = %llu bytes\n",
              static_cast<unsigned long long>(table.CombinedBytes(q1)));
  ModuleId q3[] = {ModuleId::kSeqScanFiltered, ModuleId::kNestLoopJoin,
                   ModuleId::kIndexScan, ModuleId::kAggregation};
  std::fprintf(stderr, "  Scan(pred)+NestLoop+IndexScan+Agg    = %llu bytes\n",
              static_cast<unsigned long long>(table.CombinedBytes(q3)));
  std::fprintf(stderr, "  L1 instruction cache                 = 16384 bytes\n");
  return 0;
}

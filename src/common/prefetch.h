#pragma once

namespace bufferdb {

/// Software prefetch hint for a read that is about to miss. Batch consumers
/// (hash-join probe, hash aggregation) issue these for the hash buckets of
/// tuples ahead in the batch, overlapping DRAM misses across the batch
/// instead of serializing them. No-op on compilers without the builtin.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/1);
#else
  (void)addr;
#endif
}

}  // namespace bufferdb


#include "common/date.h"

#include <cstdio>

namespace bufferdb {

// Civil-day algorithms from Howard Hinnant's date algorithms
// (public-domain formulation).
int64_t MakeDate(int year, int month, int day) {
  int y = year;
  if (month <= 2) y -= 1;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(day) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

void DateToYmd(int64_t days, int* year, int* month, int* day) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

std::string DateToString(int64_t days) {
  int y, m, d;
  DateToYmd(days, &y, &m, &d);
  // 32 bytes: even pathological int years fit, so -Wformat-truncation is
  // provably satisfied under -Werror.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

Result<int64_t> ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::ParseError("bad date literal: " + text);
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::ParseError("date out of range: " + text);
  }
  return MakeDate(y, m, d);
}

}  // namespace bufferdb

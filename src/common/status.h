#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace bufferdb {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  kNotImplemented,
  kParseError,
  kTypeError,
};

/// Error-or-success result of a fallible operation. Modeled on absl::Status:
/// cheap to copy in the OK case, carries a code and a message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value or an error. Minimal absl::StatusOr analogue.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  Status status_;
  T value_{};
};

#define BUFFERDB_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::bufferdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define BUFFERDB_ASSIGN_OR_RETURN(lhs, expr)      \
  auto lhs##_result = (expr);                     \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto& lhs = *lhs##_result

}  // namespace bufferdb


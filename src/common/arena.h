#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace bufferdb {

/// Bump allocator backing tuple storage and per-query working memory.
///
/// Allocations are never freed individually; the whole arena is released at
/// once. Tuples produced by operators live in an arena owned by the execution
/// context, which is what makes pointer-based buffering safe (the paper's §5
/// note: buffered tuples must not be deallocated until consumed).
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 256 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with 8-byte alignment. Never returns nullptr.
  uint8_t* Allocate(size_t bytes);

  /// Total bytes handed out (excluding per-chunk slack).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Releases all memory; existing pointers become dangling.
  void Reset();

 private:
  size_t chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t offset_ = 0;
  size_t current_capacity_ = 0;
  uint8_t* current_ = nullptr;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
};

}  // namespace bufferdb


#include "common/arena.h"

#include <algorithm>

namespace bufferdb {

uint8_t* Arena::Allocate(size_t bytes) {
  // Keep 8-byte alignment for all allocations.
  size_t aligned = (bytes + 7) & ~size_t{7};
  if (offset_ + aligned > current_capacity_) {
    size_t cap = std::max(chunk_bytes_, aligned);
    chunks_.push_back(std::make_unique<uint8_t[]>(cap));
    current_ = chunks_.back().get();
    current_capacity_ = cap;
    offset_ = 0;
  }
  uint8_t* out = current_ + offset_;
  offset_ += aligned;
  bytes_allocated_ += aligned;
  return out;
}

void Arena::Reset() {
  chunks_.clear();
  current_ = nullptr;
  current_capacity_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace bufferdb

#pragma once

#include <cstdint>

namespace bufferdb {

/// SplitMix64 mixing function. Used both as a PRNG step and as a stateless
/// hash for deterministic per-site branch outcome streams in the simulator.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic 64-bit PRNG (xorshift-star seeded via SplitMix64).
/// Deterministic across platforms so TPC-H data and simulator branch
/// outcomes are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(SplitMix64(seed ^ 0xdeadbeefULL)) {
    if (state_ == 0) state_ = 0x853c49e6748fea9bULL;
  }

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace bufferdb


#include "common/status.h"

namespace bufferdb {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace bufferdb

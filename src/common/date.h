#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace bufferdb {

/// Dates are stored as days since the civil epoch 1970-01-01 (may be
/// negative). TPC-H dates span 1992-01-01 .. 1998-12-31.
int64_t MakeDate(int year, int month, int day);

/// Decomposes a day number back into (year, month, day).
void DateToYmd(int64_t days, int* year, int* month, int* day);

/// Formats as "YYYY-MM-DD".
std::string DateToString(int64_t days);

/// Parses "YYYY-MM-DD".
Result<int64_t> ParseDate(const std::string& text);

}  // namespace bufferdb


#include "plan/plan_printer.h"

#include <cstdio>

#include "core/buffer_operator.h"
#include "core/execution_group.h"
#include "exec/fused_pipeline.h"

namespace bufferdb {

namespace {

void PrintRec(const Operator& op, int depth, bool show_footprints,
              std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  const auto* fused = dynamic_cast<const FusedPipelineOperator*>(&op);
  line += fused != nullptr ? "FusedPipeline" : op.label();
  while (line.size() < 44) line += ' ';
  char buf[96];
  if (op.estimated_rows() >= 0) {
    std::snprintf(buf, sizeof(buf), " rows=%-10.0f", op.estimated_rows());
    line += buf;
  }
  if (show_footprints) {
    FuncSet funcs;
    funcs.AddAll(op.hot_funcs());
    std::snprintf(buf, sizeof(buf), " footprint=%.1fK",
                  static_cast<double>(funcs.TotalBytes()) / 1000.0);
    line += buf;
  }
  if (const auto* buffer = dynamic_cast<const BufferOperator*>(&op)) {
    // EXPLAIN shows the configured capacity; the post-run (adaptive) final
    // capacity is reported by QueryProfile via Operator::AnalyzeDetail.
    std::snprintf(buf, sizeof(buf), " capacity=%zu%s",
                  buffer->initial_buffer_size(),
                  buffer->controller() != nullptr ? " adaptive" : "");
    line += buf;
  }
  if (op.excluded_from_buffering()) line += " [no-buffer]";
  out->append(line);
  out->push_back('\n');
  if (fused != nullptr) {
    // The collapsed stages, top of the chain first — rendered like plan
    // children, but marked as fused: they execute as one loop, not as
    // pull-connected operators.
    const std::vector<std::string>& stages = fused->stage_labels();
    for (size_t i = stages.size(); i > 0; --i) {
      out->append(static_cast<size_t>(depth + 1) * 2, ' ');
      out->append("* ");
      out->append(stages[i - 1]);
      out->push_back('\n');
    }
  }
  for (size_t i = 0; i < op.num_children(); ++i) {
    PrintRec(*op.child(i), depth + 1, show_footprints, out);
  }
}

}  // namespace

std::string PrintPlan(const Operator& root, bool show_footprints) {
  std::string out;
  PrintRec(root, 0, show_footprints, &out);
  return out;
}

}  // namespace bufferdb

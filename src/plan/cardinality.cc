#include "plan/cardinality.h"

#include <algorithm>

namespace bufferdb {

namespace {

constexpr double kDefaultSelectivity = 1.0 / 3.0;
constexpr double kEqualitySelectivity = 0.05;

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

// Handles `col <op> literal` (either orientation) using column stats.
double EstimateComparison(const BinaryExpr& cmp, Table* table) {
  const Expression* col_side = &cmp.left();
  const Expression* lit_side = &cmp.right();
  BinaryOp op = cmp.op();
  if (col_side->kind() != ExprKind::kColumnRef) {
    std::swap(col_side, lit_side);
    // Mirror the operator.
    switch (op) {
      case BinaryOp::kLt:
        op = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        op = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        op = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        op = BinaryOp::kLe;
        break;
      default:
        break;
    }
  }
  if (col_side->kind() != ExprKind::kColumnRef ||
      lit_side->kind() != ExprKind::kLiteral) {
    return op == BinaryOp::kEq ? kEqualitySelectivity : kDefaultSelectivity;
  }
  const auto& col = static_cast<const ColumnRefExpr&>(*col_side);
  const auto& lit = static_cast<const LiteralExpr&>(*lit_side);
  if (lit.value().is_null()) return 0.0;

  const ColumnStats& stats = table->stats(col.column());
  if (!stats.valid || !IsNumeric(lit.value().type())) {
    switch (op) {
      case BinaryOp::kEq:
        return kEqualitySelectivity;
      case BinaryOp::kNe:
        return 1.0 - kEqualitySelectivity;
      default:
        return kDefaultSelectivity;
    }
  }
  double v = lit.value().AsDouble();
  double lo = stats.min, hi = stats.max;
  double width = hi - lo;
  switch (op) {
    case BinaryOp::kEq:
      if (v < lo || v > hi) return 0.0;
      return width <= 0 ? 1.0 : Clamp01(1.0 / (width + 1.0));
    case BinaryOp::kNe:
      return 1.0 - (width <= 0 ? 1.0 : Clamp01(1.0 / (width + 1.0)));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      if (v <= lo) return 0.0;
      if (v >= hi) return 1.0;
      return Clamp01((v - lo) / width);
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      if (v >= hi) return 0.0;
      if (v <= lo) return 1.0;
      return Clamp01((hi - v) / width);
    default:
      return kDefaultSelectivity;
  }
}

}  // namespace

double EstimateSelectivity(const Expression& predicate, Table* table) {
  switch (predicate.kind()) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(predicate);
      if (lit.value().is_null()) return 0.0;
      return lit.value().bool_value() ? 1.0 : 0.0;
    }
    case ExprKind::kColumnRef:
      return kDefaultSelectivity;
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(predicate);
      if (u.op() == UnaryOp::kNot) {
        return Clamp01(1.0 - EstimateSelectivity(u.operand(), table));
      }
      if (u.op() == UnaryOp::kIsNull) return 0.01;
      if (u.op() == UnaryOp::kIsNotNull) return 0.99;
      return kDefaultSelectivity;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(predicate);
      if (b.op() == BinaryOp::kAnd) {
        return EstimateSelectivity(b.left(), table) *
               EstimateSelectivity(b.right(), table);
      }
      if (b.op() == BinaryOp::kOr) {
        double s1 = EstimateSelectivity(b.left(), table);
        double s2 = EstimateSelectivity(b.right(), table);
        return Clamp01(s1 + s2 - s1 * s2);
      }
      if (b.op() == BinaryOp::kLike) return 0.1;
      if (IsComparison(b.op())) return EstimateComparison(b, table);
      return kDefaultSelectivity;
    }
  }
  return kDefaultSelectivity;
}

double EstimateEquiJoinRows(double left_rows, double right_rows,
                            double right_table_rows, bool right_unique) {
  if (right_unique) {
    // Foreign-key join: each left row matches at most one right row; if the
    // right side is filtered, scale by the surviving fraction.
    double fraction =
        right_table_rows > 0 ? right_rows / right_table_rows : 1.0;
    return left_rows * std::min(1.0, fraction);
  }
  double denom = std::max(left_rows, right_rows);
  if (denom <= 0) return 0;
  return left_rows * right_rows / denom;
}

}  // namespace bufferdb

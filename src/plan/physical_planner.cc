#include "plan/physical_planner.h"

#include <algorithm>

#include "core/buffered_index_join.h"
#include "exec/aggregation.h"
#include "exec/column_scan.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_aggregation.h"
#include "exec/hash_join.h"
#include "exec/topn.h"
#include "exec/index_scan.h"
#include "exec/limit.h"
#include "exec/merge_join.h"
#include "exec/nested_loop_join.h"
#include "exec/project.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "parallel/agg_merge.h"
#include "parallel/exchange.h"
#include "parallel/morsel.h"
#include "plan/cardinality.h"

namespace bufferdb {

namespace {

ExprPtr ColRef(const Schema& schema, int col) {
  return MakeColumnRefUnchecked(col, schema.column(col).type,
                                schema.column(col).name);
}

// Propagates PlannerOptions::vectorize_expressions to every operator of a
// finished (sub)tree. Operators compile their expressions at construction
// time either way; the flag gates whether the batch path uses the programs.
void SetVectorizedEval(Operator* op, bool v) {
  op->set_vectorized_eval(v);
  for (size_t i = 0; i < op->num_children(); ++i) {
    SetVectorizedEval(op->child(i), v);
  }
}

OperatorPtr MakeScan(Table* table, const ExprPtr& filter,
                     const PlannerOptions& options) {
  ExprPtr predicate = filter != nullptr ? filter->Clone() : nullptr;
  double selectivity =
      filter != nullptr ? EstimateSelectivity(*filter, table) : 1.0;
  OperatorPtr scan;
  // The columnar fast path is batch-native: substitute it only for batched
  // plans over tables that carry a columnar image.
  if (options.columnar_scan && options.batch_size > 1 &&
      table->columnar() != nullptr) {
    scan = std::make_unique<ColumnScanOperator>(table, std::move(predicate));
  } else {
    scan = std::make_unique<SeqScanOperator>(table, std::move(predicate));
  }
  scan->set_estimated_rows(selectivity *
                           static_cast<double>(table->num_rows()));
  return scan;
}

}  // namespace

const char* JoinStrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kAuto:
      return "auto";
    case JoinStrategy::kIndexNestLoop:
      return "nestloop";
    case JoinStrategy::kHashJoin:
      return "hash";
    case JoinStrategy::kMergeJoin:
      return "merge";
    case JoinStrategy::kBufferedIndex:
      return "buffered-index";
  }
  return "?";
}

// Builds one join step: joins `plan` (covering the first k FROM tables,
// whose schema is a prefix of query.input_schema) with query.tables[k].
// `outer_key_col` indexes the accumulated schema; `inner_key_col` the new
// table's own schema.
Result<OperatorPtr> PhysicalPlanner::PlanJoinStep(const LogicalQuery& query,
                                                  OperatorPtr plan, size_t k,
                                                  int outer_key_col,
                                                  int inner_key_col) {
  Table* inner_table = query.tables[k];
  const Schema& outer_schema = plan->output_schema();
  const Schema& inner_schema = inner_table->schema();
  const ExprPtr& inner_filter = query.filters[k];

  double outer_rows = plan->estimated_rows();
  double inner_filtered_rows =
      inner_filter != nullptr
          ? EstimateSelectivity(*inner_filter, inner_table) *
                static_cast<double>(inner_table->num_rows())
          : static_cast<double>(inner_table->num_rows());

  const IndexInfo* inner_index =
      catalog_->FindIndex(inner_table, inner_key_col);

  JoinStrategy strategy = options_.join_strategy;
  if (strategy == JoinStrategy::kAuto) {
    strategy = (inner_index != nullptr && inner_index->unique)
                   ? JoinStrategy::kIndexNestLoop
                   : JoinStrategy::kHashJoin;
  }

  double join_rows = EstimateEquiJoinRows(
      outer_rows, inner_filtered_rows,
      static_cast<double>(inner_table->num_rows()),
      inner_index != nullptr && inner_index->unique);

  OperatorPtr join_op;
  switch (strategy) {
    case JoinStrategy::kBufferedIndex: {
      if (inner_index == nullptr) {
        return Status::InvalidArgument(
            "no index on the inner join column of " + inner_table->name() +
            "; cannot use batched index probes (reorder FROM)");
      }
      if (inner_filter != nullptr) {
        return Status::NotImplemented(
            "inner filters unsupported for batched index probes");
      }
      join_op = std::make_unique<BufferedIndexJoinOperator>(
          std::move(plan), inner_index, ColRef(outer_schema, outer_key_col));
      break;
    }
    case JoinStrategy::kIndexNestLoop: {
      if (inner_index == nullptr) {
        return Status::InvalidArgument(
            "no index on the inner join column of " + inner_table->name() +
            "; cannot use index nested loop (reorder FROM)");
      }
      ExprPtr residual =
          inner_filter != nullptr ? inner_filter->Clone() : nullptr;
      auto inner = std::make_unique<IndexScanOperator>(
          inner_index, std::nullopt, std::nullopt, std::move(residual));
      // Foreign-key lookups produce at most one row per probe; the paper
      // excludes such inner scans from buffering entirely (§6, Fig. 15).
      inner->set_excluded_from_buffering(inner_index->unique);
      inner->set_estimated_rows(inner_index->unique ? 1.0
                                                    : inner_filtered_rows);
      join_op = std::make_unique<IndexNestLoopJoinOperator>(
          std::move(plan), std::move(inner),
          ColRef(outer_schema, outer_key_col));
      break;
    }
    case JoinStrategy::kHashJoin: {
      OperatorPtr build = MakeScan(inner_table, inner_filter, options_);
      auto hash_join = std::make_unique<HashJoinOperator>(
          std::move(plan), std::move(build),
          ColRef(outer_schema, outer_key_col),
          ColRef(inner_schema, inner_key_col), nullptr);
      hash_join->set_probe_batch_size(options_.batch_size);
      join_op = std::move(hash_join);
      break;
    }
    case JoinStrategy::kMergeJoin: {
      // Left side: sort the accumulated plan. Right side: an index on the
      // join column provides sorted order without a sort (Fig. 17);
      // otherwise sort a scan.
      std::vector<SortKey> left_keys;
      left_keys.push_back(
          SortKey{ColRef(outer_schema, outer_key_col), false});
      OperatorPtr sorted_left = std::make_unique<SortOperator>(
          std::move(plan), std::move(left_keys));
      sorted_left->set_estimated_rows(outer_rows);

      OperatorPtr right;
      if (inner_index != nullptr && inner_filter == nullptr) {
        auto index_scan = std::make_unique<IndexScanOperator>(
            inner_index, std::nullopt, std::nullopt, nullptr);
        index_scan->set_estimated_rows(inner_filtered_rows);
        right = std::move(index_scan);
      } else {
        OperatorPtr scan = MakeScan(inner_table, inner_filter, options_);
        std::vector<SortKey> right_keys;
        right_keys.push_back(
            SortKey{ColRef(inner_schema, inner_key_col), false});
        right = std::make_unique<SortOperator>(std::move(scan),
                                               std::move(right_keys));
        right->set_estimated_rows(inner_filtered_rows);
      }
      join_op = std::make_unique<MergeJoinOperator>(
          std::move(sorted_left), std::move(right),
          ColRef(outer_schema, outer_key_col),
          ColRef(inner_schema, inner_key_col));
      break;
    }
    case JoinStrategy::kAuto:
      return Status::Internal("unresolved join strategy");
  }
  join_op->set_estimated_rows(join_rows);
  return join_op;
}

// Left-deep join chain in FROM order over the binder's equi-join edges.
Result<OperatorPtr> PhysicalPlanner::PlanJoins(const LogicalQuery& query) {
  std::vector<size_t> offsets;
  size_t offset = 0;
  for (Table* table : query.tables) {
    offsets.push_back(offset);
    offset += table->schema().num_columns();
  }

  OperatorPtr plan = MakeScan(query.tables[0], query.filters[0], options_);
  std::vector<bool> joined(query.tables.size(), false);
  joined[0] = true;
  std::vector<bool> edge_used(query.joins.size(), false);

  for (size_t k = 1; k < query.tables.size(); ++k) {
    int outer_key_col = -1, inner_key_col = -1;
    for (size_t e = 0; e < query.joins.size(); ++e) {
      if (edge_used[e]) continue;
      const LogicalJoinEdge& edge = query.joins[e];
      if (edge.right_table == static_cast<int>(k) && joined[edge.left_table]) {
        outer_key_col =
            static_cast<int>(offsets[edge.left_table]) + edge.left_col;
        inner_key_col = edge.right_col;
        edge_used[e] = true;
        break;
      }
      if (edge.left_table == static_cast<int>(k) && joined[edge.right_table]) {
        outer_key_col =
            static_cast<int>(offsets[edge.right_table]) + edge.right_col;
        inner_key_col = edge.left_col;
        edge_used[e] = true;
        break;
      }
    }
    if (outer_key_col < 0) {
      return Status::NotImplemented(
          "table " + query.tables[k]->name() +
          " is not connected to the preceding FROM tables by an equi-join");
    }
    BUFFERDB_ASSIGN_OR_RETURN(
        next, PlanJoinStep(query, std::move(plan), k, outer_key_col,
                           inner_key_col));
    plan = std::move(next);
    joined[k] = true;
  }

  // Redundant edges (cycles) and cross-table predicates apply over the
  // final schema, which equals input_schema.
  ExprPtr leftover;
  auto and_combine = [&leftover](ExprPtr e) {
    if (leftover == nullptr) {
      leftover = std::move(e);
    } else {
      auto r = MakeBinary(BinaryOp::kAnd, std::move(leftover), std::move(e));
      leftover = std::move(*r);
    }
  };
  for (size_t e = 0; e < query.joins.size(); ++e) {
    if (edge_used[e]) continue;
    const LogicalJoinEdge& edge = query.joins[e];
    auto eq = MakeBinary(
        BinaryOp::kEq,
        ColRef(query.input_schema,
               static_cast<int>(offsets[edge.left_table]) + edge.left_col),
        ColRef(query.input_schema,
               static_cast<int>(offsets[edge.right_table]) + edge.right_col));
    and_combine(std::move(*eq));
  }
  for (const ExprPtr& pred : query.cross_predicates) {
    and_combine(pred->Clone());
  }
  if (leftover != nullptr) {
    double rows = plan->estimated_rows();
    plan = std::make_unique<FilterOperator>(std::move(plan),
                                            std::move(leftover));
    plan->set_estimated_rows(rows / 3.0);
  }
  return plan;
}

Result<OperatorPtr> PhysicalPlanner::BuildInput(const LogicalQuery& query) {
  if (query.tables.size() == 1) {
    if (!query.cross_predicates.empty()) {
      return Status::Internal("cross predicate on single-table query");
    }
    return MakeScan(query.tables[0], query.filters[0], options_);
  }
  return PlanJoins(query);
}

Result<PhysicalPlanner::ParallelInput> PhysicalPlanner::BuildParallelInput(
    const LogicalQuery& query) {
  size_t degree = options_.parallel_degree;
  // Scalar aggregation (no group keys) is computed per fragment and merged;
  // pure projections run per fragment too. Grouped aggregation stays above
  // the Exchange, consuming the merged input stream.
  bool scalar_agg = query.has_aggregates;
  for (const OutputItem& item : query.items) {
    if (!item.is_aggregate) scalar_agg = false;
  }
  std::vector<AggSpec> final_specs;
  if (scalar_agg) {
    for (const OutputItem& item : query.items) {
      final_specs.push_back(AggSpec{
          item.agg, item.expr != nullptr ? item.expr->Clone() : nullptr,
          item.name});
    }
  }

  ParallelInput out;
  std::vector<OperatorPtr> fragments;
  fragments.reserve(degree);
  for (size_t w = 0; w < degree; ++w) {
    BUFFERDB_ASSIGN_OR_RETURN(frag, BuildInput(query));
    if (w == 0) out.input_rows = frag->estimated_rows();
    if (scalar_agg) {
      auto agg = std::make_unique<AggregationOperator>(
          std::move(frag), parallel::MakePartialAggSpecs(final_specs));
      agg->set_estimated_rows(1.0);
      frag = std::move(agg);
    } else if (!query.has_aggregates) {
      std::vector<ProjectItem> items;
      for (const OutputItem& item : query.items) {
        items.push_back(ProjectItem{item.expr->Clone(), item.name});
      }
      auto proj = std::make_unique<ProjectOperator>(std::move(frag),
                                                    std::move(items));
      proj->set_estimated_rows(out.input_rows);
      frag = std::move(proj);
    }
    SetVectorizedEval(frag.get(), options_.vectorize_expressions);
    fragments.push_back(std::move(frag));
  }

  // All fragments share one morsel cursor over the driving (leftmost) table
  // scan; everything else in a fragment (hash builds, index lookups, inner
  // scans) runs privately per worker.
  auto cursor = std::make_unique<parallel::MorselCursor>(
      query.tables[0]->num_rows(),
      options_.morsel_rows != 0 ? options_.morsel_rows
                                : parallel::MorselCursor::kDefaultMorselRows);
  for (OperatorPtr& frag : fragments) {
    Operator* op = frag.get();
    while (op->num_children() > 0) op = op->child(0);
    if (auto* scan = dynamic_cast<SeqScanOperator*>(op)) {
      scan->BindMorselCursor(cursor.get());
    } else if (auto* cscan = dynamic_cast<ColumnScanOperator*>(op)) {
      cscan->BindMorselCursor(cursor.get());
    } else {
      return Status::Internal(
          "parallel plan: driving operator is not a table scan");
    }
  }

  auto exchange = std::make_unique<parallel::ExchangeOperator>(
      std::move(fragments), std::move(cursor), options_.thread_pool);
  if (scalar_agg) {
    exchange->set_estimated_rows(static_cast<double>(degree));
    auto merge = std::make_unique<parallel::AggregateMergeOperator>(
        std::move(exchange), std::move(final_specs));
    merge->set_estimated_rows(1.0);
    out.plan = std::move(merge);
    out.aggregation_done = true;
  } else {
    exchange->set_estimated_rows(out.input_rows);
    out.plan = std::move(exchange);
    out.projection_done = !query.has_aggregates;
  }
  return out;
}

Result<OperatorPtr> PhysicalPlanner::CreatePlan(const LogicalQuery& query,
                                                RefinementReport* report) {
  if (query.tables.empty()) {
    return Status::InvalidArgument("query has no tables");
  }

  OperatorPtr plan;
  double input_rows;
  bool aggregation_done = false;
  bool projection_done = false;
  if (options_.parallel_degree > 1) {
    BUFFERDB_ASSIGN_OR_RETURN(par, BuildParallelInput(query));
    plan = std::move(par.plan);
    input_rows = par.input_rows;
    aggregation_done = par.aggregation_done;
    projection_done = par.projection_done;
  } else {
    BUFFERDB_ASSIGN_OR_RETURN(input, BuildInput(query));
    plan = std::move(input);
    input_rows = plan->estimated_rows();
  }

  // Aggregation or projection (unless already pushed into the fragments).
  if (aggregation_done || projection_done) {
    // Nothing to add on top.
  } else if (query.has_aggregates) {
    std::vector<GroupKeyExpr> groups;
    std::vector<AggSpec> specs;
    for (const OutputItem& item : query.items) {
      if (item.is_aggregate) {
        specs.push_back(AggSpec{
            item.agg, item.expr != nullptr ? item.expr->Clone() : nullptr,
            item.name});
      } else {
        groups.push_back(GroupKeyExpr{item.expr->Clone(), item.name});
      }
    }
    if (groups.empty()) {
      plan = std::make_unique<AggregationOperator>(std::move(plan),
                                                   std::move(specs));
      plan->set_estimated_rows(1.0);
    } else {
      auto hash_agg = std::make_unique<HashAggregationOperator>(
          std::move(plan), std::move(groups), std::move(specs));
      hash_agg->set_batch_size(options_.batch_size);
      plan = std::move(hash_agg);
      // Crude distinct-groups estimate.
      plan->set_estimated_rows(std::max(1.0, std::min(input_rows / 10.0,
                                                      10000.0)));
    }
  } else {
    std::vector<ProjectItem> items;
    for (const OutputItem& item : query.items) {
      items.push_back(ProjectItem{item.expr->Clone(), item.name});
    }
    plan = std::make_unique<ProjectOperator>(std::move(plan),
                                             std::move(items));
    plan->set_estimated_rows(input_rows);
  }

  // HAVING over the aggregate output.
  if (query.having != nullptr) {
    double rows = plan->estimated_rows();
    plan = std::make_unique<FilterOperator>(std::move(plan),
                                            query.having->Clone());
    plan->set_estimated_rows(rows * 0.5);
  }

  if (query.distinct) {
    double rows = plan->estimated_rows();
    plan = std::make_unique<DistinctOperator>(std::move(plan));
    plan->set_estimated_rows(rows * 0.5);
  }

  // ORDER BY over the output schema; fused with LIMIT into a bounded-heap
  // TopN when both are present.
  if (!query.order_by.empty()) {
    double rows = plan->estimated_rows();
    std::vector<SortKey> keys;
    const Schema& out_schema = plan->output_schema();
    for (const auto& [name, desc] : query.order_by) {
      int col = out_schema.FindColumn(name);
      if (col < 0) {
        return Status::NotFound("ORDER BY column not in output: " + name);
      }
      keys.push_back(SortKey{ColRef(out_schema, col), desc});
    }
    if (query.limit.has_value()) {
      plan = std::make_unique<TopNOperator>(
          std::move(plan), std::move(keys),
          static_cast<size_t>(*query.limit));
      plan->set_estimated_rows(
          std::min(rows, static_cast<double>(*query.limit)));
    } else {
      plan = std::make_unique<SortOperator>(std::move(plan), std::move(keys));
      plan->set_estimated_rows(rows);
    }
  } else if (query.limit.has_value()) {
    double rows = plan->estimated_rows();
    plan = std::make_unique<LimitOperator>(
        std::move(plan), static_cast<size_t>(*query.limit));
    plan->set_estimated_rows(
        std::min(rows, static_cast<double>(*query.limit)));
  }

  SetVectorizedEval(plan.get(), options_.vectorize_expressions);

  if (options_.refine) {
    RefinementOptions refinement = options_.refinement;
    // The planner-level batch knob also drives the refiner's accounting,
    // unless the caller pinned a refinement batch size explicitly.
    if (options_.batch_size > 1 && refinement.batch_size <= 1) {
      refinement.batch_size = options_.batch_size;
    }
    PlanRefiner refiner(refinement);
    plan = refiner.Refine(std::move(plan), report);
  }
  return plan;
}

}  // namespace bufferdb

#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "core/plan_refiner.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace bufferdb {

namespace parallel {
class ThreadPool;
}

enum class JoinStrategy : uint8_t {
  kAuto,          // Index nested loop when the right side has a unique
                  // index on the join column, hash join otherwise.
  kIndexNestLoop,
  kHashJoin,
  kMergeJoin,
  /// Extension: index nested loop with batched, key-sorted probes
  /// (core/buffered_index_join.h). Within a probe batch, output order is by
  /// join key rather than outer order.
  kBufferedIndex,
};

const char* JoinStrategyName(JoinStrategy strategy);

struct PlannerOptions {
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  /// Run the §6.2 plan refinement pass on the produced plan. Composes with
  /// parallel_degree: the refiner inserts buffer operators *inside* each
  /// worker fragment (the Exchange is a group boundary), so every worker
  /// keeps the paper's instruction-cache locality independently.
  bool refine = false;
  RefinementOptions refinement;
  /// Intra-query parallelism: number of cloned pipeline fragments run under
  /// an Exchange operator by pool workers. 1 (the default) plans serially.
  /// The driving table scan is partitioned at morsel granularity; scalar
  /// aggregates are computed per fragment and combined by an AggregateMerge
  /// above the Exchange.
  size_t parallel_degree = 1;
  /// Rows per morsel of the partitioned driving scan; 0 = library default.
  size_t morsel_rows = 0;
  /// Batch width for the batch-at-a-time fast path: batch-aware consumers
  /// (hash-join probe, hash aggregation) consume their input through
  /// NextBatch with prefetching, and the refiner accounts for batch-drained
  /// buffers (RefinementOptions::batch_size). 1 — the default — keeps
  /// tuple-at-a-time execution everywhere, the paper's setting; set e.g.
  /// Operator::kDefaultBatchSize to enable the batch path.
  size_t batch_size = 1;
  /// Compile operator-owned expressions (filter predicates, project items,
  /// join keys, group keys, aggregate arguments) into flat column-at-a-time
  /// kernel programs at plan time (expr/vector_eval.h). Compilation happens
  /// once per operator and is cached in operator state; batch-path execution
  /// (batch_size > 1) then evaluates expressions vector-at-a-time.
  /// Expressions the compiler does not cover (strings, LIKE) keep the
  /// per-tuple interpreter automatically. Off forces the interpreter
  /// everywhere (A/B measurement hook).
  bool vectorize_expressions = true;
  /// Use ColumnScan (zero-decode columnar scans with zone-map pruning and
  /// dictionary-coded string predicates, exec/column_scan.h) in place of
  /// SeqScan wherever the table carries a columnar image
  /// (Table::columnar()) and the plan is batched (batch_size > 1).
  /// Tuple-at-a-time plans always use SeqScan — the columnar fast path is
  /// batch-native. Off forces SeqScan everywhere (A/B measurement hook).
  bool columnar_scan = true;
  /// Worker pool for Exchange operators; null = the process-global pool.
  parallel::ThreadPool* thread_pool = nullptr;
};

/// Translates a bound LogicalQuery into an executable operator tree.
///
/// Physical conventions (all deterministic, so benches can force the paper's
/// plans): tables[0] is always the outer/probe/left side, tables[1] the
/// inner/build/right side; the join output schema is therefore exactly
/// Concat(tables[0], tables[1]) == LogicalQuery::input_schema. The planner
/// annotates every operator with a cardinality estimate and marks the inner
/// index scan of a unique-key index nested-loop join as excluded from
/// buffering (§6).
class PhysicalPlanner {
 public:
  PhysicalPlanner(const Catalog* catalog, PlannerOptions options)
      : catalog_(catalog), options_(options) {}

  /// `report` (optional) receives the refinement report when
  /// options.refine is set.
  Result<OperatorPtr> CreatePlan(const LogicalQuery& query,
                                 RefinementReport* report = nullptr);

 private:
  /// Everything below aggregation/projection: scans, filters, joins and
  /// leftover cross-table predicates.
  Result<OperatorPtr> BuildInput(const LogicalQuery& query);
  Result<OperatorPtr> PlanJoins(const LogicalQuery& query);
  Result<OperatorPtr> PlanJoinStep(const LogicalQuery& query, OperatorPtr plan,
                                   size_t k, int outer_key_col,
                                   int inner_key_col);

  /// The parallel_degree > 1 path: builds N input fragments sharing one
  /// morsel cursor, merges them under an Exchange, and (for scalar
  /// aggregates / pure projections) pushes that work into the fragments.
  struct ParallelInput {
    OperatorPtr plan;
    double input_rows = 0;
    bool aggregation_done = false;
    bool projection_done = false;
  };
  Result<ParallelInput> BuildParallelInput(const LogicalQuery& query);

  const Catalog* catalog_;
  PlannerOptions options_;
};

}  // namespace bufferdb


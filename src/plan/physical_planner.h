#ifndef BUFFERDB_PLAN_PHYSICAL_PLANNER_H_
#define BUFFERDB_PLAN_PHYSICAL_PLANNER_H_

#include <memory>

#include "catalog/catalog.h"
#include "core/plan_refiner.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace bufferdb {

enum class JoinStrategy : uint8_t {
  kAuto,          // Index nested loop when the right side has a unique
                  // index on the join column, hash join otherwise.
  kIndexNestLoop,
  kHashJoin,
  kMergeJoin,
  /// Extension: index nested loop with batched, key-sorted probes
  /// (core/buffered_index_join.h). Within a probe batch, output order is by
  /// join key rather than outer order.
  kBufferedIndex,
};

const char* JoinStrategyName(JoinStrategy strategy);

struct PlannerOptions {
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  /// Run the §6.2 plan refinement pass on the produced plan.
  bool refine = false;
  RefinementOptions refinement;
};

/// Translates a bound LogicalQuery into an executable operator tree.
///
/// Physical conventions (all deterministic, so benches can force the paper's
/// plans): tables[0] is always the outer/probe/left side, tables[1] the
/// inner/build/right side; the join output schema is therefore exactly
/// Concat(tables[0], tables[1]) == LogicalQuery::input_schema. The planner
/// annotates every operator with a cardinality estimate and marks the inner
/// index scan of a unique-key index nested-loop join as excluded from
/// buffering (§6).
class PhysicalPlanner {
 public:
  PhysicalPlanner(const Catalog* catalog, PlannerOptions options)
      : catalog_(catalog), options_(options) {}

  /// `report` (optional) receives the refinement report when
  /// options.refine is set.
  Result<OperatorPtr> CreatePlan(const LogicalQuery& query,
                                 RefinementReport* report = nullptr);

 private:
  Result<OperatorPtr> PlanJoins(const LogicalQuery& query);
  Result<OperatorPtr> PlanJoinStep(const LogicalQuery& query, OperatorPtr plan,
                                   size_t k, int outer_key_col,
                                   int inner_key_col);

  const Catalog* catalog_;
  PlannerOptions options_;
};

}  // namespace bufferdb

#endif  // BUFFERDB_PLAN_PHYSICAL_PLANNER_H_

#pragma once

#include "expr/expression.h"
#include "storage/table.h"

namespace bufferdb {

/// Estimated fraction of `table`'s rows satisfying `predicate` (0..1).
/// Uses min/max column statistics for range predicates on numeric columns;
/// textbook default constants otherwise.
double EstimateSelectivity(const Expression& predicate, Table* table);

/// Estimated output cardinality of an equi-join.
/// `right_unique` means the right side joins on a declared-unique key
/// (foreign-key join): every left row matches at most once.
double EstimateEquiJoinRows(double left_rows, double right_rows,
                            double right_table_rows, bool right_unique);

}  // namespace bufferdb


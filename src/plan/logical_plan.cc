#include "plan/logical_plan.h"

namespace bufferdb {

std::string LogicalQuery::ToString() const {
  std::string out = "LogicalQuery{tables=[";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += tables[i]->name();
    if (filters[i] != nullptr) {
      // Append-form to dodge gcc 12's -O3 -Wrestrict false positive
      // (PR105651); same below.
      out += " WHERE ";
      out += filters[i]->ToString();
    }
  }
  out += "]";
  for (const LogicalJoinEdge& edge : joins) {
    out += ", join " +
           tables[edge.left_table]->schema().column(edge.left_col).name + "=" +
           tables[edge.right_table]->schema().column(edge.right_col).name;
  }
  for (const ExprPtr& pred : cross_predicates) {
    out += ", cross ";
    out += pred->ToString();
  }
  out += ", select [";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].is_aggregate) {
      out += AggFuncName(items[i].agg);
      if (items[i].expr != nullptr) {
        // Append-form to dodge gcc 12's -O3 -Wrestrict false positive
        // (PR105651).
        out += "(";
        out += items[i].expr->ToString();
        out += ")";
      }
    } else {
      out += items[i].expr->ToString();
    }
  }
  out += "]";
  if (having != nullptr) {
    out += ", having ";
    out += having->ToString();
  }
  if (distinct) out += ", distinct";
  out += "}";
  return out;
}

}  // namespace bufferdb

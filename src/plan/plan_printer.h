#pragma once

#include <string>

#include "exec/operator.h"

namespace bufferdb {

/// Renders an operator tree as an indented EXPLAIN-style listing, e.g.
///
///   Agg(SUM(...), AVG(...), COUNT(*))        rows=1      footprint=15.3K
///     Buffer(1000)                           rows=60175  footprint=0.7K
///       Scan(lineitem, (l_shipdate <= ...))  rows=60175  footprint=13.0K
std::string PrintPlan(const Operator& root, bool show_footprints = true);

}  // namespace bufferdb


#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/aggregation.h"
#include "expr/expression.h"
#include "storage/table.h"

namespace bufferdb {

/// Equi-join edge between two FROM tables; table fields index into
/// LogicalQuery::tables and column fields into that table's schema. The
/// binder normalizes edges so left_table < right_table.
struct LogicalJoinEdge {
  int left_table = -1;
  int left_col = -1;
  int right_table = -1;
  int right_col = -1;
};

/// One SELECT-list entry. For aggregate queries, group keys precede
/// aggregates in SELECT order (checked by the binder) so the physical
/// grouped-aggregation output schema matches the SELECT order directly.
struct OutputItem {
  bool is_aggregate = false;
  bool is_group_key = false;
  AggFunc agg = AggFunc::kCountStar;
  ExprPtr expr;  // Bound to input_schema; null for COUNT(*).
  std::string name;
};

/// A bound single-block query — the planner's input. Produced by the SQL
/// binder or constructed directly by tests/benches.
struct LogicalQuery {
  std::vector<Table*> tables;     // Joined left-deep in FROM order.
  std::vector<ExprPtr> filters;   // Parallel to tables; nullable. Bound to
                                  // the respective table schema.
  std::vector<LogicalJoinEdge> joins;
  /// Cross-table predicates that are not equi-join edges, bound to
  /// input_schema; applied once all referenced tables are joined.
  std::vector<ExprPtr> cross_predicates;
  /// Concatenation of all FROM tables' schemas, in FROM order.
  Schema input_schema;
  bool has_aggregates = false;
  std::vector<OutputItem> items;
  /// HAVING predicate, bound to the *output* schema (group keys + aggregate
  /// aliases); nullable.
  ExprPtr having;
  bool distinct = false;
  std::vector<std::pair<std::string, bool>> order_by;  // (name, descending)
  std::optional<int64_t> limit;

  std::string ToString() const;
};

}  // namespace bufferdb


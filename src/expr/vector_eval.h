#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "expr/dict_view.h"
#include "expr/expression.h"
#include "expr/vector.h"

namespace bufferdb {

/// Type-specialized opcodes of the flat kernel programs CompiledExpr
/// produces. Each opcode runs as one tight column-at-a-time loop; there is
/// no per-lane dispatch, virtual call, or Value boxing (DESIGN.md §10).
enum class VecOp : uint8_t {
  kLoadConst,      // Splat an immediate (possibly NULL) into a register.
  kCastI64ToF64,   // Widen int64/date lanes to double.
  kAddI64,
  kSubI64,
  kMulI64,
  kDivI64,         // Divisor 0 -> NULL lane, like the interpreter.
  kAddF64,
  kSubF64,
  kMulF64,
  kDivF64,         // Divisor 0.0 -> NULL lane.
  kCmpEqI64,
  kCmpNeI64,
  kCmpLtI64,
  kCmpLeI64,
  kCmpGtI64,
  kCmpGeI64,
  kCmpEqF64,       // F64 comparisons replicate Value::Compare exactly,
  kCmpNeF64,       // including its NaN behavior (NaN compares "equal").
  kCmpLtF64,
  kCmpLeF64,
  kCmpGtF64,
  kCmpGeF64,
  kAnd,            // Kleene three-valued logic, branch-free on null masks.
  kOr,
  kNot,
  kNegI64,
  kNegF64,
  kIsNull,         // Never NULL themselves.
  kIsNotNull,
};

/// One instruction of a kernel program. Operand references (`a`, `b`) are
/// virtual-register indexes unless the kInputRef bit is set, in which case
/// the low bits index input_columns() and the operand reads the decoded
/// column directly — column loads cost no copy.
struct VecInsn {
  static constexpr uint16_t kInputRef = 0x8000;

  VecOp op;
  uint16_t dst = 0;      // Destination register.
  uint16_t a = 0;
  uint16_t b = 0;
  int64_t imm = 0;       // kLoadConst payload (doubles bit-cast).
  bool imm_null = false;
};

/// A bound Expression tree flattened (post-order) into a linear program of
/// type-specialized opcodes over virtual registers. Compiled once at plan
/// time and cached in operator state; Run() executes the program over a
/// decoded batch with one tight loop per opcode.
///
/// Coverage: all arithmetic, comparisons, AND/OR/NOT, IS [NOT] NULL,
/// negation, literals and column references over bool/int64/double/date.
/// Anything involving strings (string columns or literals, LIKE) is
/// unsupported: Compile returns nullptr and the operator keeps the
/// per-tuple interpreter — the fallback is never wrong, only slower.
///
/// Exception: when Compile is given a DictView (dictionary-encoded columnar
/// storage, DESIGN.md §12), string comparisons and LIKE against non-NULL
/// string literals are rewritten into integer comparisons on dictionary
/// codes. The dictionary is sorted with the same byte ordering
/// Value::Compare uses, so `s < 'x'` becomes `code < rank('x')`,
/// `s = 'x'` becomes `code = code_of('x')` (-1 when absent: matches
/// nothing, is NULL for NULL lanes — exactly the interpreter result), and
/// `s LIKE 'p%'` becomes `lo <= code AND code < hi` over the prefix's code
/// range, whose Kleene AND propagates NULL lanes identically to the
/// interpreter's NULL LIKE result. Inputs rewritten this way are flagged by
/// input_is_dict_code(); the caller (ColumnScan) must feed widened code
/// lanes for them instead of row-decoding — RowBatchDecoder cannot produce
/// them.
///
/// Results are bit-for-bit identical to Expression::Evaluate, including
/// null masks, div-by-zero -> NULL, Kleene AND/OR, and double comparison
/// semantics (tests/vector_eval_equivalence_test.cc proves this
/// differentially). One deliberate divergence: INT64_MIN / -1, undefined
/// behavior in the interpreter, yields INT64_MIN here instead of a trap.
class CompiledExpr {
 public:
  /// Flattens `expr` (bound to `schema`) into a kernel program, or returns
  /// nullptr when the tree contains an unsupported node.
  static std::unique_ptr<CompiledExpr> Compile(const Expression& expr,
                                               const Schema& schema);

  /// Dictionary-aware form: additionally rewrites string predicates into
  /// comparisons on dictionary codes (see class comment). Only callers that
  /// can supply code lanes for the flagged inputs may use this overload.
  static std::unique_ptr<CompiledExpr> Compile(const Expression& expr,
                                               const Schema& schema,
                                               const DictView* dict);

  /// Distinct input columns the program reads; the caller decodes exactly
  /// these into the VectorBatch (deduplicated across programs by the
  /// RowBatchDecoder's caller).
  const std::vector<int>& input_columns() const { return input_cols_; }

  /// True when input_columns()[i] is consumed as dictionary codes (kInt64
  /// lanes holding the column's sorted-dictionary index) rather than as the
  /// column's decoded values.
  bool input_is_dict_code(size_t i) const {
    return i < input_is_code_.size() && input_is_code_[i] != 0;
  }

  DataType result_type() const { return result_type_; }
  size_t num_insns() const { return insns_.size(); }

  /// Evaluates the program over `batch` (all input_columns() decoded,
  /// batch.rows() lanes). The returned vector is owned by this CompiledExpr
  /// and valid until the next Run/RunFilter call — except when the whole
  /// expression is a bare column reference, in which case it aliases the
  /// batch's decoded column.
  const ColumnVector& Run(const VectorBatch& batch);

  /// Predicate form: fills `sel` with the lanes whose result is non-NULL
  /// true (EvaluatePredicate semantics), in lane order.
  void RunFilter(const VectorBatch& batch, SelectionVector* sel);

  /// True when this binary was built with AVX2 kernels (-mavx2 /
  /// BUFFERDB_AVX2=ON). The intrinsic kernels produce bit-identical results
  /// to the scalar loops; set_use_avx2(false) forces the scalar loops for
  /// A/B benchmarking.
  static bool AvxEnabled();
  void set_use_avx2(bool v) { use_avx2_ = v; }

 private:
  CompiledExpr() = default;

  struct Operand {
    uint16_t ref;
    DataType type;
  };

  bool CompileNode(const Expression& expr, Operand* out);
  bool TryCompileDictBinary(const BinaryExpr& b, bool* handled, Operand* out);
  Operand EnsureF64(Operand o);
  uint16_t NewReg(DataType type);
  uint16_t AddInputColumn(int col, DataType type);
  uint16_t AddDictCodeInput(int col);
  uint16_t EmitConstI64(int64_t v);
  uint16_t EmitBoolBinary(VecOp op, uint16_t a, uint16_t b);
  const ColumnVector& Vec(uint16_t ref, const VectorBatch& batch) const;

  const DictView* dict_ = nullptr;  // Compile-time only; not owned.
  std::vector<VecInsn> insns_;
  std::vector<int> input_cols_;
  std::vector<DataType> input_types_;
  std::vector<uint8_t> input_is_code_;
  std::vector<ColumnVector> regs_;
  std::vector<DataType> reg_types_;
  uint16_t result_ref_ = 0;
  DataType result_type_ = DataType::kBool;
  bool use_avx2_ = true;
};

/// Boxes lane `i` of `v` into a Value — the bridge from vectorized results
/// back into row-wise consumers (aggregate accumulators, group keys). The
/// boxed Value is identical to what Expression::Evaluate would have
/// produced for that row.
Value LaneValue(const ColumnVector& v, size_t i);

}  // namespace bufferdb

#pragma once

#include "expr/expression.h"

namespace bufferdb {

/// SQL predicate semantics: true iff the expression evaluates to non-NULL
/// true.
bool EvaluatePredicate(const Expression& expr, const TupleView& row);

/// True if `expr` references no columns (usable before any row exists).
bool IsConstantExpr(const Expression& expr);

/// True if every column referenced by `expr` is < num_columns (sanity check
/// when binding an expression to a schema).
bool ExprBoundTo(const Expression& expr, size_t num_columns);

/// Collects the distinct column indexes referenced by `expr`.
void CollectColumns(const Expression& expr, std::vector<int>* columns);

/// Recursively evaluates constant subtrees into literals, including the
/// boolean short-circuits (FALSE AND x -> FALSE, TRUE AND x -> x, and the
/// OR duals). Division by zero folds to a NULL literal, matching runtime
/// semantics. The result is semantically equivalent to the input.
ExprPtr FoldConstants(ExprPtr expr);

}  // namespace bufferdb


#include "expr/evaluator.h"

#include <algorithm>

namespace bufferdb {

bool EvaluatePredicate(const Expression& expr, const TupleView& row) {
  Value v = expr.Evaluate(row);
  return !v.is_null() && v.bool_value();
}

bool IsConstantExpr(const Expression& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return IsConstantExpr(b.left()) && IsConstantExpr(b.right());
    }
    case ExprKind::kUnary:
      return IsConstantExpr(static_cast<const UnaryExpr&>(expr).operand());
  }
  return false;
}

bool ExprBoundTo(const Expression& expr, size_t num_columns) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef: {
      int col = static_cast<const ColumnRefExpr&>(expr).column();
      return col >= 0 && static_cast<size_t>(col) < num_columns;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return ExprBoundTo(b.left(), num_columns) &&
             ExprBoundTo(b.right(), num_columns);
    }
    case ExprKind::kUnary:
      return ExprBoundTo(static_cast<const UnaryExpr&>(expr).operand(),
                         num_columns);
  }
  return false;
}

namespace {

// Constant expressions never touch the row, so a null view is safe.
Value EvaluateConstant(const Expression& expr) {
  static const Schema* empty = new Schema();
  return expr.Evaluate(TupleView(nullptr, empty));
}

bool IsLiteralBool(const Expression& expr, bool value) {
  if (expr.kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(expr).value();
  return !v.is_null() && v.type() == DataType::kBool &&
         v.bool_value() == value;
}

}  // namespace

ExprPtr FoldConstants(ExprPtr expr) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return expr;
    case ExprKind::kBinary: {
      auto& b = static_cast<BinaryExpr&>(*expr);
      BinaryOp op = b.op();
      ExprPtr left = FoldConstants(b.left().Clone());
      ExprPtr right = FoldConstants(b.right().Clone());
      // Boolean short-circuits with one constant side.
      if (op == BinaryOp::kAnd) {
        if (IsLiteralBool(*left, false) || IsLiteralBool(*right, false)) {
          return MakeLiteral(Value::Bool(false));
        }
        if (IsLiteralBool(*left, true)) return right;
        if (IsLiteralBool(*right, true)) return left;
      }
      if (op == BinaryOp::kOr) {
        if (IsLiteralBool(*left, true) || IsLiteralBool(*right, true)) {
          return MakeLiteral(Value::Bool(true));
        }
        if (IsLiteralBool(*left, false)) return right;
        if (IsLiteralBool(*right, false)) return left;
      }
      bool both_constant = left->kind() == ExprKind::kLiteral &&
                           right->kind() == ExprKind::kLiteral;
      auto rebuilt = MakeBinary(op, std::move(left), std::move(right));
      if (!rebuilt.ok()) return expr;  // Shouldn't happen; keep original.
      if (both_constant) return MakeLiteral(EvaluateConstant(**rebuilt));
      return std::move(*rebuilt);
    }
    case ExprKind::kUnary: {
      auto& u = static_cast<UnaryExpr&>(*expr);
      ExprPtr operand = FoldConstants(u.operand().Clone());
      bool constant = operand->kind() == ExprKind::kLiteral;
      auto rebuilt = MakeUnary(u.op(), std::move(operand));
      if (!rebuilt.ok()) return expr;
      if (constant) return MakeLiteral(EvaluateConstant(**rebuilt));
      return std::move(*rebuilt);
    }
  }
  return expr;
}

void CollectColumns(const Expression& expr, std::vector<int>* columns) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef: {
      int col = static_cast<const ColumnRefExpr&>(expr).column();
      if (std::find(columns->begin(), columns->end(), col) == columns->end()) {
        columns->push_back(col);
      }
      return;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectColumns(b.left(), columns);
      CollectColumns(b.right(), columns);
      return;
    }
    case ExprKind::kUnary:
      CollectColumns(static_cast<const UnaryExpr&>(expr).operand(), columns);
      return;
  }
}

}  // namespace bufferdb

#include "expr/expression.h"

namespace bufferdb {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

// Iterative wildcard match: '%' matches any run, '_' any single character.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

Value ColumnRefExpr::Evaluate(const TupleView& row) const {
  if (row.IsNull(column_)) return Value::Null(result_type());
  switch (result_type()) {
    case DataType::kBool:
      return Value::Bool(row.GetBool(column_));
    case DataType::kInt64:
      return Value::Int64(row.GetInt64(column_));
    case DataType::kDouble:
      return Value::Double(row.GetDouble(column_));
    case DataType::kDate:
      return Value::Date(row.GetDate(column_));
    case DataType::kString:
      return Value::String(std::string(row.GetString(column_)));
  }
  return Value();
}

namespace {

Value EvalArithmetic(BinaryOp op, const Value& l, const Value& r,
                     DataType result_type) {
  if (l.is_null() || r.is_null()) return Value::Null(result_type);
  if (result_type == DataType::kDouble) {
    double a = l.AsDouble(), b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Double(a + b);
      case BinaryOp::kSub:
        return Value::Double(a - b);
      case BinaryOp::kMul:
        return Value::Double(a * b);
      case BinaryOp::kDiv:
        return b == 0 ? Value::Null(DataType::kDouble) : Value::Double(a / b);
      default:
        break;
    }
  } else {
    int64_t a = l.int64_value(), b = r.int64_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int64(a + b);
      case BinaryOp::kSub:
        return Value::Int64(a - b);
      case BinaryOp::kMul:
        return Value::Int64(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Value::Null(DataType::kInt64);
        // INT64_MIN / -1 overflows (hardware trap on x86); define it as
        // INT64_MIN, matching the vectorized kernels (expr/vector_eval.cc).
        if (a == INT64_MIN && b == -1) return Value::Int64(INT64_MIN);
        return Value::Int64(a / b);
      default:
        break;
    }
  }
  return Value::Null(result_type);
}

Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
  int c = Value::Compare(l, r);
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(c == 0);
    case BinaryOp::kNe:
      return Value::Bool(c != 0);
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    case BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      return Value::Null(DataType::kBool);
  }
}

}  // namespace

Value BinaryExpr::Evaluate(const TupleView& row) const {
  // Short-circuiting three-valued logic for AND/OR.
  if (op_ == BinaryOp::kAnd) {
    Value l = left_->Evaluate(row);
    if (!l.is_null() && !l.bool_value()) return Value::Bool(false);
    Value r = right_->Evaluate(row);
    if (!r.is_null() && !r.bool_value()) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
    return Value::Bool(true);
  }
  if (op_ == BinaryOp::kOr) {
    Value l = left_->Evaluate(row);
    if (!l.is_null() && l.bool_value()) return Value::Bool(true);
    Value r = right_->Evaluate(row);
    if (!r.is_null() && r.bool_value()) return Value::Bool(true);
    if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
    return Value::Bool(false);
  }

  Value l = left_->Evaluate(row);
  Value r = right_->Evaluate(row);
  if (op_ == BinaryOp::kLike) {
    if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
    return Value::Bool(LikeMatch(l.string_value(), r.string_value()));
  }
  if (IsComparison(op_)) return EvalComparison(op_, l, r);
  return EvalArithmetic(op_, l, r, result_type());
}

std::string BinaryExpr::ToString() const {
  // Built via append rather than operator+ chains: gcc 12's -Wrestrict
  // false-fires on `const char* + std::string&&` at -O3 (GCC PR105651),
  // and CI promotes warnings to errors.
  std::string out = "(";
  out += left_->ToString();
  out += " ";
  out += BinaryOpName(op_);
  out += " ";
  out += right_->ToString();
  out += ")";
  return out;
}

Value UnaryExpr::Evaluate(const TupleView& row) const {
  Value v = operand_->Evaluate(row);
  switch (op_) {
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null(DataType::kBool);
      return Value::Bool(!v.bool_value());
    case UnaryOp::kNegate:
      if (v.is_null()) return Value::Null(result_type());
      if (result_type() == DataType::kDouble) return Value::Double(-v.AsDouble());
      return Value::Int64(-v.int64_value());
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
  }
  return Value();
}

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNot: {
      // Append form for the same -Wrestrict reason as BinaryExpr::ToString.
      std::string out = "NOT ";
      out += operand_->ToString();
      return out;
    }
    case UnaryOp::kNegate: {
      std::string out = "-";
      out += operand_->ToString();
      return out;
    }
    case UnaryOp::kIsNull:
      return operand_->ToString() + " IS NULL";
    case UnaryOp::kIsNotNull:
      return operand_->ToString() + " IS NOT NULL";
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }

Result<ExprPtr> MakeColumnRef(const Schema& schema, const std::string& name) {
  int col = schema.FindColumn(name);
  if (col < 0) return Status::NotFound("no such column: " + name);
  return ExprPtr(std::make_unique<ColumnRefExpr>(
      col, schema.column(col).type, name));
}

ExprPtr MakeColumnRefUnchecked(int column, DataType type, std::string name) {
  return std::make_unique<ColumnRefExpr>(column, type, std::move(name));
}

Result<ExprPtr> MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  DataType lt = left->result_type();
  DataType rt = right->result_type();
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    if (lt != DataType::kBool || rt != DataType::kBool) {
      return Status::TypeError("AND/OR require boolean operands");
    }
    return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                                std::move(right),
                                                DataType::kBool));
  }
  if (op == BinaryOp::kLike) {
    if (lt != DataType::kString || rt != DataType::kString) {
      return Status::TypeError("LIKE requires string operands");
    }
    return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                                std::move(right),
                                                DataType::kBool));
  }
  if (IsComparison(op)) {
    bool both_strings = lt == DataType::kString && rt == DataType::kString;
    bool both_numeric = IsNumeric(lt) && IsNumeric(rt);
    if (!both_strings && !both_numeric) {
      return Status::TypeError(std::string("cannot compare ") +
                               DataTypeName(lt) + " with " + DataTypeName(rt));
    }
    return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                                std::move(right),
                                                DataType::kBool));
  }
  // Arithmetic.
  if (!IsNumeric(lt) || !IsNumeric(rt) || lt == DataType::kBool ||
      rt == DataType::kBool) {
    return Status::TypeError("arithmetic requires numeric operands");
  }
  DataType out =
      (lt == DataType::kDouble || rt == DataType::kDouble) ? DataType::kDouble
      : (lt == DataType::kDate || rt == DataType::kDate)   ? DataType::kInt64
                                                           : DataType::kInt64;
  return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                              std::move(right), out));
}

Result<ExprPtr> MakeUnary(UnaryOp op, ExprPtr operand) {
  DataType t = operand->result_type();
  switch (op) {
    case UnaryOp::kNot:
      if (t != DataType::kBool) return Status::TypeError("NOT requires bool");
      return ExprPtr(
          std::make_unique<UnaryExpr>(op, std::move(operand), DataType::kBool));
    case UnaryOp::kNegate:
      if (!IsNumeric(t) || t == DataType::kBool) {
        return Status::TypeError("negation requires numeric operand");
      }
      return ExprPtr(std::make_unique<UnaryExpr>(op, std::move(operand), t));
    case UnaryOp::kIsNull:
    case UnaryOp::kIsNotNull:
      return ExprPtr(
          std::make_unique<UnaryExpr>(op, std::move(operand), DataType::kBool));
  }
  return Status::InvalidArgument("bad unary op");
}

}  // namespace bufferdb

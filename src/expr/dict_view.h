#pragma once

#include <cstdint>
#include <string_view>

namespace bufferdb {

/// Read-only view of a dictionary-encoded storage layer, consumed by the
/// expression compiler (expr/vector_eval.cc) when it rewrites string
/// predicates into comparisons on integer dictionary codes.
///
/// Defined here (not in storage/) so the expression layer never depends on
/// storage headers; storage/column_table.h implements it. The contract the
/// compiler relies on: codes are assigned from a dictionary sorted with
/// byte-wise `std::string` ordering — the same ordering `Value::Compare`
/// uses for strings — so ordered comparisons on codes are order-equivalent
/// to comparisons on the strings themselves.
class DictView {
 public:
  virtual ~DictView() = default;

  /// True if `col` is dictionary-encoded (and the methods below apply).
  virtual bool HasDict(int col) const = 0;

  /// Code of `s` in `col`'s dictionary, or -1 when absent. Absence means an
  /// equality against `s` can match no stored row.
  virtual int64_t CodeOf(int col, std::string_view s) const = 0;

  /// Half-open code range [*lo, *hi) of dictionary entries starting with
  /// `prefix`. Returns false when the range cannot be computed (the caller
  /// falls back to the interpreter); an empty range is returned as
  /// *lo == *hi, which is valid and matches nothing.
  virtual bool PrefixRange(int col, std::string_view prefix, int64_t* lo,
                           int64_t* hi) const = 0;

  /// Rank queries for ordered comparisons: number of dictionary entries
  /// strictly less than `s` (LowerBound) / less-or-equal (UpperBound).
  virtual int64_t LowerBound(int col, std::string_view s) const = 0;
  virtual int64_t UpperBound(int col, std::string_view s) const = 0;
};

}  // namespace bufferdb

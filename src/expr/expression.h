#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace bufferdb {

enum class ExprKind : uint8_t {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnary,
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kLike,  // SQL LIKE with % and _ wildcards (strings only).
};

enum class UnaryOp : uint8_t {
  kNot,
  kNegate,
  kIsNull,
  kIsNotNull,
};

const char* BinaryOpName(BinaryOp op);
bool IsComparison(BinaryOp op);

/// SQL LIKE wildcard matching ('%' = any run, '_' = one character).
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Typed scalar expression tree evaluated tuple-at-a-time, PostgreSQL-style.
/// Every node carries its result type; construction via the Make* factories
/// performs type checking. NULL semantics follow SQL (three-valued logic for
/// AND/OR, NULL propagation for arithmetic and comparisons).
class Expression {
 public:
  virtual ~Expression() = default;

  ExprKind kind() const { return kind_; }
  DataType result_type() const { return result_type_; }

  virtual Value Evaluate(const TupleView& row) const = 0;
  virtual std::string ToString() const = 0;
  virtual std::unique_ptr<Expression> Clone() const = 0;

 protected:
  Expression(ExprKind kind, DataType result_type)
      : kind_(kind), result_type_(result_type) {}

 private:
  ExprKind kind_;
  DataType result_type_;
};

using ExprPtr = std::unique_ptr<Expression>;

class ColumnRefExpr final : public Expression {
 public:
  ColumnRefExpr(int column, DataType type, std::string name)
      : Expression(ExprKind::kColumnRef, type),
        column_(column),
        name_(std::move(name)) {}

  int column() const { return column_; }
  const std::string& name() const { return name_; }

  Value Evaluate(const TupleView& row) const override;
  std::string ToString() const override { return name_; }
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(column_, result_type(), name_);
  }

 private:
  int column_;
  std::string name_;
};

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(Value value)
      : Expression(ExprKind::kLiteral, value.type()),
        value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Value Evaluate(const TupleView&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }

 private:
  Value value_;
};

class BinaryExpr final : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right, DataType result_type)
      : Expression(ExprKind::kBinary, result_type),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const Expression& left() const { return *left_; }
  const Expression& right() const { return *right_; }

  Value Evaluate(const TupleView& row) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone(),
                                        result_type());
  }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class UnaryExpr final : public Expression {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand, DataType result_type)
      : Expression(ExprKind::kUnary, result_type),
        op_(op),
        operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const Expression& operand() const { return *operand_; }

  Value Evaluate(const TupleView& row) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->Clone(), result_type());
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Factories (type-checked).
ExprPtr MakeLiteral(Value v);
Result<ExprPtr> MakeColumnRef(const Schema& schema, const std::string& name);
ExprPtr MakeColumnRefUnchecked(int column, DataType type, std::string name);
Result<ExprPtr> MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
Result<ExprPtr> MakeUnary(UnaryOp op, ExprPtr operand);

}  // namespace bufferdb


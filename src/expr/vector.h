#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "catalog/value.h"

namespace bufferdb {

/// SoA column of decoded values for the vectorized expression engine
/// (DESIGN.md section 10).
///
/// Exactly one payload array is active, selected by `type`: `i64` for
/// kBool/kInt64/kDate (bools normalized to 0/1), `f64` for kDouble. Keeping
/// two typed vectors instead of one reinterpret_cast'ed byte buffer keeps the
/// kernels free of aliasing UB and lets the compiler vectorize the loops.
///
/// Invariant maintained by the decoder and every kernel: the payload of a
/// NULL lane is zero (the same normalization TupleBuilder applies to null
/// slots). Kernels may therefore read every lane branch-free — a NULL lane
/// can never inject garbage (e.g. an INT64_MIN / -1 trap) into the result.
///
/// A vector either OWNS its lanes (the `i64`/`f64`/`nulls` vectors, filled
/// by RowBatchDecoder or a kernel) or BORROWS them from columnar segment
/// storage via the `ext_*` pointers (set by ColumnScan — zero copy, zero
/// decode; DESIGN.md §12). Readers must go through the `*_data()` accessors,
/// which resolve to whichever representation is active; writers always
/// target the owned vectors (Reset clears any borrow first).
struct ColumnVector {
  DataType type = DataType::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> nulls;  // 1 = NULL.
  const int64_t* ext_i64 = nullptr;
  const double* ext_f64 = nullptr;
  const uint8_t* ext_nulls = nullptr;

  bool is_double() const { return type == DataType::kDouble; }
  bool aliased() const { return ext_nulls != nullptr; }

  const int64_t* i64_data() const { return ext_i64 ? ext_i64 : i64.data(); }
  const double* f64_data() const { return ext_f64 ? ext_f64 : f64.data(); }
  const uint8_t* null_data() const {
    return ext_nulls ? ext_nulls : nulls.data();
  }

  /// Prepares the vector to own `n` lanes of `t`; never shrinks capacity.
  /// Drops any segment borrow — callers that Reset then write lanes get the
  /// owned representation.
  void Reset(DataType t, size_t n) {
    type = t;
    ext_i64 = nullptr;
    ext_f64 = nullptr;
    ext_nulls = nullptr;
    nulls.resize(n);
    if (is_double()) {
      f64.resize(n);
    } else {
      i64.resize(n);
    }
  }

  /// Points this vector at integer-domain segment storage (kBool/kInt64/
  /// kDate, or dictionary codes widened by the caller). Borrowed arrays must
  /// outlive every read of this vector — in practice they belong to a
  /// ColumnarTable, which outlives query execution.
  void AliasI64(DataType t, const int64_t* vals, const uint8_t* null_bytes) {
    type = t;
    ext_i64 = vals;
    ext_f64 = nullptr;
    ext_nulls = null_bytes;
  }

  /// Points this vector at double segment storage.
  void AliasF64(const double* vals, const uint8_t* null_bytes) {
    type = DataType::kDouble;
    ext_f64 = vals;
    ext_i64 = nullptr;
    ext_nulls = null_bytes;
  }
};

/// Indexes of the lanes that survived a predicate, in lane order.
struct SelectionVector {
  std::vector<uint32_t> idx;
  size_t count = 0;
};

/// The decoded input columns of one row batch, shared by every kernel
/// program evaluated over that batch (one decode feeds the filter predicate,
/// all project items, join keys, ...). Vectors are keyed by the input
/// column index they were decoded from.
class VectorBatch {
 public:
  size_t rows() const { return rows_; }
  void set_rows(size_t n) { rows_ = n; }

  /// The vector for input column `col`, created on first use.
  ColumnVector* Mutable(int col) {
    for (Entry& e : cols_) {
      if (e.col == col) return &e.vec;
    }
    cols_.push_back(Entry{col, ColumnVector{}});
    return &cols_.back().vec;
  }

  /// The decoded vector for `col`; the column must have been decoded into
  /// this batch.
  const ColumnVector& Get(int col) const {
    for (const Entry& e : cols_) {
      if (e.col == col) return e.vec;
    }
    assert(false && "column not decoded into this VectorBatch");
    return cols_.front().vec;
  }

  /// The vector for `col` if present, else nullptr. Used by DecodeMissing
  /// to alias columns a producer already published instead of re-decoding
  /// them from packed rows.
  const ColumnVector* Find(int col) const {
    for (const Entry& e : cols_) {
      if (e.col == col) return &e.vec;
    }
    return nullptr;
  }

  /// Drops all columns (capacity retained by the entry vector itself).
  void Clear() { cols_.clear(); }

 private:
  struct Entry {
    int col;
    ColumnVector vec;
  };
  size_t rows_ = 0;
  std::vector<Entry> cols_;
};

}  // namespace bufferdb

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "catalog/value.h"

namespace bufferdb {

/// SoA column of decoded values for the vectorized expression engine
/// (DESIGN.md section 10).
///
/// Exactly one payload array is active, selected by `type`: `i64` for
/// kBool/kInt64/kDate (bools normalized to 0/1), `f64` for kDouble. Keeping
/// two typed vectors instead of one reinterpret_cast'ed byte buffer keeps the
/// kernels free of aliasing UB and lets the compiler vectorize the loops.
///
/// Invariant maintained by the decoder and every kernel: the payload of a
/// NULL lane is zero (the same normalization TupleBuilder applies to null
/// slots). Kernels may therefore read every lane branch-free — a NULL lane
/// can never inject garbage (e.g. an INT64_MIN / -1 trap) into the result.
struct ColumnVector {
  DataType type = DataType::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> nulls;  // 1 = NULL.

  bool is_double() const { return type == DataType::kDouble; }

  /// Prepares the vector to hold `n` lanes of `t`; never shrinks capacity.
  void Reset(DataType t, size_t n) {
    type = t;
    nulls.resize(n);
    if (is_double()) {
      f64.resize(n);
    } else {
      i64.resize(n);
    }
  }
};

/// Indexes of the lanes that survived a predicate, in lane order.
struct SelectionVector {
  std::vector<uint32_t> idx;
  size_t count = 0;
};

/// The decoded input columns of one row batch, shared by every kernel
/// program evaluated over that batch (one decode feeds the filter predicate,
/// all project items, join keys, ...). Vectors are keyed by the input
/// column index they were decoded from.
class VectorBatch {
 public:
  size_t rows() const { return rows_; }
  void set_rows(size_t n) { rows_ = n; }

  /// The vector for input column `col`, created on first use.
  ColumnVector* Mutable(int col) {
    for (Entry& e : cols_) {
      if (e.col == col) return &e.vec;
    }
    cols_.push_back(Entry{col, ColumnVector{}});
    return &cols_.back().vec;
  }

  /// The decoded vector for `col`; the column must have been decoded into
  /// this batch.
  const ColumnVector& Get(int col) const {
    for (const Entry& e : cols_) {
      if (e.col == col) return e.vec;
    }
    assert(false && "column not decoded into this VectorBatch");
    return cols_.front().vec;
  }

 private:
  struct Entry {
    int col;
    ColumnVector vec;
  };
  size_t rows_ = 0;
  std::vector<Entry> cols_;
};

}  // namespace bufferdb

#include "expr/vector_eval.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace bufferdb {

namespace {

// ---------------------------------------------------------------------------
// Kernels. Each runs one tight loop over the whole batch; null handling is
// branch-free (mask arithmetic + select), so the loops auto-vectorize. The
// select also re-establishes the invariant that NULL lanes carry a zero
// payload (see ColumnVector), which is what keeps downstream kernels safe to
// run unconditionally over every lane.
// ---------------------------------------------------------------------------

void NullUnion(const uint8_t* an, const uint8_t* bn, size_t n, uint8_t* dn) {
  for (size_t i = 0; i < n; ++i) {
    dn[i] = static_cast<uint8_t>(an[i] | bn[i]);
  }
}

#if defined(__AVX2__)
// The AVX2 kernels compute all lanes and fix up NULLs afterwards; the scalar
// fallbacks fold the NULL check into the main loop instead.
void ZeroNullLanesI64(int64_t* d, const uint8_t* dn, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    d[i] = dn[i] != 0 ? 0 : d[i];
  }
}

// AVX2 specializations for the int64 arithmetic/compare kernels. They
// compute the same lane values as the scalar loops bit for bit; the null
// select runs as a separate (auto-vectorized) pass afterwards.

inline __m256i LoadI64x4(const int64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void StoreI64x4(int64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void AddI64Avx(const int64_t* a, const int64_t* b, size_t n, int64_t* d) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    StoreI64x4(d + i, _mm256_add_epi64(LoadI64x4(a + i), LoadI64x4(b + i)));
  }
  for (; i < n; ++i) d[i] = a[i] + b[i];
}

void SubI64Avx(const int64_t* a, const int64_t* b, size_t n, int64_t* d) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    StoreI64x4(d + i, _mm256_sub_epi64(LoadI64x4(a + i), LoadI64x4(b + i)));
  }
  for (; i < n; ++i) d[i] = a[i] - b[i];
}

// 64x64->64 low product from 32-bit partial products (AVX2 has no
// vpmullq): lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
void MulI64Avx(const int64_t* a, const int64_t* b, size_t n, int64_t* d) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = LoadI64x4(a + i);
    const __m256i vb = LoadI64x4(b + i);
    const __m256i ah = _mm256_srli_epi64(va, 32);
    const __m256i bh = _mm256_srli_epi64(vb, 32);
    const __m256i ll = _mm256_mul_epu32(va, vb);
    const __m256i lh = _mm256_mul_epu32(va, bh);
    const __m256i hl = _mm256_mul_epu32(ah, vb);
    const __m256i cross = _mm256_add_epi64(lh, hl);
    StoreI64x4(d + i,
               _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32)));
  }
  for (; i < n; ++i) {
    d[i] = static_cast<int64_t>(static_cast<uint64_t>(a[i]) *
                                static_cast<uint64_t>(b[i]));
  }
}

// Comparison results as 0/1 int64 lanes (bool payload convention).
void CmpI64Avx(VecOp op, const int64_t* a, const int64_t* b, size_t n,
               int64_t* d) {
  const __m256i one = _mm256_set1_epi64x(1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = LoadI64x4(a + i);
    const __m256i vb = LoadI64x4(b + i);
    __m256i bits;
    switch (op) {
      case VecOp::kCmpEqI64:
        bits = _mm256_srli_epi64(_mm256_cmpeq_epi64(va, vb), 63);
        break;
      case VecOp::kCmpNeI64:
        bits = _mm256_xor_si256(
            _mm256_srli_epi64(_mm256_cmpeq_epi64(va, vb), 63), one);
        break;
      case VecOp::kCmpLtI64:
        bits = _mm256_srli_epi64(_mm256_cmpgt_epi64(vb, va), 63);
        break;
      case VecOp::kCmpLeI64:
        bits = _mm256_xor_si256(
            _mm256_srli_epi64(_mm256_cmpgt_epi64(va, vb), 63), one);
        break;
      case VecOp::kCmpGtI64:
        bits = _mm256_srli_epi64(_mm256_cmpgt_epi64(va, vb), 63);
        break;
      default:  // kCmpGeI64
        bits = _mm256_xor_si256(
            _mm256_srli_epi64(_mm256_cmpgt_epi64(vb, va), 63), one);
        break;
    }
    StoreI64x4(d + i, bits);
  }
  for (; i < n; ++i) {
    switch (op) {
      case VecOp::kCmpEqI64: d[i] = a[i] == b[i] ? 1 : 0; break;
      case VecOp::kCmpNeI64: d[i] = a[i] != b[i] ? 1 : 0; break;
      case VecOp::kCmpLtI64: d[i] = a[i] < b[i] ? 1 : 0; break;
      case VecOp::kCmpLeI64: d[i] = a[i] <= b[i] ? 1 : 0; break;
      case VecOp::kCmpGtI64: d[i] = a[i] > b[i] ? 1 : 0; break;
      default: d[i] = a[i] >= b[i] ? 1 : 0; break;
    }
  }
}

#endif  // defined(__AVX2__)

void ArithI64(VecOp op, const int64_t* a, const uint8_t* an, const int64_t* b,
              const uint8_t* bn, size_t n, int64_t* d, uint8_t* dn,
              bool use_avx2) {
  (void)use_avx2;
  switch (op) {
    case VecOp::kAddI64:
      NullUnion(an, bn, n, dn);
#if defined(__AVX2__)
      if (use_avx2) {
        AddI64Avx(a, b, n, d);
        ZeroNullLanesI64(d, dn, n);
        return;
      }
#endif
      for (size_t i = 0; i < n; ++i) {
        const int64_t v = a[i] + b[i];
        d[i] = dn[i] != 0 ? 0 : v;
      }
      return;
    case VecOp::kSubI64:
      NullUnion(an, bn, n, dn);
#if defined(__AVX2__)
      if (use_avx2) {
        SubI64Avx(a, b, n, d);
        ZeroNullLanesI64(d, dn, n);
        return;
      }
#endif
      for (size_t i = 0; i < n; ++i) {
        const int64_t v = a[i] - b[i];
        d[i] = dn[i] != 0 ? 0 : v;
      }
      return;
    case VecOp::kMulI64:
      NullUnion(an, bn, n, dn);
#if defined(__AVX2__)
      if (use_avx2) {
        MulI64Avx(a, b, n, d);
        ZeroNullLanesI64(d, dn, n);
        return;
      }
#endif
      for (size_t i = 0; i < n; ++i) {
        const int64_t v = a[i] * b[i];
        d[i] = dn[i] != 0 ? 0 : v;
      }
      return;
    case VecOp::kDivI64:
      // Divisor 0 -> NULL, like EvalArithmetic. The safe divisor also guards
      // INT64_MIN / -1 (UB the interpreter would hit too; we return
      // INT64_MIN instead of trapping). NULL input lanes carry payload 0,
      // so they can never inject a trapping pair.
      for (size_t i = 0; i < n; ++i) {
        const int64_t bv = b[i];
        const uint8_t zero = bv == 0 ? 1 : 0;
        const bool ovf =
            a[i] == std::numeric_limits<int64_t>::min() && bv == -1;
        const int64_t safe = (zero != 0 || ovf) ? 1 : bv;
        const uint8_t nl = static_cast<uint8_t>(an[i] | bn[i] | zero);
        dn[i] = nl;
        const int64_t q = a[i] / safe;
        d[i] = nl != 0 ? 0 : q;
      }
      return;
    default:
      assert(false && "not an int64 arithmetic op");
  }
}

void ArithF64(VecOp op, const double* a, const uint8_t* an, const double* b,
              const uint8_t* bn, size_t n, double* d, uint8_t* dn) {
  switch (op) {
    case VecOp::kAddF64:
      for (size_t i = 0; i < n; ++i) {
        const uint8_t nl = static_cast<uint8_t>(an[i] | bn[i]);
        dn[i] = nl;
        const double v = a[i] + b[i];
        d[i] = nl != 0 ? 0.0 : v;
      }
      return;
    case VecOp::kSubF64:
      for (size_t i = 0; i < n; ++i) {
        const uint8_t nl = static_cast<uint8_t>(an[i] | bn[i]);
        dn[i] = nl;
        const double v = a[i] - b[i];
        d[i] = nl != 0 ? 0.0 : v;
      }
      return;
    case VecOp::kMulF64:
      for (size_t i = 0; i < n; ++i) {
        const uint8_t nl = static_cast<uint8_t>(an[i] | bn[i]);
        dn[i] = nl;
        const double v = a[i] * b[i];
        d[i] = nl != 0 ? 0.0 : v;
      }
      return;
    case VecOp::kDivF64:
      // Divisor 0.0 -> NULL, like EvalArithmetic; the safe divisor keeps the
      // FP environment clean of divide-by-zero flags.
      for (size_t i = 0; i < n; ++i) {
        const uint8_t zero = b[i] == 0.0 ? 1 : 0;
        const uint8_t nl = static_cast<uint8_t>(an[i] | bn[i] | zero);
        dn[i] = nl;
        const double safe = zero != 0 ? 1.0 : b[i];
        const double q = a[i] / safe;
        d[i] = nl != 0 ? 0.0 : q;
      }
      return;
    default:
      assert(false && "not a double arithmetic op");
  }
}

void CmpI64(VecOp op, const int64_t* a, const uint8_t* an, const int64_t* b,
            const uint8_t* bn, size_t n, int64_t* d, uint8_t* dn,
            bool use_avx2) {
  (void)use_avx2;
  NullUnion(an, bn, n, dn);
#if defined(__AVX2__)
  if (use_avx2) {
    CmpI64Avx(op, a, b, n, d);
    ZeroNullLanesI64(d, dn, n);
    return;
  }
#endif
  switch (op) {
    case VecOp::kCmpEqI64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] == b[i]);
      }
      return;
    case VecOp::kCmpNeI64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] != b[i]);
      }
      return;
    case VecOp::kCmpLtI64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] < b[i]);
      }
      return;
    case VecOp::kCmpLeI64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] <= b[i]);
      }
      return;
    case VecOp::kCmpGtI64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] > b[i]);
      }
      return;
    case VecOp::kCmpGeI64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] >= b[i]);
      }
      return;
    default:
      assert(false && "not an int64 comparison");
  }
}

// Double comparisons are phrased in terms of `<` and `>` only, exactly like
// Value::Compare (`x < y ? -1 : x > y ? 1 : 0`). That makes NaN lanes
// compare "equal" — Eq/Le/Ge true, Ne/Lt/Gt false — matching the
// interpreter bit for bit instead of IEEE semantics.
void CmpF64(VecOp op, const double* a, const uint8_t* an, const double* b,
            const uint8_t* bn, size_t n, int64_t* d, uint8_t* dn) {
  NullUnion(an, bn, n, dn);
  switch (op) {
    case VecOp::kCmpEqF64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & !(a[i] < b[i]) & !(a[i] > b[i]);
      }
      return;
    case VecOp::kCmpNeF64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & ((a[i] < b[i]) | (a[i] > b[i]));
      }
      return;
    case VecOp::kCmpLtF64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] < b[i]);
      }
      return;
    case VecOp::kCmpLeF64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & !(a[i] > b[i]);
      }
      return;
    case VecOp::kCmpGtF64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & (a[i] > b[i]);
      }
      return;
    case VecOp::kCmpGeF64:
      for (size_t i = 0; i < n; ++i) {
        d[i] = (dn[i] == 0) & !(a[i] < b[i]);
      }
      return;
    default:
      assert(false && "not a double comparison");
  }
}

// Branch-free Kleene AND/OR over 0/1 bool lanes: false dominates AND, true
// dominates OR; otherwise NULL if either side is NULL. Matches the
// interpreter's short-circuit evaluation result for every of the 9
// null/false/true input combinations.
void KleeneAnd(const int64_t* a, const uint8_t* an, const int64_t* b,
               const uint8_t* bn, size_t n, int64_t* d, uint8_t* dn) {
  for (size_t i = 0; i < n; ++i) {
    const int af = (an[i] == 0) & (a[i] == 0);
    const int bf = (bn[i] == 0) & (b[i] == 0);
    const int at = (an[i] == 0) & (a[i] != 0);
    const int bt = (bn[i] == 0) & (b[i] != 0);
    const int rfalse = af | bf;
    dn[i] = static_cast<uint8_t>((rfalse == 0) & ((an[i] | bn[i]) != 0));
    d[i] = at & bt;
  }
}

void KleeneOr(const int64_t* a, const uint8_t* an, const int64_t* b,
              const uint8_t* bn, size_t n, int64_t* d, uint8_t* dn) {
  for (size_t i = 0; i < n; ++i) {
    const int at = (an[i] == 0) & (a[i] != 0);
    const int bt = (bn[i] == 0) & (b[i] != 0);
    const int rtrue = at | bt;
    dn[i] = static_cast<uint8_t>((rtrue == 0) & ((an[i] | bn[i]) != 0));
    d[i] = rtrue;
  }
}

bool IsF64(DataType t) { return t == DataType::kDouble; }

}  // namespace

// ---------------------------------------------------------------------------
// Compiler: post-order walk emitting one instruction per interior node.
// Every node gets a fresh virtual register (programs are a handful of ops;
// distinct registers keep the kernels free of output/input aliasing).
// ---------------------------------------------------------------------------

uint16_t CompiledExpr::NewReg(DataType type) {
  reg_types_.push_back(type);
  return static_cast<uint16_t>(reg_types_.size() - 1);
}

uint16_t CompiledExpr::AddInputColumn(int col, DataType type) {
  for (size_t i = 0; i < input_cols_.size(); ++i) {
    if (input_cols_[i] == col) return static_cast<uint16_t>(i);
  }
  input_cols_.push_back(col);
  input_types_.push_back(type);
  return static_cast<uint16_t>(input_cols_.size() - 1);
}

uint16_t CompiledExpr::AddDictCodeInput(int col) {
  // Codes are consumed as int64 lanes (ColumnScan widens the stored int32
  // array); a string column is only ever referenced as codes, so the dedup
  // in AddInputColumn can never mix representations of one column.
  const uint16_t idx = AddInputColumn(col, DataType::kInt64);
  if (input_is_code_.size() < input_cols_.size()) {
    input_is_code_.resize(input_cols_.size(), 0);
  }
  input_is_code_[idx] = 1;
  return static_cast<uint16_t>(VecInsn::kInputRef | idx);
}

uint16_t CompiledExpr::EmitConstI64(int64_t v) {
  VecInsn insn;
  insn.op = VecOp::kLoadConst;
  insn.dst = NewReg(DataType::kInt64);
  insn.imm = v;
  insns_.push_back(insn);
  return insn.dst;
}

uint16_t CompiledExpr::EmitBoolBinary(VecOp op, uint16_t a, uint16_t b) {
  VecInsn insn;
  insn.op = op;
  insn.dst = NewReg(DataType::kBool);
  insn.a = a;
  insn.b = b;
  insns_.push_back(insn);
  return insn.dst;
}

/// String comparison / LIKE against dictionary-encoded storage. On return,
/// `*handled` distinguishes "no string operands, use the regular path"
/// (false) from "string case, `*out` holds the rewritten program" (true);
/// a false return value means strings are involved but unrewritable and the
/// whole compile must fail to the interpreter.
bool CompiledExpr::TryCompileDictBinary(const BinaryExpr& b, bool* handled,
                                        Operand* out) {
  *handled = false;
  const bool is_like = b.op() == BinaryOp::kLike;
  if (!is_like && !IsComparison(b.op())) return true;
  const bool l_str = b.left().result_type() == DataType::kString;
  const bool r_str = b.right().result_type() == DataType::kString;
  if (!l_str && !r_str) return true;
  *handled = true;
  if (dict_ == nullptr) return false;

  // Normalize to `column <op> literal`. LIKE binds the pattern on the
  // right; comparisons flip when the literal is on the left.
  const Expression* col_side = &b.left();
  const Expression* lit_side = &b.right();
  BinaryOp op = b.op();
  if (!is_like && col_side->kind() != ExprKind::kColumnRef &&
      lit_side->kind() == ExprKind::kColumnRef) {
    std::swap(col_side, lit_side);
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;  // kEq / kNe are symmetric.
    }
  }
  if (col_side->kind() != ExprKind::kColumnRef ||
      lit_side->kind() != ExprKind::kLiteral) {
    return false;
  }
  const int col = static_cast<const ColumnRefExpr&>(*col_side).column();
  const Value& lit = static_cast<const LiteralExpr&>(*lit_side).value();
  // A NULL literal makes every lane NULL; rare enough to leave to the
  // interpreter rather than special-case here.
  if (lit.is_null() || lit.type() != DataType::kString) return false;
  if (!dict_->HasDict(col)) return false;
  const std::string& s = lit.string_value();

  if (is_like) {
    const bool has_wild = s.find_first_of("%_") != std::string::npos;
    if (!has_wild) {
      op = BinaryOp::kEq;  // `s LIKE 'abc'` is exact match.
    } else {
      // Rewritable pattern: literal prefix + single trailing '%'.
      if (s.back() != '%' ||
          s.find_first_of("%_") != s.size() - 1) {
        return false;
      }
      std::string_view prefix(s.data(), s.size() - 1);
      int64_t lo = 0;
      int64_t hi = 0;
      if (!dict_->PrefixRange(col, prefix, &lo, &hi)) return false;
      const uint16_t code = AddDictCodeInput(col);
      // `lo <= code AND code < hi`: NULL code lanes make both comparisons
      // NULL and the Kleene AND NULL — exactly `NULL LIKE 'p%'`.
      const uint16_t ge_lo =
          EmitBoolBinary(VecOp::kCmpGeI64, code, EmitConstI64(lo));
      const uint16_t lt_hi =
          EmitBoolBinary(VecOp::kCmpLtI64, code, EmitConstI64(hi));
      *out = Operand{EmitBoolBinary(VecOp::kAnd, ge_lo, lt_hi),
                     DataType::kBool};
      return true;
    }
  }

  const uint16_t code = AddDictCodeInput(col);
  VecOp cmp = VecOp::kCmpEqI64;
  int64_t rank = 0;
  switch (op) {
    case BinaryOp::kEq:
      // -1 when absent: matches no stored code, NULL for NULL lanes.
      cmp = VecOp::kCmpEqI64;
      rank = dict_->CodeOf(col, s);
      break;
    case BinaryOp::kNe:
      cmp = VecOp::kCmpNeI64;
      rank = dict_->CodeOf(col, s);
      break;
    // The dictionary is sorted, so order ranks translate ordered string
    // comparisons: codes [0, LowerBound) are < s, [0, UpperBound) are <= s.
    case BinaryOp::kLt:
      cmp = VecOp::kCmpLtI64;
      rank = dict_->LowerBound(col, s);
      break;
    case BinaryOp::kLe:
      cmp = VecOp::kCmpLtI64;
      rank = dict_->UpperBound(col, s);
      break;
    case BinaryOp::kGt:
      cmp = VecOp::kCmpGeI64;
      rank = dict_->UpperBound(col, s);
      break;
    case BinaryOp::kGe:
      cmp = VecOp::kCmpGeI64;
      rank = dict_->LowerBound(col, s);
      break;
    default:
      return false;
  }
  *out = Operand{EmitBoolBinary(cmp, code, EmitConstI64(rank)),
                 DataType::kBool};
  return true;
}

CompiledExpr::Operand CompiledExpr::EnsureF64(Operand o) {
  if (IsF64(o.type)) return o;
  VecInsn insn;
  insn.op = VecOp::kCastI64ToF64;
  insn.dst = NewReg(DataType::kDouble);
  insn.a = o.ref;
  insns_.push_back(insn);
  return Operand{insn.dst, DataType::kDouble};
}

bool CompiledExpr::CompileNode(const Expression& expr, Operand* out) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (ref.result_type() == DataType::kString) return false;
      const uint16_t idx =
          AddInputColumn(ref.column(), ref.result_type());
      *out = Operand{static_cast<uint16_t>(VecInsn::kInputRef | idx),
                     ref.result_type()};
      return true;
    }
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (v.type() == DataType::kString) return false;
      VecInsn insn;
      insn.op = VecOp::kLoadConst;
      insn.dst = NewReg(v.type());
      insn.imm_null = v.is_null();
      if (!v.is_null()) {
        insn.imm = v.type() == DataType::kDouble
                       ? std::bit_cast<int64_t>(v.double_value())
                       : v.int64_value();
      }
      insns_.push_back(insn);
      *out = Operand{insn.dst, v.type()};
      return true;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      Operand a;
      if (!CompileNode(u.operand(), &a)) return false;
      VecInsn insn;
      insn.a = a.ref;
      switch (u.op()) {
        case UnaryOp::kNot:
          insn.op = VecOp::kNot;
          insn.dst = NewReg(DataType::kBool);
          break;
        case UnaryOp::kNegate:
          insn.op = IsF64(a.type) ? VecOp::kNegF64 : VecOp::kNegI64;
          insn.dst = NewReg(u.result_type());
          break;
        case UnaryOp::kIsNull:
          insn.op = VecOp::kIsNull;
          insn.dst = NewReg(DataType::kBool);
          break;
        case UnaryOp::kIsNotNull:
          insn.op = VecOp::kIsNotNull;
          insn.dst = NewReg(DataType::kBool);
          break;
      }
      insns_.push_back(insn);
      *out = Operand{insn.dst, u.result_type()};
      return true;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      {
        bool handled = false;
        if (!TryCompileDictBinary(b, &handled, out)) return false;
        if (handled) return true;
      }
      if (b.op() == BinaryOp::kLike) return false;
      Operand l, r;
      if (!CompileNode(b.left(), &l)) return false;
      if (!CompileNode(b.right(), &r)) return false;
      VecInsn insn;
      if (b.op() == BinaryOp::kAnd || b.op() == BinaryOp::kOr) {
        insn.op = b.op() == BinaryOp::kAnd ? VecOp::kAnd : VecOp::kOr;
        insn.dst = NewReg(DataType::kBool);
      } else if (IsComparison(b.op())) {
        const bool f64 = IsF64(l.type) || IsF64(r.type);
        if (f64) {
          l = EnsureF64(l);
          r = EnsureF64(r);
        }
        switch (b.op()) {
          case BinaryOp::kEq:
            insn.op = f64 ? VecOp::kCmpEqF64 : VecOp::kCmpEqI64;
            break;
          case BinaryOp::kNe:
            insn.op = f64 ? VecOp::kCmpNeF64 : VecOp::kCmpNeI64;
            break;
          case BinaryOp::kLt:
            insn.op = f64 ? VecOp::kCmpLtF64 : VecOp::kCmpLtI64;
            break;
          case BinaryOp::kLe:
            insn.op = f64 ? VecOp::kCmpLeF64 : VecOp::kCmpLeI64;
            break;
          case BinaryOp::kGt:
            insn.op = f64 ? VecOp::kCmpGtF64 : VecOp::kCmpGtI64;
            break;
          default:
            insn.op = f64 ? VecOp::kCmpGeF64 : VecOp::kCmpGeI64;
            break;
        }
        insn.dst = NewReg(DataType::kBool);
      } else {
        // Arithmetic: MakeBinary types the result double iff either operand
        // is double (the interpreter then widens both with AsDouble).
        const bool f64 = b.result_type() == DataType::kDouble;
        if (f64) {
          l = EnsureF64(l);
          r = EnsureF64(r);
        }
        switch (b.op()) {
          case BinaryOp::kAdd:
            insn.op = f64 ? VecOp::kAddF64 : VecOp::kAddI64;
            break;
          case BinaryOp::kSub:
            insn.op = f64 ? VecOp::kSubF64 : VecOp::kSubI64;
            break;
          case BinaryOp::kMul:
            insn.op = f64 ? VecOp::kMulF64 : VecOp::kMulI64;
            break;
          default:
            insn.op = f64 ? VecOp::kDivF64 : VecOp::kDivI64;
            break;
        }
        insn.dst = NewReg(b.result_type());
      }
      insn.a = l.ref;
      insn.b = r.ref;
      insns_.push_back(insn);
      *out = Operand{insn.dst, b.result_type()};
      return true;
    }
  }
  return false;
}

std::unique_ptr<CompiledExpr> CompiledExpr::Compile(const Expression& expr,
                                                    const Schema& schema) {
  return Compile(expr, schema, nullptr);
}

std::unique_ptr<CompiledExpr> CompiledExpr::Compile(const Expression& expr,
                                                    const Schema& schema,
                                                    const DictView* dict) {
  auto compiled = std::unique_ptr<CompiledExpr>(new CompiledExpr());
  compiled->dict_ = dict;
  Operand root;
  if (!compiled->CompileNode(expr, &root)) return nullptr;
  for (int col : compiled->input_cols_) {
    if (col < 0 || static_cast<size_t>(col) >= schema.num_columns()) {
      return nullptr;  // Unbound column reference.
    }
  }
  compiled->result_ref_ = root.ref;
  compiled->result_type_ = expr.result_type();
  assert(root.type == expr.result_type());
  compiled->regs_.resize(compiled->reg_types_.size());
  compiled->dict_ = nullptr;  // Compile-time only; the program is standalone.
  return compiled;
}

// ---------------------------------------------------------------------------
// Executor.
// ---------------------------------------------------------------------------

bool CompiledExpr::AvxEnabled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

const ColumnVector& CompiledExpr::Vec(uint16_t ref,
                                      const VectorBatch& batch) const {
  if ((ref & VecInsn::kInputRef) != 0) {
    return batch.Get(input_cols_[ref & ~VecInsn::kInputRef]);
  }
  return regs_[ref];
}

const ColumnVector& CompiledExpr::Run(const VectorBatch& batch) {
  const size_t n = batch.rows();
  for (const VecInsn& insn : insns_) {
    ColumnVector& dst = regs_[insn.dst];
    dst.Reset(reg_types_[insn.dst], n);
    uint8_t* dn = dst.nulls.data();
    switch (insn.op) {
      case VecOp::kLoadConst: {
        const uint8_t nl = insn.imm_null ? 1 : 0;
        if (dst.is_double()) {
          const double v =
              insn.imm_null ? 0.0 : std::bit_cast<double>(insn.imm);
          for (size_t i = 0; i < n; ++i) dst.f64[i] = v;
        } else {
          const int64_t v = insn.imm_null ? 0 : insn.imm;
          for (size_t i = 0; i < n; ++i) dst.i64[i] = v;
        }
        for (size_t i = 0; i < n; ++i) dn[i] = nl;
        break;
      }
      case VecOp::kCastI64ToF64: {
        const ColumnVector& a = Vec(insn.a, batch);
        const int64_t* av = a.i64_data();
        const uint8_t* an = a.null_data();
        for (size_t i = 0; i < n; ++i) {
          dst.f64[i] = static_cast<double>(av[i]);
          dn[i] = an[i];
        }
        break;
      }
      case VecOp::kAddI64:
      case VecOp::kSubI64:
      case VecOp::kMulI64:
      case VecOp::kDivI64: {
        const ColumnVector& a = Vec(insn.a, batch);
        const ColumnVector& b = Vec(insn.b, batch);
        ArithI64(insn.op, a.i64_data(), a.null_data(), b.i64_data(),
                 b.null_data(), n, dst.i64.data(), dn, use_avx2_);
        break;
      }
      case VecOp::kAddF64:
      case VecOp::kSubF64:
      case VecOp::kMulF64:
      case VecOp::kDivF64: {
        const ColumnVector& a = Vec(insn.a, batch);
        const ColumnVector& b = Vec(insn.b, batch);
        ArithF64(insn.op, a.f64_data(), a.null_data(), b.f64_data(),
                 b.null_data(), n, dst.f64.data(), dn);
        break;
      }
      case VecOp::kCmpEqI64:
      case VecOp::kCmpNeI64:
      case VecOp::kCmpLtI64:
      case VecOp::kCmpLeI64:
      case VecOp::kCmpGtI64:
      case VecOp::kCmpGeI64: {
        const ColumnVector& a = Vec(insn.a, batch);
        const ColumnVector& b = Vec(insn.b, batch);
        CmpI64(insn.op, a.i64_data(), a.null_data(), b.i64_data(),
               b.null_data(), n, dst.i64.data(), dn, use_avx2_);
        break;
      }
      case VecOp::kCmpEqF64:
      case VecOp::kCmpNeF64:
      case VecOp::kCmpLtF64:
      case VecOp::kCmpLeF64:
      case VecOp::kCmpGtF64:
      case VecOp::kCmpGeF64: {
        const ColumnVector& a = Vec(insn.a, batch);
        const ColumnVector& b = Vec(insn.b, batch);
        CmpF64(insn.op, a.f64_data(), a.null_data(), b.f64_data(),
               b.null_data(), n, dst.i64.data(), dn);
        break;
      }
      case VecOp::kAnd: {
        const ColumnVector& a = Vec(insn.a, batch);
        const ColumnVector& b = Vec(insn.b, batch);
        KleeneAnd(a.i64_data(), a.null_data(), b.i64_data(), b.null_data(),
                  n, dst.i64.data(), dn);
        break;
      }
      case VecOp::kOr: {
        const ColumnVector& a = Vec(insn.a, batch);
        const ColumnVector& b = Vec(insn.b, batch);
        KleeneOr(a.i64_data(), a.null_data(), b.i64_data(), b.null_data(),
                 n, dst.i64.data(), dn);
        break;
      }
      case VecOp::kNot: {
        const ColumnVector& a = Vec(insn.a, batch);
        const int64_t* av = a.i64_data();
        const uint8_t* an = a.null_data();
        int64_t* d = dst.i64.data();
        for (size_t i = 0; i < n; ++i) {
          d[i] = (an[i] == 0) & (av[i] == 0);
          dn[i] = an[i];
        }
        break;
      }
      case VecOp::kNegI64: {
        const ColumnVector& a = Vec(insn.a, batch);
        const int64_t* av = a.i64_data();
        const uint8_t* an = a.null_data();
        int64_t* d = dst.i64.data();
        // NULL lanes carry payload 0, and -0 == 0, so no select is needed.
        for (size_t i = 0; i < n; ++i) {
          d[i] = -av[i];
          dn[i] = an[i];
        }
        break;
      }
      case VecOp::kNegF64: {
        const ColumnVector& a = Vec(insn.a, batch);
        const double* av = a.f64_data();
        const uint8_t* an = a.null_data();
        double* d = dst.f64.data();
        for (size_t i = 0; i < n; ++i) {
          d[i] = -av[i];
          dn[i] = an[i];
        }
        break;
      }
      case VecOp::kIsNull: {
        const ColumnVector& a = Vec(insn.a, batch);
        const uint8_t* an = a.null_data();
        int64_t* d = dst.i64.data();
        for (size_t i = 0; i < n; ++i) {
          d[i] = an[i] != 0;
          dn[i] = 0;
        }
        break;
      }
      case VecOp::kIsNotNull: {
        const ColumnVector& a = Vec(insn.a, batch);
        const uint8_t* an = a.null_data();
        int64_t* d = dst.i64.data();
        for (size_t i = 0; i < n; ++i) {
          d[i] = an[i] == 0;
          dn[i] = 0;
        }
        break;
      }
    }
  }
  return Vec(result_ref_, batch);
}

void CompiledExpr::RunFilter(const VectorBatch& batch, SelectionVector* sel) {
  assert(result_type_ == DataType::kBool);
  const ColumnVector& r = Run(batch);
  const size_t n = batch.rows();
  if (sel->idx.size() < n) sel->idx.resize(n);
  const int64_t* v = r.i64_data();
  const uint8_t* nu = r.null_data();
  size_t cnt = 0;
  for (size_t i = 0; i < n; ++i) {
    // Branch-free compaction: the write always happens, the cursor advances
    // by the (non-NULL true) predicate result.
    sel->idx[cnt] = static_cast<uint32_t>(i);
    cnt += static_cast<size_t>((nu[i] == 0) & (v[i] != 0));
  }
  sel->count = cnt;
}

Value LaneValue(const ColumnVector& v, size_t i) {
  if (v.null_data()[i] != 0) return Value::Null(v.type);
  switch (v.type) {
    case DataType::kBool:
      return Value::Bool(v.i64_data()[i] != 0);
    case DataType::kInt64:
      return Value::Int64(v.i64_data()[i]);
    case DataType::kDouble:
      return Value::Double(v.f64_data()[i]);
    case DataType::kDate:
      return Value::Date(v.i64_data()[i]);
    case DataType::kString:
      break;  // Strings are never vectorized.
  }
  return Value::Null(v.type);
}

}  // namespace bufferdb

#include "sim/code_layout.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace bufferdb::sim {

namespace {

struct SizeSpec {
  FuncId id;
  const char* name;
  uint32_t size_bytes;
};

// Sizes calibrated so that per-module footprints (base funcs + typical
// per-query funcs) reproduce the paper's Table 2:
//   Scan w/o preds 9K     = exec_common + scan_core
//   Scan w/ preds 13K     = + expr_cmp + expr_arith
//   IndexScan 14K         = exec_common + index_core + expr_cmp
//   Sort 14K              = exec_common + sort_core + expr_cmp
//   NestLoop 11K          = exec_common + nestloop_core
//   MergeJoin 12K         = exec_common + mergejoin_core + expr_cmp
//   HashJoin build 12K    = exec_common + hash_build_core
//   HashJoin probe 10K    = exec_common + hash_probe_core + expr_cmp
//   Aggregation base 10K  = exec_common + agg_core + expr_arith
//   COUNT <1K, MIN/MAX 1.6K, SUM 2.7K, AVG = SUM + 2.0K extra
//   Buffer <1K
// Deviation from Table 2: the paper lists AVG at 6.3K, but with that size
// the Query 1 aggregation module alone would exceed the 16KB trace cache and
// buffering could not have produced the 80% miss reduction of Fig. 10; we
// keep AVG = 4.7K total so that Q1's aggregation (15.5K) fits while the
// combined Scan+Aggregation footprint (20.5K) does not.
constexpr SizeSpec kSizes[] = {
    {FuncId::kExecCommon, "exec_common", 5500},
    {FuncId::kExprArith, "expr_arith", 2500},
    {FuncId::kExprCmp, "expr_cmp", 1500},
    {FuncId::kScanCore, "scan_core", 3500},
    {FuncId::kIndexCore, "index_core", 7000},
    {FuncId::kSortCore, "sort_core", 7000},
    {FuncId::kNestLoopCore, "nestloop_core", 5500},
    {FuncId::kMergeJoinCore, "mergejoin_core", 5000},
    {FuncId::kHashBuildCore, "hash_build_core", 6500},
    {FuncId::kHashProbeCore, "hash_probe_core", 3000},
    {FuncId::kAggCore, "agg_core", 2000},
    {FuncId::kAggCount, "agg_count", 800},
    {FuncId::kAggSum, "agg_sum", 2700},
    {FuncId::kAggAvgExtra, "agg_avg_extra", 2000},
    {FuncId::kAggMin, "agg_min", 1600},
    {FuncId::kAggMax, "agg_max", 1600},
    {FuncId::kHashAggCore, "hash_agg_core", 4500},
    {FuncId::kBufferCore, "buffer_core", 500},
    {FuncId::kMaterializeCore, "materialize_core", 1200},
    {FuncId::kProjectCore, "project_core", 1500},
    {FuncId::kLimitCore, "limit_core", 300},
    {FuncId::kFilterCore, "filter_core", 1000},
    {FuncId::kStreamAggCore, "stream_agg_core", 1500},
    {FuncId::kDistinctCore, "distinct_core", 2000},
    {FuncId::kTopNCore, "topn_core", 2500},
    {FuncId::kColdErrorPaths, "cold_error_paths", 6000},
    {FuncId::kColdRecovery, "cold_recovery", 4500},
    {FuncId::kColdTypeCoercion, "cold_type_coercion", 3000},
    // Vectorized expression kernels: the flat opcode dispatch loop plus the
    // handful of tight per-type loops a compiled program touches. Much
    // smaller than the tree-walking interpreter (expr_arith + expr_cmp =
    // 4.0K) because there is no Value boxing, type dispatch, or recursion.
    {FuncId::kVectorEvalCore, "vector_eval_core", 1200},
    // Columnar scan body: morsel/limit bookkeeping, zone-map checks, alias
    // publication and dictionary-code widening. No per-row slot decode or
    // null-bitmap extraction loops, so it stays well under scan_core.
    {FuncId::kColumnScanCore, "column_scan_core", 1800},
    // Fused-pipeline drive loop (DESIGN.md §15): row gather, combined
    // selection mask, survivor materialization. Replaces the per-stage
    // NextBatch dispatch glue, so it must stay well under exec_common.
    {FuncId::kFusedPipelineCore, "fused_pipeline_core", 1100},
};
static_assert(sizeof(kSizes) / sizeof(kSizes[0]) == kNumFuncIds);

// Roughly one conditional branch per 48 bytes of code (null checks, type
// dispatch, overflow checks, loop back-edges — §4 of the paper).
constexpr uint32_t kBytesPerBranchSite = 48;

constexpr FuncId kSeqScanFuncs[] = {FuncId::kExecCommon, FuncId::kScanCore};
constexpr FuncId kSeqScanFilteredFuncs[] = {
    FuncId::kExecCommon, FuncId::kScanCore, FuncId::kExprCmp,
    FuncId::kExprArith};
constexpr FuncId kIndexScanFuncs[] = {FuncId::kExecCommon, FuncId::kIndexCore,
                                      FuncId::kExprCmp};
constexpr FuncId kSortFuncs[] = {FuncId::kExecCommon, FuncId::kSortCore,
                                 FuncId::kExprCmp};
constexpr FuncId kNestLoopFuncs[] = {FuncId::kExecCommon,
                                     FuncId::kNestLoopCore};
constexpr FuncId kMergeJoinFuncs[] = {FuncId::kExecCommon,
                                      FuncId::kMergeJoinCore, FuncId::kExprCmp};
constexpr FuncId kHashBuildFuncs[] = {FuncId::kExecCommon,
                                      FuncId::kHashBuildCore};
constexpr FuncId kHashProbeFuncs[] = {FuncId::kExecCommon,
                                      FuncId::kHashProbeCore, FuncId::kExprCmp};
constexpr FuncId kAggregationFuncs[] = {FuncId::kExecCommon, FuncId::kAggCore,
                                        FuncId::kExprArith};
constexpr FuncId kHashAggregationFuncs[] = {
    FuncId::kExecCommon, FuncId::kAggCore, FuncId::kExprArith,
    FuncId::kHashAggCore};
constexpr FuncId kBufferFuncs[] = {FuncId::kBufferCore};
constexpr FuncId kMaterializeFuncs[] = {FuncId::kExecCommon,
                                        FuncId::kMaterializeCore};
constexpr FuncId kProjectFuncs[] = {FuncId::kExecCommon, FuncId::kProjectCore,
                                    FuncId::kExprArith};
constexpr FuncId kLimitFuncs[] = {FuncId::kExecCommon, FuncId::kLimitCore};
constexpr FuncId kFilterFuncs[] = {FuncId::kExecCommon, FuncId::kFilterCore,
                                   FuncId::kExprCmp, FuncId::kExprArith};
constexpr FuncId kStreamAggFuncs[] = {FuncId::kExecCommon, FuncId::kAggCore,
                                      FuncId::kExprArith, FuncId::kExprCmp,
                                      FuncId::kStreamAggCore};
constexpr FuncId kDistinctFuncs[] = {FuncId::kExecCommon,
                                     FuncId::kDistinctCore};
constexpr FuncId kTopNFuncs[] = {FuncId::kExecCommon, FuncId::kTopNCore,
                                 FuncId::kExprCmp};
constexpr FuncId kColumnScanFuncs[] = {FuncId::kExecCommon,
                                       FuncId::kColumnScanCore};
// Deliberately excludes kExecCommon: eliminating the per-stage dispatch glue
// is the point of fusion. The operator unions in its stages' kernel cores
// (scan/filter/project/vector_eval) per plan.
constexpr FuncId kFusedPipelineFuncs[] = {FuncId::kFusedPipelineCore};
constexpr FuncId kStaticOnlyFuncs[] = {FuncId::kColdErrorPaths,
                                       FuncId::kColdRecovery,
                                       FuncId::kColdTypeCoercion};

}  // namespace

CodeLayout::CodeLayout() {
  uint32_t sizes[kNumFuncIds];
  for (int i = 0; i < kNumFuncIds; ++i) {
    assert(static_cast<int>(kSizes[i].id) == i);
    sizes[i] = kSizes[i].size_bytes;
  }
  Build(sizes);
}

void CodeLayout::Build(const uint32_t* size_bytes) {
  uint64_t next_line = 0;  // Global line counter across all functions.
  total_code_bytes_ = 0;
  for (int i = 0; i < kNumFuncIds; ++i) {
    const SizeSpec& spec = kSizes[i];
    uint32_t bytes = size_bytes[i];
    uint32_t lines = (bytes + 63) / 64;
    funcs_[i] = FuncInfo{
        spec.id,
        spec.name,
        kCodeBase + next_line * kLineStrideBytes,
        bytes,
        lines,
        std::max(bytes / kBytesPerBranchSite, 1u),
    };
    next_line += lines;
    total_code_bytes_ += bytes;
  }
}

namespace {

// Slot holding the calibrated layout, when one has been installed. Reads go
// through Default(); writes only happen in LoadCalibrationText /
// ResetCalibration, which the contract restricts to startup.
const CodeLayout*& CalibratedLayoutSlot() {
  static const CodeLayout* slot = nullptr;
  return slot;
}

// A function's size never calibrates below one cache line: the audit
// measures whole symbols and the simulator fetches whole lines.
constexpr uint32_t kMinCalibratedBytes = 64;
constexpr uint32_t kMaxCalibratedBytes = 16u << 20;

}  // namespace

const CodeLayout& CodeLayout::Default() {
  static const CodeLayout* layout = new CodeLayout();
  const CodeLayout* calibrated = CalibratedLayoutSlot();
  return calibrated != nullptr ? *calibrated : *layout;
}

bool CodeLayout::LoadCalibrationText(const std::string& text,
                                     std::string* error) {
  uint32_t sizes[kNumFuncIds];
  bool pinned[kNumFuncIds] = {};
  for (int i = 0; i < kNumFuncIds; ++i) sizes[i] = kSizes[i].size_bytes;

  std::vector<std::pair<ModuleId, uint64_t>> module_targets;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "calibration line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tok(line);
    std::string kind;
    if (!(tok >> kind) || kind[0] == '#') continue;
    std::string name;
    long long bytes = 0;
    std::string extra;
    if (!(tok >> name >> bytes) || (tok >> extra)) {
      return fail("malformed line (want `func|module <name> <bytes>`): " +
                  line);
    }
    if (bytes <= 0) return fail("non-positive size for " + name);
    if (kind == "func") {
      FuncId id;
      if (!FuncIdFromName(name, &id)) return fail("unknown function " + name);
      sizes[static_cast<int>(id)] = static_cast<uint32_t>(
          std::clamp<long long>(bytes, kMinCalibratedBytes,
                                kMaxCalibratedBytes));
      pinned[static_cast<int>(id)] = true;
    } else if (kind == "module") {
      ModuleId module;
      if (!ModuleIdFromName(name, &module)) {
        return fail("unknown module " + name);
      }
      module_targets.emplace_back(module, static_cast<uint64_t>(bytes));
    } else {
      return fail("unknown directive " + kind);
    }
  }

  // Meet the module targets by iterative proportional fitting: each round
  // scales every un-pinned function by the mean target/current ratio of the
  // modules containing it, so functions shared between modules (exec_common,
  // the expression evaluators) converge on a compromise size instead of
  // ping-ponging between conflicting targets.
  for (int round = 0; round < 8 && !module_targets.empty(); ++round) {
    double ratio_sum[kNumFuncIds] = {};
    int ratio_count[kNumFuncIds] = {};
    for (const auto& [module, target] : module_targets) {
      uint64_t current = 0;
      for (FuncId f : ModuleBaseFuncs(module)) {
        current += sizes[static_cast<int>(f)];
      }
      if (current == 0) continue;
      double ratio =
          static_cast<double>(target) / static_cast<double>(current);
      for (FuncId f : ModuleBaseFuncs(module)) {
        int i = static_cast<int>(f);
        if (pinned[i]) continue;
        ratio_sum[i] += ratio;
        ratio_count[i] += 1;
      }
    }
    for (int i = 0; i < kNumFuncIds; ++i) {
      if (ratio_count[i] == 0) continue;
      double scaled = sizes[i] * (ratio_sum[i] / ratio_count[i]);
      sizes[i] = static_cast<uint32_t>(
          std::clamp<double>(std::round(scaled), kMinCalibratedBytes,
                             kMaxCalibratedBytes));
    }
  }

  auto* layout = new CodeLayout();
  layout->Build(sizes);
  const CodeLayout* old = CalibratedLayoutSlot();
  CalibratedLayoutSlot() = layout;
  delete old;
  return true;
}

bool CodeLayout::LoadCalibration(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open calibration file " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return LoadCalibrationText(text.str(), error);
}

void CodeLayout::ResetCalibration() {
  const CodeLayout* old = CalibratedLayoutSlot();
  CalibratedLayoutSlot() = nullptr;
  delete old;
}

std::span<const FuncId> ModuleBaseFuncs(ModuleId module) {
  switch (module) {
    case ModuleId::kSeqScan:
      return kSeqScanFuncs;
    case ModuleId::kSeqScanFiltered:
      return kSeqScanFilteredFuncs;
    case ModuleId::kIndexScan:
      return kIndexScanFuncs;
    case ModuleId::kSort:
      return kSortFuncs;
    case ModuleId::kNestLoopJoin:
      return kNestLoopFuncs;
    case ModuleId::kMergeJoin:
      return kMergeJoinFuncs;
    case ModuleId::kHashJoinBuild:
      return kHashBuildFuncs;
    case ModuleId::kHashJoinProbe:
      return kHashProbeFuncs;
    case ModuleId::kAggregation:
      return kAggregationFuncs;
    case ModuleId::kHashAggregation:
      return kHashAggregationFuncs;
    case ModuleId::kBuffer:
      return kBufferFuncs;
    case ModuleId::kMaterialize:
      return kMaterializeFuncs;
    case ModuleId::kProject:
      return kProjectFuncs;
    case ModuleId::kLimit:
      return kLimitFuncs;
    case ModuleId::kFilter:
      return kFilterFuncs;
    case ModuleId::kStreamAggregation:
      return kStreamAggFuncs;
    case ModuleId::kDistinct:
      return kDistinctFuncs;
    case ModuleId::kTopN:
      return kTopNFuncs;
    case ModuleId::kColumnScan:
      return kColumnScanFuncs;
    case ModuleId::kFusedPipeline:
      return kFusedPipelineFuncs;
    case ModuleId::kNumModules:
      break;
  }
  return {};
}

const char* ModuleName(ModuleId module) {
  switch (module) {
    case ModuleId::kSeqScan:
      return "Scan";
    case ModuleId::kSeqScanFiltered:
      return "Scan(pred)";
    case ModuleId::kIndexScan:
      return "IndexScan";
    case ModuleId::kSort:
      return "Sort";
    case ModuleId::kNestLoopJoin:
      return "NestLoopJoin";
    case ModuleId::kMergeJoin:
      return "MergeJoin";
    case ModuleId::kHashJoinBuild:
      return "HashJoin(build)";
    case ModuleId::kHashJoinProbe:
      return "HashJoin(probe)";
    case ModuleId::kAggregation:
      return "Aggregation";
    case ModuleId::kHashAggregation:
      return "HashAggregation";
    case ModuleId::kBuffer:
      return "Buffer";
    case ModuleId::kMaterialize:
      return "Materialize";
    case ModuleId::kProject:
      return "Project";
    case ModuleId::kLimit:
      return "Limit";
    case ModuleId::kFilter:
      return "Filter";
    case ModuleId::kStreamAggregation:
      return "StreamAggregation";
    case ModuleId::kDistinct:
      return "Distinct";
    case ModuleId::kTopN:
      return "TopN";
    case ModuleId::kColumnScan:
      return "ColumnScan";
    case ModuleId::kFusedPipeline:
      return "FusedPipeline";
    case ModuleId::kNumModules:
      break;
  }
  return "Unknown";
}

const char* FuncName(FuncId id) {
  return CodeLayout::Default().info(id).name;
}

std::span<const FuncId> StaticOnlyFuncs() { return kStaticOnlyFuncs; }

bool ModuleIdFromName(const std::string& name, ModuleId* out) {
  for (int m = 0; m < kNumModuleIds; ++m) {
    auto module = static_cast<ModuleId>(m);
    if (name == ModuleName(module)) {
      *out = module;
      return true;
    }
  }
  return false;
}

bool FuncIdFromName(const std::string& name, FuncId* out) {
  for (int f = 0; f < kNumFuncIds; ++f) {
    auto id = static_cast<FuncId>(f);
    if (name == FuncName(id)) {
      *out = id;
      return true;
    }
  }
  return false;
}

}  // namespace bufferdb::sim

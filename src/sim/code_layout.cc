#include "sim/code_layout.h"

#include <cassert>

namespace bufferdb::sim {

namespace {

struct SizeSpec {
  FuncId id;
  const char* name;
  uint32_t size_bytes;
};

// Sizes calibrated so that per-module footprints (base funcs + typical
// per-query funcs) reproduce the paper's Table 2:
//   Scan w/o preds 9K     = exec_common + scan_core
//   Scan w/ preds 13K     = + expr_cmp + expr_arith
//   IndexScan 14K         = exec_common + index_core + expr_cmp
//   Sort 14K              = exec_common + sort_core + expr_cmp
//   NestLoop 11K          = exec_common + nestloop_core
//   MergeJoin 12K         = exec_common + mergejoin_core + expr_cmp
//   HashJoin build 12K    = exec_common + hash_build_core
//   HashJoin probe 10K    = exec_common + hash_probe_core + expr_cmp
//   Aggregation base 10K  = exec_common + agg_core + expr_arith
//   COUNT <1K, MIN/MAX 1.6K, SUM 2.7K, AVG = SUM + 2.0K extra
//   Buffer <1K
// Deviation from Table 2: the paper lists AVG at 6.3K, but with that size
// the Query 1 aggregation module alone would exceed the 16KB trace cache and
// buffering could not have produced the 80% miss reduction of Fig. 10; we
// keep AVG = 4.7K total so that Q1's aggregation (15.5K) fits while the
// combined Scan+Aggregation footprint (20.5K) does not.
constexpr SizeSpec kSizes[] = {
    {FuncId::kExecCommon, "exec_common", 5500},
    {FuncId::kExprArith, "expr_arith", 2500},
    {FuncId::kExprCmp, "expr_cmp", 1500},
    {FuncId::kScanCore, "scan_core", 3500},
    {FuncId::kIndexCore, "index_core", 7000},
    {FuncId::kSortCore, "sort_core", 7000},
    {FuncId::kNestLoopCore, "nestloop_core", 5500},
    {FuncId::kMergeJoinCore, "mergejoin_core", 5000},
    {FuncId::kHashBuildCore, "hash_build_core", 6500},
    {FuncId::kHashProbeCore, "hash_probe_core", 3000},
    {FuncId::kAggCore, "agg_core", 2000},
    {FuncId::kAggCount, "agg_count", 800},
    {FuncId::kAggSum, "agg_sum", 2700},
    {FuncId::kAggAvgExtra, "agg_avg_extra", 2000},
    {FuncId::kAggMin, "agg_min", 1600},
    {FuncId::kAggMax, "agg_max", 1600},
    {FuncId::kHashAggCore, "hash_agg_core", 4500},
    {FuncId::kBufferCore, "buffer_core", 500},
    {FuncId::kMaterializeCore, "materialize_core", 1200},
    {FuncId::kProjectCore, "project_core", 1500},
    {FuncId::kLimitCore, "limit_core", 300},
    {FuncId::kFilterCore, "filter_core", 1000},
    {FuncId::kStreamAggCore, "stream_agg_core", 1500},
    {FuncId::kDistinctCore, "distinct_core", 2000},
    {FuncId::kTopNCore, "topn_core", 2500},
    {FuncId::kColdErrorPaths, "cold_error_paths", 6000},
    {FuncId::kColdRecovery, "cold_recovery", 4500},
    {FuncId::kColdTypeCoercion, "cold_type_coercion", 3000},
    // Vectorized expression kernels: the flat opcode dispatch loop plus the
    // handful of tight per-type loops a compiled program touches. Much
    // smaller than the tree-walking interpreter (expr_arith + expr_cmp =
    // 4.0K) because there is no Value boxing, type dispatch, or recursion.
    {FuncId::kVectorEvalCore, "vector_eval_core", 1200},
    // Columnar scan body: morsel/limit bookkeeping, zone-map checks, alias
    // publication and dictionary-code widening. No per-row slot decode or
    // null-bitmap extraction loops, so it stays well under scan_core.
    {FuncId::kColumnScanCore, "column_scan_core", 1800},
};
static_assert(sizeof(kSizes) / sizeof(kSizes[0]) == kNumFuncIds);

// Roughly one conditional branch per 48 bytes of code (null checks, type
// dispatch, overflow checks, loop back-edges — §4 of the paper).
constexpr uint32_t kBytesPerBranchSite = 48;

constexpr FuncId kSeqScanFuncs[] = {FuncId::kExecCommon, FuncId::kScanCore};
constexpr FuncId kSeqScanFilteredFuncs[] = {
    FuncId::kExecCommon, FuncId::kScanCore, FuncId::kExprCmp,
    FuncId::kExprArith};
constexpr FuncId kIndexScanFuncs[] = {FuncId::kExecCommon, FuncId::kIndexCore,
                                      FuncId::kExprCmp};
constexpr FuncId kSortFuncs[] = {FuncId::kExecCommon, FuncId::kSortCore,
                                 FuncId::kExprCmp};
constexpr FuncId kNestLoopFuncs[] = {FuncId::kExecCommon,
                                     FuncId::kNestLoopCore};
constexpr FuncId kMergeJoinFuncs[] = {FuncId::kExecCommon,
                                      FuncId::kMergeJoinCore, FuncId::kExprCmp};
constexpr FuncId kHashBuildFuncs[] = {FuncId::kExecCommon,
                                      FuncId::kHashBuildCore};
constexpr FuncId kHashProbeFuncs[] = {FuncId::kExecCommon,
                                      FuncId::kHashProbeCore, FuncId::kExprCmp};
constexpr FuncId kAggregationFuncs[] = {FuncId::kExecCommon, FuncId::kAggCore,
                                        FuncId::kExprArith};
constexpr FuncId kHashAggregationFuncs[] = {
    FuncId::kExecCommon, FuncId::kAggCore, FuncId::kExprArith,
    FuncId::kHashAggCore};
constexpr FuncId kBufferFuncs[] = {FuncId::kBufferCore};
constexpr FuncId kMaterializeFuncs[] = {FuncId::kExecCommon,
                                        FuncId::kMaterializeCore};
constexpr FuncId kProjectFuncs[] = {FuncId::kExecCommon, FuncId::kProjectCore,
                                    FuncId::kExprArith};
constexpr FuncId kLimitFuncs[] = {FuncId::kExecCommon, FuncId::kLimitCore};
constexpr FuncId kFilterFuncs[] = {FuncId::kExecCommon, FuncId::kFilterCore,
                                   FuncId::kExprCmp, FuncId::kExprArith};
constexpr FuncId kStreamAggFuncs[] = {FuncId::kExecCommon, FuncId::kAggCore,
                                      FuncId::kExprArith, FuncId::kExprCmp,
                                      FuncId::kStreamAggCore};
constexpr FuncId kDistinctFuncs[] = {FuncId::kExecCommon,
                                     FuncId::kDistinctCore};
constexpr FuncId kTopNFuncs[] = {FuncId::kExecCommon, FuncId::kTopNCore,
                                 FuncId::kExprCmp};
constexpr FuncId kColumnScanFuncs[] = {FuncId::kExecCommon,
                                       FuncId::kColumnScanCore};
constexpr FuncId kStaticOnlyFuncs[] = {FuncId::kColdErrorPaths,
                                       FuncId::kColdRecovery,
                                       FuncId::kColdTypeCoercion};

}  // namespace

CodeLayout::CodeLayout() {
  uint64_t next_line = 0;  // Global line counter across all functions.
  for (int i = 0; i < kNumFuncIds; ++i) {
    const SizeSpec& spec = kSizes[i];
    assert(static_cast<int>(spec.id) == i);
    uint32_t lines = (spec.size_bytes + 63) / 64;
    funcs_[i] = FuncInfo{
        spec.id,
        spec.name,
        kCodeBase + next_line * kLineStrideBytes,
        spec.size_bytes,
        lines,
        spec.size_bytes / kBytesPerBranchSite,
    };
    next_line += lines;
    total_code_bytes_ += spec.size_bytes;
  }
}

const CodeLayout& CodeLayout::Default() {
  static const CodeLayout* layout = new CodeLayout();
  return *layout;
}

std::span<const FuncId> ModuleBaseFuncs(ModuleId module) {
  switch (module) {
    case ModuleId::kSeqScan:
      return kSeqScanFuncs;
    case ModuleId::kSeqScanFiltered:
      return kSeqScanFilteredFuncs;
    case ModuleId::kIndexScan:
      return kIndexScanFuncs;
    case ModuleId::kSort:
      return kSortFuncs;
    case ModuleId::kNestLoopJoin:
      return kNestLoopFuncs;
    case ModuleId::kMergeJoin:
      return kMergeJoinFuncs;
    case ModuleId::kHashJoinBuild:
      return kHashBuildFuncs;
    case ModuleId::kHashJoinProbe:
      return kHashProbeFuncs;
    case ModuleId::kAggregation:
      return kAggregationFuncs;
    case ModuleId::kHashAggregation:
      return kHashAggregationFuncs;
    case ModuleId::kBuffer:
      return kBufferFuncs;
    case ModuleId::kMaterialize:
      return kMaterializeFuncs;
    case ModuleId::kProject:
      return kProjectFuncs;
    case ModuleId::kLimit:
      return kLimitFuncs;
    case ModuleId::kFilter:
      return kFilterFuncs;
    case ModuleId::kStreamAggregation:
      return kStreamAggFuncs;
    case ModuleId::kDistinct:
      return kDistinctFuncs;
    case ModuleId::kTopN:
      return kTopNFuncs;
    case ModuleId::kColumnScan:
      return kColumnScanFuncs;
    case ModuleId::kNumModules:
      break;
  }
  return {};
}

const char* ModuleName(ModuleId module) {
  switch (module) {
    case ModuleId::kSeqScan:
      return "Scan";
    case ModuleId::kSeqScanFiltered:
      return "Scan(pred)";
    case ModuleId::kIndexScan:
      return "IndexScan";
    case ModuleId::kSort:
      return "Sort";
    case ModuleId::kNestLoopJoin:
      return "NestLoopJoin";
    case ModuleId::kMergeJoin:
      return "MergeJoin";
    case ModuleId::kHashJoinBuild:
      return "HashJoin(build)";
    case ModuleId::kHashJoinProbe:
      return "HashJoin(probe)";
    case ModuleId::kAggregation:
      return "Aggregation";
    case ModuleId::kHashAggregation:
      return "HashAggregation";
    case ModuleId::kBuffer:
      return "Buffer";
    case ModuleId::kMaterialize:
      return "Materialize";
    case ModuleId::kProject:
      return "Project";
    case ModuleId::kLimit:
      return "Limit";
    case ModuleId::kFilter:
      return "Filter";
    case ModuleId::kStreamAggregation:
      return "StreamAggregation";
    case ModuleId::kDistinct:
      return "Distinct";
    case ModuleId::kTopN:
      return "TopN";
    case ModuleId::kColumnScan:
      return "ColumnScan";
    case ModuleId::kNumModules:
      break;
  }
  return "Unknown";
}

const char* FuncName(FuncId id) {
  return CodeLayout::Default().info(id).name;
}

std::span<const FuncId> StaticOnlyFuncs() { return kStaticOnlyFuncs; }

bool ModuleIdFromName(const std::string& name, ModuleId* out) {
  for (int m = 0; m < kNumModuleIds; ++m) {
    auto module = static_cast<ModuleId>(m);
    if (name == ModuleName(module)) {
      *out = module;
      return true;
    }
  }
  return false;
}

bool FuncIdFromName(const std::string& name, FuncId* out) {
  for (int f = 0; f < kNumFuncIds; ++f) {
    auto id = static_cast<FuncId>(f);
    if (name == FuncName(id)) {
      *out = id;
      return true;
    }
  }
  return false;
}

}  // namespace bufferdb::sim

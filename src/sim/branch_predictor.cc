#include "sim/branch_predictor.h"

#include <cassert>

namespace bufferdb::sim {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

BranchPredictor::BranchPredictor(PredictorKind kind, uint32_t table_entries,
                                 uint32_t history_bits)
    : kind_(kind),
      mask_(table_entries - 1),
      history_mask_((1u << history_bits) - 1),
      counters_(table_entries, 2) {  // Weakly taken.
  assert(IsPowerOfTwo(table_entries));
  (void)IsPowerOfTwo;
}

bool BranchPredictor::Access(uint64_t site_addr, bool taken) {
  ++branches_;
  // Drop low bits that are constant due to site spacing.
  uint32_t pc = static_cast<uint32_t>(site_addr >> 2);
  uint32_t index = pc;
  if (kind_ == PredictorKind::kGshare) {
    index ^= history_;
  }
  index &= mask_;

  uint8_t& counter = counters_[index];
  bool predicted_taken = counter >= 2;
  bool mispredicted = predicted_taken != taken;
  if (mispredicted) ++mispredicts_;

  if (taken) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
  return mispredicted;
}

void BranchPredictor::Reset() {
  for (uint8_t& c : counters_) c = 2;
  history_ = 0;
  ResetStats();
}

}  // namespace bufferdb::sim

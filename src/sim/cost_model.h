#pragma once

#include <cstdint>
#include <string>

#include "sim/branch_predictor.h"
#include "sim/cache.h"

namespace bufferdb::sim {

/// Configuration of the simulated machine. Defaults follow Table 1 of the
/// paper (Pentium 4, 2.4 GHz). OCR-damaged digits in the source text are
/// reconstructed and documented in DESIGN.md §2.
struct SimConfig {
  CacheGeometry l1i{16 * 1024, 64, 8};  // Trace-cache equivalent (~16KB).
  CacheGeometry l1d{16 * 1024, 64, 8};
  CacheGeometry l2{256 * 1024, 128, 8};
  uint32_t itlb_entries = 128;
  uint32_t page_bytes = 4096;

  // Bimodal (PC-indexed 2-bit counters) is the default: it exposes the
  // paper's §4 effect directly — a function shared by two operators has a
  // different dominant branch direction per caller, and per-tuple
  // interleaving flaps the counters. The gshare alternative (ablation)
  // partially separates the contexts through global history.
  PredictorKind predictor = PredictorKind::kBimodal;
  uint32_t predictor_entries = 4096;
  uint32_t predictor_history_bits = 12;

  bool hardware_prefetch = true;
  uint32_t prefetch_streams = 16;
  uint32_t prefetch_degree = 4;

  double clock_ghz = 2.4;
  double base_cpi = 1.0;
  /// Each footprint byte corresponds to size/4 instructions, executed this
  /// many times per operator call (inner loops within a call).
  uint32_t insn_repeat = 3;

  // Miss latencies in cycles.
  double l1i_miss_cycles = 27.0;  // Trace-cache miss (lower bound, §3).
  double l1d_miss_cycles = 18.0;
  double l2_miss_cycles = 276.0;
  double itlb_miss_cycles = 10.0;  // Page walk largely cached; §7.2 notes
                                   // the ITLB impact is relatively small.
  double mispredict_cycles = 20.0;  // 20-stage pipeline.
};

/// Raw event counters, the simulator's "hardware performance counters".
struct SimCounters {
  uint64_t instructions = 0;
  uint64_t module_calls = 0;
  uint64_t l1i_accesses = 0;
  uint64_t l1i_misses = 0;
  uint64_t l1d_accesses = 0;
  uint64_t l1d_misses = 0;
  uint64_t l2_accesses = 0;
  uint64_t l2_misses = 0;
  uint64_t l2_i_misses = 0;  // Subset of l2_misses from instruction fetch.
  uint64_t l2_prefetch_hits = 0;
  uint64_t itlb_accesses = 0;
  uint64_t itlb_misses = 0;
  uint64_t branches = 0;
  uint64_t mispredicts = 0;

  SimCounters& operator+=(const SimCounters& other);
  SimCounters operator-(const SimCounters& other) const;

  /// One JSON object (no trailing newline) with every counter — the
  /// simulated sibling of perf::HwCounters::ToJson(), emitted side by side
  /// in bench output so tools/validate_sim.py can line the two up.
  std::string ToJson() const;
};

/// Cycle-accounting breakdown in the paper's reporting format: the miss
/// penalty is counted as (misses x measured latency), which over-counts
/// overlap exactly as the paper acknowledges ("this is an approximation...").
struct CycleBreakdown {
  SimCounters counters;
  double base_cycles = 0;
  double l1i_penalty = 0;    // "Trace Cache Miss Penalty"
  double l2_penalty = 0;     // "L2 Cache Miss Penalty"
  double branch_penalty = 0; // "Branch Misprediction Penalty"
  double l1d_penalty = 0;    // Folded into "Other" in the paper's figures.
  double itlb_penalty = 0;   // Ditto (reported separately in the prose).
  double clock_ghz = 2.4;

  static CycleBreakdown FromCounters(const SimCounters& counters,
                                     const SimConfig& config);

  double other_cycles() const {
    return base_cycles + l1d_penalty + itlb_penalty;
  }
  double total_cycles() const {
    return base_cycles + l1i_penalty + l2_penalty + branch_penalty +
           l1d_penalty + itlb_penalty;
  }
  double seconds() const { return total_cycles() / (clock_ghz * 1e9); }
  double cpi() const {
    return counters.instructions == 0
               ? 0.0
               : total_cycles() / static_cast<double>(counters.instructions);
  }

  /// Multi-line human-readable report matching the paper's figure legend.
  std::string ToString(const std::string& label) const;
};

}  // namespace bufferdb::sim


#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace bufferdb::sim {

/// Geometry of one cache level.
struct CacheGeometry {
  uint64_t capacity_bytes = 16 * 1024;
  uint64_t line_bytes = 64;
  uint64_t ways = 8;
};

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;
  /// Demand accesses that hit a line brought in by the prefetcher.
  uint64_t prefetch_hits = 0;
  uint64_t prefetches_issued = 0;
};

/// Set-associative cache with true-LRU replacement.
///
/// Models capacity/conflict behaviour only; data contents are not stored.
/// Used for the L1 instruction cache (trace-cache equivalent), the L1 data
/// cache and the unified L2 of the simulated machine.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geometry);

  /// Demand access. Returns true on hit. On miss the line is filled,
  /// evicting the LRU way.
  bool Access(uint64_t addr);

  /// Inserts a line on behalf of the hardware prefetcher (no miss counted).
  void Prefetch(uint64_t addr);

  /// True if the line containing `addr` is resident.
  bool Contains(uint64_t addr) const;

  void Flush();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats(); }

  uint64_t num_sets() const { return sets_; }
  uint64_t line_bytes() const { return geometry_.line_bytes; }
  const CacheGeometry& geometry() const { return geometry_; }

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t lru = 0;
    bool valid = false;
    bool prefetched = false;
  };

  Line* SetBase(uint64_t set) { return &lines_[set * geometry_.ways]; }
  const Line* SetBase(uint64_t set) const {
    return &lines_[set * geometry_.ways];
  }

  CacheGeometry geometry_;
  uint64_t sets_;
  uint64_t line_shift_;
  uint64_t tick_ = 0;
  CacheStats stats_;
  std::vector<Line> lines_;
};

/// Fully-associative LRU cache with O(1) access (hash map + intrusive LRU
/// list over preallocated nodes). Models the L1 instruction side: the
/// Pentium 4 trace cache replaces traces quasi-fully-associatively, so
/// residency is governed by capacity alone — a working set of at most
/// `capacity / line_bytes` lines never misses after warmup, and a cyclic
/// sweep over a larger set always misses.
class FullyAssocLruCache {
 public:
  FullyAssocLruCache(uint64_t capacity_bytes, uint64_t line_bytes);

  /// Demand access; returns true on hit.
  bool Access(uint64_t addr);
  /// Prefetch insert (no miss counted, MRU position).
  void Prefetch(uint64_t addr);
  bool Contains(uint64_t addr) const;
  void Flush();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats(); }
  uint64_t capacity_lines() const { return capacity_lines_; }
  uint64_t line_bytes() const { return line_bytes_; }

 private:
  struct Node {
    uint64_t line = 0;
    int32_t prev = -1;
    int32_t next = -1;
    bool prefetched = false;
  };

  void Unlink(int32_t i);
  void PushFront(int32_t i);
  int32_t InsertLine(uint64_t line, bool prefetched);

  uint64_t capacity_lines_;
  uint64_t line_bytes_;
  uint64_t line_shift_;
  CacheStats stats_;
  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, int32_t> map_;
  int32_t head_ = -1;  // MRU.
  int32_t tail_ = -1;  // LRU.
  int32_t free_ = -1;  // Free list via `next`.
};

/// Instruction TLB over virtual page numbers: 4-way set-associative LRU
/// (matching real ITLB organizations and keeping lookups cheap), with a
/// one-entry fast path for consecutive fetches from the same page.
class Itlb {
 public:
  static constexpr uint32_t kWays = 4;

  Itlb(uint32_t entries, uint32_t page_bytes);

  /// Returns true on hit for the page containing `addr`.
  bool Access(uint64_t addr);

  uint64_t accesses() const { return accesses_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() {
    accesses_ = 0;
    misses_ = 0;
  }
  void Flush();

 private:
  struct Entry {
    uint64_t page = ~0ULL;
    uint64_t lru = 0;
  };

  uint32_t page_shift_;
  uint32_t sets_;
  uint64_t last_page_ = ~0ULL;
  uint64_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
  std::vector<Entry> entries_;  // sets_ x kWays.
};

}  // namespace bufferdb::sim


#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/code_layout.h"
#include "sim/cost_model.h"

namespace bufferdb::sim {

/// Observer of dynamic module calls; implemented by the profiler to build
/// runtime call graphs (the paper's VTune-based footprint measurement, §7.1).
class CallGraphSink {
 public:
  virtual ~CallGraphSink() = default;
  virtual void OnModuleCall(ModuleId module, std::span<const FuncId> funcs) = 0;
};

/// Deterministic CPU front-end/memory simulator.
///
/// This stands in for the paper's Pentium 4 hardware counters (VTune): the
/// query engine drives it with one ExecuteModuleCall per operator Next()
/// invocation plus TouchData calls for tuple/working-memory accesses, and it
/// maintains an L1-I (trace cache equivalent), L1-D, unified L2 with a
/// sequential hardware prefetcher, an ITLB and a gshare branch predictor.
///
/// Branch outcomes are synthesized deterministically per site:
///  - ~70% are context-biased: strongly taken or not-taken depending on the
///    *calling module* (the paper's "functions shared by operators have
///    different branching patterns when called by different operators", §4);
///  - ~15% follow short loop-like patterns, predictable when the global
///    history is not polluted by interleaved operators;
///  - ~15% are data-dependent 50/50 noise.
class SimCpu {
 public:
  explicit SimCpu(const SimConfig& config = SimConfig());

  SimCpu(const SimCpu&) = delete;
  SimCpu& operator=(const SimCpu&) = delete;

  /// Simulates one invocation of an operator whose hot code is `funcs`:
  /// fetches every instruction line (through ITLB, L1-I, L2), retires
  /// size/4 x insn_repeat instructions, and runs all branch sites.
  void ExecuteModuleCall(ModuleId module, std::span<const FuncId> funcs);

  /// Simulates data access to [addr, addr+bytes) through L1-D and L2.
  void TouchData(const void* addr, size_t bytes);
  void TouchDataAddr(uint64_t addr, size_t bytes);

  const SimConfig& config() const { return config_; }
  const SimCounters& counters() const { return counters_; }
  CycleBreakdown Breakdown() const {
    return CycleBreakdown::FromCounters(counters_, config_);
  }

  void ResetCounters();
  /// Cold-starts caches, TLB and predictor in addition to the counters.
  void Reset();

  void set_call_graph_sink(CallGraphSink* sink) { sink_ = sink; }

  const FullyAssocLruCache& l1i() const { return l1i_; }
  const SetAssocCache& l1d() const { return l1d_; }
  const SetAssocCache& l2() const { return l2_; }

 private:
  void FetchInstructionLine(uint64_t addr);
  void AccessL2Data(uint64_t line_addr);
  void RunBranchSites(const FuncInfo& func, ModuleId module);

  struct PrefetchStream {
    uint64_t next_line = ~0ULL;
    uint64_t lru = 0;
    bool confirmed = false;
  };

  SimConfig config_;
  // Fast path: when the same module executes twice in a row and its whole
  // footprint fits in L1-I, the second call's instruction lines are
  // guaranteed resident, so cache probing is skipped and hits are counted
  // directly. Branch-predictor and retirement accounting still run.
  uint64_t last_call_sig_ = 0;
  bool last_call_fits_l1i_ = false;
  uint64_t last_call_lines_ = 0;
  uint64_t last_call_insns_ = 0;
  // Trace-cache equivalent: fully associative over its capacity (see
  // FullyAssocLruCache) — the paper reasons about it purely by capacity.
  FullyAssocLruCache l1i_;
  SetAssocCache l1d_;
  SetAssocCache l2_;
  Itlb itlb_;
  BranchPredictor predictor_;
  std::vector<PrefetchStream> streams_;
  uint64_t stream_tick_ = 0;
  uint64_t call_counter_ = 0;
  SimCounters counters_;
  CallGraphSink* sink_ = nullptr;
};

}  // namespace bufferdb::sim


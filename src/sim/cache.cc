#include "sim/cache.h"

#include <cassert>

namespace bufferdb::sim {

namespace {

uint64_t Log2Floor(uint64_t v) {
  uint64_t r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheGeometry& geometry)
    : geometry_(geometry) {
  assert(geometry_.line_bytes > 0 && geometry_.ways > 0);
  sets_ = geometry_.capacity_bytes / (geometry_.line_bytes * geometry_.ways);
  if (sets_ == 0) sets_ = 1;
  line_shift_ = Log2Floor(geometry_.line_bytes);
  lines_.resize(sets_ * geometry_.ways);
}

bool SetAssocCache::Access(uint64_t addr) {
  ++stats_.accesses;
  uint64_t line_addr = addr >> line_shift_;
  uint64_t set = line_addr % sets_;
  uint64_t tag = line_addr / sets_;
  Line* base = SetBase(set);
  ++tick_;

  Line* victim = base;
  for (uint64_t w = 0; w < geometry_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      if (line.prefetched) {
        ++stats_.prefetch_hits;
        line.prefetched = false;
      }
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->prefetched = false;
  return false;
}

void SetAssocCache::Prefetch(uint64_t addr) {
  uint64_t line_addr = addr >> line_shift_;
  uint64_t set = line_addr % sets_;
  uint64_t tag = line_addr / sets_;
  Line* base = SetBase(set);
  ++tick_;

  Line* victim = base;
  for (uint64_t w = 0; w < geometry_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      // Already resident; do not disturb LRU for a prefetch.
      return;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  ++stats_.prefetches_issued;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->prefetched = true;
}

bool SetAssocCache::Contains(uint64_t addr) const {
  uint64_t line_addr = addr >> line_shift_;
  uint64_t set = line_addr % sets_;
  uint64_t tag = line_addr / sets_;
  const Line* base = SetBase(set);
  for (uint64_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::Flush() {
  for (Line& line : lines_) line = Line();
}

FullyAssocLruCache::FullyAssocLruCache(uint64_t capacity_bytes,
                                       uint64_t line_bytes)
    : capacity_lines_(capacity_bytes / line_bytes),
      line_bytes_(line_bytes),
      line_shift_(Log2Floor(line_bytes)) {
  if (capacity_lines_ == 0) capacity_lines_ = 1;
  nodes_.resize(capacity_lines_);
  map_.reserve(2 * capacity_lines_);
  Flush();
}

void FullyAssocLruCache::Unlink(int32_t i) {
  Node& n = nodes_[i];
  if (n.prev >= 0) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next >= 0) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
}

void FullyAssocLruCache::PushFront(int32_t i) {
  Node& n = nodes_[i];
  n.prev = -1;
  n.next = head_;
  if (head_ >= 0) nodes_[head_].prev = i;
  head_ = i;
  if (tail_ < 0) tail_ = i;
}

int32_t FullyAssocLruCache::InsertLine(uint64_t line, bool prefetched) {
  int32_t i;
  if (free_ >= 0) {
    i = free_;
    free_ = nodes_[i].next;
  } else {
    i = tail_;  // Evict LRU.
    Unlink(i);
    map_.erase(nodes_[i].line);
  }
  nodes_[i].line = line;
  nodes_[i].prefetched = prefetched;
  PushFront(i);
  map_[line] = i;
  return i;
}

bool FullyAssocLruCache::Access(uint64_t addr) {
  ++stats_.accesses;
  uint64_t line = addr >> line_shift_;
  auto it = map_.find(line);
  if (it != map_.end()) {
    int32_t i = it->second;
    if (nodes_[i].prefetched) {
      ++stats_.prefetch_hits;
      nodes_[i].prefetched = false;
    }
    if (head_ != i) {
      Unlink(i);
      PushFront(i);
    }
    return true;
  }
  ++stats_.misses;
  InsertLine(line, /*prefetched=*/false);
  return false;
}

void FullyAssocLruCache::Prefetch(uint64_t addr) {
  uint64_t line = addr >> line_shift_;
  if (map_.count(line) > 0) return;
  ++stats_.prefetches_issued;
  InsertLine(line, /*prefetched=*/true);
}

bool FullyAssocLruCache::Contains(uint64_t addr) const {
  return map_.count(addr >> line_shift_) > 0;
}

void FullyAssocLruCache::Flush() {
  map_.clear();
  head_ = tail_ = -1;
  free_ = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].next = i + 1 < nodes_.size() ? static_cast<int32_t>(i + 1) : -1;
    nodes_[i].prev = -1;
  }
}

Itlb::Itlb(uint32_t entries, uint32_t page_bytes)
    : page_shift_(static_cast<uint32_t>(Log2Floor(page_bytes))),
      sets_(entries / kWays == 0 ? 1 : entries / kWays),
      entries_(static_cast<size_t>(sets_) * kWays) {}

bool Itlb::Access(uint64_t addr) {
  uint64_t page = addr >> page_shift_;
  if (page == last_page_) return true;  // Fast path: no stats churn.
  last_page_ = page;
  ++accesses_;
  ++tick_;
  Entry* set = &entries_[(page % sets_) * kWays];
  Entry* victim = set;
  for (uint32_t w = 0; w < kWays; ++w) {
    Entry& e = set[w];
    if (e.page == page) {
      e.lru = tick_;
      return true;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  ++misses_;
  victim->page = page;
  victim->lru = tick_;
  return false;
}

void Itlb::Flush() {
  for (Entry& e : entries_) e = Entry();
  last_page_ = ~0ULL;
}

}  // namespace bufferdb::sim

#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace bufferdb::sim {

/// Synthetic "functions" of the simulated database binary.
///
/// The simulator models operator code as sets of functions laid out in a
/// synthetic address space. Some functions are shared between operator
/// modules (executor dispatch, expression arithmetic, comparisons) — exactly
/// the sharing the paper's footprint analysis must account for ("we make sure
/// to count common functions only once", §6.1). Sizes are calibrated so the
/// per-module footprints measured by our profiler reproduce Table 2 of the
/// paper.
enum class FuncId : uint8_t {
  kExecCommon = 0,   // Executor dispatch, tuple-slot access. Shared by all.
  kExprArith,        // Expression arithmetic/projection evaluation.
  kExprCmp,          // Comparison / qualifier evaluation.
  kScanCore,         // Sequential scan.
  kIndexCore,        // B+-tree descent and leaf scan.
  kSortCore,         // Sort (quicksort + run handling).
  kNestLoopCore,     // Nested-loop join driver.
  kMergeJoinCore,    // Merge join.
  kHashBuildCore,    // Hash join: build phase.
  kHashProbeCore,    // Hash join: probe phase.
  kAggCore,          // Aggregation driver (advance/transition logic).
  kAggCount,
  kAggSum,
  kAggAvgExtra,      // AVG on top of SUM (running count + final divide).
  kAggMin,
  kAggMax,
  kHashAggCore,      // Grouped aggregation hash table handling.
  kBufferCore,       // The paper's light-weight buffer operator (<1KB).
  kMaterializeCore,
  kProjectCore,
  kLimitCore,
  kFilterCore,       // Standalone selection.
  kStreamAggCore,    // Sorted (streaming) grouped aggregation.
  kDistinctCore,     // Hash-based duplicate elimination.
  kTopNCore,         // Bounded-heap ORDER BY ... LIMIT n.
  // Cold functions: reachable in the static call graph of many modules but
  // never executed on the common path (error handling, recovery, rare type
  // coercions). They exist so the naive static footprint estimate of §6.1
  // overestimates, as the paper observes; the dynamic call graph never
  // records them.
  kColdErrorPaths,
  kColdRecovery,
  kColdTypeCoercion,
  // Appended after the cold block (late additions stay at the end so the
  // synthetic addresses of earlier functions never shift).
  kVectorEvalCore,   // Compiled column-at-a-time expression kernels: flat
                     // dispatch loop + tight per-opcode loops, much smaller
                     // per-tuple working set than kExprArith + kExprCmp.
  kColumnScanCore,   // Columnar scan: segment aliasing, zone-map block
                     // pruning, dictionary-code widening. No per-row decode
                     // loops, so smaller than kScanCore + decoder.
  kFusedPipelineCore,  // Fused scan->filter*->project drive loop (DESIGN.md
                       // §15): one gather + selection + materialize body
                       // replacing the per-stage NextBatch dispatch glue.
  kNumFuncs,
};

constexpr int kNumFuncIds = static_cast<int>(FuncId::kNumFuncs);

struct FuncInfo {
  FuncId id;
  const char* name;
  uint64_t base_addr;
  uint32_t size_bytes;
  /// Number of 64-byte instruction lines (ceil(size_bytes / 64)).
  uint32_t lines;
  /// Number of conditional-branch sites exercised per invocation.
  uint32_t branch_sites;
};

/// Immutable description of the simulated binary's code layout.
///
/// A function's instruction lines are *strided* through the address space
/// (kLineStrideBytes apart) rather than contiguous. This mimics the page
/// spread of a real multi-megabyte DBMS binary, where the hot lines of the
/// executor are interleaved with cold code: a module's working set covers
/// many more pages than its byte footprint suggests, which is what gives
/// the paper its ITLB-miss results. The stride is 29 cache lines, coprime
/// with the 32 L1-I sets, so lines still map uniformly across sets.
class CodeLayout {
 public:
  /// The current layout: hand-calibrated against the paper's Table 2 until
  /// LoadCalibration installs measured footprints.
  static const CodeLayout& Default();

  /// Loads a measured-footprint calibration (the format emitted by
  /// `tools/footprint_audit.py --emit-calibration`) and installs it as the
  /// layout returned by Default(). The file is line-oriented:
  ///
  ///   # comment
  ///   func <func_name> <size_bytes>      pin one synthetic function's size
  ///   module <ModuleName> <size_bytes>   target a module's shared-once total
  ///
  /// Names feed the ModuleIdFromName / FuncIdFromName reverse lookups below;
  /// an unknown name, a malformed line or a non-positive size fails the load
  /// (returns false, `*error` says why, the installed layout is unchanged).
  /// `module` targets are met by iterative proportional scaling of the
  /// module's un-pinned base functions, so functions shared between modules
  /// settle on a compromise size. Not thread-safe: call before any SimCpu
  /// executes (the benches apply `--calibration=PATH` during argv parsing).
  static bool LoadCalibration(const std::string& path, std::string* error);

  /// LoadCalibration on in-memory text (testing / embedding).
  static bool LoadCalibrationText(const std::string& text, std::string* error);

  /// Drops any installed calibration, restoring the Table-2 layout.
  static void ResetCalibration();

  const FuncInfo& info(FuncId id) const {
    return funcs_[static_cast<int>(id)];
  }
  uint64_t code_base() const { return kCodeBase; }
  uint64_t total_code_bytes() const { return total_code_bytes_; }

  /// Address of the k-th instruction line of `func`.
  static uint64_t LineAddress(const FuncInfo& func, uint32_t k) {
    return func.base_addr + static_cast<uint64_t>(k) * kLineStrideBytes;
  }

  static constexpr uint64_t kCodeBase = 0x0000000001000000ULL;
  static constexpr uint64_t kLineStrideBytes = 29 * 64;  // 1856

 private:
  CodeLayout();
  /// Lays out `size_bytes[kNumFuncIds]` (names and ids from the default
  /// table) into the strided synthetic address space.
  void Build(const uint32_t* size_bytes);

  FuncInfo funcs_[kNumFuncIds];
  uint64_t total_code_bytes_ = 0;
};

/// Operator modules, mirroring the paper's Table 2 row set. A module is the
/// unit whose instruction footprint the profiler measures.
enum class ModuleId : uint8_t {
  kSeqScan = 0,       // "Scan without predicates"
  kSeqScanFiltered,   // "Scan with predicates"
  kIndexScan,
  kSort,
  kNestLoopJoin,
  kMergeJoin,
  kHashJoinBuild,
  kHashJoinProbe,
  kAggregation,       // Base footprint; aggregate functions add their own.
  kHashAggregation,
  kBuffer,
  kMaterialize,
  kProject,
  kLimit,
  kFilter,
  kStreamAggregation,
  kDistinct,
  kTopN,
  kColumnScan,        // Columnar scan over segment storage (DESIGN.md §12).
  kFusedPipeline,     // Fused scan->filter*->project chain (DESIGN.md §15).
                      // Per-plan footprint is the union of the fused stages'
                      // kernel cores minus the per-stage dispatch glue
                      // (kExecCommon); the base set below is just the drive
                      // loop, the operator adds its stages' cores.
  kNumModules,
};

constexpr int kNumModuleIds = static_cast<int>(ModuleId::kNumModules);

/// Base function set of a module (excludes per-query additions such as
/// aggregate functions or predicate evaluation).
std::span<const FuncId> ModuleBaseFuncs(ModuleId module);

/// The cold functions a *static* call-graph analysis would additionally
/// attribute to every operator module (§6.1: "not all the branches in the
/// source code are taken, and some functions in static call graphs are
/// never called"). Dynamic profiling never observes them.
std::span<const FuncId> StaticOnlyFuncs();

const char* ModuleName(ModuleId module);
const char* FuncName(FuncId id);

/// Reverse lookups (for loading saved calibrations); return false when the
/// name is unknown to this build.
bool ModuleIdFromName(const std::string& name, ModuleId* out);
bool FuncIdFromName(const std::string& name, FuncId* out);

}  // namespace bufferdb::sim


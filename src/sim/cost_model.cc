#include "sim/cost_model.h"

#include <cstdio>

namespace bufferdb::sim {

SimCounters& SimCounters::operator+=(const SimCounters& other) {
  instructions += other.instructions;
  module_calls += other.module_calls;
  l1i_accesses += other.l1i_accesses;
  l1i_misses += other.l1i_misses;
  l1d_accesses += other.l1d_accesses;
  l1d_misses += other.l1d_misses;
  l2_accesses += other.l2_accesses;
  l2_misses += other.l2_misses;
  l2_i_misses += other.l2_i_misses;
  l2_prefetch_hits += other.l2_prefetch_hits;
  itlb_accesses += other.itlb_accesses;
  itlb_misses += other.itlb_misses;
  branches += other.branches;
  mispredicts += other.mispredicts;
  return *this;
}

SimCounters SimCounters::operator-(const SimCounters& other) const {
  SimCounters out = *this;
  out.instructions -= other.instructions;
  out.module_calls -= other.module_calls;
  out.l1i_accesses -= other.l1i_accesses;
  out.l1i_misses -= other.l1i_misses;
  out.l1d_accesses -= other.l1d_accesses;
  out.l1d_misses -= other.l1d_misses;
  out.l2_accesses -= other.l2_accesses;
  out.l2_misses -= other.l2_misses;
  out.l2_i_misses -= other.l2_i_misses;
  out.l2_prefetch_hits -= other.l2_prefetch_hits;
  out.itlb_accesses -= other.itlb_accesses;
  out.itlb_misses -= other.itlb_misses;
  out.branches -= other.branches;
  out.mispredicts -= other.mispredicts;
  return out;
}

std::string SimCounters::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"instructions\": %llu, \"module_calls\": %llu, "
      "\"l1i_accesses\": %llu, \"l1i_misses\": %llu, "
      "\"l1d_accesses\": %llu, \"l1d_misses\": %llu, "
      "\"l2_accesses\": %llu, \"l2_misses\": %llu, \"l2_i_misses\": %llu, "
      "\"l2_prefetch_hits\": %llu, \"itlb_accesses\": %llu, "
      "\"itlb_misses\": %llu, \"branches\": %llu, \"mispredicts\": %llu}",
      static_cast<unsigned long long>(instructions),
      static_cast<unsigned long long>(module_calls),
      static_cast<unsigned long long>(l1i_accesses),
      static_cast<unsigned long long>(l1i_misses),
      static_cast<unsigned long long>(l1d_accesses),
      static_cast<unsigned long long>(l1d_misses),
      static_cast<unsigned long long>(l2_accesses),
      static_cast<unsigned long long>(l2_misses),
      static_cast<unsigned long long>(l2_i_misses),
      static_cast<unsigned long long>(l2_prefetch_hits),
      static_cast<unsigned long long>(itlb_accesses),
      static_cast<unsigned long long>(itlb_misses),
      static_cast<unsigned long long>(branches),
      static_cast<unsigned long long>(mispredicts));
  return buf;
}

CycleBreakdown CycleBreakdown::FromCounters(const SimCounters& counters,
                                            const SimConfig& config) {
  CycleBreakdown b;
  b.counters = counters;
  b.clock_ghz = config.clock_ghz;
  b.base_cycles = static_cast<double>(counters.instructions) * config.base_cpi;
  b.l1i_penalty =
      static_cast<double>(counters.l1i_misses) * config.l1i_miss_cycles;
  b.l2_penalty =
      static_cast<double>(counters.l2_misses) * config.l2_miss_cycles;
  b.branch_penalty =
      static_cast<double>(counters.mispredicts) * config.mispredict_cycles;
  b.l1d_penalty =
      static_cast<double>(counters.l1d_misses) * config.l1d_miss_cycles;
  b.itlb_penalty =
      static_cast<double>(counters.itlb_misses) * config.itlb_miss_cycles;
  return b;
}

std::string CycleBreakdown::ToString(const std::string& label) const {
  char buf[1024];
  double total = total_cycles();
  auto pct = [total](double v) { return total > 0 ? 100.0 * v / total : 0.0; };
  std::snprintf(
      buf, sizeof(buf),
      "%-28s %12.4f sim-sec  (CPI %.3f)\n"
      "  trace-cache miss penalty  %10.2f Mcycles (%5.1f%%)  [%llu misses]\n"
      "  L2 cache miss penalty     %10.2f Mcycles (%5.1f%%)  [%llu misses]\n"
      "  branch mispred penalty    %10.2f Mcycles (%5.1f%%)  [%llu mispred]\n"
      "  other cost                %10.2f Mcycles (%5.1f%%)\n",
      label.c_str(), seconds(), cpi(), l1i_penalty / 1e6, pct(l1i_penalty),
      static_cast<unsigned long long>(counters.l1i_misses), l2_penalty / 1e6,
      pct(l2_penalty), static_cast<unsigned long long>(counters.l2_misses),
      branch_penalty / 1e6, pct(branch_penalty),
      static_cast<unsigned long long>(counters.mispredicts),
      other_cycles() / 1e6, pct(other_cycles()));
  return buf;
}

}  // namespace bufferdb::sim

#pragma once

#include <cstdint>
#include <vector>

namespace bufferdb::sim {

enum class PredictorKind : uint8_t {
  /// 2-bit saturating counters indexed by (PC xor global history). Models the
  /// paper's observation that interleaving operators mixes branch patterns
  /// and reduces prediction accuracy.
  kGshare,
  /// 2-bit counters indexed by PC alone (ablation baseline).
  kBimodal,
};

/// Hardware branch-direction predictor model with a bounded counter table,
/// as in §4 of the paper ("usually between 512 and 4K branch instructions").
class BranchPredictor {
 public:
  BranchPredictor(PredictorKind kind, uint32_t table_entries,
                  uint32_t history_bits);

  /// Predicts the branch at `site_addr`, then updates with the actual
  /// outcome. Returns true if the prediction was wrong.
  bool Access(uint64_t site_addr, bool taken);

  uint64_t branches() const { return branches_; }
  uint64_t mispredicts() const { return mispredicts_; }
  void ResetStats() {
    branches_ = 0;
    mispredicts_ = 0;
  }
  /// Clears learned state and statistics.
  void Reset();

  PredictorKind kind() const { return kind_; }

 private:
  PredictorKind kind_;
  uint32_t mask_;
  uint32_t history_mask_;
  uint32_t history_ = 0;
  uint64_t branches_ = 0;
  uint64_t mispredicts_ = 0;
  std::vector<uint8_t> counters_;
};

}  // namespace bufferdb::sim


#include "sim/sim_cpu.h"

#include "common/rng.h"

namespace bufferdb::sim {

namespace {

constexpr uint64_t kBranchSiteSpacing = 48;

}  // namespace

SimCpu::SimCpu(const SimConfig& config)
    : config_(config),
      l1i_(config.l1i.capacity_bytes, config.l1i.line_bytes),
      l1d_(config.l1d),
      l2_(config.l2),
      itlb_(config.itlb_entries, config.page_bytes),
      predictor_(config.predictor, config.predictor_entries,
                 config.predictor_history_bits),
      streams_(config.prefetch_streams) {}

void SimCpu::ExecuteModuleCall(ModuleId module, std::span<const FuncId> funcs) {
  ++counters_.module_calls;
  ++call_counter_;
  if (sink_ != nullptr) sink_->OnModuleCall(module, funcs);

  uint64_t sig = SplitMix64(static_cast<uint64_t>(module) + 1);
  for (FuncId id : funcs) {
    sig = SplitMix64(sig ^ (static_cast<uint64_t>(id) + 0x77));
  }

  const CodeLayout& layout = CodeLayout::Default();
  if (sig == last_call_sig_ && last_call_fits_l1i_) {
    counters_.l1i_accesses += last_call_lines_;
    counters_.instructions += last_call_insns_;
    for (FuncId id : funcs) RunBranchSites(layout.info(id), module);
    return;
  }

  uint64_t footprint_bytes = 0;
  uint64_t lines = 0;
  uint64_t insns = 0;
  for (FuncId id : funcs) {
    const FuncInfo& func = layout.info(id);
    for (uint32_t k = 0; k < func.lines; ++k) {
      FetchInstructionLine(CodeLayout::LineAddress(func, k));
      ++lines;
    }
    footprint_bytes += func.size_bytes;
    insns += static_cast<uint64_t>(func.size_bytes / 4) * config_.insn_repeat;
    counters_.instructions +=
        static_cast<uint64_t>(func.size_bytes / 4) * config_.insn_repeat;
    RunBranchSites(func, module);
  }
  last_call_sig_ = sig;
  last_call_fits_l1i_ = footprint_bytes <= config_.l1i.capacity_bytes;
  last_call_lines_ = lines;
  last_call_insns_ = insns;
}

void SimCpu::FetchInstructionLine(uint64_t addr) {
  ++counters_.l1i_accesses;
  ++counters_.itlb_accesses;
  if (!itlb_.Access(addr)) ++counters_.itlb_misses;
  if (l1i_.Access(addr)) return;
  ++counters_.l1i_misses;
  ++counters_.l2_accesses;
  if (!l2_.Access(addr)) {
    ++counters_.l2_misses;
    ++counters_.l2_i_misses;
  }
}

void SimCpu::RunBranchSites(const FuncInfo& func, ModuleId module) {
  uint64_t module_salt = SplitMix64(static_cast<uint64_t>(module) + 0x51ULL);
  for (uint32_t s = 0; s < func.branch_sites; ++s) {
    uint64_t site = func.base_addr + s * kBranchSiteSpacing;
    uint64_t site_hash = SplitMix64(site);
    uint64_t cls = site_hash % 100;
    bool taken;
    if (cls < 25) {
      // Context-biased: direction depends on the calling module ("these
      // functions may have different branching patterns when called by
      // different operators", §4); outcome follows it 95% of the time.
      bool dir = (SplitMix64(site ^ module_salt) & 1) != 0;
      bool common = SplitMix64(site ^ module_salt ^
                               (call_counter_ * 0x9e3779b9ULL)) %
                        100 <
                    95;
      taken = common ? dir : !dir;
    } else if (cls < 70) {
      // Globally biased: same dominant direction in every calling context.
      bool dir = (site_hash >> 13 & 1) != 0;
      bool common =
          SplitMix64(site ^ (call_counter_ * 0x51ed27ULL)) % 100 < 95;
      taken = common ? dir : !dir;
    } else if (cls < 85) {
      // Loop-like pattern with a short period; predictable via history.
      uint64_t period = 2 + (site_hash >> 7) % 7;
      taken = (call_counter_ % period) != 0;
    } else {
      // Data-dependent 50/50 noise.
      taken = (SplitMix64(site ^ (call_counter_ * 0xabcdefULL)) & 1) != 0;
    }
    if (predictor_.Access(site, taken)) ++counters_.mispredicts;
    ++counters_.branches;
  }
}

void SimCpu::TouchData(const void* addr, size_t bytes) {
  TouchDataAddr(reinterpret_cast<uint64_t>(addr), bytes);
}

void SimCpu::TouchDataAddr(uint64_t addr, size_t bytes) {
  if (bytes == 0) bytes = 1;
  uint64_t line = config_.l1d.line_bytes;
  uint64_t first = addr & ~(line - 1);
  uint64_t last = (addr + bytes - 1) & ~(line - 1);
  for (uint64_t a = first; a <= last; a += line) {
    ++counters_.l1d_accesses;
    if (l1d_.Access(a)) continue;
    ++counters_.l1d_misses;
    AccessL2Data(a);
  }
}

void SimCpu::AccessL2Data(uint64_t addr) {
  ++counters_.l2_accesses;
  uint64_t l2_line_bytes = config_.l2.line_bytes;
  uint64_t line = addr / l2_line_bytes;
  bool hit = l2_.Access(addr);
  uint64_t before_prefetch_hits = l2_.stats().prefetch_hits;
  (void)before_prefetch_hits;
  if (!hit) ++counters_.l2_misses;
  counters_.l2_prefetch_hits = l2_.stats().prefetch_hits;

  if (!config_.hardware_prefetch) return;

  // Sequential stream detection: a second consecutive line confirms a
  // stream; confirmed streams prefetch `prefetch_degree` lines ahead.
  ++stream_tick_;
  for (PrefetchStream& s : streams_) {
    if (s.next_line == line) {
      s.confirmed = true;
      s.next_line = line + 1;
      s.lru = stream_tick_;
      for (uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
        l2_.Prefetch((line + d) * l2_line_bytes);
      }
      return;
    }
  }
  // Allocate a new (unconfirmed) stream over the LRU slot.
  PrefetchStream* victim = &streams_[0];
  for (PrefetchStream& s : streams_) {
    if (s.lru < victim->lru) victim = &s;
  }
  victim->next_line = line + 1;
  victim->confirmed = false;
  victim->lru = stream_tick_;
}

void SimCpu::ResetCounters() {
  counters_ = SimCounters();
  l1i_.ResetStats();
  l1d_.ResetStats();
  l2_.ResetStats();
  itlb_.ResetStats();
  predictor_.ResetStats();
}

void SimCpu::Reset() {
  ResetCounters();
  l1i_.Flush();
  l1d_.Flush();
  l2_.Flush();
  itlb_.Flush();
  predictor_.Reset();
  for (PrefetchStream& s : streams_) s = PrefetchStream();
  call_counter_ = 0;
  last_call_sig_ = 0;
  last_call_fits_l1i_ = false;
}

}  // namespace bufferdb::sim

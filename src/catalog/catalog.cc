#include "catalog/catalog.h"

namespace bufferdb {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::CreateIndex(const std::string& index_name,
                            const std::string& table_name,
                            const std::string& column_name, bool unique) {
  if (indexes_.count(index_name) > 0) {
    return Status::AlreadyExists("index exists: " + index_name);
  }
  Table* table = GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + table_name);
  }
  int col = table->schema().FindColumn(column_name);
  if (col < 0) {
    return Status::NotFound("no such column: " + column_name);
  }
  DataType type = table->schema().column(col).type;
  if (type != DataType::kInt64 && type != DataType::kDate) {
    return Status::InvalidArgument("index column must be INT64 or DATE");
  }

  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->table = table;
  info->column = col;
  info->unique = unique;
  info->btree = std::make_unique<BTree>();
  for (const uint8_t* row : table->rows()) {
    TupleView v(row, &table->schema());
    if (v.IsNull(col)) continue;
    info->btree->Insert(v.GetInt64(col), row);
  }
  indexes_[index_name] = std::move(info);
  return Status::OK();
}

const IndexInfo* Catalog::FindIndex(const Table* table, int column) const {
  for (const auto& [name, info] : indexes_) {
    if (info->table == table && info->column == column) return info.get();
  }
  return nullptr;
}

const IndexInfo* Catalog::GetIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace bufferdb

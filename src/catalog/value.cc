#include "catalog/value.h"

#include <cassert>
#include <cstdio>

#include "common/date.h"

namespace bufferdb {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kDate:
      return "DATE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kDate || type == DataType::kBool;
}

double Value::AsDouble() const {
  if (type_ == DataType::kDouble) return f64_;
  return static_cast<double>(i64_);
}

int Value::Compare(const Value& a, const Value& b) {
  assert(!a.is_null() && !b.is_null());
  if (a.type() == DataType::kString || b.type() == DataType::kString) {
    assert(a.type() == DataType::kString && b.type() == DataType::kString);
    return a.str_.compare(b.str_) < 0 ? -1 : (a.str_ == b.str_ ? 0 : 1);
  }
  if (a.type() == DataType::kDouble || b.type() == DataType::kDouble) {
    double x = a.AsDouble(), y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return a.i64_ < b.i64_ ? -1 : (a.i64_ > b.i64_ ? 1 : 0);
}

bool Value::operator==(const Value& other) const {
  if (is_null_ || other.is_null_) return is_null_ == other.is_null_;
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    return type_ == other.type_ && str_ == other.str_;
  }
  return Compare(*this, other) == 0;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  char buf[64];
  switch (type_) {
    case DataType::kBool:
      return i64_ != 0 ? "true" : "false";
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(i64_));
      return buf;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.4f", f64_);
      return buf;
    case DataType::kDate:
      return DateToString(i64_);
    case DataType::kString:
      return str_;
  }
  return "?";
}

}  // namespace bufferdb

#include "catalog/schema.h"

#include <cassert>

namespace bufferdb {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  assert(columns_.size() <= kMaxColumns);
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace bufferdb

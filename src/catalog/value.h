#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bufferdb {

enum class DataType : uint8_t {
  kBool = 0,
  kInt64,
  kDouble,
  kDate,    // Days since 1970-01-01, stored as int64.
  kString,
};

const char* DataTypeName(DataType type);
bool IsNumeric(DataType type);

/// A single (possibly NULL) typed datum. Used at expression-evaluation and
/// tuple-construction boundaries; tuples themselves use a packed row format
/// (see storage/tuple.h).
class Value {
 public:
  Value() : type_(DataType::kInt64), is_null_(true) {}

  static Value Null(DataType type = DataType::kInt64) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = DataType::kBool;
    v.is_null_ = false;
    v.i64_ = b ? 1 : 0;
    return v;
  }
  static Value Int64(int64_t x) {
    Value v;
    v.type_ = DataType::kInt64;
    v.is_null_ = false;
    v.i64_ = x;
    return v;
  }
  static Value Double(double x) {
    Value v;
    v.type_ = DataType::kDouble;
    v.is_null_ = false;
    v.f64_ = x;
    return v;
  }
  static Value Date(int64_t days) {
    Value v;
    v.type_ = DataType::kDate;
    v.is_null_ = false;
    v.i64_ = days;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.is_null_ = false;
    v.str_ = std::move(s);
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool bool_value() const { return i64_ != 0; }
  int64_t int64_value() const { return i64_; }
  double double_value() const { return f64_; }
  int64_t date_value() const { return i64_; }
  const std::string& string_value() const { return str_; }

  /// Numeric value widened to double (int64/date/double/bool).
  double AsDouble() const;

  /// Three-way comparison; both values must be non-null and of comparable
  /// types (numerics inter-compare; strings with strings).
  static int Compare(const Value& a, const Value& b);

  bool operator==(const Value& other) const;

  std::string ToString() const;

 private:
  DataType type_;
  bool is_null_ = true;
  union {
    int64_t i64_ = 0;
    double f64_;
  };
  std::string str_;
};

}  // namespace bufferdb


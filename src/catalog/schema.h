#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/value.h"

namespace bufferdb {

struct Column {
  std::string name;
  DataType type;
};

/// Ordered column list plus the physical row layout it implies.
///
/// Row layout (see storage/tuple.h):
///   [uint32 total_bytes][uint32 pad][uint64 null_bitmap]
///   [8-byte slot per column][var data]
/// Strings store (offset << 32 | length) in their slot; other types store the
/// value inline. At most 64 columns per schema (enforced at construction) —
/// enough for several joined TPC-H tables.
class Schema {
 public:
  static constexpr size_t kMaxColumns = 64;
  static constexpr size_t kHeaderBytes = 16;

  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const;

  /// Bytes of the fixed-size part of a row (header + slots).
  size_t fixed_bytes() const { return kHeaderBytes + 8 * columns_.size(); }

  /// Join-output schema: columns of `left` followed by columns of `right`.
  /// Duplicate names are disambiguated with the given prefixes when both
  /// sides contain the same name.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace bufferdb


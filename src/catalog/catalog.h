#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/btree.h"
#include "storage/table.h"

namespace bufferdb {

/// A secondary (or primary) index over one int64/date column of a table.
struct IndexInfo {
  std::string name;
  Table* table = nullptr;
  int column = -1;
  bool unique = false;  // Declared unique (e.g. primary key).
  std::unique_ptr<BTree> btree;
};

/// Name -> table/index registry for a database instance.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  [[nodiscard]] Status AddTable(std::unique_ptr<Table> table);
  Table* GetTable(const std::string& name) const;

  /// Builds a B+-tree over `column_name` of `table_name` (int64/date only).
  [[nodiscard]] Status CreateIndex(const std::string& index_name,
                     const std::string& table_name,
                     const std::string& column_name, bool unique = false);

  /// First index on (table, column), or nullptr.
  const IndexInfo* FindIndex(const Table* table, int column) const;
  const IndexInfo* GetIndex(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<IndexInfo>> indexes_;
};

}  // namespace bufferdb


#include "profile/call_graph.h"

#include <cstdio>

namespace bufferdb::profile {

std::string CallGraphRecorder::ToString() const {
  std::string out = "runtime call graph:\n";
  for (int m = 0; m < sim::kNumModuleIds; ++m) {
    const Entry& e = modules_[m];
    if (e.calls == 0) continue;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-18s calls=%-10llu funcs=%s\n",
                  sim::ModuleName(static_cast<sim::ModuleId>(m)),
                  static_cast<unsigned long long>(e.calls),
                  e.funcs.ToString().c_str());
    out += line;
  }
  return out;
}

}  // namespace bufferdb::profile

#include "profile/calibration_queries.h"

#include <cassert>

#include "catalog/catalog.h"
#include "common/date.h"
#include "common/rng.h"
#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/hash_aggregation.h"
#include "exec/hash_join.h"
#include "exec/index_scan.h"
#include "exec/limit.h"
#include "exec/materialize.h"
#include "exec/merge_join.h"
#include "exec/nested_loop_join.h"
#include "exec/project.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"

namespace bufferdb::profile {

namespace {

ExprPtr Col(const Schema& schema, const std::string& name) {
  auto r = MakeColumnRef(schema, name);
  assert(r.ok());
  return std::move(*r);
}

ExprPtr Cmp(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto res = MakeBinary(op, std::move(l), std::move(r));
  assert(res.ok());
  return std::move(*res);
}

void Run(Operator* root, ExecContext* ctx) {
  auto result = ExecutePlan(root, ctx);
  assert(result.ok());
  (void)result;
}

}  // namespace

std::unique_ptr<Table> BuildSyntheticItems(size_t rows, uint64_t seed,
                                           int64_t key_range) {
  Schema schema({{"id", DataType::kInt64},
                 {"key", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"discount", DataType::kDouble},
                 {"tax", DataType::kDouble},
                 {"quantity", DataType::kDouble},
                 {"shipdate", DataType::kDate},
                 {"sel", DataType::kDouble}});
  auto table = std::make_unique<Table>("items", schema);
  Rng rng(seed);
  int64_t start = MakeDate(1992, 1, 1);
  int64_t end = MakeDate(1998, 12, 31);
  TupleBuilder builder(&table->schema());
  for (size_t i = 0; i < rows; ++i) {
    builder.Reset();
    builder.SetInt64(0, static_cast<int64_t>(i));
    builder.SetInt64(1, rng.Uniform(0, key_range - 1));
    builder.SetDouble(2, 900.0 + rng.NextDouble() * 200.0);
    builder.SetDouble(3, rng.NextDouble() * 0.10);
    builder.SetDouble(4, rng.NextDouble() * 0.08);
    builder.SetDouble(5, 1.0 + rng.NextDouble() * 49.0);
    builder.SetDate(6, rng.Uniform(start, end));
    builder.SetDouble(7, rng.NextDouble());
    table->Append(builder);
  }
  return table;
}

std::unique_ptr<Table> BuildSyntheticGroups(size_t rows, uint64_t seed) {
  Schema schema(
      {{"key", DataType::kInt64}, {"totalprice", DataType::kDouble}});
  auto table = std::make_unique<Table>("groups", schema);
  Rng rng(seed);
  TupleBuilder builder(&table->schema());
  for (size_t i = 0; i < rows; ++i) {
    builder.Reset();
    builder.SetInt64(0, static_cast<int64_t>(i));
    builder.SetDouble(1, 1000.0 + rng.NextDouble() * 9000.0);
    table->Append(builder);
  }
  return table;
}

FootprintTable CalibrateFootprints() {
  Catalog catalog;
  {
    auto st = catalog.AddTable(BuildSyntheticItems(512, /*seed=*/7));
    assert(st.ok());
    st = catalog.AddTable(BuildSyntheticGroups(128, /*seed=*/11));
    assert(st.ok());
    st = catalog.CreateIndex("groups_pk", "groups", "key", /*unique=*/true);
    assert(st.ok());
    st = catalog.CreateIndex("items_key", "items", "key");
    assert(st.ok());
    (void)st;
  }
  Table* items = catalog.GetTable("items");
  Table* groups = catalog.GetTable("groups");
  const IndexInfo* groups_pk = catalog.GetIndex("groups_pk");
  const IndexInfo* items_key = catalog.GetIndex("items_key");
  const Schema& item_schema = items->schema();
  const Schema& group_schema = groups->schema();

  sim::SimCpu cpu;
  CallGraphRecorder recorder;
  cpu.set_call_graph_sink(&recorder);

  auto run = [&cpu](OperatorPtr plan) {
    ExecContext ctx;
    ctx.cpu = &cpu;
    Run(plan.get(), &ctx);
  };

  // 1. Scan without predicates.
  run(std::make_unique<SeqScanOperator>(items, nullptr));

  // 2. Scan with predicates.
  run(std::make_unique<SeqScanOperator>(
      items, Cmp(BinaryOp::kLe, Col(item_schema, "sel"),
                 MakeLiteral(Value::Double(0.5)))));

  // 3. Index range scan.
  run(std::make_unique<IndexScanOperator>(items_key, int64_t{10}, int64_t{60},
                                          nullptr));

  // 4. Sort.
  run(std::make_unique<SortOperator>(
      std::make_unique<SeqScanOperator>(items, nullptr),
      [&] {
        std::vector<SortKey> keys;
        keys.push_back(SortKey{Col(item_schema, "key"), false});
        return keys;
      }()));

  // 5. Index nested-loop join (covers NestLoopJoin + IndexScan lookup).
  run(std::make_unique<IndexNestLoopJoinOperator>(
      std::make_unique<SeqScanOperator>(items, nullptr),
      std::make_unique<IndexScanOperator>(groups_pk, std::nullopt,
                                          std::nullopt, nullptr),
      Col(item_schema, "key")));

  // 6. Naive nested loop over a materialized inner.
  run(std::make_unique<LimitOperator>(
      std::make_unique<NestLoopJoinOperator>(
          std::make_unique<SeqScanOperator>(groups, nullptr),
          std::make_unique<MaterializeOperator>(
              std::make_unique<SeqScanOperator>(groups, nullptr)),
          nullptr),
      256));

  // 7. Hash join (build + probe modules).
  run(std::make_unique<HashJoinOperator>(
      std::make_unique<SeqScanOperator>(items, nullptr),
      std::make_unique<SeqScanOperator>(groups, nullptr),
      Col(item_schema, "key"), Col(group_schema, "key")));

  // 8. Merge join over sorted inputs.
  {
    std::vector<SortKey> k1, k2;
    k1.push_back(SortKey{Col(item_schema, "key"), false});
    k2.push_back(SortKey{Col(group_schema, "key"), false});
    run(std::make_unique<MergeJoinOperator>(
        std::make_unique<SortOperator>(
            std::make_unique<SeqScanOperator>(items, nullptr), std::move(k1)),
        std::make_unique<SortOperator>(
            std::make_unique<SeqScanOperator>(groups, nullptr), std::move(k2)),
        Col(item_schema, "key"), Col(group_schema, "key")));
  }

  // 9. Scalar aggregation (COUNT covers the base aggregation path; the
  // other aggregate functions are separate code whose sizes are read from
  // the binary, as in the paper).
  {
    std::vector<AggSpec> specs;
    specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "count"});
    run(std::make_unique<AggregationOperator>(
        std::make_unique<SeqScanOperator>(items, nullptr), std::move(specs)));
  }

  // 10. Grouped aggregation.
  {
    std::vector<GroupKeyExpr> group_by;
    group_by.push_back(GroupKeyExpr{Col(item_schema, "key"), "key"});
    std::vector<AggSpec> specs;
    specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "count"});
    run(std::make_unique<HashAggregationOperator>(
        std::make_unique<SeqScanOperator>(items, nullptr), std::move(group_by),
        std::move(specs)));
  }

  // 11. Buffer operator.
  run(std::make_unique<BufferOperator>(
      std::make_unique<SeqScanOperator>(items, nullptr), 64));

  // 12. Project.
  {
    std::vector<ProjectItem> items_list;
    items_list.push_back(ProjectItem{Col(item_schema, "price"), "price"});
    run(std::make_unique<ProjectOperator>(
        std::make_unique<SeqScanOperator>(items, nullptr),
        std::move(items_list)));
  }

  return FootprintTable::FromRecorder(recorder);
}

}  // namespace bufferdb::profile

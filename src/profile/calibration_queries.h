#pragma once

#include <cstdint>
#include <memory>

#include "profile/footprint.h"
#include "storage/table.h"

namespace bufferdb::profile {

/// Synthetic fact table used by the calibration machinery and tests:
///   (id INT64, key INT64, price DOUBLE, discount DOUBLE, tax DOUBLE,
///    quantity DOUBLE, shipdate DATE, sel DOUBLE uniform in [0,1))
/// `key` is uniform in [0, key_range).
std::unique_ptr<Table> BuildSyntheticItems(size_t rows, uint64_t seed,
                                           int64_t key_range = 500);

/// Synthetic dimension table: (key INT64 = 0..rows-1, totalprice DOUBLE).
std::unique_ptr<Table> BuildSyntheticGroups(size_t rows, uint64_t seed);

/// Calibrates the system once by running a small query set that covers all
/// operator types (§6.2 step 0, §7.1) under the CPU simulator with a call
/// graph recorder attached, and returns the measured per-module instruction
/// footprints (Table 2).
FootprintTable CalibrateFootprints();

}  // namespace bufferdb::profile


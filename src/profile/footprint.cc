#include "profile/footprint.h"

#include <cstdio>

namespace bufferdb::profile {

FootprintTable FootprintTable::FromRecorder(const CallGraphRecorder& recorder) {
  FootprintTable table;
  for (int m = 0; m < sim::kNumModuleIds; ++m) {
    auto module = static_cast<sim::ModuleId>(m);
    if (recorder.observed(module)) {
      table.funcs_[m] = recorder.funcs(module);
    }
  }
  return table;
}

uint64_t FootprintTable::CombinedBytes(
    std::span<const sim::ModuleId> modules) const {
  FuncSet combined;
  for (sim::ModuleId m : modules) {
    combined.UnionWith(funcs_[static_cast<size_t>(m)]);
  }
  return combined.TotalBytes();
}

uint64_t FootprintTable::StaticEstimateBytes(sim::ModuleId module) const {
  FuncSet with_cold = funcs_[static_cast<size_t>(module)];
  with_cold.AddAll(sim::StaticOnlyFuncs());
  return with_cold.TotalBytes();
}

std::string FootprintTable::ToString() const {
  std::string out;
  out += "Module                Instruction Footprint (bytes)\n";
  out += "----------------------------------------------------\n";
  for (int m = 0; m < sim::kNumModuleIds; ++m) {
    auto module = static_cast<sim::ModuleId>(m);
    if (!has(module)) continue;
    char line[128];
    std::snprintf(line, sizeof(line), "%-20s  %7llu  (%.1fK)\n",
                  sim::ModuleName(module),
                  static_cast<unsigned long long>(footprint_bytes(module)),
                  static_cast<double>(footprint_bytes(module)) / 1000.0);
    out += line;
  }
  return out;
}

}  // namespace bufferdb::profile

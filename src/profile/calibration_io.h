#pragma once

#include <string>

#include "common/status.h"
#include "profile/footprint.h"

namespace bufferdb::profile {

/// Result of the one-time per-system calibration the paper prescribes
/// ("This threshold can be determined once, in advance, by the database
/// system", §6): the measured module footprints plus the cardinality
/// threshold.
struct SystemCalibration {
  FootprintTable footprints;
  double cardinality_threshold = 0;
};

/// Serializes a calibration to a human-readable text file:
///   bufferdb-calibration v1
///   threshold 128
///   module Scan exec_common scan_core
///   ...
[[nodiscard]] Status SaveCalibration(const SystemCalibration& calibration,
                       const std::string& path);

/// Loads a calibration saved by SaveCalibration. Unknown function or module
/// names (from a different build) are an error.
Result<SystemCalibration> LoadCalibration(const std::string& path);

/// Runs both calibration passes (footprints + threshold) and saves to
/// `path`; returns the fresh calibration.
Result<SystemCalibration> CalibrateAndSave(const std::string& path);

}  // namespace bufferdb::profile


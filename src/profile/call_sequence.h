#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/sim_cpu.h"

namespace bufferdb::profile {

/// Records the order in which operator modules execute, rendering it as the
/// paper's Figure 1 strings: one letter per module call, e.g.
///   unbuffered:  PCPCPCPCPC...
///   buffered:    PBCCCCCBPBPBP...  (B = the buffer operator itself)
///
/// Letters are assigned in first-appearance order (child-first execution
/// means the scan usually gets the first letter). Runs can be compressed
/// ("C{1000}P{1000}") for large traces.
class CallSequenceRecorder final : public sim::CallGraphSink {
 public:
  explicit CallSequenceRecorder(size_t max_calls = 1 << 20)
      : max_calls_(max_calls) {}

  void OnModuleCall(sim::ModuleId module,
                    std::span<const sim::FuncId> funcs) override;

  /// One character per recorded call, e.g. "CPCPCP".
  std::string Sequence() const;

  /// Run-length compressed form, e.g. "C{3}P C{3}P" -> "(C3 P1)x...".
  /// Runs shorter than `min_run` are emitted verbatim.
  std::string Compressed(size_t min_run = 4) const;

  /// Mapping letter -> module name for the legend.
  std::string Legend() const;

  /// Number of adjacent pairs of *different* modules — the paper's
  /// interleaving count; buffering reduces it by ~buffer_size x.
  uint64_t Transitions() const;

  uint64_t total_calls() const { return calls_.size() + dropped_; }
  void Reset();

 private:
  char LetterFor(sim::ModuleId module);

  size_t max_calls_;
  uint64_t dropped_ = 0;
  std::vector<char> calls_;
  std::map<sim::ModuleId, char> letters_;
};

}  // namespace bufferdb::profile


#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/execution_group.h"
#include "sim/sim_cpu.h"

namespace bufferdb::profile {

/// Records runtime module->function call edges while queries execute on a
/// SimCpu — our stand-in for the paper's VTune runtime call graphs (§7.1):
/// "A runtime call graph ... provides a group of functions that are invoked
/// within the module."
class CallGraphRecorder final : public sim::CallGraphSink {
 public:
  CallGraphRecorder() = default;

  void OnModuleCall(sim::ModuleId module,
                    std::span<const sim::FuncId> funcs) override {
    auto& entry = modules_[static_cast<size_t>(module)];
    entry.funcs.AddAll(funcs);
    ++entry.calls;
  }

  /// Functions observed executing within `module`.
  const FuncSet& funcs(sim::ModuleId module) const {
    return modules_[static_cast<size_t>(module)].funcs;
  }
  uint64_t calls(sim::ModuleId module) const {
    return modules_[static_cast<size_t>(module)].calls;
  }
  bool observed(sim::ModuleId module) const {
    return modules_[static_cast<size_t>(module)].calls > 0;
  }

  void Reset() {
    for (auto& e : modules_) e = Entry();
  }

  std::string ToString() const;

 private:
  struct Entry {
    FuncSet funcs;
    uint64_t calls = 0;
  };
  std::array<Entry, sim::kNumModuleIds> modules_;
};

}  // namespace bufferdb::profile


#include "profile/calibration_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/threshold_calibration.h"
#include "profile/calibration_queries.h"

namespace bufferdb::profile {

namespace {
constexpr char kHeader[] = "bufferdb-calibration v1";
}  // namespace

Status SaveCalibration(const SystemCalibration& calibration,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open for writing: " + path);
  }
  out << kHeader << "\n";
  out << "threshold " << calibration.cardinality_threshold << "\n";
  for (int m = 0; m < sim::kNumModuleIds; ++m) {
    auto module = static_cast<sim::ModuleId>(m);
    if (!calibration.footprints.has(module)) continue;
    out << "module " << sim::ModuleName(module);
    for (sim::FuncId f : calibration.footprints.funcs(module).ToVector()) {
      out << " " << sim::FuncName(f);
    }
    out << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<SystemCalibration> LoadCalibration(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::ParseError("bad calibration header in " + path);
  }
  SystemCalibration calibration;
  bool saw_threshold = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string kind;
    tokens >> kind;
    if (kind == "threshold") {
      if (!(tokens >> calibration.cardinality_threshold)) {
        return Status::ParseError("bad threshold line: " + line);
      }
      saw_threshold = true;
    } else if (kind == "module") {
      std::string module_name;
      tokens >> module_name;
      // Module names may contain no spaces except the ones we emit; the
      // Table 2 names like "HashJoin(build)" are single tokens.
      sim::ModuleId module;
      if (!sim::ModuleIdFromName(module_name, &module)) {
        return Status::ParseError("unknown module: " + module_name);
      }
      FuncSet funcs;
      std::string func_name;
      while (tokens >> func_name) {
        sim::FuncId f;
        if (!sim::FuncIdFromName(func_name, &f)) {
          return Status::ParseError("unknown function: " + func_name);
        }
        funcs.Add(f);
      }
      calibration.footprints.SetFuncs(module, funcs);
    } else {
      return Status::ParseError("unknown line kind: " + kind);
    }
  }
  if (!saw_threshold) return Status::ParseError("missing threshold");
  return calibration;
}

Result<SystemCalibration> CalibrateAndSave(const std::string& path) {
  SystemCalibration calibration;
  calibration.footprints = CalibrateFootprints();
  calibration.cardinality_threshold =
      CalibrateCardinalityThreshold().threshold;
  BUFFERDB_RETURN_IF_ERROR(SaveCalibration(calibration, path));
  return calibration;
}

}  // namespace bufferdb::profile

#include "profile/call_sequence.h"

#include <cstdio>

namespace bufferdb::profile {

namespace {
// B is reserved for the buffer operator to match the paper's prose; other
// modules draw from this pool in first-appearance order.
constexpr char kLetterPool[] = "CPDEFGHIJKLMNOQRSTUVWXYZ";
}  // namespace

char CallSequenceRecorder::LetterFor(sim::ModuleId module) {
  auto it = letters_.find(module);
  if (it != letters_.end()) return it->second;
  char letter;
  if (module == sim::ModuleId::kBuffer) {
    letter = 'B';
  } else {
    size_t used = letters_.size() - letters_.count(sim::ModuleId::kBuffer);
    letter = used < sizeof(kLetterPool) - 1 ? kLetterPool[used] : '?';
  }
  letters_[module] = letter;
  return letter;
}

void CallSequenceRecorder::OnModuleCall(sim::ModuleId module,
                                        std::span<const sim::FuncId>) {
  char letter = LetterFor(module);
  if (calls_.size() >= max_calls_) {
    ++dropped_;
    return;
  }
  calls_.push_back(letter);
}

std::string CallSequenceRecorder::Sequence() const {
  return std::string(calls_.begin(), calls_.end());
}

std::string CallSequenceRecorder::Compressed(size_t min_run) const {
  std::string out;
  size_t i = 0;
  while (i < calls_.size()) {
    size_t j = i;
    while (j < calls_.size() && calls_[j] == calls_[i]) ++j;
    size_t run = j - i;
    if (run >= min_run) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%c{%zu}", calls_[i], run);
      out += buf;
    } else {
      out.append(run, calls_[i]);
    }
    i = j;
  }
  if (dropped_ > 0) {
    // Append-form to dodge gcc 12's -O3 -Wrestrict false positive
    // (PR105651).
    out += "...(+";
    out += std::to_string(dropped_);
    out += " calls)";
  }
  return out;
}

std::string CallSequenceRecorder::Legend() const {
  std::string out;
  for (const auto& [module, letter] : letters_) {
    out += letter;
    out += " = ";
    out += sim::ModuleName(module);
    out += "; ";
  }
  return out;
}

uint64_t CallSequenceRecorder::Transitions() const {
  uint64_t transitions = 0;
  for (size_t i = 1; i < calls_.size(); ++i) {
    if (calls_[i] != calls_[i - 1]) ++transitions;
  }
  return transitions;
}

void CallSequenceRecorder::Reset() {
  calls_.clear();
  letters_.clear();
  dropped_ = 0;
}

}  // namespace bufferdb::profile

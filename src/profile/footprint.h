#pragma once

#include <array>
#include <span>
#include <string>

#include "core/execution_group.h"
#include "profile/call_graph.h"

namespace bufferdb::profile {

/// Measured per-module instruction footprints (the paper's Table 2),
/// computed by summing the binary sizes of the functions each module was
/// observed to call. Combining modules counts shared functions once (§6.1).
class FootprintTable {
 public:
  FootprintTable() = default;

  /// Builds the table from a recorder that has observed calibration queries.
  static FootprintTable FromRecorder(const CallGraphRecorder& recorder);

  /// Replaces one module's function set (used when loading a saved
  /// calibration).
  void SetFuncs(sim::ModuleId module, const FuncSet& funcs) {
    funcs_[static_cast<size_t>(module)] = funcs;
  }

  bool has(sim::ModuleId module) const {
    return !funcs_[static_cast<size_t>(module)].empty();
  }
  const FuncSet& funcs(sim::ModuleId module) const {
    return funcs_[static_cast<size_t>(module)];
  }
  uint64_t footprint_bytes(sim::ModuleId module) const {
    return funcs_[static_cast<size_t>(module)].TotalBytes();
  }

  /// Combined footprint of several modules, shared functions counted once.
  uint64_t CombinedBytes(std::span<const sim::ModuleId> modules) const;

  /// The naive *static* estimate for a module: every function reachable in
  /// the static call graph, including cold paths that never execute. The
  /// paper rejects this in §6.1 because it overestimates; exposed here so
  /// the overestimate can be demonstrated (see footprint tests and
  /// bench_table2_footprints).
  uint64_t StaticEstimateBytes(sim::ModuleId module) const;

  /// Formats the table in the layout of the paper's Table 2.
  std::string ToString() const;

 private:
  std::array<FuncSet, sim::kNumModuleIds> funcs_;
};

}  // namespace bufferdb::profile


#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace bufferdb::tpch {

/// Writes a table in the classic dbgen `.tbl` format: '|'-separated fields,
/// one trailing '|' per row. Dates render as YYYY-MM-DD, doubles with two
/// decimals (dbgen's money format), NULLs as empty fields.
[[nodiscard]] Status WriteTbl(const Table& table, const std::string& path);

/// Reads a `.tbl` file into a new table with the given name and schema.
/// Empty fields load as NULL.
Result<std::unique_ptr<Table>> ReadTbl(const std::string& table_name,
                                       const Schema& schema,
                                       const std::string& path);

}  // namespace bufferdb::tpch


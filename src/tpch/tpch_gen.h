#pragma once

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"

namespace bufferdb::tpch {

/// Deterministic in-memory TPC-H data generator (dbgen substitute).
///
/// Row counts scale with `scale_factor` exactly as the specification's
/// (orders = 1,500,000 x SF, 1-7 lineitems per order, etc.). Value
/// distributions (dates, keys, prices, discount, tax, flags) follow the
/// spec closely enough to reproduce the selectivities the paper's queries
/// depend on; free-text columns are short synthetic strings.
struct TpchConfig {
  double scale_factor = 0.02;
  uint64_t seed = 19940613;
  /// Builds the indexes the paper's plans use: primary keys on orders /
  /// customer / part / supplier, plus lineitem(l_orderkey).
  bool build_indexes = true;
  /// Builds a columnar image (storage/column_table.h) for every table so
  /// batched plans can use ColumnScan: typed segments, zone maps, and
  /// dictionary-encoded string columns.
  bool build_columnar = true;
};

/// Generates all 8 tables (and indexes) into `catalog`.
[[nodiscard]] Status LoadTpch(const TpchConfig& config, Catalog* catalog);

/// Number of orders at a scale factor (lineitem is ~4x this).
int64_t NumOrders(double scale_factor);

}  // namespace bufferdb::tpch


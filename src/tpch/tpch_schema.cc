#include "tpch/tpch_schema.h"

namespace bufferdb::tpch {

Schema RegionSchema() {
  return Schema({{"r_regionkey", DataType::kInt64},
                 {"r_name", DataType::kString},
                 {"r_comment", DataType::kString}});
}

Schema NationSchema() {
  return Schema({{"n_nationkey", DataType::kInt64},
                 {"n_name", DataType::kString},
                 {"n_regionkey", DataType::kInt64},
                 {"n_comment", DataType::kString}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", DataType::kInt64},
                 {"s_name", DataType::kString},
                 {"s_address", DataType::kString},
                 {"s_nationkey", DataType::kInt64},
                 {"s_phone", DataType::kString},
                 {"s_acctbal", DataType::kDouble},
                 {"s_comment", DataType::kString}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", DataType::kInt64},
                 {"c_name", DataType::kString},
                 {"c_address", DataType::kString},
                 {"c_nationkey", DataType::kInt64},
                 {"c_phone", DataType::kString},
                 {"c_acctbal", DataType::kDouble},
                 {"c_mktsegment", DataType::kString},
                 {"c_comment", DataType::kString}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", DataType::kInt64},
                 {"p_name", DataType::kString},
                 {"p_mfgr", DataType::kString},
                 {"p_brand", DataType::kString},
                 {"p_type", DataType::kString},
                 {"p_size", DataType::kInt64},
                 {"p_container", DataType::kString},
                 {"p_retailprice", DataType::kDouble},
                 {"p_comment", DataType::kString}});
}

Schema PartSuppSchema() {
  return Schema({{"ps_partkey", DataType::kInt64},
                 {"ps_suppkey", DataType::kInt64},
                 {"ps_availqty", DataType::kInt64},
                 {"ps_supplycost", DataType::kDouble},
                 {"ps_comment", DataType::kString}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", DataType::kInt64},
                 {"o_custkey", DataType::kInt64},
                 {"o_orderstatus", DataType::kString},
                 {"o_totalprice", DataType::kDouble},
                 {"o_orderdate", DataType::kDate},
                 {"o_orderpriority", DataType::kString},
                 {"o_clerk", DataType::kString},
                 {"o_shippriority", DataType::kInt64},
                 {"o_comment", DataType::kString}});
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", DataType::kInt64},
                 {"l_partkey", DataType::kInt64},
                 {"l_suppkey", DataType::kInt64},
                 {"l_linenumber", DataType::kInt64},
                 {"l_quantity", DataType::kDouble},
                 {"l_extendedprice", DataType::kDouble},
                 {"l_discount", DataType::kDouble},
                 {"l_tax", DataType::kDouble},
                 {"l_returnflag", DataType::kString},
                 {"l_linestatus", DataType::kString},
                 {"l_shipdate", DataType::kDate},
                 {"l_commitdate", DataType::kDate},
                 {"l_receiptdate", DataType::kDate},
                 {"l_shipinstruct", DataType::kString},
                 {"l_shipmode", DataType::kString},
                 {"l_comment", DataType::kString}});
}

}  // namespace bufferdb::tpch

#include "tpch/tpch_gen.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/date.h"
#include "common/rng.h"
#include "storage/column_table.h"
#include "tpch/tpch_schema.h"

namespace bufferdb::tpch {

namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// region of each nation, per the TPC-H spec.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                                "TAKE BACK RETURN"};
const char* kContainers[] = {"SM CASE", "SM BOX", "MED BAG", "MED BOX",
                             "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"};
const char* kTypes[] = {"STANDARD ANODIZED TIN", "SMALL PLATED COPPER",
                        "MEDIUM BURNISHED NICKEL", "LARGE BRUSHED STEEL",
                        "ECONOMY POLISHED BRASS", "PROMO BURNISHED COPPER",
                        "PROMO PLATED STEEL", "STANDARD BRUSHED BRASS"};
const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#21", "Brand#22",
                         "Brand#31", "Brand#32", "Brand#41", "Brand#55"};

std::string Comment(Rng* rng) {
  static const char* words[] = {"carefully", "quickly", "furiously", "ideas",
                                "deposits", "packages", "accounts", "sleep"};
  return std::string(words[rng->Next() % 8]) + " " + words[rng->Next() % 8];
}

std::string NumberedName(const char* prefix, int64_t n) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(n));
  return buf;
}

}  // namespace

int64_t NumOrders(double scale_factor) {
  return std::max<int64_t>(1, static_cast<int64_t>(1500000 * scale_factor));
}

Status LoadTpch(const TpchConfig& config, Catalog* catalog) {
  const double sf = config.scale_factor;
  Rng rng(config.seed);

  const int64_t num_nations = 25;
  const int64_t num_suppliers =
      std::max<int64_t>(1, static_cast<int64_t>(10000 * sf));
  const int64_t num_customers =
      std::max<int64_t>(1, static_cast<int64_t>(150000 * sf));
  const int64_t num_parts =
      std::max<int64_t>(1, static_cast<int64_t>(200000 * sf));
  const int64_t num_orders = NumOrders(sf);

  const int64_t start_date = MakeDate(1992, 1, 1);
  const int64_t end_order_date = MakeDate(1998, 8, 2);

  // region
  {
    auto table = std::make_unique<Table>("region", RegionSchema());
    TupleBuilder b(&table->schema());
    for (int64_t i = 0; i < 5; ++i) {
      b.Reset();
      b.SetInt64(0, i);
      b.SetString(1, kRegionNames[i]);
      b.SetString(2, Comment(&rng));
      table->Append(b);
    }
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(table)));
  }

  // nation
  {
    auto table = std::make_unique<Table>("nation", NationSchema());
    TupleBuilder b(&table->schema());
    for (int64_t i = 0; i < num_nations; ++i) {
      b.Reset();
      b.SetInt64(0, i);
      b.SetString(1, kNationNames[i]);
      b.SetInt64(2, kNationRegion[i]);
      b.SetString(3, Comment(&rng));
      table->Append(b);
    }
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(table)));
  }

  // supplier
  {
    auto table = std::make_unique<Table>("supplier", SupplierSchema());
    TupleBuilder b(&table->schema());
    for (int64_t i = 1; i <= num_suppliers; ++i) {
      b.Reset();
      b.SetInt64(0, i);
      b.SetString(1, NumberedName("Supplier", i));
      b.SetString(2, NumberedName("Addr", rng.Uniform(0, 99999)));
      b.SetInt64(3, rng.Uniform(0, num_nations - 1));
      b.SetString(4, NumberedName("Ph", rng.Uniform(1000000, 9999999)));
      b.SetDouble(5, -999.99 + rng.NextDouble() * 10999.98);
      b.SetString(6, Comment(&rng));
      table->Append(b);
    }
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(table)));
  }

  // customer
  {
    auto table = std::make_unique<Table>("customer", CustomerSchema());
    TupleBuilder b(&table->schema());
    for (int64_t i = 1; i <= num_customers; ++i) {
      b.Reset();
      b.SetInt64(0, i);
      b.SetString(1, NumberedName("Customer", i));
      b.SetString(2, NumberedName("Addr", rng.Uniform(0, 99999)));
      b.SetInt64(3, rng.Uniform(0, num_nations - 1));
      b.SetString(4, NumberedName("Ph", rng.Uniform(1000000, 9999999)));
      b.SetDouble(5, -999.99 + rng.NextDouble() * 10999.98);
      b.SetString(6, kSegments[rng.Next() % 5]);
      b.SetString(7, Comment(&rng));
      table->Append(b);
    }
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(table)));
  }

  // part
  std::vector<double> part_price(num_parts + 1);
  {
    auto table = std::make_unique<Table>("part", PartSchema());
    TupleBuilder b(&table->schema());
    for (int64_t i = 1; i <= num_parts; ++i) {
      b.Reset();
      double price =
          900.0 + static_cast<double>(i % 1000) + rng.NextDouble() * 100.0;
      part_price[i] = price;
      b.SetInt64(0, i);
      b.SetString(1, NumberedName("part", i));
      b.SetString(2, NumberedName("Mfgr", 1 + (i % 5)));
      b.SetString(3, kBrands[rng.Next() % 8]);
      b.SetString(4, kTypes[rng.Next() % 8]);
      b.SetInt64(5, rng.Uniform(1, 50));
      b.SetString(6, kContainers[rng.Next() % 8]);
      b.SetDouble(7, price);
      b.SetString(8, Comment(&rng));
      table->Append(b);
    }
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(table)));
  }

  // partsupp: 4 suppliers per part.
  {
    auto table = std::make_unique<Table>("partsupp", PartSuppSchema());
    TupleBuilder b(&table->schema());
    for (int64_t p = 1; p <= num_parts; ++p) {
      for (int s = 0; s < 4; ++s) {
        b.Reset();
        b.SetInt64(0, p);
        b.SetInt64(1, 1 + (p + s * (num_suppliers / 4 + 1)) % num_suppliers);
        b.SetInt64(2, rng.Uniform(1, 9999));
        b.SetDouble(3, 1.0 + rng.NextDouble() * 999.0);
        b.SetString(4, Comment(&rng));
        table->Append(b);
      }
    }
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(table)));
  }

  // orders + lineitem.
  {
    auto orders = std::make_unique<Table>("orders", OrdersSchema());
    auto lineitem = std::make_unique<Table>("lineitem", LineitemSchema());
    TupleBuilder ob(&orders->schema());
    TupleBuilder lb(&lineitem->schema());
    for (int64_t o = 1; o <= num_orders; ++o) {
      int64_t order_date = rng.Uniform(start_date, end_order_date);
      int num_lines = static_cast<int>(rng.Uniform(1, 7));
      double total = 0;

      for (int l = 1; l <= num_lines; ++l) {
        double quantity = static_cast<double>(rng.Uniform(1, 50));
        int64_t partkey = rng.Uniform(1, num_parts);
        double extended = quantity * part_price[partkey];
        double discount = 0.01 * static_cast<double>(rng.Uniform(0, 10));
        double tax = 0.01 * static_cast<double>(rng.Uniform(0, 8));
        int64_t ship_date = order_date + rng.Uniform(1, 121);
        int64_t commit_date = order_date + rng.Uniform(30, 90);
        int64_t receipt_date = ship_date + rng.Uniform(1, 30);
        bool shipped_by_95 = ship_date <= MakeDate(1995, 6, 17);

        lb.Reset();
        lb.SetInt64(0, o);
        lb.SetInt64(1, partkey);
        lb.SetInt64(2, 1 + (partkey % num_suppliers));
        lb.SetInt64(3, l);
        lb.SetDouble(4, quantity);
        lb.SetDouble(5, extended);
        lb.SetDouble(6, discount);
        lb.SetDouble(7, tax);
        lb.SetString(8, shipped_by_95 ? (rng.Next() % 2 ? "R" : "A") : "N");
        lb.SetString(9, shipped_by_95 ? "F" : "O");
        lb.SetDate(10, ship_date);
        lb.SetDate(11, commit_date);
        lb.SetDate(12, receipt_date);
        lb.SetString(13, kShipInstructs[rng.Next() % 4]);
        lb.SetString(14, kShipModes[rng.Next() % 7]);
        lb.SetString(15, Comment(&rng));
        lineitem->Append(lb);
        total += extended * (1 - discount) * (1 + tax);
      }

      ob.Reset();
      ob.SetInt64(0, o);
      ob.SetInt64(1, rng.Uniform(1, num_customers));
      ob.SetString(2, order_date <= MakeDate(1995, 6, 17) ? "F" : "O");
      ob.SetDouble(3, total);
      ob.SetDate(4, order_date);
      ob.SetString(5, kPriorities[rng.Next() % 5]);
      ob.SetString(6, NumberedName("Clerk", rng.Uniform(1, 1000)));
      ob.SetInt64(7, 0);
      ob.SetString(8, Comment(&rng));
      orders->Append(ob);
    }
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(orders)));
    BUFFERDB_RETURN_IF_ERROR(catalog->AddTable(std::move(lineitem)));
  }

  if (config.build_indexes) {
    BUFFERDB_RETURN_IF_ERROR(
        catalog->CreateIndex("orders_pk", "orders", "o_orderkey", true));
    BUFFERDB_RETURN_IF_ERROR(
        catalog->CreateIndex("customer_pk", "customer", "c_custkey", true));
    BUFFERDB_RETURN_IF_ERROR(
        catalog->CreateIndex("part_pk", "part", "p_partkey", true));
    BUFFERDB_RETURN_IF_ERROR(
        catalog->CreateIndex("supplier_pk", "supplier", "s_suppkey", true));
    BUFFERDB_RETURN_IF_ERROR(catalog->CreateIndex(
        "lineitem_orderkey", "lineitem", "l_orderkey", false));
  }

  if (config.build_columnar) {
    static const char* kTables[] = {"nation",   "region", "supplier",
                                    "customer", "part",   "partsupp",
                                    "orders",   "lineitem"};
    for (const char* name : kTables) {
      Table* table = catalog->GetTable(name);
      if (table == nullptr) {
        return Status::Internal(std::string("missing table: ") + name);
      }
      table->AttachColumnar(ColumnarTable::Build(*table));
    }
  }
  return Status::OK();
}

}  // namespace bufferdb::tpch

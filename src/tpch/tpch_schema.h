#pragma once

#include "catalog/schema.h"

namespace bufferdb::tpch {

/// TPC-H table schemas. Column names and types follow the TPC-H
/// specification; NUMERIC columns are mapped to DOUBLE and text columns to
/// STRING (comments are shortened — they never participate in the paper's
/// queries).
Schema RegionSchema();
Schema NationSchema();
Schema SupplierSchema();
Schema CustomerSchema();
Schema PartSchema();
Schema PartSuppSchema();
Schema OrdersSchema();
Schema LineitemSchema();

}  // namespace bufferdb::tpch


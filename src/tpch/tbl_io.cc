#include "tpch/tbl_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/date.h"

namespace bufferdb::tpch {

Status WriteTbl(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const Schema& schema = table.schema();
  char buf[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    TupleView view = table.view(r);
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (view.IsNull(c)) {
        out << '|';
        continue;
      }
      switch (schema.column(c).type) {
        case DataType::kBool:
          out << (view.GetBool(c) ? "1" : "0");
          break;
        case DataType::kInt64:
          out << view.GetInt64(c);
          break;
        case DataType::kDouble:
          std::snprintf(buf, sizeof(buf), "%.2f", view.GetDouble(c));
          out << buf;
          break;
        case DataType::kDate:
          out << DateToString(view.GetDate(c));
          break;
        case DataType::kString:
          out << view.GetString(c);
          break;
      }
      out << '|';
    }
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<Table>> ReadTbl(const std::string& table_name,
                                       const Schema& schema,
                                       const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  auto table = std::make_unique<Table>(table_name, schema);
  TupleBuilder builder(&table->schema());
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    builder.Reset();
    size_t start = 0;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      size_t bar = line.find('|', start);
      if (bar == std::string::npos) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected " +
                                  std::to_string(schema.num_columns()) +
                                  " fields");
      }
      std::string field = line.substr(start, bar - start);
      start = bar + 1;
      if (field.empty()) {
        builder.SetNull(c);
        continue;
      }
      switch (schema.column(c).type) {
        case DataType::kBool:
          builder.SetBool(c, field != "0");
          break;
        case DataType::kInt64:
          builder.SetInt64(c, std::strtoll(field.c_str(), nullptr, 10));
          break;
        case DataType::kDouble:
          builder.SetDouble(c, std::strtod(field.c_str(), nullptr));
          break;
        case DataType::kDate: {
          auto days = ParseDate(field);
          if (!days.ok()) {
            return Status::ParseError("line " + std::to_string(line_no) +
                                      ": bad date '" + field + "'");
          }
          builder.SetDate(c, *days);
          break;
        }
        case DataType::kString:
          builder.SetString(c, std::move(field));
          break;
      }
    }
    table->Append(builder);
  }
  return table;
}

}  // namespace bufferdb::tpch

#include "exec/materialize.h"

namespace bufferdb {

MaterializeOperator::MaterializeOperator(OperatorPtr child) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

Status MaterializeOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  if (!loaded_) {
    BUFFERDB_RETURN_IF_ERROR(child(0)->Open(ctx));
    while (const uint8_t* row = child(0)->Next()) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      rows_.push_back(row);
    }
    loaded_ = true;
  }
  pos_ = 0;
  return Status::OK();
}

const uint8_t* MaterializeOperator::Next() {
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= rows_.size()) return nullptr;
  const uint8_t* row = rows_[pos_++];
  ctx_->Touch(row, 64);
  return row;
}

void MaterializeOperator::Close() {
  rows_.clear();
  loaded_ = false;
  pos_ = 0;
  child(0)->Close();
}

Status MaterializeOperator::Rescan() {
  pos_ = 0;
  return Status::OK();
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <string>

#include "exec/operator.h"
#include "expr/expression.h"
#include "expr/vector.h"
#include "expr/vector_eval.h"
#include "parallel/morsel.h"
#include "storage/table.h"

namespace bufferdb {

/// Full-table scan with an optional predicate evaluated per row (the paper's
/// "Scan with predicates" vs "Scan without predicates" modules, Table 2).
/// Output schema is the table schema; rows are returned in place (no copy).
///
/// In *morsel mode* (BindMorselCursor) the scan no longer walks the whole
/// table: it repeatedly claims fixed-size row ranges from a shared
/// parallel::MorselCursor and scans only those, so N scan clones bound to
/// one cursor partition the table dynamically across worker threads.
class SeqScanOperator final : public Operator {
 public:
  /// `predicate` may be null. It must be bound to the table schema.
  SeqScanOperator(Table* table, ExprPtr predicate);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;
  [[nodiscard]] Status Rescan() override;

  /// Batch fast path: generates (and, with a predicate, filters) up to
  /// `max` rows in one tight loop over the table, writing survivors with a
  /// branch-free selection store instead of returning through a virtual
  /// call per row.
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const Schema& output_schema() const override { return table_->schema(); }
  sim::ModuleId module_id() const override {
    return predicate_ ? sim::ModuleId::kSeqScanFiltered
                      : sim::ModuleId::kSeqScan;
  }
  std::string label() const override;

  const Expression* predicate() const { return predicate_.get(); }
  const Table* table() const { return table_; }

  /// Non-null when the pushed-down predicate compiled to a kernel program
  /// (test hook; see expr/vector_eval.h).
  const CompiledExpr* compiled_predicate() const { return compiled_.get(); }

  /// Switches to morsel mode. `cursor` must range over this table's rows
  /// and outlive the operator; the caller (ExchangeOperator) resets it
  /// between executions. Pass null to return to full-table mode.
  void BindMorselCursor(parallel::MorselCursor* cursor) { morsels_ = cursor; }
  bool morsel_mode() const { return morsels_ != nullptr; }

  /// The bound cursor (null in full-table mode). FusedPipeline inherits it
  /// when this scan becomes the source stage of a fused chain.
  parallel::MorselCursor* morsel_cursor() const { return morsels_; }

 private:
  Table* table_;
  ExprPtr predicate_;
  std::unique_ptr<CompiledExpr> compiled_;  // Null when no/uncompilable pred.
  VectorBatch vbatch_;
  SelectionVector sel_;
  parallel::MorselCursor* morsels_ = nullptr;
  size_t pos_ = 0;
  size_t limit_ = 0;  // End of the current morsel (or of the table).
};

}  // namespace bufferdb


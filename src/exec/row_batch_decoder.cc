#include "exec/row_batch_decoder.h"

#include <cstring>

namespace bufferdb {

void RowBatchDecoder::Decode(const uint8_t* const* rows, size_t n,
                             const Schema& schema,
                             std::span<const int> columns,
                             VectorBatch* batch) {
  batch->set_rows(n);
  // One column at a time: VectorBatch::Mutable may reallocate its column
  // table, so earlier pointers must not be held across calls.
  for (int col : columns) {
    const DataType type = schema.column(static_cast<size_t>(col)).type;
    ColumnVector* vec = batch->Mutable(col);
    vec->Reset(type, n);
    const size_t slot_off =
        Schema::kHeaderBytes + 8 * static_cast<size_t>(col);
    uint8_t* nulls = vec->nulls.data();
    if (type == DataType::kDouble) {
      double* out = vec->f64.data();
      for (size_t i = 0; i < n; ++i) {
        const uint8_t* row = rows[i];
        uint64_t bitmap;
        std::memcpy(&bitmap, row + 8, 8);
        nulls[i] = static_cast<uint8_t>((bitmap >> col) & 1u);
        std::memcpy(&out[i], row + slot_off, 8);
      }
    } else if (type == DataType::kBool) {
      int64_t* out = vec->i64.data();
      for (size_t i = 0; i < n; ++i) {
        const uint8_t* row = rows[i];
        uint64_t bitmap;
        std::memcpy(&bitmap, row + 8, 8);
        nulls[i] = static_cast<uint8_t>((bitmap >> col) & 1u);
        int64_t raw;
        std::memcpy(&raw, row + slot_off, 8);
        out[i] = raw != 0 ? 1 : 0;  // Same normalization as GetBool.
      }
    } else {
      int64_t* out = vec->i64.data();
      for (size_t i = 0; i < n; ++i) {
        const uint8_t* row = rows[i];
        uint64_t bitmap;
        std::memcpy(&bitmap, row + 8, 8);
        nulls[i] = static_cast<uint8_t>((bitmap >> col) & 1u);
        std::memcpy(&out[i], row + slot_off, 8);
      }
    }
  }
}

void RowBatchDecoder::DecodeMissing(const uint8_t* const* rows, size_t n,
                                    const Schema& schema,
                                    std::span<const int> columns,
                                    const VectorBatch* published,
                                    VectorBatch* batch) {
  batch->set_rows(n);
  for (int col : columns) {
    const ColumnVector* pub =
        (published != nullptr && published->rows() == n)
            ? published->Find(col)
            : nullptr;
    if (pub != nullptr) {
      ColumnVector* vec = batch->Mutable(col);
      if (pub->is_double()) {
        vec->AliasF64(pub->f64_data(), pub->null_data());
      } else {
        vec->AliasI64(pub->type, pub->i64_data(), pub->null_data());
      }
      continue;
    }
    const int one[] = {col};
    Decode(rows, n, schema, one, batch);
  }
  batch->set_rows(n);
}

}  // namespace bufferdb

#include "exec/sort.h"

#include <algorithm>

namespace bufferdb {

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKey> keys)
    : keys_(std::move(keys)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

Status SortOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  BUFFERDB_RETURN_IF_ERROR(child(0)->Open(ctx));
  sorted_.clear();
  pos_ = 0;

  const Schema& schema = child(0)->output_schema();
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &schema);
    std::vector<Value> key_values;
    key_values.reserve(keys_.size());
    for (const SortKey& k : keys_) key_values.push_back(k.expr->Evaluate(view));
    ctx_->Touch(row, view.size_bytes());
    sorted_.emplace_back(std::move(key_values), row);
  }

  std::stable_sort(
      sorted_.begin(), sorted_.end(), [this](const auto& a, const auto& b) {
        for (size_t i = 0; i < keys_.size(); ++i) {
          const Value& x = a.first[i];
          const Value& y = b.first[i];
          // NULLs sort last in either direction.
          if (x.is_null() != y.is_null()) return y.is_null();
          if (x.is_null()) continue;
          int c = Value::Compare(x, y);
          if (c != 0) return keys_[i].descending ? c > 0 : c < 0;
        }
        return false;
      });
  loaded_ = true;
  return Status::OK();
}

const uint8_t* SortOperator::Next() {
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= sorted_.size()) return nullptr;
  const uint8_t* row = sorted_[pos_++].second;
  ctx_->Touch(row, 64);
  return row;
}

void SortOperator::Close() {
  sorted_.clear();
  loaded_ = false;
  pos_ = 0;
  child(0)->Close();
}

Status SortOperator::Rescan() {
  if (!loaded_) return Open(ctx_);
  pos_ = 0;  // Input unchanged; just replay the sorted output.
  return Status::OK();
}

}  // namespace bufferdb

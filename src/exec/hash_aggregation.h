#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/aggregation.h"
#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

struct GroupKeyExpr {
  ExprPtr expr;
  std::string output_name;
};

/// GROUP BY aggregation over an in-memory hash table. Like scalar
/// aggregation it interleaves with its input per tuple (the hash table is
/// its own, separate data structure), so it participates in execution
/// groups; groups are emitted in first-seen order.
///
/// The table is a chained hash table over a flat group vector (bucket
/// directory of indices + per-group chain links), which makes the bucket
/// heads prefetchable: with `set_batch_size(n > 1)` the load phase consumes
/// the child through NextBatch, serializes and hashes the group keys of the
/// whole batch first while issuing software prefetches for each row's
/// bucket, then applies the accumulator updates — overlapping the random
/// DRAM misses of up to `n` independent group lookups. Default is the
/// paper-faithful tuple-at-a-time load.
class HashAggregationOperator final : public Operator {
 public:
  HashAggregationOperator(OperatorPtr child, std::vector<GroupKeyExpr> groups,
                          std::vector<AggSpec> specs);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kHashAggregation;
  }
  std::string label() const override;

  /// Input batch width for the load phase; <= 1 selects the tuple-at-a-time
  /// load. Takes effect at the next Open.
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  size_t batch_size() const { return batch_size_; }

  size_t num_groups() const { return group_states_.size(); }

 private:
  struct GroupState {
    uint64_t hash;
    std::string key;  // Serialized group-key bytes.
    int32_t next;     // Chain link into group_states_, or -1.
    std::vector<Value> group_values;
    std::vector<AggAccumulator> accs;
  };

  void Load();
  void LoadBatched();
  /// Finds or creates the group for `key`/`hash` and applies one row's
  /// accumulator updates.
  void AbsorbRow(const TupleView& view, const std::string& key,
                 uint64_t hash);
  GroupState* FindOrCreateGroup(const std::string& key, uint64_t hash,
                                const TupleView& view);
  void Rehash();

  std::vector<GroupKeyExpr> groups_;
  std::vector<AggSpec> specs_;
  Schema output_schema_;

  std::vector<int32_t> buckets_;         // Power-of-two directory, -1 empty.
  std::vector<GroupState> group_states_; // Insertion order == emit order.
  size_t emit_pos_ = 0;
  bool loaded_ = false;

  size_t batch_size_ = 1;
  std::vector<const uint8_t*> batch_rows_;  // LoadBatched scratch.
  std::vector<std::string> batch_keys_;
  std::vector<uint64_t> batch_hashes_;
};

}  // namespace bufferdb


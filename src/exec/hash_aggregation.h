#ifndef BUFFERDB_EXEC_HASH_AGGREGATION_H_
#define BUFFERDB_EXEC_HASH_AGGREGATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/aggregation.h"
#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

struct GroupKeyExpr {
  ExprPtr expr;
  std::string output_name;
};

/// GROUP BY aggregation over an in-memory hash table. Like scalar
/// aggregation it interleaves with its input per tuple (the hash table is
/// its own, separate data structure), so it participates in execution
/// groups; output order is unspecified.
class HashAggregationOperator final : public Operator {
 public:
  HashAggregationOperator(OperatorPtr child, std::vector<GroupKeyExpr> groups,
                          std::vector<AggSpec> specs);

  Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kHashAggregation;
  }
  std::string label() const override;

 private:
  struct GroupState {
    std::vector<Value> group_values;
    std::vector<AggAccumulator> accs;
  };

  std::vector<GroupKeyExpr> groups_;
  std::vector<AggSpec> specs_;
  Schema output_schema_;
  std::unordered_map<std::string, GroupState> table_;
  std::unordered_map<std::string, GroupState>::iterator emit_it_;
  bool loaded_ = false;
};

}  // namespace bufferdb

#endif  // BUFFERDB_EXEC_HASH_AGGREGATION_H_

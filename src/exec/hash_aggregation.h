#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/aggregation.h"
#include "exec/operator.h"
#include "exec/row_batch_decoder.h"
#include "expr/expression.h"
#include "expr/vector_eval.h"

namespace bufferdb {

struct GroupKeyExpr {
  ExprPtr expr;
  std::string output_name;
};

/// GROUP BY aggregation over an in-memory hash table. Like scalar
/// aggregation it interleaves with its input per tuple (the hash table is
/// its own, separate data structure), so it participates in execution
/// groups; groups are emitted in first-seen order.
///
/// The table is a chained hash table over a flat group vector (bucket
/// directory of indices + per-group chain links), which makes the bucket
/// heads prefetchable: with `set_batch_size(n > 1)` the load phase consumes
/// the child through NextBatch, serializes and hashes the group keys of the
/// whole batch first while issuing software prefetches for each row's
/// bucket, then applies the accumulator updates — overlapping the random
/// DRAM misses of up to `n` independent group lookups. Default is the
/// paper-faithful tuple-at-a-time load.
class HashAggregationOperator final : public Operator {
 public:
  HashAggregationOperator(OperatorPtr child, std::vector<GroupKeyExpr> groups,
                          std::vector<AggSpec> specs);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kHashAggregation;
  }
  std::string label() const override;

  /// Input batch width for the load phase; <= 1 selects the tuple-at-a-time
  /// load. Takes effect at the next Open.
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  size_t batch_size() const { return batch_size_; }

  size_t num_groups() const { return group_states_.size(); }

  /// True when every group key and aggregate argument compiled to a kernel
  /// program, so the batched load evaluates them column-at-a-time (test
  /// hook).
  bool keys_compiled() const { return keys_compiled_; }

 private:
  struct GroupState {
    uint64_t hash;
    std::string key;  // Serialized group-key bytes.
    int32_t next;     // Chain link into group_states_, or -1.
    std::vector<Value> group_values;
    std::vector<AggAccumulator> accs;
  };

  void Load();
  void LoadBatched();
  /// Finds or creates the group for `key`/`hash` and applies one row's
  /// accumulator updates.
  void AbsorbRow(const TupleView& view, const std::string& key,
                 uint64_t hash);
  GroupState* FindOrCreateGroup(const std::string& key, uint64_t hash,
                                const TupleView& view);
  /// Lane variants of the above, reading group/argument values out of the
  /// kernel-program result vectors (gvecs_/avecs_) instead of re-walking
  /// expression trees per row.
  void AbsorbLane(size_t lane, const std::string& key, uint64_t hash);
  GroupState* FindOrCreateGroupLane(const std::string& key, uint64_t hash,
                                    size_t lane);
  /// Serializes lane `lane` of the group-key result vectors byte-identically
  /// to SerializeKeyInto over the boxed values.
  void SerializeLaneInto(size_t lane, std::string* out) const;
  void Rehash();

  std::vector<GroupKeyExpr> groups_;
  std::vector<AggSpec> specs_;
  Schema output_schema_;

  std::vector<int32_t> buckets_;         // Power-of-two directory, -1 empty.
  std::vector<GroupState> group_states_; // Insertion order == emit order.
  size_t emit_pos_ = 0;
  bool loaded_ = false;

  size_t batch_size_ = 1;
  std::vector<const uint8_t*> batch_rows_;  // LoadBatched scratch.
  std::vector<std::string> batch_keys_;
  std::vector<uint64_t> batch_hashes_;

  // Compiled kernel programs (plan-time): one per group key, one per
  // aggregate argument (nullptr for COUNT(*)). Used only when ALL of them
  // compiled (keys_compiled_), so a batch is evaluated entirely
  // column-at-a-time or entirely by the interpreter.
  std::vector<std::unique_ptr<CompiledExpr>> group_compiled_;
  std::vector<std::unique_ptr<CompiledExpr>> arg_compiled_;
  bool keys_compiled_ = false;
  std::vector<int> decode_cols_;  // Union of the programs' input columns.
  VectorBatch vbatch_;
  std::vector<const ColumnVector*> gvecs_;  // Group-key results per batch.
  std::vector<const ColumnVector*> avecs_;  // Agg-argument results.
};

}  // namespace bufferdb


#include "exec/nested_loop_join.h"

#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

NestLoopJoinOperator::NestLoopJoinOperator(OperatorPtr outer, OperatorPtr inner,
                                           ExprPtr join_predicate)
    : join_predicate_(std::move(join_predicate)) {
  output_schema_ =
      Schema::Concat(outer->output_schema(), inner->output_schema());
  AddChild(std::move(outer));
  AddChild(std::move(inner));
  InitHotFuncs(module_id());
  if (join_predicate_ != nullptr) AddHotFunc(sim::FuncId::kExprCmp);
}

Status NestLoopJoinOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  need_outer_ = true;
  outer_row_ = nullptr;
  BUFFERDB_RETURN_IF_ERROR(child(0)->Open(ctx));
  return child(1)->Open(ctx);
}

const uint8_t* NestLoopJoinOperator::Next() {
  const Schema& outer_schema = child(0)->output_schema();
  const Schema& inner_schema = child(1)->output_schema();
  while (true) {
    if (need_outer_) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      outer_row_ = child(0)->Next();
      if (outer_row_ == nullptr) return nullptr;
      Status st = child(1)->Rescan();
      if (!st.ok()) return nullptr;
      need_outer_ = false;
    }
    const uint8_t* inner_row = child(1)->Next();
    if (inner_row == nullptr) {
      need_outer_ = true;
      continue;
    }
    ctx_->ExecModule(module_id(), hot_funcs_);
    const uint8_t* combined =
        TupleBuilder::ConcatRows(output_schema_, outer_schema, outer_row_,
                                 inner_schema, inner_row, &ctx_->arena);
    TupleView view(combined, &output_schema_);
    ctx_->Touch(combined, view.size_bytes());
    if (join_predicate_ == nullptr ||
        EvaluatePredicate(*join_predicate_, view)) {
      return combined;
    }
  }
}

void NestLoopJoinOperator::Close() {
  child(0)->Close();
  child(1)->Close();
}

IndexNestLoopJoinOperator::IndexNestLoopJoinOperator(
    OperatorPtr outer, std::unique_ptr<IndexScanOperator> inner,
    ExprPtr outer_key_expr)
    : outer_key_expr_(std::move(outer_key_expr)) {
  output_schema_ =
      Schema::Concat(outer->output_schema(), inner->output_schema());
  inner_scan_ = inner.get();
  AddChild(std::move(outer));
  AddChild(std::move(inner));
  InitHotFuncs(module_id());
}

Status IndexNestLoopJoinOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  need_outer_ = true;
  outer_row_ = nullptr;
  BUFFERDB_RETURN_IF_ERROR(child(0)->Open(ctx));
  return child(1)->Open(ctx);
}

const uint8_t* IndexNestLoopJoinOperator::Next() {
  const Schema& outer_schema = child(0)->output_schema();
  const Schema& inner_schema = child(1)->output_schema();
  while (true) {
    if (need_outer_) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      outer_row_ = child(0)->Next();
      if (outer_row_ == nullptr) return nullptr;
      TupleView outer_view(outer_row_, &outer_schema);
      Value key = outer_key_expr_->Evaluate(outer_view);
      if (key.is_null()) continue;  // NULL keys never join.
      inner_scan_->BindEqualKey(key.int64_value());
      Status st = inner_scan_->Rescan();
      if (!st.ok()) return nullptr;
      need_outer_ = false;
    }
    const uint8_t* inner_row = child(1)->Next();
    if (inner_row == nullptr) {
      need_outer_ = true;
      continue;
    }
    ctx_->ExecModule(module_id(), hot_funcs_);
    const uint8_t* combined =
        TupleBuilder::ConcatRows(output_schema_, outer_schema, outer_row_,
                                 inner_schema, inner_row, &ctx_->arena);
    ctx_->Touch(combined, TupleView(combined, &output_schema_).size_bytes());
    return combined;
  }
}

void IndexNestLoopJoinOperator::Close() {
  child(0)->Close();
  child(1)->Close();
}

}  // namespace bufferdb

#include "exec/hash_join.h"

#include "common/prefetch.h"
#include "common/rng.h"
#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

namespace {

// Keys flow through Value::int64_value(), so only programs whose result
// lives in the int64 payload array qualify (a double key would already be
// a type error in the interpreter path).
std::unique_ptr<CompiledExpr> CompileKey(const Expression& key,
                                         const Schema& schema) {
  auto program = CompiledExpr::Compile(key, schema);
  if (program != nullptr && program->result_type() == DataType::kDouble) {
    return nullptr;
  }
  return program;
}

}  // namespace

HashJoinOperator::HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                                   ExprPtr probe_key, ExprPtr build_key,
                                   ExprPtr residual_predicate)
    : probe_key_(FoldConstants(std::move(probe_key))),
      build_key_(FoldConstants(std::move(build_key))),
      residual_predicate_(residual_predicate == nullptr
                              ? nullptr
                              : FoldConstants(std::move(residual_predicate))) {
  output_schema_ =
      Schema::Concat(probe->output_schema(), build->output_schema());
  AddChild(std::move(probe));
  AddChild(std::move(build));
  InitHotFuncs(module_id());
  if (residual_predicate_ != nullptr) AddHotFunc(sim::FuncId::kExprArith);
  for (sim::FuncId f : sim::ModuleBaseFuncs(sim::ModuleId::kHashJoinBuild)) {
    build_funcs_.push_back(f);
  }
  probe_compiled_ = CompileKey(*probe_key_, child(0)->output_schema());
  build_compiled_ = CompileKey(*build_key_, child(1)->output_schema());
  if (probe_compiled_ != nullptr) {
    SetVectorBatchFuncs();
    // The residual predicate still runs on the interpreter, per match.
    if (residual_predicate_ != nullptr) {
      batch_hot_funcs_.push_back(sim::FuncId::kExprArith);
    }
  }
  build_batch_funcs_ = build_funcs_;
  if (build_compiled_ != nullptr) {
    build_batch_funcs_.push_back(sim::FuncId::kVectorEvalCore);
  }
}

int32_t* HashJoinOperator::BucketFor(int64_t key) {
  uint64_t h = SplitMix64(static_cast<uint64_t>(key));
  return &buckets_[h & (buckets_.size() - 1)];
}

void HashJoinOperator::InsertBuildRow(int64_t key, const uint8_t* row) {
  if (nodes_.size() + 1 > buckets_.size() / 2) {
    // Rehash into a table twice the size.
    std::vector<int32_t> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, -1);
    for (int32_t i = 0; i < static_cast<int32_t>(nodes_.size()); ++i) {
      int32_t* bucket = BucketFor(nodes_[i].key);
      nodes_[i].next = *bucket;
      *bucket = i;
    }
  }
  int32_t* bucket = BucketFor(key);
  nodes_.push_back(Node{key, row, *bucket});
  *bucket = static_cast<int32_t>(nodes_.size() - 1);
  ctx_->Touch(bucket, sizeof(int32_t));
  ctx_->Touch(&nodes_.back(), sizeof(Node));
}

Status HashJoinOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  BUFFERDB_RETURN_IF_ERROR(child(0)->Open(ctx));
  BUFFERDB_RETURN_IF_ERROR(child(1)->Open(ctx));
  probe_row_ = nullptr;
  chain_ = -1;
  probe_pos_ = 0;
  probe_count_ = 0;
  probe_eof_ = false;
  if (probe_batch_size_ > 1) {
    probe_rows_.resize(probe_batch_size_);
    probe_keys_.resize(probe_batch_size_);
    probe_buckets_.resize(probe_batch_size_);
    probe_chains_.resize(probe_batch_size_);
    probe_valid_.resize(probe_batch_size_);
  }

  if (!built_) {
    const Schema& build_schema = child(1)->output_schema();
    // Size the table to a power of two >= 2x the build cardinality when
    // known; grow-by-rehash otherwise.
    size_t capacity = 1024;
    double est = child(1)->estimated_rows();
    if (est > 0) {
      while (capacity < 2 * static_cast<size_t>(est)) capacity <<= 1;
    }
    buckets_.assign(capacity, -1);
    if (probe_batch_size_ > 1 && build_compiled_ != nullptr &&
        vectorized_eval_) {
      // Batched build: pull whole batches, evaluate all keys with the
      // compiled program, then insert row-at-a-time.
      build_rows_.resize(kDefaultBatchSize);
      for (;;) {
        size_t n = child(1)->NextBatch(build_rows_.data(), build_rows_.size());
        if (n == 0) break;
        RowBatchDecoder::DecodeMissing(build_rows_.data(), n, build_schema,
                                       build_compiled_->input_columns(),
                                       child(1)->BatchColumns(),
                                       &build_vbatch_);
        const ColumnVector& keys = build_compiled_->Run(build_vbatch_);
        for (size_t i = 0; i < n; ++i) {
          ctx_->ExecModule(sim::ModuleId::kHashJoinBuild, build_batch_funcs_);
          if (keys.null_data()[i] != 0) continue;  // NULL keys never match.
          InsertBuildRow(keys.i64_data()[i], build_rows_[i]);
        }
      }
    } else {
      while (const uint8_t* row = child(1)->Next()) {
        ctx_->ExecModule(sim::ModuleId::kHashJoinBuild, build_funcs_);
        TupleView view(row, &build_schema);
        Value key = build_key_->Evaluate(view);
        if (key.is_null()) continue;  // NULL keys never match.
        InsertBuildRow(key.int64_value(), row);
      }
    }
    built_ = true;
  }
  return Status::OK();
}

// Pulls one batch of probe rows and resolves their bucket heads in two
// passes: pass 1 evaluates keys, hashes, and prefetches every row's bucket;
// pass 2 reads the (now in-flight) bucket heads and prefetches the first
// chain node. By the time the caller walks a row's chain, its cache lines
// are en route — the misses of up to `probe_batch_size_` independent probes
// overlap instead of paying a full DRAM round-trip each.
void HashJoinOperator::FetchProbeBatch() {
  const Schema& probe_schema = child(0)->output_schema();
  probe_pos_ = 0;
  probe_count_ = child(0)->NextBatch(probe_rows_.data(), probe_batch_size_);
  if (probe_count_ == 0) {
    probe_eof_ = true;
    return;
  }
  const uint64_t mask = buckets_.size() - 1;
  if (probe_compiled_ != nullptr && vectorized_eval_) {
    // Column-at-a-time key evaluation for the whole batch, then the same
    // hash + bucket-prefetch pass over the key vector.
    RowBatchDecoder::DecodeMissing(probe_rows_.data(), probe_count_,
                                   probe_schema,
                                   probe_compiled_->input_columns(),
                                   child(0)->BatchColumns(), &probe_vbatch_);
    const ColumnVector& keys = probe_compiled_->Run(probe_vbatch_);
    for (size_t i = 0; i < probe_count_; ++i) {
      const bool valid = keys.null_data()[i] == 0;
      probe_valid_[i] = valid ? 1 : 0;
      if (!valid) continue;
      probe_keys_[i] = keys.i64_data()[i];
      uint64_t b = SplitMix64(static_cast<uint64_t>(probe_keys_[i])) & mask;
      probe_buckets_[i] = b;
      PrefetchRead(&buckets_[b]);
    }
  } else {
    for (size_t i = 0; i < probe_count_; ++i) {
      TupleView view(probe_rows_[i], &probe_schema);
      Value key = probe_key_->Evaluate(view);
      bool valid = !key.is_null();
      probe_valid_[i] = valid ? 1 : 0;
      if (!valid) continue;
      probe_keys_[i] = key.int64_value();
      uint64_t b = SplitMix64(static_cast<uint64_t>(probe_keys_[i])) & mask;
      probe_buckets_[i] = b;
      PrefetchRead(&buckets_[b]);
    }
  }
  for (size_t i = 0; i < probe_count_; ++i) {
    if (!probe_valid_[i]) {
      probe_chains_[i] = -1;
      continue;
    }
    int32_t head = buckets_[probe_buckets_[i]];
    ctx_->Touch(&buckets_[probe_buckets_[i]], sizeof(int32_t));
    if (head >= 0) PrefetchRead(&nodes_[head]);
    probe_chains_[i] = head;
  }
}

const uint8_t* HashJoinOperator::Next() {
  const Schema& probe_schema = child(0)->output_schema();
  const Schema& build_schema = child(1)->output_schema();
  while (true) {
    // Walk the current chain for further matches.
    while (chain_ >= 0) {
      const Node& node = nodes_[chain_];
      ctx_->Touch(&node, sizeof(Node));
      int32_t current = chain_;
      chain_ = node.next;
      if (nodes_[current].key != probe_key_value_) continue;
      ctx_->ExecModule(module_id(), hot_funcs_);
      const uint8_t* combined = TupleBuilder::ConcatRows(
          output_schema_, probe_schema, probe_row_, build_schema,
          nodes_[current].row, &ctx_->arena);
      TupleView view(combined, &output_schema_);
      ctx_->Touch(combined, view.size_bytes());
      if (residual_predicate_ == nullptr ||
          EvaluatePredicate(*residual_predicate_, view)) {
        return combined;
      }
    }
    if (probe_batch_size_ > 1) {
      // Batched probe: serve the precomputed rows of the current batch.
      if (probe_pos_ >= probe_count_) {
        if (!probe_eof_) FetchProbeBatch();
        if (probe_count_ == 0 || probe_pos_ >= probe_count_) {
          ctx_->ExecModule(module_id(), hot_funcs_batched());
          return nullptr;
        }
      }
      ctx_->ExecModule(module_id(), hot_funcs_batched());
      size_t i = probe_pos_++;
      if (!probe_valid_[i]) continue;
      probe_row_ = probe_rows_[i];
      probe_key_value_ = probe_keys_[i];
      chain_ = probe_chains_[i];
      continue;
    }
    ctx_->ExecModule(module_id(), hot_funcs_);
    probe_row_ = child(0)->Next();
    if (probe_row_ == nullptr) return nullptr;
    TupleView view(probe_row_, &probe_schema);
    Value key = probe_key_->Evaluate(view);
    if (key.is_null()) continue;
    probe_key_value_ = key.int64_value();
    int32_t* bucket = BucketFor(probe_key_value_);
    ctx_->Touch(bucket, sizeof(int32_t));
    chain_ = *bucket;
  }
}

void HashJoinOperator::Close() {
  buckets_.clear();
  nodes_.clear();
  built_ = false;
  chain_ = -1;
  child(0)->Close();
  child(1)->Close();
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/vector.h"
#include "expr/vector_eval.h"
#include "parallel/morsel.h"
#include "storage/column_table.h"
#include "storage/table.h"

namespace bufferdb {

class ColumnScanOperator;
class FilterOperator;
class ProjectOperator;
class SeqScanOperator;

/// Knobs for FusedPipelineOperator::TryFuse (set by the plan refiner from
/// its RefinementOptions).
struct FusedPipelineOptions {
  /// A chain is only fused when the fused working set fits the instruction
  /// cache — the execution group is the fusion unit (DESIGN.md §15): the
  /// refiner has already proven a group's code co-resides in L1-I, and the
  /// fused set (stage kernel cores minus per-stage dispatch glue) is never
  /// larger than the unfused union, so any chain that formed one group
  /// also fuses.
  uint64_t l1i_capacity_bytes = 16 * 1024;
};

/// One compiled pipeline kernel replacing a maximal fusible operator chain
/// inside an execution group (DESIGN.md §15):
///
///   SeqScan/ColumnScan -> Filter* -> [Project]
///
/// The chain collapses into a single NextBatch loop: rows are gathered once
/// from the table (morsel-aware, zone-map-pruned for columnar sources), the
/// union of every stage's input columns is decoded (or segment-aliased) once
/// into one shared VectorBatch, all predicate programs fold into one live
/// selection mask, and the projection programs materialize survivors
/// straight into the arena. Between the fused stages there are no virtual
/// calls, no per-stage batch staging arrays, and no re-decoded or compacted
/// intermediate vectors — the row batch is materialized exactly once, at the
/// chain's output boundary.
///
/// Fusion happens at refinement time (PlanRefiner with
/// RefinementOptions::fuse_pipelines): TryFuse inspects a subtree, and when
/// its top is a fusible chain whose expressions all compiled to kernel
/// programs, replaces it with a FusedPipelineOperator. The original chain is
/// retained (unopened) only for schema/label lifetime; execution never
/// touches it — ENG010 enforces that the fused hot loops call neither
/// Evaluate nor any fused child's NextBatch.
///
/// Simulator accounting: the operator reports one
/// ExecModule(kFusedPipeline, ...) per input row, over the union of its
/// stages' kernel cores plus kFusedPipelineCore, minus kExecCommon — the
/// per-stage dispatch glue fusion eliminates. That keeps the refiner's
/// footprint math (§6.1) honest: a fused chain's working set is the same
/// functions a group of the unfused stages would co-locate, minus the glue.
class FusedPipelineOperator final : public Operator {
 public:
  /// Attempts to collapse the maximal fusible chain rooted at `op`. Returns
  /// the fused operator on success, or `op` unchanged when the subtree's
  /// top is not a fusible chain (wrong operator kinds, an uncompiled
  /// expression, vectorized evaluation disabled, an excluded operator,
  /// fewer than two stages, or a fused working set exceeding
  /// `opts.l1i_capacity_bytes`).
  static OperatorPtr TryFuse(OperatorPtr op, const FusedPipelineOptions& opts);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;
  [[nodiscard]] Status Rescan() override;
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const Schema& output_schema() const override;
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kFusedPipeline;
  }
  std::string label() const override;
  std::string AnalyzeDetail() const override;

  /// The fused stage labels, bottom-up (scan first). plan_printer renders
  /// them as an indented chain under the operator's line.
  const std::vector<std::string>& stage_labels() const {
    return stage_labels_;
  }

  /// Number of collapsed stages (test hook).
  size_t num_stages() const { return stage_labels_.size(); }

  /// Total synthetic bytes of the fused working set — what the refiner's
  /// group accounting sees via hot_funcs() (test hook).
  uint64_t fused_footprint_bytes() const;

  /// Zone-map statistics for the current execution (columnar sources only;
  /// test hook).
  uint64_t blocks_pruned() const { return blocks_pruned_; }

 private:
  FusedPipelineOperator(OperatorPtr chain, ProjectOperator* project,
                        std::vector<FilterOperator*> filters_top_down,
                        SeqScanOperator* seq, ColumnScanOperator* col);

  /// Hands the original chain back (used when the footprint gate rejects an
  /// already-built candidate).
  OperatorPtr ReleaseChain() { return std::move(chain_); }

  /// Gathers up to `max` input rows: row pointers into in_rows_, per-row
  /// module accounting, and the shared VectorBatch filled (row-decoded for
  /// a SeqScan source, segment-aliased for a ColumnScan source). Returns
  /// the gathered count; 0 means end of stream.
  size_t GatherSeq(size_t max);
  size_t GatherColumnar(size_t max);

  /// ColumnScan-source run claiming with zone-map pruning; mirrors
  /// ColumnScanOperator::ClaimRun.
  bool ClaimRun(size_t max, size_t* run);
  bool BlockPruned(size_t block) const;

  /// Points vbatch_ at segment storage for rows [pos_, pos_ + n), widening
  /// dictionary codes for the scan predicate's flagged inputs.
  void AliasColumnarInputs(size_t n);

  /// Runs every predicate program over the current batch and fills sel_
  /// with the lanes that are non-NULL true under ALL of them. Returns the
  /// survivor count.
  size_t ApplyPredicates(size_t in_n);

  /// Materializes projection results for the `n` selected lanes into one
  /// arena block, writing row pointers to `out` (same row format as
  /// ProjectOperator's vectorized path).
  void MaterializeProjection(const uint8_t** out, size_t n, bool has_sel);

  // False when any stage expression unexpectedly failed to recompile;
  // TryFuse then rejects the candidate and hands the chain back.
  bool valid_ = true;

  // The original (never-opened) chain: keeps schemas, labels and the
  // operators' expressions alive for the fused operator's lifetime.
  OperatorPtr chain_;
  ProjectOperator* project_ = nullptr;  // Into chain_; null when no Project.

  const Table* table_ = nullptr;
  const ColumnarTable* columnar_ = nullptr;  // Null for SeqScan sources.
  parallel::MorselCursor* morsels_ = nullptr;
  std::vector<ZoneConjunct> conjuncts_;  // Columnar sources only.

  // Freshly compiled kernel programs (chain order, scan predicate first).
  std::vector<std::unique_ptr<CompiledExpr>> predicates_;
  std::vector<std::unique_ptr<CompiledExpr>> project_progs_;
  std::vector<int> decode_cols_;     // Union of value input columns.
  std::vector<int> dict_code_cols_;  // Scan-predicate dictionary-code cols.

  std::vector<std::string> stage_labels_;

  std::vector<const uint8_t*> in_rows_;  // Gather scratch.
  VectorBatch vbatch_;                   // One shared decode per batch.
  std::vector<uint8_t> pass_;            // Combined predicate mask.
  SelectionVector sel_;
  std::vector<const ColumnVector*> results_;  // Project program outputs.

  std::vector<const uint8_t*> drain_;  // Next() staging over NextBatch().
  size_t drain_n_ = 0;
  size_t drain_pos_ = 0;

  size_t pos_ = 0;
  size_t limit_ = 0;  // End of the current morsel (or of the table).

  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
  uint64_t batches_ = 0;
  uint64_t blocks_pruned_ = 0;
  uint64_t rows_pruned_ = 0;
};

}  // namespace bufferdb

#pragma once

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

/// Equi merge-join over inputs sorted ascending on their key expressions
/// (NULL keys must not appear, or are skipped). Duplicate right-side key
/// groups are buffered in a small vector to produce the cross product.
/// Non-blocking on both inputs: it interleaves per tuple with both children,
/// which is why the paper's Fig. 17 plan buffers below it.
class MergeJoinOperator final : public Operator {
 public:
  MergeJoinOperator(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
                    ExprPtr right_key);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override { return sim::ModuleId::kMergeJoin; }
  std::string label() const override { return "MergeJoin"; }

 private:
  /// Fetches the next row with a non-null key from child `i` into
  /// *row/*key; returns false at end of input.
  bool Fetch(size_t i, const uint8_t** row, int64_t* key);

  ExprPtr left_key_;
  ExprPtr right_key_;
  Schema output_schema_;

  const uint8_t* left_row_ = nullptr;
  int64_t left_key_value_ = 0;
  const uint8_t* right_row_ = nullptr;
  int64_t right_key_value_ = 0;
  bool left_done_ = false;
  bool right_done_ = false;
  bool left_primed_ = false;
  bool right_primed_ = false;

  // Current equal-key group of right rows being cross-joined.
  std::vector<const uint8_t*> right_group_;
  int64_t group_key_ = 0;
  size_t group_pos_ = 0;
  bool emitting_ = false;
};

}  // namespace bufferdb


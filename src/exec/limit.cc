#include "exec/limit.h"

#include <string>

namespace bufferdb {

LimitOperator::LimitOperator(OperatorPtr child, size_t limit, size_t offset)
    : limit_(limit), offset_(offset) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

Status LimitOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  emitted_ = 0;
  skipped_ = 0;
  return child(0)->Open(ctx);
}

const uint8_t* LimitOperator::Next() {
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (emitted_ >= limit_) return nullptr;
  while (skipped_ < offset_) {
    if (child(0)->Next() == nullptr) return nullptr;
    ++skipped_;
  }
  const uint8_t* row = child(0)->Next();
  if (row != nullptr) ++emitted_;
  return row;
}

void LimitOperator::Close() { child(0)->Close(); }

std::string LimitOperator::label() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

}  // namespace bufferdb

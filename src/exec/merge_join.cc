#include "exec/merge_join.h"

#include "storage/tuple.h"

namespace bufferdb {

MergeJoinOperator::MergeJoinOperator(OperatorPtr left, OperatorPtr right,
                                     ExprPtr left_key, ExprPtr right_key)
    : left_key_(std::move(left_key)), right_key_(std::move(right_key)) {
  output_schema_ =
      Schema::Concat(left->output_schema(), right->output_schema());
  AddChild(std::move(left));
  AddChild(std::move(right));
  InitHotFuncs(module_id());
}

Status MergeJoinOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_row_ = right_row_ = nullptr;
  left_done_ = right_done_ = false;
  left_primed_ = right_primed_ = false;
  right_group_.clear();
  emitting_ = false;
  BUFFERDB_RETURN_IF_ERROR(child(0)->Open(ctx));
  return child(1)->Open(ctx);
}

bool MergeJoinOperator::Fetch(size_t i, const uint8_t** row, int64_t* key) {
  Operator* c = child(i);
  const Schema& schema = c->output_schema();
  const Expression& key_expr = i == 0 ? *left_key_ : *right_key_;
  while (const uint8_t* r = c->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    Value v = key_expr.Evaluate(TupleView(r, &schema));
    if (v.is_null()) continue;
    *row = r;
    *key = v.int64_value();
    return true;
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  return false;
}

const uint8_t* MergeJoinOperator::Next() {
  const Schema& left_schema = child(0)->output_schema();
  const Schema& right_schema = child(1)->output_schema();
  while (true) {
    if (emitting_) {
      if (group_pos_ < right_group_.size()) {
        ctx_->ExecModule(module_id(), hot_funcs_);
        const uint8_t* combined = TupleBuilder::ConcatRows(
            output_schema_, left_schema, left_row_, right_schema,
            right_group_[group_pos_++], &ctx_->arena);
        ctx_->Touch(combined, TupleView(combined, &output_schema_).size_bytes());
        return combined;
      }
      // Group exhausted for this left row; advance left.
      if (!Fetch(0, &left_row_, &left_key_value_)) {
        left_done_ = true;
        return nullptr;
      }
      if (left_key_value_ == group_key_) {
        group_pos_ = 0;  // Same key: replay the right group.
        continue;
      }
      emitting_ = false;
      right_group_.clear();
      continue;
    }

    if (!left_primed_) {
      left_primed_ = true;
      if (!Fetch(0, &left_row_, &left_key_value_)) left_done_ = true;
    }
    if (!right_primed_) {
      right_primed_ = true;
      if (!Fetch(1, &right_row_, &right_key_value_)) right_done_ = true;
    }
    if (left_done_ || right_done_) return nullptr;

    if (left_key_value_ < right_key_value_) {
      if (!Fetch(0, &left_row_, &left_key_value_)) {
        left_done_ = true;
        return nullptr;
      }
      continue;
    }
    if (left_key_value_ > right_key_value_) {
      if (!Fetch(1, &right_row_, &right_key_value_)) {
        right_done_ = true;
        return nullptr;
      }
      continue;
    }
    // Keys equal: gather the full right group for this key.
    group_key_ = left_key_value_;
    right_group_.clear();
    while (!right_done_ && right_key_value_ == group_key_) {
      // LINT: allow-alloc(group gather; capacity reused across groups)
      right_group_.push_back(right_row_);
      if (!Fetch(1, &right_row_, &right_key_value_)) right_done_ = true;
    }
    group_pos_ = 0;
    emitting_ = true;
  }
}

void MergeJoinOperator::Close() {
  right_group_.clear();
  child(0)->Close();
  child(1)->Close();
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/arena.h"
#include "common/status.h"
#include "sim/sim_cpu.h"

namespace bufferdb {

class VectorBatch;

/// Per-query execution state shared by all operators in a plan.
///
/// The arena owns every intermediate tuple produced during the query, which
/// is what makes the buffer operator's pointer array safe: buffered tuples
/// are not deallocated until the query finishes (paper §5, footnote 3).
///
/// `cpu` is optional; when set, operators report one ExecuteModuleCall per
/// unit of work (one per input tuple consumed / output tuple produced) plus
/// TouchData for the tuple bytes they access, which is how the simulated
/// hardware counters observe the query.
///
/// Thread-safety: an ExecContext (and the SimCpu it points to) belongs to
/// exactly ONE thread. Under parallel execution the ExchangeOperator gives
/// every worker fragment its own ExecContext with `cpu == nullptr` (or a
/// private per-fragment SimCpu when fragment simulation is enabled) —
/// fragments must never Touch/ExecModule through the consumer's context.
/// Simulated counters therefore only describe the whole query in
/// single-threaded plans; in parallel plans they cover just the operators
/// above the Exchange.
struct ExecContext {
  sim::SimCpu* cpu = nullptr;
  Arena arena;

  void ExecModule(sim::ModuleId module, std::span<const sim::FuncId> funcs) {
    if (cpu != nullptr) cpu->ExecuteModuleCall(module, funcs);
  }
  void Touch(const void* addr, size_t bytes) {
    if (cpu != nullptr) cpu->TouchData(addr, bytes);
  }
};

/// Demand-pull (Volcano) operator with the open-next-close interface the
/// paper builds on. Next() returns a pointer to a packed row (see
/// storage/tuple.h) or nullptr when exhausted.
class Operator {
 public:
  /// Default batch width for the NextBatch fast path: large enough to
  /// amortize per-batch costs and cover a prefetch pipeline, small enough
  /// that a batch of row pointers stays in L1-D (256 * 8B = 2KB).
  static constexpr size_t kDefaultBatchSize = 256;

  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  [[nodiscard]] virtual Status Open(ExecContext* ctx) = 0;
  virtual const uint8_t* Next() = 0;
  virtual void Close() = 0;

  /// Batch-at-a-time transfer: fills `out[0..max)` with up to `max` row
  /// pointers and returns the count; 0 means end of stream. A non-final
  /// call may return fewer than `max` rows — callers must keep calling
  /// until 0. Row pointers obey the same lifetime rule as Next() (valid
  /// until the query's arena is released, never invalidated by the next
  /// call). Mixing Next() and NextBatch() on one operator is allowed; the
  /// two drain the same underlying stream.
  ///
  /// The default implementation loops over Next(), so every operator
  /// supports the batch interface unchanged; operators with a natural
  /// array representation (Buffer, Exchange) or a tight generation loop
  /// (SeqScan, Filter, Project) override it.
  virtual size_t NextBatch(const uint8_t** out, size_t max);

  /// Re-positions at the beginning without releasing state. Default
  /// implementation is Close+Open.
  [[nodiscard]] virtual Status Rescan();

  /// Columns of the most recent NextBatch() result that this operator
  /// already holds in SoA form (DESIGN.md §12): ColumnScan publishes
  /// aliased segment storage, Filter/Project publish the vectors their own
  /// kernels produced. A consumer passes this to
  /// RowBatchDecoder::DecodeMissing so each column is decoded at most once
  /// per pipeline. nullptr (the default) means nothing is published. The
  /// returned batch is only valid for the rows of the producer's most
  /// recent NextBatch() return and is invalidated by the next pull.
  virtual const VectorBatch* BatchColumns() const { return nullptr; }

  virtual const Schema& output_schema() const = 0;

  /// The Table 2 module this operator's instruction footprint belongs to.
  virtual sim::ModuleId module_id() const = 0;

  /// Short label for plan printing, e.g. "Scan(lineitem)".
  virtual std::string label() const;

  /// Post-run self-description for EXPLAIN ANALYZE-style output (e.g. the
  /// adaptive buffer's chosen capacity): read after the plan drained, shown
  /// by QueryProfile next to the node's counters. Empty (the default) when
  /// there is nothing to report.
  virtual std::string AnalyzeDetail() const { return std::string(); }

  /// The synthetic functions executed per unit of work. Includes per-query
  /// additions (aggregate functions, predicate evaluation); this is what the
  /// profiler's dynamic call graph observes and what the plan refiner sums.
  const std::vector<sim::FuncId>& hot_funcs() const { return hot_funcs_; }

  /// The synthetic functions executed per unit of work on the batch fast
  /// path. Operators whose NextBatch() runs compiled kernel programs instead
  /// of the tree-walking interpreter replace kExprArith/kExprCmp with the
  /// (smaller) kVectorEvalCore here, so the plan refiner sees the reduced
  /// per-tuple instruction working set when refining a batched plan. Falls
  /// back to hot_funcs() for operators without a vectorized path.
  const std::vector<sim::FuncId>& hot_funcs_batched() const {
    return batch_hot_funcs_.empty() ? hot_funcs_ : batch_hot_funcs_;
  }

  /// Whether this operator may use compiled kernel programs on its batch
  /// path (set by the planner from PlannerOptions::vectorize_expressions;
  /// defaults to on for hand-built plans).
  void set_vectorized_eval(bool v) { vectorized_eval_ = v; }
  bool vectorized_eval() const { return vectorized_eval_; }

  // -- Plan-tree structure (used by the refiner and the printer). --
  size_t num_children() const { return children_.size(); }
  Operator* child(size_t i) const { return children_[i].get(); }
  std::unique_ptr<Operator> TakeChild(size_t i) {
    return std::move(children_[i]);
  }
  void SetChild(size_t i, std::unique_ptr<Operator> op) {
    children_[i] = std::move(op);
  }

  /// True if this operator fully consumes input `i` before producing its
  /// first output tuple (Sort, the build side of HashJoin, Materialize).
  /// Blocking operators "already buffer query execution below them" (§6).
  virtual bool BlocksInput(size_t i) const {
    (void)i;
    return false;
  }

  /// True for operators the refiner must never include in an execution
  /// group nor buffer above (e.g. the inner index scan of a foreign-key
  /// index nested-loop join, §6).
  bool excluded_from_buffering() const { return excluded_from_buffering_; }
  void set_excluded_from_buffering(bool v) { excluded_from_buffering_ = v; }

  /// Optimizer cardinality estimate for this operator's output; < 0 means
  /// unknown (treated as large by the refiner).
  double estimated_rows() const { return estimated_rows_; }
  void set_estimated_rows(double rows) { estimated_rows_ = rows; }

 protected:
  Operator() = default;

  void AddChild(std::unique_ptr<Operator> child) {
    children_.push_back(std::move(child));
  }

  /// Initializes hot_funcs_ from the module's base set; operators append
  /// query-specific functions afterwards.
  void InitHotFuncs(sim::ModuleId module) {
    hot_funcs_.clear();
    for (sim::FuncId f : sim::ModuleBaseFuncs(module)) hot_funcs_.push_back(f);
  }
  void AddHotFunc(sim::FuncId f) {
    for (sim::FuncId existing : hot_funcs_) {
      if (existing == f) return;
    }
    hot_funcs_.push_back(f);
  }

  /// Derives batch_hot_funcs_ from hot_funcs_ for an operator whose batch
  /// path runs compiled kernel programs: the interpreter footprints
  /// (kExprArith/kExprCmp) are replaced by kVectorEvalCore. Called after
  /// hot_funcs_ is final, by operators that successfully compiled their
  /// expressions.
  void SetVectorBatchFuncs() {
    batch_hot_funcs_.clear();
    for (sim::FuncId f : hot_funcs_) {
      if (f == sim::FuncId::kExprArith || f == sim::FuncId::kExprCmp) continue;
      batch_hot_funcs_.push_back(f);
    }
    batch_hot_funcs_.push_back(sim::FuncId::kVectorEvalCore);
  }

  ExecContext* ctx_ = nullptr;
  std::vector<sim::FuncId> hot_funcs_;
  std::vector<sim::FuncId> batch_hot_funcs_;
  bool vectorized_eval_ = true;

 private:
  std::vector<std::unique_ptr<Operator>> children_;
  bool excluded_from_buffering_ = false;
  double estimated_rows_ = -1.0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Runs a plan to completion (Open, drain, Close) and returns the produced
/// rows. Convenience used by tests, examples and benches.
Result<std::vector<const uint8_t*>> ExecutePlan(Operator* root,
                                                ExecContext* ctx);

/// Like ExecutePlan but drains the root through NextBatch() with batches of
/// `batch_size` rows — the batch-at-a-time fast path end to end.
Result<std::vector<const uint8_t*>> ExecutePlanBatched(
    Operator* root, ExecContext* ctx,
    size_t batch_size = Operator::kDefaultBatchSize);

/// Runs a plan and returns the produced rows as boxed values.
Result<std::vector<std::vector<Value>>> ExecutePlanRows(Operator* root,
                                                        ExecContext* ctx);

}  // namespace bufferdb


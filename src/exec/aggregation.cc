#include "exec/aggregation.h"

#include <algorithm>

#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

DataType AggOutputType(AggFunc func, DataType arg_type) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kSum:
      return arg_type == DataType::kDouble ? DataType::kDouble
                                           : DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg_type;
  }
  return DataType::kInt64;
}

void AggAccumulator::Update(AggFunc func, const Value& v) {
  if (func == AggFunc::kCountStar) {
    ++count;
    return;
  }
  if (v.is_null()) return;
  switch (func) {
    case AggFunc::kCount:
      ++count;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      ++count;
      if (v.type() == DataType::kDouble) {
        double_sum += v.double_value();
      } else {
        int_sum += v.int64_value();
        double_sum += static_cast<double>(v.int64_value());
      }
      break;
    case AggFunc::kMin:
      if (count == 0 || Value::Compare(v, extremum) < 0) extremum = v;
      ++count;
      break;
    case AggFunc::kMax:
      if (count == 0 || Value::Compare(v, extremum) > 0) extremum = v;
      ++count;
      break;
    case AggFunc::kCountStar:
      break;
  }
}

Value AggAccumulator::Final(AggFunc func, DataType output_type) const {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(count);
    case AggFunc::kSum:
      if (count == 0) return Value::Null(output_type);
      return output_type == DataType::kDouble ? Value::Double(double_sum)
                                              : Value::Int64(int_sum);
    case AggFunc::kAvg:
      if (count == 0) return Value::Null(DataType::kDouble);
      return Value::Double(double_sum / static_cast<double>(count));
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (count == 0) return Value::Null(output_type);
      return extremum;
  }
  return Value();
}

void AppendAggFuncs(AggFunc func, std::vector<sim::FuncId>* funcs) {
  auto add = [funcs](sim::FuncId f) {
    if (std::find(funcs->begin(), funcs->end(), f) == funcs->end()) {
      funcs->push_back(f);
    }
  };
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      add(sim::FuncId::kAggCount);
      break;
    case AggFunc::kSum:
      add(sim::FuncId::kAggSum);
      break;
    case AggFunc::kAvg:
      add(sim::FuncId::kAggSum);
      add(sim::FuncId::kAggAvgExtra);
      break;
    case AggFunc::kMin:
      add(sim::FuncId::kAggMin);
      break;
    case AggFunc::kMax:
      add(sim::FuncId::kAggMax);
      break;
  }
}

AggregationOperator::AggregationOperator(OperatorPtr child,
                                         std::vector<AggSpec> specs)
    : specs_(std::move(specs)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (AggSpec& spec : specs_) {
    // Fold at plan time: programmatically-built plans bypass the binder's
    // folding pass, so constant subtrees in aggregate arguments (e.g.
    // price * (1 - 0.1)) would otherwise be re-evaluated per tuple.
    if (spec.arg != nullptr) spec.arg = FoldConstants(std::move(spec.arg));
    AppendAggFuncs(spec.func, &hot_funcs_);
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->result_type() : DataType::kInt64;
    cols.push_back(Column{spec.output_name, AggOutputType(spec.func, arg_type)});
  }
  output_schema_ = Schema(std::move(cols));
}

Status AggregationOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  return child(0)->Open(ctx);
}

const uint8_t* AggregationOperator::Next() {
  if (done_) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    return nullptr;
  }
  const Schema& in_schema = child(0)->output_schema();
  std::vector<AggAccumulator> accs(specs_.size());
  while (const uint8_t* row = child(0)->Next()) {
    // One aggregation-module execution per input tuple: this is the
    // per-tuple interleaving with the child that buffering removes.
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &in_schema);
    for (size_t i = 0; i < specs_.size(); ++i) {
      Value v = specs_[i].arg != nullptr ? specs_[i].arg->Evaluate(view)
                                         : Value();
      accs[i].Update(specs_[i].func, v);
    }
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  TupleBuilder builder(&output_schema_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    builder.Set(i, accs[i].Final(specs_[i].func,
                                 output_schema_.column(i).type));
  }
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  done_ = true;
  return out;
}

void AggregationOperator::Close() { child(0)->Close(); }

std::string AggregationOperator::label() const {
  std::string out = "Agg(";
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggFuncName(specs_[i].func);
    if (specs_[i].arg != nullptr) {
      // Append-form (not `"(" + s + ")"`) to dodge gcc 12's -O3 -Wrestrict
      // false positive (PR105651).
      out += "(";
      out += specs_[i].arg->ToString();
      out += ")";
    }
  }
  out += ")";
  return out;
}

}  // namespace bufferdb

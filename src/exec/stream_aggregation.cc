#include "exec/stream_aggregation.h"

#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

StreamAggregationOperator::StreamAggregationOperator(
    OperatorPtr child, std::vector<GroupKeyExpr> groups,
    std::vector<AggSpec> specs)
    : groups_(std::move(groups)), specs_(std::move(specs)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (GroupKeyExpr& g : groups_) {
    g.expr = FoldConstants(std::move(g.expr));
    cols.push_back(Column{g.output_name, g.expr->result_type()});
  }
  for (AggSpec& spec : specs_) {
    if (spec.arg != nullptr) spec.arg = FoldConstants(std::move(spec.arg));
    AppendAggFuncs(spec.func, &hot_funcs_);
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->result_type() : DataType::kInt64;
    cols.push_back(Column{spec.output_name, AggOutputType(spec.func, arg_type)});
  }
  output_schema_ = Schema(std::move(cols));

  // Compile group keys and aggregate arguments (all-or-nothing, like
  // HashAggregation).
  const Schema& in_schema = this->child(0)->output_schema();
  keys_compiled_ = true;
  for (const GroupKeyExpr& g : groups_) {
    group_compiled_.push_back(CompiledExpr::Compile(*g.expr, in_schema));
    keys_compiled_ = keys_compiled_ && group_compiled_.back() != nullptr;
  }
  for (const AggSpec& spec : specs_) {
    if (spec.arg == nullptr) {
      arg_compiled_.push_back(nullptr);  // COUNT(*) takes no argument.
      continue;
    }
    arg_compiled_.push_back(CompiledExpr::Compile(*spec.arg, in_schema));
    keys_compiled_ = keys_compiled_ && arg_compiled_.back() != nullptr;
  }
  if (keys_compiled_) {
    SetVectorBatchFuncs();
    for (const auto& programs : {&group_compiled_, &arg_compiled_}) {
      for (const auto& p : *programs) {
        if (p == nullptr) continue;
        for (int col : p->input_columns()) {
          bool present = false;
          for (int c : decode_cols_) present = present || c == col;
          if (!present) decode_cols_.push_back(col);
        }
      }
    }
  } else {
    group_compiled_.clear();
    arg_compiled_.clear();
  }
  gvecs_.resize(group_compiled_.size());
  avecs_.resize(arg_compiled_.size());
  lane_keys_.resize(groups_.size());
}

Status StreamAggregationOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  group_open_ = false;
  input_done_ = false;
  pos_ = 0;
  count_ = 0;
  if (batch_size_ > 1) batch_rows_.resize(batch_size_);
  return child(0)->Open(ctx);
}

const uint8_t* StreamAggregationOperator::EmitGroup() {
  TupleBuilder builder(&output_schema_);
  size_t col = 0;
  for (const Value& v : current_keys_) builder.Set(col++, v);
  for (size_t i = 0; i < specs_.size(); ++i) {
    builder.Set(col, accs_[i].Final(specs_[i].func,
                                    output_schema_.column(col).type));
    ++col;
  }
  group_open_ = false;
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  return out;
}

const uint8_t* StreamAggregationOperator::NextVectorized() {
  if (input_done_) {
    ctx_->ExecModule(module_id(), hot_funcs_batched());
    return group_open_ ? EmitGroup() : nullptr;
  }
  const Schema& in_schema = child(0)->output_schema();
  for (;;) {
    if (pos_ >= count_) {
      count_ = child(0)->NextBatch(batch_rows_.data(), batch_size_);
      pos_ = 0;
      if (count_ == 0) {
        ctx_->ExecModule(module_id(), hot_funcs_batched());
        input_done_ = true;
        return group_open_ ? EmitGroup() : nullptr;
      }
      RowBatchDecoder::DecodeMissing(batch_rows_.data(), count_, in_schema,
                                     decode_cols_, child(0)->BatchColumns(),
                                     &vbatch_);
      for (size_t g = 0; g < group_compiled_.size(); ++g) {
        gvecs_[g] = &group_compiled_[g]->Run(vbatch_);
      }
      for (size_t a = 0; a < arg_compiled_.size(); ++a) {
        avecs_[a] = arg_compiled_[a] != nullptr
                        ? &arg_compiled_[a]->Run(vbatch_)
                        : nullptr;
      }
    }
    while (pos_ < count_) {
      const size_t i = pos_++;
      ctx_->ExecModule(module_id(), hot_funcs_batched());
      for (size_t g = 0; g < gvecs_.size(); ++g) {
        lane_keys_[g] = LaneValue(*gvecs_[g], i);
      }
      bool same_group = group_open_;
      if (same_group) {
        for (size_t g = 0; g < lane_keys_.size(); ++g) {
          if (!(lane_keys_[g] == current_keys_[g])) {
            same_group = false;
            break;
          }
        }
      }
      const uint8_t* finished = nullptr;
      if (group_open_ && !same_group) finished = EmitGroup();
      if (!same_group) {
        current_keys_ = lane_keys_;
        accs_.assign(specs_.size(), AggAccumulator());
        group_open_ = true;
      }
      for (size_t s = 0; s < specs_.size(); ++s) {
        Value v = avecs_[s] != nullptr ? LaneValue(*avecs_[s], i) : Value();
        accs_[s].Update(specs_[s].func, v);
      }
      if (finished != nullptr) return finished;
    }
  }
}

const uint8_t* StreamAggregationOperator::Next() {
  if (batch_size_ > 1 && keys_compiled_ && vectorized_eval_) {
    return NextVectorized();
  }
  if (input_done_) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    return group_open_ ? EmitGroup() : nullptr;
  }
  const Schema& in_schema = child(0)->output_schema();
  std::vector<Value> keys(groups_.size());
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &in_schema);
    for (size_t i = 0; i < groups_.size(); ++i) {
      keys[i] = groups_[i].expr->Evaluate(view);
    }
    bool same_group = group_open_;
    if (same_group) {
      for (size_t i = 0; i < keys.size(); ++i) {
        if (!(keys[i] == current_keys_[i])) {
          same_group = false;
          break;
        }
      }
    }
    const uint8_t* finished = nullptr;
    if (group_open_ && !same_group) finished = EmitGroup();
    if (!same_group) {
      current_keys_ = keys;
      // LINT: allow-alloc(per-group accumulator reset within reserved
      // capacity; assign does not reallocate after the first group)
      accs_.assign(specs_.size(), AggAccumulator());
      group_open_ = true;
    }
    for (size_t i = 0; i < specs_.size(); ++i) {
      Value v =
          specs_[i].arg != nullptr ? specs_[i].arg->Evaluate(view) : Value();
      accs_[i].Update(specs_[i].func, v);
    }
    if (finished != nullptr) return finished;
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  input_done_ = true;
  return group_open_ ? EmitGroup() : nullptr;
}

void StreamAggregationOperator::Close() {
  group_open_ = false;
  input_done_ = false;
  child(0)->Close();
}

std::string StreamAggregationOperator::label() const {
  std::string out = "StreamAgg(by ";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i > 0) out += ",";
    out += groups_[i].output_name;
  }
  out += ")";
  return out;
}

}  // namespace bufferdb

#include "exec/stream_aggregation.h"

#include "storage/tuple.h"

namespace bufferdb {

StreamAggregationOperator::StreamAggregationOperator(
    OperatorPtr child, std::vector<GroupKeyExpr> groups,
    std::vector<AggSpec> specs)
    : groups_(std::move(groups)), specs_(std::move(specs)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (const GroupKeyExpr& g : groups_) {
    cols.push_back(Column{g.output_name, g.expr->result_type()});
  }
  for (const AggSpec& spec : specs_) {
    AppendAggFuncs(spec.func, &hot_funcs_);
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->result_type() : DataType::kInt64;
    cols.push_back(Column{spec.output_name, AggOutputType(spec.func, arg_type)});
  }
  output_schema_ = Schema(std::move(cols));
}

Status StreamAggregationOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  group_open_ = false;
  input_done_ = false;
  return child(0)->Open(ctx);
}

const uint8_t* StreamAggregationOperator::EmitGroup() {
  TupleBuilder builder(&output_schema_);
  size_t col = 0;
  for (const Value& v : current_keys_) builder.Set(col++, v);
  for (size_t i = 0; i < specs_.size(); ++i) {
    builder.Set(col, accs_[i].Final(specs_[i].func,
                                    output_schema_.column(col).type));
    ++col;
  }
  group_open_ = false;
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  return out;
}

const uint8_t* StreamAggregationOperator::Next() {
  if (input_done_) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    return group_open_ ? EmitGroup() : nullptr;
  }
  const Schema& in_schema = child(0)->output_schema();
  std::vector<Value> keys(groups_.size());
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &in_schema);
    for (size_t i = 0; i < groups_.size(); ++i) {
      keys[i] = groups_[i].expr->Evaluate(view);
    }
    bool same_group = group_open_;
    if (same_group) {
      for (size_t i = 0; i < keys.size(); ++i) {
        if (!(keys[i] == current_keys_[i])) {
          same_group = false;
          break;
        }
      }
    }
    const uint8_t* finished = nullptr;
    if (group_open_ && !same_group) finished = EmitGroup();
    if (!same_group) {
      current_keys_ = keys;
      // LINT: allow-alloc(per-group accumulator reset within reserved
      // capacity; assign does not reallocate after the first group)
      accs_.assign(specs_.size(), AggAccumulator());
      group_open_ = true;
    }
    for (size_t i = 0; i < specs_.size(); ++i) {
      Value v =
          specs_[i].arg != nullptr ? specs_[i].arg->Evaluate(view) : Value();
      accs_[i].Update(specs_[i].func, v);
    }
    if (finished != nullptr) return finished;
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  input_done_ = true;
  return group_open_ ? EmitGroup() : nullptr;
}

void StreamAggregationOperator::Close() {
  group_open_ = false;
  input_done_ = false;
  child(0)->Close();
}

std::string StreamAggregationOperator::label() const {
  std::string out = "StreamAgg(by ";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i > 0) out += ",";
    out += groups_[i].output_name;
  }
  out += ")";
  return out;
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregation.h"
#include "exec/hash_aggregation.h"
#include "exec/operator.h"

namespace bufferdb {

/// Grouped aggregation over input *sorted by the group keys*: emits a group
/// as soon as the key changes. Unlike HashAggregation it needs no hash
/// table and — unlike the blocking Sort that usually feeds it — it is a
/// pipelined operator that participates in execution groups. Output columns
/// are the group keys followed by the aggregates, in SELECT order.
class StreamAggregationOperator final : public Operator {
 public:
  StreamAggregationOperator(OperatorPtr child, std::vector<GroupKeyExpr> groups,
                            std::vector<AggSpec> specs);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kStreamAggregation;
  }
  std::string label() const override;

 private:
  /// Builds the output row for the finished group.
  const uint8_t* EmitGroup();

  std::vector<GroupKeyExpr> groups_;
  std::vector<AggSpec> specs_;
  Schema output_schema_;

  std::vector<Value> current_keys_;
  std::vector<AggAccumulator> accs_;
  bool group_open_ = false;
  bool input_done_ = false;
};

}  // namespace bufferdb


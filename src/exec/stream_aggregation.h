#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregation.h"
#include "exec/hash_aggregation.h"
#include "exec/operator.h"
#include "exec/row_batch_decoder.h"
#include "expr/vector_eval.h"

namespace bufferdb {

/// Grouped aggregation over input *sorted by the group keys*: emits a group
/// as soon as the key changes. Unlike HashAggregation it needs no hash
/// table and — unlike the blocking Sort that usually feeds it — it is a
/// pipelined operator that participates in execution groups. Output columns
/// are the group keys followed by the aggregates, in SELECT order.
///
/// With `set_batch_size(n > 1)` and fully compiled key/argument
/// expressions, input is consumed through NextBatch and the group keys and
/// aggregate arguments of the whole batch are evaluated column-at-a-time;
/// the group-change scan then walks the result vectors lane by lane.
class StreamAggregationOperator final : public Operator {
 public:
  StreamAggregationOperator(OperatorPtr child, std::vector<GroupKeyExpr> groups,
                            std::vector<AggSpec> specs);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kStreamAggregation;
  }
  std::string label() const override;

  /// Input batch width for the vectorized path; <= 1 selects the
  /// tuple-at-a-time stream. Takes effect at the next Open.
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  size_t batch_size() const { return batch_size_; }

  /// True when every group key and aggregate argument compiled (test hook).
  bool keys_compiled() const { return keys_compiled_; }

 private:
  /// Builds the output row for the finished group.
  const uint8_t* EmitGroup();
  /// Batched drive loop over the kernel-program result vectors.
  const uint8_t* NextVectorized();

  std::vector<GroupKeyExpr> groups_;
  std::vector<AggSpec> specs_;
  Schema output_schema_;

  std::vector<Value> current_keys_;
  std::vector<AggAccumulator> accs_;
  bool group_open_ = false;
  bool input_done_ = false;

  // Vectorized-path state (active when batch_size_ > 1 and keys_compiled_).
  size_t batch_size_ = 1;
  std::vector<std::unique_ptr<CompiledExpr>> group_compiled_;
  std::vector<std::unique_ptr<CompiledExpr>> arg_compiled_;
  bool keys_compiled_ = false;
  std::vector<int> decode_cols_;
  std::vector<const uint8_t*> batch_rows_;
  VectorBatch vbatch_;
  std::vector<const ColumnVector*> gvecs_;
  std::vector<const ColumnVector*> avecs_;
  std::vector<Value> lane_keys_;
  size_t pos_ = 0;    // Next lane of the current batch to absorb.
  size_t count_ = 0;  // Lanes in the current batch.
};

}  // namespace bufferdb

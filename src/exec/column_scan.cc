#include "exec/column_scan.h"

#include <algorithm>
#include <cassert>

#include "expr/evaluator.h"

namespace bufferdb {

namespace {

ZoneOp ToZoneOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return ZoneOp::kEq;
    case BinaryOp::kNe: return ZoneOp::kNe;
    case BinaryOp::kLt: return ZoneOp::kLt;
    case BinaryOp::kLe: return ZoneOp::kLe;
    case BinaryOp::kGt: return ZoneOp::kGt;
    default: return ZoneOp::kGe;
  }
}

/// Builds the zone conjunct for one `col <op> literal` comparison, already
/// normalized so the column is on the left. String literals are translated
/// into dictionary-code space (the dictionary is sorted, so code order is
/// string order). Returns false when the conjunct is unusable for pruning
/// (mixed domains, NULL literal, ...) — never an error, just no pruning.
bool MakeConjunct(const ColumnRefExpr& ref, BinaryOp op, const Value& lit,
                  const DictView& dict, ZoneConjunct* out) {
  if (lit.is_null()) return false;
  const DataType ct = ref.result_type();
  out->col = ref.column();
  out->op = ToZoneOp(op);
  switch (ct) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kDate:
      // Exact-domain only: an int literal against a double column (or vice
      // versa) would need float-precision reasoning; skip those.
      if (lit.type() != ct) return false;
      out->is_f64 = false;
      out->i64 = lit.int64_value();
      return true;
    case DataType::kDouble:
      if (lit.type() != DataType::kDouble) return false;
      out->is_f64 = true;
      out->f64 = lit.double_value();
      return true;
    case DataType::kString: {
      if (lit.type() != DataType::kString || !dict.HasDict(out->col)) {
        return false;
      }
      out->is_f64 = false;
      const std::string& s = lit.string_value();
      switch (op) {
        case BinaryOp::kEq: {
          const int64_t code = dict.CodeOf(out->col, s);
          if (code < 0) {
            out->always_false = true;  // Literal absent: nothing matches.
          } else {
            out->i64 = code;
          }
          return true;
        }
        case BinaryOp::kNe: {
          const int64_t code = dict.CodeOf(out->col, s);
          if (code < 0) return false;  // Every non-NULL row passes.
          out->i64 = code;
          return true;
        }
        // Ordered comparisons become code-rank bounds: codes [0, lower)
        // are < s, codes [0, upper) are <= s.
        case BinaryOp::kLt:
          out->op = ZoneOp::kLt;
          out->i64 = dict.LowerBound(out->col, s);
          return true;
        case BinaryOp::kLe:
          out->op = ZoneOp::kLt;
          out->i64 = dict.UpperBound(out->col, s);
          return true;
        case BinaryOp::kGt:
          out->op = ZoneOp::kGe;
          out->i64 = dict.UpperBound(out->col, s);
          return true;
        case BinaryOp::kGe:
          out->op = ZoneOp::kGe;
          out->i64 = dict.LowerBound(out->col, s);
          return true;
        default:
          return false;
      }
    }
  }
  return false;
}

/// Collects pruning conjuncts from the top-level AND chain of `e`. Only
/// `col <op> literal` comparisons (and literal/prefix LIKE on dictionary
/// columns) contribute; anything else is simply not used for pruning. Every
/// emitted conjunct C satisfies: row passes the predicate => C is true for
/// that row — so a block where C can never be true is safely skippable.
void ExtractZoneConjuncts(const Expression& e, const DictView& dict,
                          std::vector<ZoneConjunct>* out) {
  if (e.kind() != ExprKind::kBinary) return;
  const auto& b = static_cast<const BinaryExpr&>(e);
  if (b.op() == BinaryOp::kAnd) {
    ExtractZoneConjuncts(b.left(), dict, out);
    ExtractZoneConjuncts(b.right(), dict, out);
    return;
  }
  if (b.op() == BinaryOp::kLike) {
    if (b.left().kind() != ExprKind::kColumnRef ||
        b.right().kind() != ExprKind::kLiteral) {
      return;
    }
    const auto& ref = static_cast<const ColumnRefExpr&>(b.left());
    const Value& lit = static_cast<const LiteralExpr&>(b.right()).value();
    if (lit.is_null() || lit.type() != DataType::kString ||
        !dict.HasDict(ref.column())) {
      return;
    }
    const std::string& s = lit.string_value();
    const size_t wild = s.find_first_of("%_");
    if (wild == std::string::npos) {
      ZoneConjunct c;  // `LIKE 'abc'` is exact match.
      if (MakeConjunct(ref, BinaryOp::kEq, lit, dict, &c)) out->push_back(c);
      return;
    }
    if (s.back() != '%' || wild != s.size() - 1) return;
    int64_t lo = 0;
    int64_t hi = 0;
    if (!dict.PrefixRange(ref.column(), {s.data(), s.size() - 1}, &lo, &hi)) {
      return;
    }
    ZoneConjunct ge;
    ge.col = ref.column();
    ge.op = ZoneOp::kGe;
    ge.i64 = lo;
    ZoneConjunct lt;
    lt.col = ref.column();
    lt.op = ZoneOp::kLt;
    lt.i64 = hi;
    out->push_back(ge);
    out->push_back(lt);
    return;
  }
  if (!IsComparison(b.op())) return;
  const Expression* col_side = &b.left();
  const Expression* lit_side = &b.right();
  BinaryOp op = b.op();
  if (col_side->kind() != ExprKind::kColumnRef &&
      lit_side->kind() == ExprKind::kColumnRef) {
    std::swap(col_side, lit_side);
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;
    }
  }
  if (col_side->kind() != ExprKind::kColumnRef ||
      lit_side->kind() != ExprKind::kLiteral) {
    return;
  }
  ZoneConjunct c;
  if (MakeConjunct(static_cast<const ColumnRefExpr&>(*col_side), op,
                   static_cast<const LiteralExpr&>(*lit_side).value(), dict,
                   &c)) {
    out->push_back(c);
  }
}

}  // namespace

ColumnScanOperator::ColumnScanOperator(Table* table, ExprPtr predicate)
    : table_(table),
      columnar_(table->columnar()),
      predicate_(predicate != nullptr ? FoldConstants(std::move(predicate))
                                      : nullptr) {
  assert(columnar_ != nullptr && "ColumnScan needs Table::AttachColumnar");
  InitHotFuncs(module_id());
  if (predicate_ != nullptr) {
    // Scalar fallback runs the tree-walking interpreter.
    AddHotFunc(sim::FuncId::kExprCmp);
    AddHotFunc(sim::FuncId::kExprArith);
    compiled_ =
        CompiledExpr::Compile(*predicate_, table_->schema(), columnar_);
    if (compiled_ != nullptr) SetVectorBatchFuncs();
    ExtractZoneConjuncts(*predicate_, *columnar_, &conjuncts_);
  }
}

Status ColumnScanOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  limit_ = morsels_ != nullptr ? 0 : table_->num_rows();
  blocks_pruned_ = 0;
  rows_pruned_ = 0;
  published_.set_rows(0);
  return Status::OK();
}

bool ColumnScanOperator::BlockPruned(size_t block) const {
  for (const ZoneConjunct& c : conjuncts_) {
    const ColumnSegment& seg =
        columnar_->segment(static_cast<size_t>(c.col));
    if (block >= seg.zones.size()) continue;
    if (!BlockMayMatch(seg.zones[block], seg, c)) return true;
  }
  return false;
}

bool ColumnScanOperator::ClaimRun(size_t max, size_t* run) {
  for (;;) {
    if (pos_ >= limit_) {
      parallel::Morsel morsel;
      if (morsels_ == nullptr || !morsels_->TryNext(&morsel)) return false;
      pos_ = morsel.begin;
      limit_ = morsel.end;
      continue;
    }
    const size_t block = pos_ / kZoneBlockRows;
    const size_t block_end = std::min(limit_, (block + 1) * kZoneBlockRows);
    if (BlockPruned(block)) {
      ++blocks_pruned_;
      rows_pruned_ += block_end - pos_;
      pos_ = block_end;
      continue;
    }
    // Extend the run across consecutive unpruned blocks up to `max` rows;
    // a run never spans a pruned block (the skip happens on the next call)
    // and never a morsel boundary (limit_).
    size_t run_end = block_end;
    while (run_end < limit_ && run_end - pos_ < max) {
      const size_t next_block = run_end / kZoneBlockRows;
      if (BlockPruned(next_block)) break;
      run_end = std::min(limit_, (next_block + 1) * kZoneBlockRows);
    }
    *run = std::min(max, run_end - pos_);
    return true;
  }
}

void ColumnScanOperator::FillPredicateInputs(size_t n) {
  vbatch_.set_rows(n);
  const std::vector<int>& cols = compiled_->input_columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    const auto col = static_cast<size_t>(cols[i]);
    const ColumnSegment& seg = columnar_->segment(col);
    ColumnVector* vec = vbatch_.Mutable(cols[i]);
    if (compiled_->input_is_dict_code(i)) {
      // Codes are stored int32; widen into an owned int64 vector (the one
      // materialization the dictionary path pays). NULL rows carry code 0,
      // preserving the zero-payload-under-NULL invariant.
      vec->Reset(DataType::kInt64, n);
      int64_t* out = vec->i64.data();
      uint8_t* nulls = vec->nulls.data();
      const int32_t* codes = seg.codes.data() + pos_;
      const uint8_t* seg_nulls = seg.nulls.data() + pos_;
      for (size_t k = 0; k < n; ++k) {
        out[k] = codes[k];
        nulls[k] = seg_nulls[k];
      }
      ctx_->Touch(codes, n * sizeof(int32_t));
      ctx_->Touch(seg_nulls, n);
    } else if (seg.type == DataType::kDouble) {
      vec->AliasF64(seg.f64.data() + pos_, seg.nulls.data() + pos_);
      ctx_->Touch(seg.f64.data() + pos_, n * sizeof(double));
      ctx_->Touch(seg.nulls.data() + pos_, n);
    } else {
      vec->AliasI64(seg.type, seg.i64.data() + pos_, seg.nulls.data() + pos_);
      ctx_->Touch(seg.i64.data() + pos_, n * sizeof(int64_t));
      ctx_->Touch(seg.nulls.data() + pos_, n);
    }
  }
}

void ColumnScanOperator::PublishAliases(size_t n) {
  published_.set_rows(n);
  const Schema& schema = table_->schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnSegment& seg = columnar_->segment(c);
    // String columns have no SoA value form; consumers read them from the
    // row pointers as before.
    if (seg.type == DataType::kString) continue;
    ColumnVector* vec = published_.Mutable(static_cast<int>(c));
    if (seg.type == DataType::kDouble) {
      vec->AliasF64(seg.f64.data() + pos_, seg.nulls.data() + pos_);
      ctx_->Touch(seg.f64.data() + pos_, n * sizeof(double));
    } else {
      vec->AliasI64(seg.type, seg.i64.data() + pos_, seg.nulls.data() + pos_);
      ctx_->Touch(seg.i64.data() + pos_, n * sizeof(int64_t));
    }
    ctx_->Touch(seg.nulls.data() + pos_, n);
  }
}

void ColumnScanOperator::PublishCompacted(size_t n) {
  (void)n;
  published_.set_rows(sel_.count);
  const std::vector<int>& cols = compiled_->input_columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (compiled_->input_is_dict_code(i)) continue;  // Codes stay private.
    const ColumnVector& src = vbatch_.Get(cols[i]);
    ColumnVector* dst = published_.Mutable(cols[i]);
    dst->Reset(src.type, sel_.count);
    uint8_t* dst_nulls = dst->nulls.data();
    const uint8_t* src_nulls = src.null_data();
    if (src.is_double()) {
      const double* s = src.f64_data();
      double* d = dst->f64.data();
      for (size_t k = 0; k < sel_.count; ++k) {
        d[k] = s[sel_.idx[k]];
        dst_nulls[k] = src_nulls[sel_.idx[k]];
      }
    } else {
      const int64_t* s = src.i64_data();
      int64_t* d = dst->i64.data();
      for (size_t k = 0; k < sel_.count; ++k) {
        d[k] = s[sel_.idx[k]];
        dst_nulls[k] = src_nulls[sel_.idx[k]];
      }
    }
  }
}

size_t ColumnScanOperator::NextBatch(const uint8_t** out, size_t max) {
  const std::vector<const uint8_t*>& rows = table_->rows();
  if (compiled_ != nullptr && vectorized_eval_) {
    for (;;) {
      size_t run = 0;
      if (!ClaimRun(max, &run)) break;
      // One module execution per row considered; pruned blocks never get
      // here, which is the zone maps' instruction-count win.
      for (size_t i = 0; i < run; ++i) {
        ctx_->ExecModule(module_id(), hot_funcs_batched());
      }
      FillPredicateInputs(run);
      compiled_->RunFilter(vbatch_, &sel_);
      if (sel_.count == 0) {
        pos_ += run;
        continue;  // Keep scanning: 0 means end-of-stream to callers.
      }
      for (size_t k = 0; k < sel_.count; ++k) {
        out[k] = rows[pos_ + sel_.idx[k]];
      }
      PublishCompacted(run);
      pos_ += run;
      return sel_.count;
    }
    ctx_->ExecModule(module_id(), hot_funcs_batched());  // End-of-scan.
    return 0;
  }
  if (predicate_ == nullptr) {
    size_t run = 0;
    if (!ClaimRun(max, &run)) {
      ctx_->ExecModule(module_id(), hot_funcs_batched());
      return 0;
    }
    for (size_t i = 0; i < run; ++i) {
      ctx_->ExecModule(module_id(), hot_funcs_batched());
      out[i] = rows[pos_ + i];
    }
    PublishAliases(run);
    pos_ += run;
    return run;
  }
  // Scalar fallback (predicate did not compile): interpreter per row, but
  // zone pruning still applies through ClaimRun.
  published_.set_rows(0);
  const Schema& schema = table_->schema();
  size_t n = 0;
  while (n < max) {
    size_t run = 0;
    if (!ClaimRun(max - n, &run)) break;
    for (size_t i = 0; i < run; ++i) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      const uint8_t* row = rows[pos_ + i];
      TupleView view(row, &schema);
      ctx_->Touch(row, view.size_bytes());
      // LINT: allow-scalar-eval(fallback: predicate did not compile)
      const bool keep = EvaluatePredicate(*predicate_, view);
      out[n] = row;
      n += keep ? 1 : 0;
    }
    pos_ += run;
    if (n > 0) return n;  // Contiguity only matters for published columns.
  }
  if (n == 0) ctx_->ExecModule(module_id(), hot_funcs_);
  return n;
}

const uint8_t* ColumnScanOperator::Next() {
  const Schema& schema = table_->schema();
  for (;;) {
    if (pos_ >= limit_) {
      parallel::Morsel morsel;
      if (morsels_ == nullptr || !morsels_->TryNext(&morsel)) break;
      pos_ = morsel.begin;
      limit_ = morsel.end;
      continue;
    }
    const size_t block = pos_ / kZoneBlockRows;
    if (BlockPruned(block)) {
      const size_t block_end = std::min(limit_, (block + 1) * kZoneBlockRows);
      ++blocks_pruned_;
      rows_pruned_ += block_end - pos_;
      pos_ = block_end;
      continue;
    }
    ctx_->ExecModule(module_id(), hot_funcs_);
    const uint8_t* row = table_->row(pos_++);
    TupleView view(row, &schema);
    ctx_->Touch(row, view.size_bytes());
    if (predicate_ == nullptr || EvaluatePredicate(*predicate_, view)) {
      return row;
    }
  }
  ctx_->ExecModule(module_id(), hot_funcs_);  // End-of-scan bookkeeping.
  return nullptr;
}

void ColumnScanOperator::Close() {
  pos_ = 0;
  limit_ = 0;
  published_.set_rows(0);
}

Status ColumnScanOperator::Rescan() {
  pos_ = 0;
  limit_ = morsels_ != nullptr ? 0 : table_->num_rows();
  published_.set_rows(0);
  return Status::OK();
}

std::string ColumnScanOperator::label() const {
  std::string out = "ColumnScan(" + table_->name();
  if (predicate_ != nullptr) {
    out += ", ";
    out += predicate_->ToString();
  }
  if (morsels_ != nullptr) out += ", morsel";
  out += ")";
  return out;
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <vector>

#include "exec/operator.h"

namespace bufferdb {

/// Blocking materialization: drains the child on Open and replays row
/// pointers thereafter. Supports cheap Rescan, which is why it backs the
/// inner side of a naive nested-loop join.
class MaterializeOperator final : public Operator {
 public:
  explicit MaterializeOperator(OperatorPtr child);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;
  [[nodiscard]] Status Rescan() override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kMaterialize;
  }
  bool BlocksInput(size_t i) const override { return i == 0; }
  std::string label() const override { return "Materialize"; }

  size_t num_buffered() const { return rows_.size(); }

 private:
  std::vector<const uint8_t*> rows_;
  size_t pos_ = 0;
  bool loaded_ = false;
};

}  // namespace bufferdb


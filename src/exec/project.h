#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

struct ProjectItem {
  ExprPtr expr;
  std::string output_name;
};

/// Computes a list of expressions per input tuple, materializing the result
/// row into the query arena.
class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ProjectItem> items);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  /// Batch fast path: projects a whole child batch in one loop, hoisting
  /// the schema lookup and the TupleBuilder out of the per-row work.
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override { return sim::ModuleId::kProject; }
  std::string label() const override { return "Project"; }

 private:
  std::vector<ProjectItem> items_;
  Schema output_schema_;
  std::vector<const uint8_t*> in_batch_;  // NextBatch scratch.
};

}  // namespace bufferdb


#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/row_batch_decoder.h"
#include "expr/expression.h"
#include "expr/vector_eval.h"

namespace bufferdb {

struct ProjectItem {
  ExprPtr expr;
  std::string output_name;
};

/// Computes a list of expressions per input tuple, materializing the result
/// row into the query arena.
class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ProjectItem> items);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  /// Batch fast path. When every item compiled to a kernel program the batch
  /// is decoded once (union of all programs' input columns), each program
  /// runs column-at-a-time, and the output rows are materialized from the
  /// result vectors into one arena block — no TupleBuilder, no Value
  /// boxing. Otherwise the per-tuple interpreter runs with the schema
  /// lookup and TupleBuilder hoisted out of the loop.
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override { return sim::ModuleId::kProject; }
  std::string label() const override { return "Project"; }

  /// The result vectors of the last vectorized batch, keyed by OUTPUT
  /// column index — a consumer evaluating expressions over this operator's
  /// output aliases them instead of decoding the materialized rows.
  const VectorBatch* BatchColumns() const override { return &published_; }

  /// True when all items compiled to kernel programs (test hook).
  bool all_items_compiled() const { return !compiled_.empty(); }

  /// The projection list (FusedPipeline recompiles these when this operator
  /// becomes the top stage of a fused chain).
  const std::vector<ProjectItem>& items() const { return items_; }

 private:
  /// Aliases results_ into published_ for the `n` rows just produced.
  void PublishResults(size_t n);

  std::vector<ProjectItem> items_;
  Schema output_schema_;
  // One program per item when ALL items compiled; empty otherwise
  // (all-or-nothing, so a batch is either fully vectorized or fully
  // interpreted).
  std::vector<std::unique_ptr<CompiledExpr>> compiled_;
  std::vector<int> decode_cols_;  // Union of the programs' input columns.
  std::vector<const uint8_t*> in_batch_;  // NextBatch scratch.
  VectorBatch vbatch_;
  VectorBatch published_;  // BatchColumns() payload.
  std::vector<const ColumnVector*> results_;
};

}  // namespace bufferdb

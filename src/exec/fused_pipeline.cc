#include "exec/fused_pipeline.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "exec/column_scan.h"
#include "exec/filter.h"
#include "exec/project.h"
#include "exec/row_batch_decoder.h"
#include "exec/seq_scan.h"
#include "storage/tuple.h"

namespace bufferdb {

FusedPipelineOperator::FusedPipelineOperator(
    OperatorPtr chain, ProjectOperator* project,
    std::vector<FilterOperator*> filters_top_down, SeqScanOperator* seq,
    ColumnScanOperator* col)
    : chain_(std::move(chain)), project_(project) {
  bool valid = true;
  auto compile_ok = [&valid](std::unique_ptr<CompiledExpr> p)
      -> std::unique_ptr<CompiledExpr> {
    valid = valid && p != nullptr;
    return p;
  };

  if (seq != nullptr) {
    table_ = seq->table();
    morsels_ = seq->morsel_cursor();
    stage_labels_.push_back(seq->label());
    if (seq->predicate() != nullptr) {
      predicates_.push_back(compile_ok(
          CompiledExpr::Compile(*seq->predicate(), table_->schema())));
    }
  } else {
    table_ = col->table();
    columnar_ = table_->columnar();
    morsels_ = col->morsel_cursor();
    conjuncts_ = col->zone_conjuncts();
    stage_labels_.push_back(col->label());
    if (col->predicate() != nullptr) {
      predicates_.push_back(compile_ok(CompiledExpr::Compile(
          *col->predicate(), table_->schema(), columnar_)));
    }
  }
  // Filters were collected top-down; the fused chain reads bottom-up.
  for (auto it = filters_top_down.rbegin(); it != filters_top_down.rend();
       ++it) {
    stage_labels_.push_back((*it)->label());
    predicates_.push_back(compile_ok(
        CompiledExpr::Compile((*it)->predicate(), table_->schema())));
  }
  if (project_ != nullptr) {
    stage_labels_.push_back(project_->label());
    for (const ProjectItem& item : project_->items()) {
      project_progs_.push_back(
          compile_ok(CompiledExpr::Compile(*item.expr, table_->schema())));
    }
  }
  valid_ = valid;
  results_.resize(project_progs_.size());

  // Union of every program's input columns, decoded/aliased exactly once per
  // batch. Dictionary-code inputs (ColumnScan string predicates) are widened
  // separately; they never collide with a value input, because string
  // columns only ever compile through the dictionary rewrite.
  auto add_col = [this](int c) {
    for (int have : decode_cols_) {
      if (have == c) return;
    }
    decode_cols_.push_back(c);
  };
  auto add_dict_col = [this](int c) {
    for (int have : dict_code_cols_) {
      if (have == c) return;
    }
    dict_code_cols_.push_back(c);
  };
  for (const auto& p : predicates_) {
    if (p == nullptr) continue;
    const std::vector<int>& cols = p->input_columns();
    for (size_t i = 0; i < cols.size(); ++i) {
      if (p->input_is_dict_code(i)) {
        add_dict_col(cols[i]);
      } else {
        add_col(cols[i]);
      }
    }
  }
  for (const auto& p : project_progs_) {
    if (p == nullptr) continue;
    for (int c : p->input_columns()) add_col(c);
  }

  // The fused working set (§15): the stages' kernel cores plus the drive
  // loop, WITHOUT kExecCommon — the per-stage dispatch glue is exactly what
  // the single fused loop eliminates.
  InitHotFuncs(sim::ModuleId::kFusedPipeline);
  AddHotFunc(columnar_ != nullptr ? sim::FuncId::kColumnScanCore
                                  : sim::FuncId::kScanCore);
  if (!predicates_.empty() || !project_progs_.empty()) {
    AddHotFunc(sim::FuncId::kVectorEvalCore);
  }
  if (!filters_top_down.empty()) AddHotFunc(sim::FuncId::kFilterCore);
  if (project_ != nullptr) AddHotFunc(sim::FuncId::kProjectCore);
}

OperatorPtr FusedPipelineOperator::TryFuse(OperatorPtr op,
                                           const FusedPipelineOptions& opts) {
  if (op == nullptr) return op;
  size_t stages = 0;
  Operator* cur = op.get();

  ProjectOperator* project = nullptr;
  if (auto* p = dynamic_cast<ProjectOperator*>(cur)) {
    if (!p->all_items_compiled() || !p->vectorized_eval() ||
        p->excluded_from_buffering()) {
      return op;
    }
    project = p;
    cur = p->child(0);
    ++stages;
  }

  std::vector<FilterOperator*> filters;
  while (auto* f = dynamic_cast<FilterOperator*>(cur)) {
    if (f->compiled_predicate() == nullptr || !f->vectorized_eval() ||
        f->excluded_from_buffering()) {
      return op;
    }
    filters.push_back(f);
    cur = f->child(0);
    ++stages;
  }

  auto* seq = dynamic_cast<SeqScanOperator*>(cur);
  auto* col = dynamic_cast<ColumnScanOperator*>(cur);
  if (seq == nullptr && col == nullptr) return op;
  if (!cur->vectorized_eval() || cur->excluded_from_buffering()) return op;
  const Expression* scan_pred =
      seq != nullptr ? seq->predicate() : col->predicate();
  const CompiledExpr* scan_prog =
      seq != nullptr ? seq->compiled_predicate() : col->compiled_predicate();
  if (scan_pred != nullptr && scan_prog == nullptr) return op;
  ++stages;

  // A one-operator "chain" has nothing to fuse.
  if (stages < 2) return op;

  const double est = op->estimated_rows();
  std::unique_ptr<FusedPipelineOperator> fused(new FusedPipelineOperator(
      std::move(op), project, std::move(filters), seq, col));
  // The execution group is the fusion unit: reject candidates whose working
  // set would not co-reside in L1-I (and any recompilation surprise).
  if (!fused->valid_ ||
      fused->fused_footprint_bytes() > opts.l1i_capacity_bytes) {
    return fused->ReleaseChain();
  }
  fused->set_estimated_rows(est);
  return fused;
}

uint64_t FusedPipelineOperator::fused_footprint_bytes() const {
  const sim::CodeLayout& layout = sim::CodeLayout::Default();
  uint64_t total = 0;
  for (sim::FuncId f : hot_funcs_) total += layout.info(f).size_bytes;
  return total;
}

Status FusedPipelineOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  limit_ = morsels_ != nullptr ? 0 : table_->num_rows();
  drain_n_ = 0;
  drain_pos_ = 0;
  rows_in_ = 0;
  rows_out_ = 0;
  batches_ = 0;
  blocks_pruned_ = 0;
  rows_pruned_ = 0;
  return Status::OK();
}

Status FusedPipelineOperator::Rescan() {
  pos_ = 0;
  limit_ = morsels_ != nullptr ? 0 : table_->num_rows();
  drain_n_ = 0;
  drain_pos_ = 0;
  return Status::OK();
}

void FusedPipelineOperator::Close() {
  pos_ = 0;
  limit_ = 0;
  drain_n_ = 0;
  drain_pos_ = 0;
}

bool FusedPipelineOperator::BlockPruned(size_t block) const {
  for (const ZoneConjunct& c : conjuncts_) {
    const ColumnSegment& seg = columnar_->segment(static_cast<size_t>(c.col));
    if (block >= seg.zones.size()) continue;
    if (!BlockMayMatch(seg.zones[block], seg, c)) return true;
  }
  return false;
}

bool FusedPipelineOperator::ClaimRun(size_t max, size_t* run) {
  for (;;) {
    if (pos_ >= limit_) {
      parallel::Morsel morsel;
      if (morsels_ == nullptr || !morsels_->TryNext(&morsel)) return false;
      pos_ = morsel.begin;
      limit_ = morsel.end;
      continue;
    }
    const size_t block = pos_ / kZoneBlockRows;
    const size_t block_end = std::min(limit_, (block + 1) * kZoneBlockRows);
    if (BlockPruned(block)) {
      ++blocks_pruned_;
      rows_pruned_ += block_end - pos_;
      pos_ = block_end;
      continue;
    }
    size_t run_end = block_end;
    while (run_end < limit_ && run_end - pos_ < max) {
      const size_t next_block = run_end / kZoneBlockRows;
      if (BlockPruned(next_block)) break;
      run_end = std::min(limit_, (next_block + 1) * kZoneBlockRows);
    }
    *run = std::min(max, run_end - pos_);
    return true;
  }
}

void FusedPipelineOperator::AliasColumnarInputs(size_t n) {
  vbatch_.set_rows(n);
  for (int col : decode_cols_) {
    const ColumnSegment& seg = columnar_->segment(static_cast<size_t>(col));
    ColumnVector* vec = vbatch_.Mutable(col);
    if (seg.type == DataType::kDouble) {
      vec->AliasF64(seg.f64.data() + pos_, seg.nulls.data() + pos_);
      ctx_->Touch(seg.f64.data() + pos_, n * sizeof(double));
    } else {
      vec->AliasI64(seg.type, seg.i64.data() + pos_, seg.nulls.data() + pos_);
      ctx_->Touch(seg.i64.data() + pos_, n * sizeof(int64_t));
    }
    ctx_->Touch(seg.nulls.data() + pos_, n);
  }
  for (int col : dict_code_cols_) {
    // Codes are stored int32; widen into an owned int64 vector, preserving
    // the zero-payload-under-NULL invariant (NULL rows carry code 0).
    const ColumnSegment& seg = columnar_->segment(static_cast<size_t>(col));
    ColumnVector* vec = vbatch_.Mutable(col);
    vec->Reset(DataType::kInt64, n);
    int64_t* out = vec->i64.data();
    uint8_t* nulls = vec->nulls.data();
    const int32_t* codes = seg.codes.data() + pos_;
    const uint8_t* seg_nulls = seg.nulls.data() + pos_;
    for (size_t k = 0; k < n; ++k) {
      out[k] = codes[k];
      nulls[k] = seg_nulls[k];
    }
    ctx_->Touch(codes, n * sizeof(int32_t));
    ctx_->Touch(seg_nulls, n);
  }
}

size_t FusedPipelineOperator::GatherSeq(size_t max) {
  const Schema& schema = table_->schema();
  size_t n = 0;
  while (n < max) {
    if (pos_ >= limit_) {
      parallel::Morsel morsel;
      if (morsels_ == nullptr || !morsels_->TryNext(&morsel)) break;
      pos_ = morsel.begin;
      limit_ = morsel.end;
      continue;
    }
    while (pos_ < limit_ && n < max) {
      // One fused module execution per input row: this single loop body
      // stands in for the whole chain's per-stage calls.
      ctx_->ExecModule(module_id(), hot_funcs_);
      const uint8_t* row = table_->row(pos_++);
      ctx_->Touch(row, TupleView(row, &schema).size_bytes());
      in_rows_[n++] = row;
    }
  }
  if (n == 0) return 0;
  if (!decode_cols_.empty()) {
    // LINT: allow-row-decode(leaf: gathered rows, no batch source)
    RowBatchDecoder::Decode(in_rows_.data(), n, schema, decode_cols_,
                            &vbatch_);
  }
  vbatch_.set_rows(n);
  return n;
}

size_t FusedPipelineOperator::GatherColumnar(size_t max) {
  size_t run = 0;
  if (!ClaimRun(max, &run)) return 0;
  const std::vector<const uint8_t*>& rows = table_->rows();
  for (size_t i = 0; i < run; ++i) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    in_rows_[i] = rows[pos_ + i];
  }
  AliasColumnarInputs(run);
  pos_ += run;
  return run;
}

size_t FusedPipelineOperator::ApplyPredicates(size_t in_n) {
  if (predicates_.empty()) return in_n;
  if (predicates_.size() == 1) {
    predicates_[0]->RunFilter(vbatch_, &sel_);
    return sel_.count;
  }
  // Several predicate stages fold into one live mask: each program runs
  // column-at-a-time over the SAME decoded batch, and a lane survives only
  // when every result is non-NULL true — identical to chaining Filters,
  // which pass exactly the non-NULL-true rows, in any order. Kernels are
  // total (div-by-zero -> NULL lane, never a trap), so evaluating a program
  // over lanes an earlier predicate already rejected is safe.
  // LINT: allow-alloc(one-time mask growth; no-op once capacity == in_n)
  if (pass_.size() < in_n) pass_.resize(in_n);
  std::fill(pass_.begin(), pass_.begin() + static_cast<ptrdiff_t>(in_n),
            uint8_t{1});
  for (const auto& p : predicates_) {
    const ColumnVector& r = p->Run(vbatch_);
    const int64_t* v = r.i64_data();
    const uint8_t* nulls = r.null_data();
    for (size_t i = 0; i < in_n; ++i) {
      pass_[i] = static_cast<uint8_t>(pass_[i] & static_cast<uint8_t>(nulls[i] == 0) &
                                      static_cast<uint8_t>(v[i] != 0));
    }
  }
  // LINT: allow-alloc(one-time selection growth; no-op once sized)
  if (sel_.idx.size() < in_n) sel_.idx.resize(in_n);
  size_t count = 0;
  for (size_t i = 0; i < in_n; ++i) {
    // Branch-free survivor store: the cursor advances by 0 or 1.
    sel_.idx[count] = static_cast<uint32_t>(i);
    count += pass_[i];
  }
  sel_.count = count;
  return count;
}

void FusedPipelineOperator::MaterializeProjection(const uint8_t** out,
                                                  size_t n, bool has_sel) {
  // Projection programs run over ALL lanes of the shared batch (kernels are
  // branch-free and total), then only the selected lanes materialize — the
  // one materialization of the whole chain, at its output boundary. Same
  // row format as ProjectOperator's vectorized path: all output types are
  // non-string, so every row is exactly fixed_bytes.
  for (size_t c = 0; c < project_progs_.size(); ++c) {
    results_[c] = &project_progs_[c]->Run(vbatch_);
  }
  const Schema& schema = output_schema();
  const size_t row_bytes = schema.fixed_bytes();
  uint8_t* block = ctx_->arena.Allocate(n * row_bytes);
  const uint32_t total = static_cast<uint32_t>(row_bytes);
  for (size_t k = 0; k < n; ++k) {
    const size_t lane = has_sel ? sel_.idx[k] : k;
    uint8_t* row = block + k * row_bytes;
    std::memcpy(row, &total, 4);
    std::memset(row + 4, 0, 4);
    uint64_t bitmap = 0;
    uint8_t* slot = row + Schema::kHeaderBytes;
    for (size_t c = 0; c < results_.size(); ++c, slot += 8) {
      const ColumnVector& v = *results_[c];
      if (v.null_data()[lane] != 0) {
        bitmap |= uint64_t{1} << c;
        std::memset(slot, 0, 8);  // Same normalization as TupleBuilder.
      } else if (v.is_double()) {
        std::memcpy(slot, &v.f64_data()[lane], 8);
      } else {
        std::memcpy(slot, &v.i64_data()[lane], 8);
      }
    }
    std::memcpy(row + 8, &bitmap, 8);
    ctx_->Touch(row, row_bytes);
    out[k] = row;
  }
}

size_t FusedPipelineOperator::NextBatch(const uint8_t** out, size_t max) {
  // Rows prefetched for Next() drain first, so mixing the two interfaces
  // never skips or duplicates rows.
  if (drain_pos_ < drain_n_) {
    const size_t k = std::min(max, drain_n_ - drain_pos_);
    for (size_t i = 0; i < k; ++i) out[i] = drain_[drain_pos_ + i];
    drain_pos_ += k;
    return k;
  }
  // LINT: allow-alloc(one-time staging growth; no-op once capacity == max)
  if (in_rows_.size() < max) in_rows_.resize(max);
  for (;;) {
    const size_t in_n =
        columnar_ != nullptr ? GatherColumnar(max) : GatherSeq(max);
    if (in_n == 0) {
      ctx_->ExecModule(module_id(), hot_funcs_);  // End-of-stream.
      return 0;
    }
    ++batches_;
    rows_in_ += in_n;
    const size_t n = ApplyPredicates(in_n);
    if (n == 0) continue;  // Whole batch filtered out; pull the next one.
    if (project_progs_.empty()) {
      if (predicates_.empty()) {
        for (size_t k = 0; k < n; ++k) out[k] = in_rows_[k];
      } else {
        for (size_t k = 0; k < n; ++k) out[k] = in_rows_[sel_.idx[k]];
      }
    } else {
      MaterializeProjection(out, n, /*has_sel=*/!predicates_.empty());
    }
    rows_out_ += n;
    return n;
  }
}

const uint8_t* FusedPipelineOperator::Next() {
  if (drain_pos_ >= drain_n_) {
    // LINT: allow-alloc(one-time drain staging; no-op once sized)
    if (drain_.size() < kDefaultBatchSize) drain_.resize(kDefaultBatchSize);
    drain_n_ = NextBatch(drain_.data(), kDefaultBatchSize);
    drain_pos_ = 0;
    if (drain_n_ == 0) return nullptr;
  }
  return drain_[drain_pos_++];
}

const Schema& FusedPipelineOperator::output_schema() const {
  return project_ != nullptr ? project_->output_schema() : table_->schema();
}

std::string FusedPipelineOperator::label() const {
  std::string out = "FusedPipeline(";
  for (size_t i = 0; i < stage_labels_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += stage_labels_[i];
  }
  out += ")";
  return out;
}

std::string FusedPipelineOperator::AnalyzeDetail() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "fused %zu stages: batches=%llu rows_in=%llu rows_out=%llu",
                stage_labels_.size(),
                static_cast<unsigned long long>(batches_),
                static_cast<unsigned long long>(rows_in_),
                static_cast<unsigned long long>(rows_out_));
  std::string out(buf);
  if (columnar_ != nullptr && !conjuncts_.empty()) {
    std::snprintf(buf, sizeof(buf), " blocks_pruned=%llu rows_pruned=%llu",
                  static_cast<unsigned long long>(blocks_pruned_),
                  static_cast<unsigned long long>(rows_pruned_));
    out += buf;
  }
  return out;
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"
#include "expr/vector.h"
#include "expr/vector_eval.h"
#include "parallel/morsel.h"
#include "storage/column_table.h"
#include "storage/table.h"

namespace bufferdb {

/// Batch-native scan over a table's columnar image (DESIGN.md §12). Emits
/// the same packed-row pointers as SeqScan — the batch currency between
/// operators is unchanged — but fills its VectorBatch by pointer-aliasing
/// the columnar segments instead of decoding rows (zero copy, zero decode),
/// publishes those vectors through BatchColumns() so consumers skip their
/// own decode, prunes whole ~4K-row blocks via zone maps against constant
/// predicate conjuncts, and evaluates string predicates on dictionary codes
/// in the vectorized engine.
///
/// Each NextBatch() return is one contiguous run of table rows (possibly
/// shorter than `max`; the NextBatch contract allows that), because only a
/// contiguous run can alias contiguous segment storage. In morsel mode
/// (BindMorselCursor) runs additionally stay inside claimed morsels,
/// exactly like SeqScan.
class ColumnScanOperator final : public Operator {
 public:
  /// `table` must carry a columnar image (Table::columnar() != nullptr);
  /// `predicate` may be null and must be bound to the table schema.
  ColumnScanOperator(Table* table, ExprPtr predicate);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;
  [[nodiscard]] Status Rescan() override;
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const VectorBatch* BatchColumns() const override { return &published_; }

  const Schema& output_schema() const override { return table_->schema(); }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kColumnScan;
  }
  std::string label() const override;

  const Expression* predicate() const { return predicate_.get(); }
  const Table* table() const { return table_; }

  /// Non-null when the predicate compiled (dictionary-aware; string
  /// equality/LIKE-prefix compile here even though they never do for
  /// SeqScan).
  const CompiledExpr* compiled_predicate() const { return compiled_.get(); }

  /// Zone-map statistics for the current execution (test/bench hooks).
  uint64_t blocks_pruned() const { return blocks_pruned_; }
  uint64_t rows_pruned() const { return rows_pruned_; }

  /// Morsel mode, identical to SeqScanOperator::BindMorselCursor.
  void BindMorselCursor(parallel::MorselCursor* cursor) { morsels_ = cursor; }
  bool morsel_mode() const { return morsels_ != nullptr; }

  /// The bound cursor (null in full-table mode). FusedPipeline inherits it
  /// when this scan becomes the source stage of a fused chain.
  parallel::MorselCursor* morsel_cursor() const { return morsels_; }

  /// Pruning conjuncts extracted from the predicate; FusedPipeline reuses
  /// them so a fused columnar source keeps the zone-map skip.
  const std::vector<ZoneConjunct>& zone_conjuncts() const {
    return conjuncts_;
  }

 private:
  /// True when block `block` cannot contain a qualifying row.
  bool BlockPruned(size_t block) const;
  /// Advances pos_ past pruned blocks / exhausted morsels; returns false at
  /// end of stream. On true, [pos_, pos_ + *run) is the longest contiguous
  /// unpruned run with *run <= max.
  bool ClaimRun(size_t max, size_t* run);
  /// Points vbatch_ (predicate inputs) at segment storage for rows
  /// [pos_, pos_ + n), widening dictionary codes where flagged.
  void FillPredicateInputs(size_t n);
  /// Publishes rows [pos_, pos_ + n) by aliasing all non-string segments.
  void PublishAliases(size_t n);
  /// Publishes the survivors in sel_ by gathering predicate input columns.
  void PublishCompacted(size_t n);

  Table* table_;
  const ColumnarTable* columnar_;
  ExprPtr predicate_;
  std::unique_ptr<CompiledExpr> compiled_;  // Null when no/uncompilable pred.
  std::vector<ZoneConjunct> conjuncts_;     // Zone-map-usable conjuncts.
  VectorBatch vbatch_;     // Predicate inputs (aliased or widened codes).
  VectorBatch published_;  // BatchColumns() payload.
  SelectionVector sel_;
  parallel::MorselCursor* morsels_ = nullptr;
  size_t pos_ = 0;
  size_t limit_ = 0;  // End of the current morsel (or of the table).
  uint64_t blocks_pruned_ = 0;
  uint64_t rows_pruned_ = 0;
};

}  // namespace bufferdb

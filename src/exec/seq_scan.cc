#include "exec/seq_scan.h"

#include "exec/row_batch_decoder.h"
#include "expr/evaluator.h"

namespace bufferdb {

SeqScanOperator::SeqScanOperator(Table* table, ExprPtr predicate)
    : table_(table),
      predicate_(predicate != nullptr ? FoldConstants(std::move(predicate))
                                      : nullptr) {
  InitHotFuncs(module_id());
  if (predicate_ != nullptr) {
    compiled_ = CompiledExpr::Compile(*predicate_, table_->schema());
    if (compiled_ != nullptr) SetVectorBatchFuncs();
  }
}

Status SeqScanOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  // Morsel mode starts with an empty range so the first Next() claims one.
  limit_ = morsels_ != nullptr ? 0 : table_->num_rows();
  return Status::OK();
}

const uint8_t* SeqScanOperator::Next() {
  const Schema& schema = table_->schema();
  for (;;) {
    if (pos_ >= limit_) {
      parallel::Morsel morsel;
      if (morsels_ == nullptr || !morsels_->TryNext(&morsel)) break;
      pos_ = morsel.begin;
      limit_ = morsel.end;
      continue;
    }
    // One module execution per row considered: the scan loop body runs for
    // every input row, not just for qualifying ones.
    ctx_->ExecModule(module_id(), hot_funcs_);
    const uint8_t* row = table_->row(pos_++);
    TupleView view(row, &schema);
    ctx_->Touch(row, view.size_bytes());
    if (predicate_ == nullptr || EvaluatePredicate(*predicate_, view)) {
      return row;
    }
  }
  ctx_->ExecModule(module_id(), hot_funcs_);  // End-of-scan bookkeeping.
  return nullptr;
}

size_t SeqScanOperator::NextBatch(const uint8_t** out, size_t max) {
  const Schema& schema = table_->schema();
  size_t n = 0;
  while (n < max) {
    if (pos_ >= limit_) {
      parallel::Morsel morsel;
      if (morsels_ == nullptr || !morsels_->TryNext(&morsel)) break;
      pos_ = morsel.begin;
      limit_ = morsel.end;
      continue;
    }
    if (compiled_ != nullptr && vectorized_eval_) {
      // Vectorized predicate: gather the range into `out`, decode the
      // referenced columns once, run the kernel program, then compact the
      // survivors in place (sel_.idx is ascending, so idx[k] >= k and the
      // in-place store never clobbers a pending source slot).
      size_t gathered = 0;
      while (pos_ < limit_ && n + gathered < max) {
        ctx_->ExecModule(module_id(), hot_funcs_batched());
        const uint8_t* row = table_->row(pos_++);
        ctx_->Touch(row, TupleView(row, &schema).size_bytes());
        out[n + gathered++] = row;
      }
      // LINT: allow-row-decode(leaf: gathered rows, no batch source)
      RowBatchDecoder::Decode(out + n, gathered, schema,
                              compiled_->input_columns(), &vbatch_);
      compiled_->RunFilter(vbatch_, &sel_);
      for (size_t k = 0; k < sel_.count; ++k) {
        out[n + k] = out[n + sel_.idx[k]];
      }
      n += sel_.count;
      continue;
    }
    // Tight run over the current range: no morsel check per row, and the
    // survivor store is branch-free (`n` advances by 0 or 1).
    while (pos_ < limit_ && n < max) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      const uint8_t* row = table_->row(pos_++);
      TupleView view(row, &schema);
      ctx_->Touch(row, view.size_bytes());
      bool keep = predicate_ == nullptr ||
                  // LINT: allow-scalar-eval(fallback: predicate did not compile)
                  EvaluatePredicate(*predicate_, view);
      out[n] = row;
      n += keep ? 1 : 0;
    }
  }
  if (n == 0) ctx_->ExecModule(module_id(), hot_funcs_);  // End-of-scan.
  return n;
}

void SeqScanOperator::Close() {
  pos_ = 0;
  limit_ = 0;
}

Status SeqScanOperator::Rescan() {
  pos_ = 0;
  limit_ = morsels_ != nullptr ? 0 : table_->num_rows();
  return Status::OK();
}

std::string SeqScanOperator::label() const {
  std::string out = "Scan(" + table_->name();
  if (predicate_ != nullptr) {
    out += ", ";
    out += predicate_->ToString();
  }
  if (morsels_ != nullptr) out += ", morsel";
  out += ")";
  return out;
}

}  // namespace bufferdb

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/operator.h"

namespace bufferdb {

/// Thrown by ContractCheckedOperator when a caller breaks the Volcano
/// state machine. A distinct type (rather than assert/abort) so tests can
/// prove each violation class is detected.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error("operator contract violation: " + what) {}
};

/// Debug wrapper asserting the Open/Next/Close state machine around any
/// Operator (DESIGN.md section 9.2). Checks:
///
///   - no Next()/NextBatch()/Rescan() before a successful Open()
///   - no calls of any kind after Close() (except re-Open)
///   - no double Open() without an intervening Close()
///   - no double Close()
///   - batch-slice discipline: each NextBatch() call *poisons* the caller's
///     out[] entries from the previous call before delegating, so code that
///     holds a stale slice across a refill dereferences 0x51C0..DEAD and
///     ASan/TSan/a segfault catches it deterministically instead of it
///     silently reading rows from the wrong batch.
///
/// The wrapper owns the inner operator as child(0), so plan printing and
/// tree walks still see the real structure. Production code never
/// instantiates this class directly: use BUFFERDB_WRAP_CONTRACT_CHECKED,
/// which compiles to an identity expression unless BUFFERDB_CHECK_CONTRACTS
/// is defined (Debug builds and -DBUFFERDB_CHECK_CONTRACTS=ON trees), so
/// Release hot paths pay zero overhead — no virtual hop, no state bytes.
class ContractCheckedOperator final : public Operator {
 public:
  /// Pointer value written over stale batch slices; intentionally invalid
  /// and recognizable in a debugger / sanitizer report.
  static const uint8_t* PoisonPointer() {
    return reinterpret_cast<const uint8_t*>(static_cast<uintptr_t>(
        0x51C0DEADBEEFULL));
  }

  explicit ContractCheckedOperator(OperatorPtr inner) {
    if (inner == nullptr) {
      throw ContractViolation("wrapping a null operator");
    }
    AddChild(std::move(inner));
  }

  [[nodiscard]] Status Open(ExecContext* ctx) override {
    if (state_ == State::kOpen) {
      throw ContractViolation("Open() while already open (missing Close())");
    }
    ForgetSlice();
    Status st = child(0)->Open(ctx);
    if (st.ok()) state_ = State::kOpen;
    return st;
  }

  const uint8_t* Next() override {
    RequireOpen("Next()");
    PoisonStaleSlice();
    return child(0)->Next();
  }

  size_t NextBatch(const uint8_t** out, size_t max) override {
    RequireOpen("NextBatch()");
    PoisonStaleSlice();
    size_t n = child(0)->NextBatch(out, max);
    // Remember the slice just handed out; the next transfer call poisons
    // it so stale readers fail loudly.
    last_out_ = out;
    last_n_ = n <= max ? n : max;
    return n;
  }

  [[nodiscard]] Status Rescan() override {
    RequireOpen("Rescan()");
    PoisonStaleSlice();
    ForgetSlice();
    return child(0)->Rescan();
  }

  void Close() override {
    if (state_ == State::kCreated) {
      throw ContractViolation("Close() before Open()");
    }
    if (state_ == State::kClosed) {
      throw ContractViolation("double Close()");
    }
    PoisonStaleSlice();
    ForgetSlice();
    state_ = State::kClosed;
    child(0)->Close();
  }

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return child(0)->module_id(); }
  std::string label() const override {
    return "ContractChecked(" + child(0)->label() + ")";
  }
  bool BlocksInput(size_t i) const override {
    return child(0)->BlocksInput(i);
  }

 private:
  enum class State { kCreated, kOpen, kClosed };

  void RequireOpen(const char* call) const {
    if (state_ == State::kCreated) {
      throw ContractViolation(std::string(call) + " before Open()");
    }
    if (state_ == State::kClosed) {
      throw ContractViolation(std::string(call) + " after Close()");
    }
  }

  void PoisonStaleSlice() {
    for (size_t i = 0; i < last_n_; ++i) last_out_[i] = PoisonPointer();
  }

  void ForgetSlice() {
    last_out_ = nullptr;
    last_n_ = 0;
  }

  State state_ = State::kCreated;
  const uint8_t** last_out_ = nullptr;
  size_t last_n_ = 0;
};

/// Wraps `op` in a ContractCheckedOperator in checking builds; hands back
/// the same owning pointer otherwise. A macro (not an inline function) so
/// the two variants cannot collide across translation units with different
/// settings, and so the Release expansion is just a unique_ptr move —
/// no allocation, no wrapper object, no virtual hop.
#ifdef BUFFERDB_CHECK_CONTRACTS
#define BUFFERDB_WRAP_CONTRACT_CHECKED(op) \
  (::bufferdb::OperatorPtr(                \
      std::make_unique<::bufferdb::ContractCheckedOperator>(op)))
#else
#define BUFFERDB_WRAP_CONTRACT_CHECKED(op) (::bufferdb::OperatorPtr(op))
#endif

}  // namespace bufferdb

#pragma once

#include <memory>

#include "exec/operator.h"

namespace bufferdb {

/// Emits at most `limit` rows after skipping `offset`.
class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr child, size_t limit, size_t offset = 0);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kLimit; }
  std::string label() const override;

 private:
  size_t limit_;
  size_t offset_;
  size_t emitted_ = 0;
  size_t skipped_ = 0;
};

}  // namespace bufferdb


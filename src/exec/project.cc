#include "exec/project.h"

#include "storage/tuple.h"

namespace bufferdb {

ProjectOperator::ProjectOperator(OperatorPtr child,
                                 std::vector<ProjectItem> items)
    : items_(std::move(items)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (const ProjectItem& item : items_) {
    cols.push_back(Column{item.output_name, item.expr->result_type()});
  }
  output_schema_ = Schema(std::move(cols));
}

Status ProjectOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child(0)->Open(ctx);
}

const uint8_t* ProjectOperator::Next() {
  ctx_->ExecModule(module_id(), hot_funcs_);
  const uint8_t* row = child(0)->Next();
  if (row == nullptr) return nullptr;
  const Schema& in_schema = child(0)->output_schema();
  TupleView view(row, &in_schema);
  TupleBuilder builder(&output_schema_);
  for (size_t i = 0; i < items_.size(); ++i) {
    builder.Set(i, items_[i].expr->Evaluate(view));
  }
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  return out;
}

void ProjectOperator::Close() { child(0)->Close(); }

}  // namespace bufferdb

#include "exec/project.h"

#include "storage/tuple.h"

namespace bufferdb {

ProjectOperator::ProjectOperator(OperatorPtr child,
                                 std::vector<ProjectItem> items)
    : items_(std::move(items)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (const ProjectItem& item : items_) {
    cols.push_back(Column{item.output_name, item.expr->result_type()});
  }
  output_schema_ = Schema(std::move(cols));
}

Status ProjectOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child(0)->Open(ctx);
}

const uint8_t* ProjectOperator::Next() {
  ctx_->ExecModule(module_id(), hot_funcs_);
  const uint8_t* row = child(0)->Next();
  if (row == nullptr) return nullptr;
  const Schema& in_schema = child(0)->output_schema();
  TupleView view(row, &in_schema);
  TupleBuilder builder(&output_schema_);
  for (size_t i = 0; i < items_.size(); ++i) {
    builder.Set(i, items_[i].expr->Evaluate(view));
  }
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  return out;
}

size_t ProjectOperator::NextBatch(const uint8_t** out, size_t max) {
  // LINT: allow-alloc(one-time staging growth; no-op once capacity == max)
  if (in_batch_.size() < max) in_batch_.resize(max);
  size_t in_n = child(0)->NextBatch(in_batch_.data(), max);
  if (in_n == 0) {
    ctx_->ExecModule(module_id(), hot_funcs_);  // End-of-stream.
    return 0;
  }
  const Schema& in_schema = child(0)->output_schema();
  TupleBuilder builder(&output_schema_);
  for (size_t i = 0; i < in_n; ++i) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(in_batch_[i], &in_schema);
    for (size_t c = 0; c < items_.size(); ++c) {
      builder.Set(c, items_[c].expr->Evaluate(view));
    }
    const uint8_t* row = builder.Finish(&ctx_->arena);
    ctx_->Touch(row, TupleView(row, &output_schema_).size_bytes());
    out[i] = row;
  }
  return in_n;
}

void ProjectOperator::Close() { child(0)->Close(); }

}  // namespace bufferdb

#include "exec/project.h"

#include <cstring>

#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

ProjectOperator::ProjectOperator(OperatorPtr child,
                                 std::vector<ProjectItem> items)
    : items_(std::move(items)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (ProjectItem& item : items_) {
    item.expr = FoldConstants(std::move(item.expr));
    cols.push_back(Column{item.output_name, item.expr->result_type()});
  }
  output_schema_ = Schema(std::move(cols));

  // Vectorize all-or-nothing: one uncompilable item (e.g. a string column)
  // keeps the whole operator on the interpreter, so a batch never mixes the
  // two materialization paths.
  const Schema& in_schema = this->child(0)->output_schema();
  std::vector<std::unique_ptr<CompiledExpr>> programs;
  for (const ProjectItem& item : items_) {
    auto p = CompiledExpr::Compile(*item.expr, in_schema);
    if (p == nullptr) {
      programs.clear();
      break;
    }
    programs.push_back(std::move(p));
  }
  compiled_ = std::move(programs);
  for (const auto& p : compiled_) {
    for (int col : p->input_columns()) {
      bool present = false;
      for (int c : decode_cols_) present = present || c == col;
      if (!present) decode_cols_.push_back(col);
    }
  }
  if (!compiled_.empty()) SetVectorBatchFuncs();
  results_.resize(compiled_.size());
}

Status ProjectOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  published_.set_rows(0);
  return child(0)->Open(ctx);
}

void ProjectOperator::PublishResults(size_t n) {
  published_.set_rows(n);
  for (size_t c = 0; c < results_.size(); ++c) {
    const ColumnVector& v = *results_[c];
    ColumnVector* dst = published_.Mutable(static_cast<int>(c));
    if (v.is_double()) {
      dst->AliasF64(v.f64_data(), v.null_data());
    } else {
      dst->AliasI64(v.type, v.i64_data(), v.null_data());
    }
  }
}

const uint8_t* ProjectOperator::Next() {
  ctx_->ExecModule(module_id(), hot_funcs_);
  const uint8_t* row = child(0)->Next();
  if (row == nullptr) return nullptr;
  const Schema& in_schema = child(0)->output_schema();
  TupleView view(row, &in_schema);
  TupleBuilder builder(&output_schema_);
  for (size_t i = 0; i < items_.size(); ++i) {
    builder.Set(i, items_[i].expr->Evaluate(view));
  }
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  return out;
}

size_t ProjectOperator::NextBatch(const uint8_t** out, size_t max) {
  // LINT: allow-alloc(one-time staging growth; no-op once capacity == max)
  if (in_batch_.size() < max) in_batch_.resize(max);
  size_t in_n = child(0)->NextBatch(in_batch_.data(), max);
  if (in_n == 0) {
    ctx_->ExecModule(module_id(), hot_funcs_batched());  // End-of-stream.
    return 0;
  }
  const Schema& in_schema = child(0)->output_schema();
  if (!compiled_.empty() && vectorized_eval_) {
    RowBatchDecoder::DecodeMissing(in_batch_.data(), in_n, in_schema,
                                   decode_cols_, child(0)->BatchColumns(),
                                   &vbatch_);
    for (size_t c = 0; c < compiled_.size(); ++c) {
      results_[c] = &compiled_[c]->Run(vbatch_);
    }
    // All output types are non-string (strings never compile), so every row
    // is exactly fixed_bytes: materialize the whole batch into one arena
    // block, straight from the result vectors.
    const size_t row_bytes = output_schema_.fixed_bytes();
    uint8_t* block = ctx_->arena.Allocate(in_n * row_bytes);
    const uint32_t total = static_cast<uint32_t>(row_bytes);
    for (size_t i = 0; i < in_n; ++i) {
      ctx_->ExecModule(module_id(), hot_funcs_batched());
      uint8_t* row = block + i * row_bytes;
      std::memcpy(row, &total, 4);
      std::memset(row + 4, 0, 4);
      uint64_t bitmap = 0;
      uint8_t* slot = row + Schema::kHeaderBytes;
      for (size_t c = 0; c < results_.size(); ++c, slot += 8) {
        const ColumnVector& v = *results_[c];
        if (v.null_data()[i] != 0) {
          bitmap |= uint64_t{1} << c;
          std::memset(slot, 0, 8);  // Same normalization as TupleBuilder.
        } else if (v.is_double()) {
          std::memcpy(slot, &v.f64_data()[i], 8);
        } else {
          std::memcpy(slot, &v.i64_data()[i], 8);
        }
      }
      std::memcpy(row + 8, &bitmap, 8);
      ctx_->Touch(row, row_bytes);
      out[i] = row;
    }
    PublishResults(in_n);
    return in_n;
  }
  TupleBuilder builder(&output_schema_);
  for (size_t i = 0; i < in_n; ++i) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(in_batch_[i], &in_schema);
    for (size_t c = 0; c < items_.size(); ++c) {
      // LINT: allow-scalar-eval(fallback: some item did not compile)
      builder.Set(c, items_[c].expr->Evaluate(view));
    }
    const uint8_t* row = builder.Finish(&ctx_->arena);
    ctx_->Touch(row, TupleView(row, &output_schema_).size_bytes());
    out[i] = row;
  }
  return in_n;
}

void ProjectOperator::Close() { child(0)->Close(); }

}  // namespace bufferdb

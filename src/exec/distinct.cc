#include "exec/distinct.h"

#include "storage/tuple.h"

namespace bufferdb {

namespace {

// Canonical byte encoding of a row for equality purposes (two rows with
// equal column values encode identically; NULLs are tagged).
std::string EncodeRow(const TupleView& view) {
  std::string key;
  const Schema& schema = view.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (view.IsNull(c)) {
      key.push_back('\1');
      continue;
    }
    key.push_back('\0');
    if (schema.column(c).type == DataType::kString) {
      std::string_view s = view.GetString(c);
      uint32_t n = static_cast<uint32_t>(s.size());
      key.append(reinterpret_cast<const char*>(&n), 4);
      key.append(s);
    } else {
      int64_t raw = view.GetInt64(c);  // Bit-copy works for all fixed types.
      key.append(reinterpret_cast<const char*>(&raw), 8);
    }
  }
  return key;
}

}  // namespace

DistinctOperator::DistinctOperator(OperatorPtr child) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

Status DistinctOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  seen_.clear();
  return child(0)->Open(ctx);
}

const uint8_t* DistinctOperator::Next() {
  const Schema& schema = child(0)->output_schema();
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &schema);
    // LINT: allow-alloc(distinct must materialize the seen-set; one
    // encoded key per unique row, amortized by the hash table)
    auto [it, inserted] = seen_.insert(EncodeRow(view));
    ctx_->Touch(it->data(), it->size());
    if (inserted) return row;
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  return nullptr;
}

void DistinctOperator::Close() {
  seen_.clear();
  child(0)->Close();
}

}  // namespace bufferdb

#include "exec/filter.h"

#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr predicate)
    : predicate_(std::move(predicate)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

Status FilterOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child(0)->Open(ctx);
}

const uint8_t* FilterOperator::Next() {
  const Schema& schema = child(0)->output_schema();
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    if (EvaluatePredicate(*predicate_, TupleView(row, &schema))) return row;
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  return nullptr;
}

void FilterOperator::Close() { child(0)->Close(); }

std::string FilterOperator::label() const {
  return "Filter(" + predicate_->ToString() + ")";
}

}  // namespace bufferdb

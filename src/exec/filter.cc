#include "exec/filter.h"

#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr predicate)
    : predicate_(FoldConstants(std::move(predicate))) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  compiled_ = CompiledExpr::Compile(*predicate_, this->child(0)->output_schema());
  if (compiled_ != nullptr) SetVectorBatchFuncs();
}

Status FilterOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  published_.set_rows(0);
  return child(0)->Open(ctx);
}

void FilterOperator::PublishCompacted() {
  published_.set_rows(sel_.count);
  for (int col : compiled_->input_columns()) {
    const ColumnVector& src = vbatch_.Get(col);
    ColumnVector* dst = published_.Mutable(col);
    dst->Reset(src.type, sel_.count);
    uint8_t* dst_nulls = dst->nulls.data();
    const uint8_t* src_nulls = src.null_data();
    if (src.is_double()) {
      const double* s = src.f64_data();
      double* d = dst->f64.data();
      for (size_t k = 0; k < sel_.count; ++k) {
        d[k] = s[sel_.idx[k]];
        dst_nulls[k] = src_nulls[sel_.idx[k]];
      }
    } else {
      const int64_t* s = src.i64_data();
      int64_t* d = dst->i64.data();
      for (size_t k = 0; k < sel_.count; ++k) {
        d[k] = s[sel_.idx[k]];
        dst_nulls[k] = src_nulls[sel_.idx[k]];
      }
    }
  }
}

const uint8_t* FilterOperator::Next() {
  const Schema& schema = child(0)->output_schema();
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    if (EvaluatePredicate(*predicate_, TupleView(row, &schema))) return row;
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  return nullptr;
}

size_t FilterOperator::NextBatch(const uint8_t** out, size_t max) {
  const Schema& schema = child(0)->output_schema();
  // LINT: allow-alloc(one-time staging growth; no-op once capacity == max)
  if (in_batch_.size() < max) in_batch_.resize(max);
  const bool vectorized = compiled_ != nullptr && vectorized_eval_;
  for (;;) {
    size_t in_n = child(0)->NextBatch(in_batch_.data(), max);
    if (in_n == 0) {
      ctx_->ExecModule(module_id(), hot_funcs_batched());  // End-of-stream.
      return 0;
    }
    size_t n = 0;
    if (vectorized) {
      // Columns the child already published (ColumnScan aliases, an earlier
      // Filter's compacted vectors) are aliased, the rest decoded.
      RowBatchDecoder::DecodeMissing(in_batch_.data(), in_n, schema,
                                     compiled_->input_columns(),
                                     child(0)->BatchColumns(), &vbatch_);
      compiled_->RunFilter(vbatch_, &sel_);
      for (size_t i = 0; i < in_n; ++i) {
        ctx_->ExecModule(module_id(), hot_funcs_batched());
      }
      n = sel_.count;
      for (size_t k = 0; k < n; ++k) out[k] = in_batch_[sel_.idx[k]];
      if (n > 0) PublishCompacted();
    } else {
      for (size_t i = 0; i < in_n; ++i) {
        ctx_->ExecModule(module_id(), hot_funcs_);
        const uint8_t* row = in_batch_[i];
        out[n] = row;
        // LINT: allow-scalar-eval(fallback: predicate did not compile)
        n += EvaluatePredicate(*predicate_, TupleView(row, &schema)) ? 1 : 0;
      }
    }
    if (n > 0) return n;
    // Every row of this batch was filtered out; pull the next one.
  }
}

void FilterOperator::Close() { child(0)->Close(); }

std::string FilterOperator::label() const {
  return "Filter(" + predicate_->ToString() + ")";
}

}  // namespace bufferdb

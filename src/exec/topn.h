#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/sort.h"

namespace bufferdb {

/// ORDER BY ... LIMIT n via a bounded heap: keeps only the current best n
/// rows while consuming the input, then emits them in order. Blocking, but
/// with O(n) memory instead of materializing the whole input like Sort.
class TopNOperator final : public Operator {
 public:
  TopNOperator(OperatorPtr child, std::vector<SortKey> keys, size_t limit);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kTopN; }
  bool BlocksInput(size_t i) const override { return i == 0; }
  std::string label() const override;

 private:
  using Entry = std::pair<std::vector<Value>, const uint8_t*>;

  /// True if a precedes b in the requested order.
  bool Before(const Entry& a, const Entry& b) const;

  std::vector<SortKey> keys_;
  size_t limit_;
  std::vector<Entry> heap_;  // Max-heap on Before: top = worst kept row.
  std::vector<const uint8_t*> sorted_;
  size_t pos_ = 0;
  bool loaded_ = false;
};

}  // namespace bufferdb


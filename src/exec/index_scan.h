#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

/// B+-tree index scan over a key range [lo, hi], or over a single bound key
/// when used as the inner of an index nested-loop join (BindEqualKey +
/// Rescan, the Volcano "parameterized rescan" idiom).
class IndexScanOperator final : public Operator {
 public:
  IndexScanOperator(const IndexInfo* index, std::optional<int64_t> lo_key,
                    std::optional<int64_t> hi_key, ExprPtr residual_predicate);

  /// Switches to equality mode; effective after the next Rescan().
  void BindEqualKey(int64_t key);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;
  [[nodiscard]] Status Rescan() override;

  const Schema& output_schema() const override {
    return index_->table->schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kIndexScan; }
  std::string label() const override;

  const IndexInfo* index() const { return index_; }

 private:
  void Position();

  const IndexInfo* index_;
  std::optional<int64_t> lo_key_;
  std::optional<int64_t> hi_key_;
  std::optional<int64_t> equal_key_;
  ExprPtr residual_predicate_;
  BTree::Iterator it_;
  std::vector<const void*> touched_nodes_;
};

}  // namespace bufferdb


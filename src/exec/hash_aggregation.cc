#include "exec/hash_aggregation.h"

#include <cstring>

#include "common/prefetch.h"
#include "expr/evaluator.h"
#include "storage/tuple.h"

namespace bufferdb {

namespace {

// Serializes group-key values into a hashable byte string. Appends to *out
// (cleared first) so batch loads can reuse one string per batch slot.
void SerializeKeyInto(const std::vector<Value>& values, std::string* out) {
  out->clear();
  for (const Value& v : values) {
    out->push_back(static_cast<char>(v.type()));
    out->push_back(v.is_null() ? 1 : 0);
    if (v.is_null()) continue;
    if (v.type() == DataType::kString) {
      uint32_t n = static_cast<uint32_t>(v.string_value().size());
      out->append(reinterpret_cast<const char*>(&n), 4);
      out->append(v.string_value());
    } else if (v.type() == DataType::kDouble) {
      double d = v.double_value();
      out->append(reinterpret_cast<const char*>(&d), 8);
    } else {
      int64_t i = v.int64_value();
      out->append(reinterpret_cast<const char*>(&i), 8);
    }
  }
}

// FNV-1a over the serialized key bytes.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

HashAggregationOperator::HashAggregationOperator(OperatorPtr child,
                                                 std::vector<GroupKeyExpr> groups,
                                                 std::vector<AggSpec> specs)
    : groups_(std::move(groups)), specs_(std::move(specs)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (GroupKeyExpr& g : groups_) {
    g.expr = FoldConstants(std::move(g.expr));
    cols.push_back(Column{g.output_name, g.expr->result_type()});
  }
  for (AggSpec& spec : specs_) {
    if (spec.arg != nullptr) spec.arg = FoldConstants(std::move(spec.arg));
    AppendAggFuncs(spec.func, &hot_funcs_);
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->result_type() : DataType::kInt64;
    cols.push_back(Column{spec.output_name, AggOutputType(spec.func, arg_type)});
  }
  output_schema_ = Schema(std::move(cols));

  // Compile every group key and aggregate argument; the batched load goes
  // column-at-a-time only when all of them compiled (all-or-nothing).
  const Schema& in_schema = this->child(0)->output_schema();
  keys_compiled_ = true;
  for (const GroupKeyExpr& g : groups_) {
    group_compiled_.push_back(CompiledExpr::Compile(*g.expr, in_schema));
    keys_compiled_ = keys_compiled_ && group_compiled_.back() != nullptr;
  }
  for (const AggSpec& spec : specs_) {
    if (spec.arg == nullptr) {
      arg_compiled_.push_back(nullptr);  // COUNT(*) takes no argument.
      continue;
    }
    arg_compiled_.push_back(CompiledExpr::Compile(*spec.arg, in_schema));
    keys_compiled_ = keys_compiled_ && arg_compiled_.back() != nullptr;
  }
  if (keys_compiled_) {
    SetVectorBatchFuncs();
    for (const auto& programs : {&group_compiled_, &arg_compiled_}) {
      for (const auto& p : *programs) {
        if (p == nullptr) continue;
        for (int col : p->input_columns()) {
          bool present = false;
          for (int c : decode_cols_) present = present || c == col;
          if (!present) decode_cols_.push_back(col);
        }
      }
    }
  } else {
    group_compiled_.clear();
    arg_compiled_.clear();
  }
  gvecs_.resize(group_compiled_.size());
  avecs_.resize(arg_compiled_.size());
}

Status HashAggregationOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  buckets_.assign(1024, -1);
  group_states_.clear();
  emit_pos_ = 0;
  loaded_ = false;
  return child(0)->Open(ctx);
}

void HashAggregationOperator::Rehash() {
  buckets_.assign(buckets_.size() * 2, -1);
  const uint64_t mask = buckets_.size() - 1;
  for (int32_t i = 0; i < static_cast<int32_t>(group_states_.size()); ++i) {
    int32_t* bucket = &buckets_[group_states_[i].hash & mask];
    group_states_[i].next = *bucket;
    *bucket = i;
  }
}

HashAggregationOperator::GroupState* HashAggregationOperator::FindOrCreateGroup(
    const std::string& key, uint64_t hash, const TupleView& view) {
  int32_t* bucket = &buckets_[hash & (buckets_.size() - 1)];
  for (int32_t i = *bucket; i >= 0; i = group_states_[i].next) {
    GroupState& state = group_states_[i];
    if (state.hash == hash && state.key == key) return &state;
  }
  if (group_states_.size() + 1 > buckets_.size() / 2) {
    Rehash();
    bucket = &buckets_[hash & (buckets_.size() - 1)];
  }
  GroupState state;
  state.hash = hash;
  state.key = key;
  state.next = *bucket;
  state.group_values.resize(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    state.group_values[g] = groups_[g].expr->Evaluate(view);
  }
  state.accs.resize(specs_.size());
  group_states_.push_back(std::move(state));
  *bucket = static_cast<int32_t>(group_states_.size() - 1);
  return &group_states_.back();
}

void HashAggregationOperator::AbsorbRow(const TupleView& view,
                                        const std::string& key,
                                        uint64_t hash) {
  GroupState* state = FindOrCreateGroup(key, hash, view);
  ctx_->Touch(state, sizeof(GroupState));
  for (size_t i = 0; i < specs_.size(); ++i) {
    Value v = specs_[i].arg != nullptr ? specs_[i].arg->Evaluate(view) : Value();
    state->accs[i].Update(specs_[i].func, v);
  }
}

HashAggregationOperator::GroupState*
HashAggregationOperator::FindOrCreateGroupLane(const std::string& key,
                                               uint64_t hash, size_t lane) {
  int32_t* bucket = &buckets_[hash & (buckets_.size() - 1)];
  for (int32_t i = *bucket; i >= 0; i = group_states_[i].next) {
    GroupState& state = group_states_[i];
    if (state.hash == hash && state.key == key) return &state;
  }
  if (group_states_.size() + 1 > buckets_.size() / 2) {
    Rehash();
    bucket = &buckets_[hash & (buckets_.size() - 1)];
  }
  GroupState state;
  state.hash = hash;
  state.key = key;
  state.next = *bucket;
  state.group_values.resize(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    state.group_values[g] = LaneValue(*gvecs_[g], lane);
  }
  state.accs.resize(specs_.size());
  group_states_.push_back(std::move(state));
  *bucket = static_cast<int32_t>(group_states_.size() - 1);
  return &group_states_.back();
}

void HashAggregationOperator::AbsorbLane(size_t lane, const std::string& key,
                                         uint64_t hash) {
  GroupState* state = FindOrCreateGroupLane(key, hash, lane);
  ctx_->Touch(state, sizeof(GroupState));
  for (size_t i = 0; i < specs_.size(); ++i) {
    Value v = avecs_[i] != nullptr ? LaneValue(*avecs_[i], lane) : Value();
    state->accs[i].Update(specs_[i].func, v);
  }
}

void HashAggregationOperator::SerializeLaneInto(size_t lane,
                                                std::string* out) const {
  out->clear();
  for (const ColumnVector* v : gvecs_) {
    out->push_back(static_cast<char>(v->type));
    const bool is_null = v->null_data()[lane] != 0;
    out->push_back(is_null ? 1 : 0);
    if (is_null) continue;
    // Strings never compile, so every payload is a fixed 8 bytes.
    if (v->is_double()) {
      const double d = v->f64_data()[lane];
      out->append(reinterpret_cast<const char*>(&d), 8);
    } else {
      const int64_t i = v->i64_data()[lane];
      out->append(reinterpret_cast<const char*>(&i), 8);
    }
  }
}

void HashAggregationOperator::Load() {
  const Schema& in_schema = child(0)->output_schema();
  std::vector<Value> key_values(groups_.size());
  std::string key;
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &in_schema);
    for (size_t g = 0; g < groups_.size(); ++g) {
      key_values[g] = groups_[g].expr->Evaluate(view);
    }
    SerializeKeyInto(key_values, &key);
    AbsorbRow(view, key, HashKey(key));
  }
}

// Batch load: pass 1 serializes and hashes the group keys of the whole
// batch, prefetching each row's bucket head; pass 2 does the lookups and
// accumulator updates against buckets whose cache lines are already in
// flight. A rehash mid-batch only wastes the remaining prefetches.
void HashAggregationOperator::LoadBatched() {
  const Schema& in_schema = child(0)->output_schema();
  batch_rows_.resize(batch_size_);
  batch_keys_.resize(batch_size_);
  batch_hashes_.resize(batch_size_);
  std::vector<Value> key_values(groups_.size());
  const bool vectorized = keys_compiled_ && vectorized_eval_;
  for (;;) {
    size_t n = child(0)->NextBatch(batch_rows_.data(), batch_size_);
    if (n == 0) break;
    if (vectorized) {
      // Column-at-a-time: one decode of the union of input columns feeds
      // every group-key and argument program; key serialization and the
      // accumulator updates then read the result vectors lane-wise.
      RowBatchDecoder::DecodeMissing(batch_rows_.data(), n, in_schema,
                                     decode_cols_, child(0)->BatchColumns(),
                                     &vbatch_);
      for (size_t g = 0; g < group_compiled_.size(); ++g) {
        gvecs_[g] = &group_compiled_[g]->Run(vbatch_);
      }
      for (size_t a = 0; a < arg_compiled_.size(); ++a) {
        avecs_[a] =
            arg_compiled_[a] != nullptr ? &arg_compiled_[a]->Run(vbatch_) : nullptr;
      }
      for (size_t i = 0; i < n; ++i) {
        SerializeLaneInto(i, &batch_keys_[i]);
        uint64_t h = HashKey(batch_keys_[i]);
        batch_hashes_[i] = h;
        PrefetchRead(&buckets_[h & (buckets_.size() - 1)]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        TupleView view(batch_rows_[i], &in_schema);
        for (size_t g = 0; g < groups_.size(); ++g) {
          // LINT: allow-scalar-eval(fallback: some key/arg did not compile)
          key_values[g] = groups_[g].expr->Evaluate(view);
        }
        SerializeKeyInto(key_values, &batch_keys_[i]);
        uint64_t h = HashKey(batch_keys_[i]);
        batch_hashes_[i] = h;
        PrefetchRead(&buckets_[h & (buckets_.size() - 1)]);
      }
    }
    // By now the first rows' bucket lines have arrived: read the heads and
    // prefetch the group nodes they chain to, overlapping the second
    // dependent miss of each lookup as well.
    for (size_t i = 0; i < n; ++i) {
      int32_t head = buckets_[batch_hashes_[i] & (buckets_.size() - 1)];
      if (head >= 0) PrefetchRead(&group_states_[head]);
    }
    if (vectorized) {
      for (size_t i = 0; i < n; ++i) {
        ctx_->ExecModule(module_id(), hot_funcs_batched());
        AbsorbLane(i, batch_keys_[i], batch_hashes_[i]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        ctx_->ExecModule(module_id(), hot_funcs_);
        TupleView view(batch_rows_[i], &in_schema);
        AbsorbRow(view, batch_keys_[i], batch_hashes_[i]);
      }
    }
  }
}

const uint8_t* HashAggregationOperator::Next() {
  if (!loaded_) {
    if (batch_size_ > 1) {
      LoadBatched();
    } else {
      Load();
    }
    loaded_ = true;
    emit_pos_ = 0;
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (emit_pos_ >= group_states_.size()) return nullptr;
  const GroupState& state = group_states_[emit_pos_++];
  TupleBuilder builder(&output_schema_);
  size_t col = 0;
  for (const Value& v : state.group_values) builder.Set(col++, v);
  for (size_t i = 0; i < specs_.size(); ++i) {
    builder.Set(col, state.accs[i].Final(specs_[i].func,
                                         output_schema_.column(col).type));
    ++col;
  }
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  return out;
}

void HashAggregationOperator::Close() {
  buckets_.clear();
  group_states_.clear();
  emit_pos_ = 0;
  loaded_ = false;
  child(0)->Close();
}

std::string HashAggregationOperator::label() const {
  std::string out = "HashAgg(by ";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i > 0) out += ",";
    out += groups_[i].output_name;
  }
  out += ")";
  return out;
}

}  // namespace bufferdb

#include "exec/hash_aggregation.h"

#include <cstring>

#include "storage/tuple.h"

namespace bufferdb {

namespace {

// Serializes group-key values into a hashable byte string.
std::string SerializeKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key.push_back(static_cast<char>(v.type()));
    key.push_back(v.is_null() ? 1 : 0);
    if (v.is_null()) continue;
    if (v.type() == DataType::kString) {
      uint32_t n = static_cast<uint32_t>(v.string_value().size());
      key.append(reinterpret_cast<const char*>(&n), 4);
      key.append(v.string_value());
    } else if (v.type() == DataType::kDouble) {
      double d = v.double_value();
      key.append(reinterpret_cast<const char*>(&d), 8);
    } else {
      int64_t i = v.int64_value();
      key.append(reinterpret_cast<const char*>(&i), 8);
    }
  }
  return key;
}

}  // namespace

HashAggregationOperator::HashAggregationOperator(OperatorPtr child,
                                                 std::vector<GroupKeyExpr> groups,
                                                 std::vector<AggSpec> specs)
    : groups_(std::move(groups)), specs_(std::move(specs)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  for (const GroupKeyExpr& g : groups_) {
    cols.push_back(Column{g.output_name, g.expr->result_type()});
  }
  for (const AggSpec& spec : specs_) {
    AppendAggFuncs(spec.func, &hot_funcs_);
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->result_type() : DataType::kInt64;
    cols.push_back(Column{spec.output_name, AggOutputType(spec.func, arg_type)});
  }
  output_schema_ = Schema(std::move(cols));
}

Status HashAggregationOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  table_.clear();
  loaded_ = false;
  return child(0)->Open(ctx);
}

const uint8_t* HashAggregationOperator::Next() {
  const Schema& in_schema = child(0)->output_schema();
  if (!loaded_) {
    std::vector<Value> key_values(groups_.size());
    while (const uint8_t* row = child(0)->Next()) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      TupleView view(row, &in_schema);
      for (size_t i = 0; i < groups_.size(); ++i) {
        key_values[i] = groups_[i].expr->Evaluate(view);
      }
      std::string key = SerializeKey(key_values);
      auto [it, inserted] = table_.try_emplace(key);
      GroupState& state = it->second;
      if (inserted) {
        state.group_values = key_values;
        state.accs.resize(specs_.size());
      }
      ctx_->Touch(&state, sizeof(GroupState));
      for (size_t i = 0; i < specs_.size(); ++i) {
        Value v = specs_[i].arg != nullptr ? specs_[i].arg->Evaluate(view)
                                           : Value();
        state.accs[i].Update(specs_[i].func, v);
      }
    }
    loaded_ = true;
    emit_it_ = table_.begin();
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (emit_it_ == table_.end()) return nullptr;
  const GroupState& state = emit_it_->second;
  ++emit_it_;
  TupleBuilder builder(&output_schema_);
  size_t col = 0;
  for (const Value& v : state.group_values) builder.Set(col++, v);
  for (size_t i = 0; i < specs_.size(); ++i) {
    builder.Set(col, state.accs[i].Final(specs_[i].func,
                                         output_schema_.column(col).type));
    ++col;
  }
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  return out;
}

void HashAggregationOperator::Close() {
  table_.clear();
  loaded_ = false;
  child(0)->Close();
}

std::string HashAggregationOperator::label() const {
  std::string out = "HashAgg(by ";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i > 0) out += ",";
    out += groups_[i].output_name;
  }
  out += ")";
  return out;
}

}  // namespace bufferdb

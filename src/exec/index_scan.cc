#include "exec/index_scan.h"

#include "expr/evaluator.h"

namespace bufferdb {

namespace {
// Approximate bytes charged to the data cache per touched B+-tree node.
constexpr size_t kNodeTouchBytes = 512;
}  // namespace

IndexScanOperator::IndexScanOperator(const IndexInfo* index,
                                     std::optional<int64_t> lo_key,
                                     std::optional<int64_t> hi_key,
                                     ExprPtr residual_predicate)
    : index_(index),
      lo_key_(lo_key),
      hi_key_(hi_key),
      residual_predicate_(std::move(residual_predicate)) {
  InitHotFuncs(module_id());
  if (residual_predicate_ != nullptr) {
    AddHotFunc(sim::FuncId::kExprCmp);
    AddHotFunc(sim::FuncId::kExprArith);
  }
}

void IndexScanOperator::BindEqualKey(int64_t key) { equal_key_ = key; }

void IndexScanOperator::Position() {
  touched_nodes_.clear();
  const BTree& tree = *index_->btree;
  if (equal_key_.has_value()) {
    it_ = tree.Seek(*equal_key_, &touched_nodes_);
  } else if (lo_key_.has_value()) {
    it_ = tree.Seek(*lo_key_, &touched_nodes_);
  } else {
    it_ = tree.Begin();
  }
  for (const void* node : touched_nodes_) {
    ctx_->Touch(node, kNodeTouchBytes);
  }
}

Status IndexScanOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  Position();
  return Status::OK();
}

const uint8_t* IndexScanOperator::Next() {
  const Schema& schema = index_->table->schema();
  while (it_.Valid()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    if (equal_key_.has_value() && it_.key() != *equal_key_) break;
    if (hi_key_.has_value() && it_.key() > *hi_key_) break;
    const uint8_t* row = it_.row();
    ctx_->Touch(it_.node_address(), kNodeTouchBytes);
    it_.Next();
    TupleView view(row, &schema);
    ctx_->Touch(row, view.size_bytes());
    if (residual_predicate_ == nullptr ||
        EvaluatePredicate(*residual_predicate_, view)) {
      return row;
    }
  }
  ctx_->ExecModule(module_id(), hot_funcs_);
  return nullptr;
}

void IndexScanOperator::Close() {}

Status IndexScanOperator::Rescan() {
  Position();
  return Status::OK();
}

std::string IndexScanOperator::label() const {
  return "IndexScan(" + index_->name + ")";
}

}  // namespace bufferdb

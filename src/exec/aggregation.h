#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

enum class AggFunc : uint8_t {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

const char* AggFuncName(AggFunc func);

/// One aggregate in the SELECT list, e.g. SUM(l_extendedprice * (1 - ...)).
struct AggSpec {
  AggFunc func;
  ExprPtr arg;  // Null for COUNT(*).
  std::string output_name;
};

/// Output column type of an aggregate over an argument of type `arg_type`.
DataType AggOutputType(AggFunc func, DataType arg_type);

/// Running state for a single aggregate (SQL semantics: NULL inputs are
/// ignored; empty input yields NULL except COUNT which yields 0).
struct AggAccumulator {
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  Value extremum;  // MIN/MAX running value.

  void Update(AggFunc func, const Value& v);
  Value Final(AggFunc func, DataType output_type) const;
};

/// Scalar (ungrouped) aggregation: consumes the whole input, emits exactly
/// one row. Instruction-wise it interleaves with its input per tuple, so the
/// refiner treats it as part of the pipeline (it is *not* a pipeline breaker
/// in the paper's sense; compare Fig. 5 where Scan and Aggregation form
/// candidate execution groups).
class AggregationOperator final : public Operator {
 public:
  AggregationOperator(OperatorPtr child, std::vector<AggSpec> specs);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kAggregation;
  }
  std::string label() const override;

  const std::vector<AggSpec>& specs() const { return specs_; }

 private:
  std::vector<AggSpec> specs_;
  Schema output_schema_;
  bool done_ = false;
};

/// Appends the simulator functions an aggregate contributes to the module
/// footprint (AVG adds SUM's code plus its own, per Table 2 calibration).
void AppendAggFuncs(AggFunc func, std::vector<sim::FuncId>* funcs);

}  // namespace bufferdb


#pragma once

#include <memory>
#include <string>

#include "exec/index_scan.h"
#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

/// Naive nested-loop join: rescans the inner child for every outer tuple and
/// applies `join_predicate` to the concatenated row. The inner child should
/// be cheap to rescan (e.g. a Materialize). Used for small inputs and as a
/// correctness oracle in tests.
class NestLoopJoinOperator final : public Operator {
 public:
  NestLoopJoinOperator(OperatorPtr outer, OperatorPtr inner,
                       ExprPtr join_predicate);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kNestLoopJoin;
  }
  std::string label() const override { return "NestLoop"; }

 private:
  ExprPtr join_predicate_;
  Schema output_schema_;
  const uint8_t* outer_row_ = nullptr;
  bool need_outer_ = true;
};

/// Index nested-loop join, the paper's Fig. 15 plan: for each outer tuple,
/// binds the join key on the inner IndexScan and drains the matches. When
/// the planner knows the inner is a key lookup ("the optimizer knows that at
/// most one row matches each outer tuple"), it marks the inner operator as
/// excluded from buffering (§6).
class IndexNestLoopJoinOperator final : public Operator {
 public:
  IndexNestLoopJoinOperator(OperatorPtr outer,
                            std::unique_ptr<IndexScanOperator> inner,
                            ExprPtr outer_key_expr);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kNestLoopJoin;
  }
  std::string label() const override { return "NestLoop(indexed)"; }

 private:
  ExprPtr outer_key_expr_;
  Schema output_schema_;
  IndexScanOperator* inner_scan_ = nullptr;  // Alias of child(1).
  const uint8_t* outer_row_ = nullptr;
  bool need_outer_ = true;
};

}  // namespace bufferdb


#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

/// Blocking in-memory sort. Drains its child on Open (all experiments are
/// memory-resident), sorts row pointers by precomputed keys, then emits.
/// As a pipeline breaker it "already buffers query execution below it" (§6)
/// and is never part of an execution group.
class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;
  [[nodiscard]] Status Rescan() override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kSort; }
  bool BlocksInput(size_t i) const override { return i == 0; }
  std::string label() const override { return "Sort"; }

 private:
  std::vector<SortKey> keys_;
  std::vector<std::pair<std::vector<Value>, const uint8_t*>> sorted_;
  size_t pos_ = 0;
  bool loaded_ = false;
};

}  // namespace bufferdb


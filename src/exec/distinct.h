#pragma once

#include <memory>
#include <string>
#include <unordered_set>

#include "exec/operator.h"

namespace bufferdb {

/// Hash-based duplicate elimination over whole rows (SELECT DISTINCT).
/// Pipelined: each first occurrence flows through immediately.
class DistinctOperator final : public Operator {
 public:
  explicit DistinctOperator(OperatorPtr child);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kDistinct; }
  std::string label() const override { return "Distinct"; }

  size_t num_distinct() const { return seen_.size(); }

 private:
  std::unordered_set<std::string> seen_;
};

}  // namespace bufferdb


#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "catalog/schema.h"
#include "expr/vector.h"

namespace bufferdb {

/// Decomposes a batch of packed row pointers (the NextBatch currency) into
/// SoA ColumnVectors for the vectorized expression engine. Only the columns
/// a kernel program actually reads are decoded; the row pointers themselves
/// remain the batch currency between operators, so decoding is a per-operator
/// view, not a format change.
class RowBatchDecoder {
 public:
  /// Decodes `columns` of the `n` rows into `batch`. Column payloads follow
  /// the ColumnVector conventions: bools normalized to 0/1, doubles in the
  /// f64 array, NULL lanes with payload zero (guaranteed because
  /// TupleBuilder zeroes null slots in the row format).
  static void Decode(const uint8_t* const* rows, size_t n,
                     const Schema& schema, std::span<const int> columns,
                     VectorBatch* batch);

  /// Like Decode, but columns already present in `published` (the producing
  /// child's BatchColumns(), covering exactly these `n` rows) are aliased
  /// into `batch` instead of re-decoded — the fix for the repeated-decode
  /// waste in Filter->Project chains: each column is materialized at most
  /// once per pipeline, and never at all above a ColumnScan. `published`
  /// may be nullptr (degrades to Decode). Aliased entries borrow the
  /// producer's storage and follow the BatchColumns() lifetime rule: use
  /// them before pulling the next batch from the producer.
  static void DecodeMissing(const uint8_t* const* rows, size_t n,
                            const Schema& schema, std::span<const int> columns,
                            const VectorBatch* published, VectorBatch* batch);
};

}  // namespace bufferdb

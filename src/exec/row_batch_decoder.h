#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "catalog/schema.h"
#include "expr/vector.h"

namespace bufferdb {

/// Decomposes a batch of packed row pointers (the NextBatch currency) into
/// SoA ColumnVectors for the vectorized expression engine. Only the columns
/// a kernel program actually reads are decoded; the row pointers themselves
/// remain the batch currency between operators, so decoding is a per-operator
/// view, not a format change.
class RowBatchDecoder {
 public:
  /// Decodes `columns` of the `n` rows into `batch`. Column payloads follow
  /// the ColumnVector conventions: bools normalized to 0/1, doubles in the
  /// f64 array, NULL lanes with payload zero (guaranteed because
  /// TupleBuilder zeroes null slots in the row format).
  static void Decode(const uint8_t* const* rows, size_t n,
                     const Schema& schema, std::span<const int> columns,
                     VectorBatch* batch);
};

}  // namespace bufferdb

#include "exec/topn.h"

#include <algorithm>

#include "storage/tuple.h"

namespace bufferdb {

TopNOperator::TopNOperator(OperatorPtr child, std::vector<SortKey> keys,
                           size_t limit)
    : keys_(std::move(keys)), limit_(limit) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

bool TopNOperator::Before(const Entry& a, const Entry& b) const {
  for (size_t i = 0; i < keys_.size(); ++i) {
    const Value& x = a.first[i];
    const Value& y = b.first[i];
    if (x.is_null() != y.is_null()) return y.is_null();  // NULLs last.
    if (x.is_null()) continue;
    int c = Value::Compare(x, y);
    if (c != 0) return keys_[i].descending ? c > 0 : c < 0;
  }
  return false;
}

Status TopNOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  heap_.clear();
  sorted_.clear();
  pos_ = 0;
  loaded_ = false;
  BUFFERDB_RETURN_IF_ERROR(child(0)->Open(ctx));
  if (limit_ == 0) {
    loaded_ = true;
    return Status::OK();
  }

  auto worse = [this](const Entry& a, const Entry& b) { return Before(a, b); };
  const Schema& schema = child(0)->output_schema();
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &schema);
    Entry entry;
    entry.second = row;
    entry.first.reserve(keys_.size());
    for (const SortKey& k : keys_) entry.first.push_back(k.expr->Evaluate(view));
    if (heap_.size() < limit_) {
      heap_.push_back(std::move(entry));
      std::push_heap(heap_.begin(), heap_.end(), worse);
    } else if (Before(entry, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), worse);
      heap_.back() = std::move(entry);
      std::push_heap(heap_.begin(), heap_.end(), worse);
    }
    ctx_->Touch(heap_.data(), sizeof(Entry) * std::min(heap_.size(), size_t{8}));
  }
  std::sort_heap(heap_.begin(), heap_.end(), worse);
  sorted_.reserve(heap_.size());
  for (const Entry& e : heap_) sorted_.push_back(e.second);
  heap_.clear();
  loaded_ = true;
  return Status::OK();
}

const uint8_t* TopNOperator::Next() {
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= sorted_.size()) return nullptr;
  const uint8_t* row = sorted_[pos_++];
  ctx_->Touch(row, 64);
  return row;
}

void TopNOperator::Close() {
  heap_.clear();
  sorted_.clear();
  loaded_ = false;
  pos_ = 0;
  child(0)->Close();
}

std::string TopNOperator::label() const {
  return "TopN(" + std::to_string(limit_) + ")";
}

}  // namespace bufferdb

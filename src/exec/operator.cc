#include "exec/operator.h"

#include "storage/tuple.h"

namespace bufferdb {

Status Operator::Rescan() {
  Close();
  return Open(ctx_);
}

size_t Operator::NextBatch(const uint8_t** out, size_t max) {
  size_t n = 0;
  while (n < max) {
    const uint8_t* row = Next();
    if (row == nullptr) break;
    out[n++] = row;
  }
  return n;
}

std::string Operator::label() const {
  return sim::ModuleName(module_id());
}

Result<std::vector<const uint8_t*>> ExecutePlan(Operator* root,
                                                ExecContext* ctx) {
  BUFFERDB_RETURN_IF_ERROR(root->Open(ctx));
  std::vector<const uint8_t*> rows;
  while (const uint8_t* row = root->Next()) {
    rows.push_back(row);
  }
  root->Close();
  return rows;
}

Result<std::vector<const uint8_t*>> ExecutePlanBatched(Operator* root,
                                                       ExecContext* ctx,
                                                       size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  BUFFERDB_RETURN_IF_ERROR(root->Open(ctx));
  std::vector<const uint8_t*> rows;
  std::vector<const uint8_t*> batch(batch_size);
  while (size_t n = root->NextBatch(batch.data(), batch_size)) {
    rows.insert(rows.end(), batch.begin(), batch.begin() + n);
  }
  root->Close();
  return rows;
}

Result<std::vector<std::vector<Value>>> ExecutePlanRows(Operator* root,
                                                        ExecContext* ctx) {
  BUFFERDB_ASSIGN_OR_RETURN(rows, ExecutePlan(root, ctx));
  const Schema& schema = root->output_schema();
  std::vector<std::vector<Value>> out;
  out.reserve(rows.size());
  for (const uint8_t* row : rows) {
    TupleView view(row, &schema);
    std::vector<Value> values;
    values.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      values.push_back(view.GetValue(c));
    }
    out.push_back(std::move(values));
  }
  return out;
}

}  // namespace bufferdb

#include "exec/operator.h"

#include "storage/tuple.h"

namespace bufferdb {

Status Operator::Rescan() {
  Close();
  return Open(ctx_);
}

std::string Operator::label() const {
  return sim::ModuleName(module_id());
}

Result<std::vector<const uint8_t*>> ExecutePlan(Operator* root,
                                                ExecContext* ctx) {
  BUFFERDB_RETURN_IF_ERROR(root->Open(ctx));
  std::vector<const uint8_t*> rows;
  while (const uint8_t* row = root->Next()) {
    rows.push_back(row);
  }
  root->Close();
  return rows;
}

Result<std::vector<std::vector<Value>>> ExecutePlanRows(Operator* root,
                                                        ExecContext* ctx) {
  BUFFERDB_ASSIGN_OR_RETURN(rows, ExecutePlan(root, ctx));
  const Schema& schema = root->output_schema();
  std::vector<std::vector<Value>> out;
  out.reserve(rows.size());
  for (const uint8_t* row : rows) {
    TupleView view(row, &schema);
    std::vector<Value> values;
    values.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      values.push_back(view.GetValue(c));
    }
    out.push_back(std::move(values));
  }
  return out;
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

/// Standalone selection: passes through rows for which `predicate` is
/// non-NULL true. Used by the planner for HAVING clauses and predicates
/// that cannot be pushed into a scan.
class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  /// Batch fast path: pulls whole batches from the child and writes the
  /// survivors with a branch-free selection loop (the output cursor
  /// advances by the predicate result, so the store itself never branches).
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kFilter; }
  std::string label() const override;

  const Expression& predicate() const { return *predicate_; }

 private:
  ExprPtr predicate_;
  std::vector<const uint8_t*> in_batch_;  // NextBatch scratch.
};

}  // namespace bufferdb


#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/row_batch_decoder.h"
#include "expr/expression.h"
#include "expr/vector_eval.h"

namespace bufferdb {

/// Standalone selection: passes through rows for which `predicate` is
/// non-NULL true. Used by the planner for HAVING clauses and predicates
/// that cannot be pushed into a scan.
class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  /// Batch fast path: pulls whole batches from the child. When the predicate
  /// compiled to a kernel program, it is evaluated column-at-a-time into a
  /// selection vector (decode → RunFilter → gather survivors); otherwise the
  /// per-tuple interpreter runs with a branch-free selection loop (the
  /// output cursor advances by the predicate result, so the store itself
  /// never branches).
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kFilter; }
  std::string label() const override;

  /// Survivor-compacted predicate columns of the last vectorized batch, so
  /// a consumer (Project, joins) re-reading those columns aliases them
  /// instead of re-decoding the rows.
  const VectorBatch* BatchColumns() const override { return &published_; }

  const Expression& predicate() const { return *predicate_; }

  /// Non-null when the predicate compiled to a kernel program (test hook).
  const CompiledExpr* compiled_predicate() const { return compiled_.get(); }

 private:
  /// Gathers sel_ survivors of the predicate's input columns from vbatch_
  /// into published_.
  void PublishCompacted();

  ExprPtr predicate_;
  std::unique_ptr<CompiledExpr> compiled_;  // Compiled once, at plan time.
  std::vector<const uint8_t*> in_batch_;    // NextBatch scratch.
  VectorBatch vbatch_;
  VectorBatch published_;  // BatchColumns() payload.
  SelectionVector sel_;
};

}  // namespace bufferdb

#ifndef BUFFERDB_EXEC_HASH_JOIN_H_
#define BUFFERDB_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

/// In-memory equi-hash-join. The build phase (child 1) runs during Open and
/// is blocking; the probe phase streams child 0. Build and probe are
/// separate instruction-footprint modules, matching the paper's Table 2
/// ("we treat build and probe phases of a HashJoin operator as two separate
/// modules"). module_id() reports the probe module — the code that runs
/// per pipeline tuple.
class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr probe, OperatorPtr build, ExprPtr probe_key,
                   ExprPtr build_key, ExprPtr residual_predicate = nullptr);

  Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kHashJoinProbe;
  }
  bool BlocksInput(size_t i) const override { return i == 1; }
  std::string label() const override { return "HashJoin"; }

  size_t build_size() const { return nodes_.size(); }

 private:
  struct Node {
    int64_t key;
    const uint8_t* row;
    int32_t next;  // Index into nodes_, or -1.
  };

  int32_t* BucketFor(int64_t key);

  ExprPtr probe_key_;
  ExprPtr build_key_;
  ExprPtr residual_predicate_;
  Schema output_schema_;
  std::vector<sim::FuncId> build_funcs_;

  std::vector<int32_t> buckets_;
  std::vector<Node> nodes_;
  const uint8_t* probe_row_ = nullptr;
  int64_t probe_key_value_ = 0;
  int32_t chain_ = -1;
  bool built_ = false;
};

}  // namespace bufferdb

#endif  // BUFFERDB_EXEC_HASH_JOIN_H_

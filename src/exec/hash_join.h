#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/row_batch_decoder.h"
#include "expr/expression.h"
#include "expr/vector_eval.h"

namespace bufferdb {

/// In-memory equi-hash-join. The build phase (child 1) runs during Open and
/// is blocking; the probe phase streams child 0. Build and probe are
/// separate instruction-footprint modules, matching the paper's Table 2
/// ("we treat build and probe phases of a HashJoin operator as two separate
/// modules"). module_id() reports the probe module — the code that runs
/// per pipeline tuple.
///
/// With `set_probe_batch_size(n > 1)` the probe side consumes its input
/// through NextBatch: probe keys and bucket heads for the whole batch are
/// computed up front with software prefetches issued for the buckets (and
/// first chain nodes) of tuples ahead in the batch, so the DRAM misses of
/// independent probes overlap instead of serializing. Default is the
/// paper-faithful tuple-at-a-time probe.
class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr probe, OperatorPtr build, ExprPtr probe_key,
                   ExprPtr build_key, ExprPtr residual_predicate = nullptr);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kHashJoinProbe;
  }
  bool BlocksInput(size_t i) const override { return i == 1; }
  std::string label() const override { return "HashJoin"; }

  size_t build_size() const { return nodes_.size(); }

  /// Probe-side batch width; <= 1 selects the tuple-at-a-time probe.
  /// Takes effect at the next Open.
  void set_probe_batch_size(size_t n) { probe_batch_size_ = n == 0 ? 1 : n; }
  size_t probe_batch_size() const { return probe_batch_size_; }

  /// Non-null when the respective key expression compiled to a kernel
  /// program (test hooks). Compiled keys are used on the batched probe path
  /// and the batched build; the residual predicate always stays on the
  /// interpreter (it runs per join match, not per input tuple).
  const CompiledExpr* compiled_probe_key() const {
    return probe_compiled_.get();
  }
  const CompiledExpr* compiled_build_key() const {
    return build_compiled_.get();
  }

 private:
  struct Node {
    int64_t key;
    const uint8_t* row;
    int32_t next;  // Index into nodes_, or -1.
  };

  int32_t* BucketFor(int64_t key);
  void FetchProbeBatch();
  void InsertBuildRow(int64_t key, const uint8_t* row);

  ExprPtr probe_key_;
  ExprPtr build_key_;
  ExprPtr residual_predicate_;
  Schema output_schema_;
  std::vector<sim::FuncId> build_funcs_;
  std::vector<sim::FuncId> build_batch_funcs_;

  // Compiled key programs (plan-time; nullptr -> interpreter). Only
  // programs with an int64-payload result (int64/date/bool) are kept —
  // keys are hashed through int64_value(), exactly like the interpreter.
  std::unique_ptr<CompiledExpr> probe_compiled_;
  std::unique_ptr<CompiledExpr> build_compiled_;
  VectorBatch probe_vbatch_;
  VectorBatch build_vbatch_;
  std::vector<const uint8_t*> build_rows_;  // Batched-build staging.

  std::vector<int32_t> buckets_;
  std::vector<Node> nodes_;
  const uint8_t* probe_row_ = nullptr;
  int64_t probe_key_value_ = 0;
  int32_t chain_ = -1;
  bool built_ = false;

  // Batched probe state (active when probe_batch_size_ > 1).
  size_t probe_batch_size_ = 1;
  std::vector<const uint8_t*> probe_rows_;
  std::vector<int64_t> probe_keys_;
  std::vector<uint64_t> probe_buckets_;  // Bucket index per row (pass 1).
  std::vector<int32_t> probe_chains_;    // Captured bucket head (pass 2).
  std::vector<uint8_t> probe_valid_;     // 0 for NULL probe keys.
  size_t probe_pos_ = 0;
  size_t probe_count_ = 0;
  bool probe_eof_ = false;
};

}  // namespace bufferdb


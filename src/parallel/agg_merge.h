#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregation.h"
#include "exec/operator.h"

namespace bufferdb::parallel {

/// Decomposes the SELECT-list aggregates into the partial aggregates each
/// worker fragment computes locally (classic two-phase parallel
/// aggregation): COUNT and SUM are themselves partial-izable, AVG splits
/// into COUNT + SUM, MIN/MAX stay as-is. The returned specs drive a
/// fragment-local AggregationOperator; argument expressions are cloned.
///
/// The column layout is deterministic — AggregateMergeOperator derives the
/// same layout from the final specs to locate its input columns.
std::vector<AggSpec> MakePartialAggSpecs(const std::vector<AggSpec>& specs);

/// Combines the one partial-aggregate row each worker fragment emits (via
/// the Exchange) into the single final row the query reports, with the
/// exact output schema a serial AggregationOperator would produce.
/// Summation order over fragments is arrival order, so double-typed SUM/AVG
/// results can differ from the serial plan in the last ulp.
class AggregateMergeOperator final : public Operator {
 public:
  /// `specs` are the *final* SELECT-list aggregates; `child` must produce
  /// rows matching MakePartialAggSpecs(specs).
  AggregateMergeOperator(OperatorPtr child, std::vector<AggSpec> specs);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kAggregation;
  }
  std::string label() const override;

  const std::vector<AggSpec>& specs() const { return specs_; }

 private:
  std::vector<AggSpec> specs_;
  std::vector<size_t> first_col_;  // First partial column of each spec.
  Schema output_schema_;
  bool done_ = false;
};

}  // namespace bufferdb::parallel


#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "parallel/morsel.h"
#include "parallel/thread_pool.h"
#include "parallel/tuple_queue.h"

namespace bufferdb::parallel {

/// Intra-query parallelism behind the open-next-close interface.
///
/// The Exchange owns N structurally identical child pipeline *fragments*
/// (its children in the plan tree). Each fragment's driving SeqScan is bound
/// to one shared MorselCursor, so the base table is partitioned dynamically
/// at morsel granularity. Open launches one pool task per fragment; every
/// task runs its fragment to completion with a **private ExecContext**
/// (own arena, and no SimCpu unless EnableFragmentSimulation was called —
/// the simulator is not thread-safe, see exec/operator.h) and pushes the
/// produced row pointers, in batches, into a bounded MPSC TupleQueue.
/// Next() merges the batches in arrival order; parents above the Exchange
/// are ordinary single-threaded operators and need no changes.
///
/// Buffering composes per worker: the plan refiner treats the Exchange as a
/// group boundary (it is constructed excluded-from-buffering) and inserts
/// BufferOperators *inside* each fragment, so every core gets the paper's
/// PCC...CPP...P instruction locality independently.
///
/// Row lifetime: fragment arenas are kept alive until the next Open (or
/// destruction), not released in Close, because callers read row pointers
/// after draining the plan (see ExecutePlanRows).
///
/// Output order is nondeterministic across runs; the Exchange must only be
/// placed where parents are order-insensitive (the planner puts it below
/// aggregation / sort / distinct).
class ExchangeOperator final : public Operator {
 public:
  static constexpr size_t kDefaultBatchRows = 1024;
  static constexpr size_t kDefaultQueueBatches = 64;

  /// `cursor` may be null when the fragments partition work by other means;
  /// when set it is Reset on every Open. `pool` defaults to
  /// ThreadPool::Global().
  ExchangeOperator(std::vector<OperatorPtr> fragments,
                   std::unique_ptr<MorselCursor> cursor,
                   ThreadPool* pool = nullptr,
                   size_t batch_rows = kDefaultBatchRows,
                   size_t queue_batches = kDefaultQueueBatches);
  ~ExchangeOperator() override;

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  /// Batch fast path: forwards the TupleQueue's already-batched pops as
  /// slices instead of re-serializing them into per-tuple calls — the
  /// worker-side batching survives the thread boundary.
  size_t NextBatch(const uint8_t** out, size_t max) override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kBuffer; }
  std::string label() const override;

  /// First error raised by a worker fragment (fragment Open failure or an
  /// exception). Next() ends the stream early on error; callers that need
  /// to distinguish "empty" from "failed" check this after draining.
  [[nodiscard]] Status error() const;

  /// Gives every fragment its own SimCpu (instead of none) so the simulated
  /// counters can be inspected per worker without racing on the consumer's
  /// simulator. Takes effect at the next Open.
  void EnableFragmentSimulation(const sim::SimConfig& config);
  const sim::SimCpu* fragment_cpu(size_t i) const {
    return fragment_cpus_.size() > i ? fragment_cpus_[i].get() : nullptr;
  }

  size_t degree() const { return num_children(); }
  const MorselCursor* cursor() const { return cursor_.get(); }

 private:
  void RunFragment(size_t index);
  void RecordError(Status status);
  void JoinWorkers();

  std::unique_ptr<MorselCursor> cursor_;
  ThreadPool* pool_;
  size_t batch_rows_;
  size_t queue_batches_;

  bool simulate_fragments_ = false;
  sim::SimConfig fragment_sim_config_;

  // Per-run state. Contexts outlive Close (see class comment).
  std::vector<std::unique_ptr<ExecContext>> fragment_ctxs_;
  std::vector<std::unique_ptr<sim::SimCpu>> fragment_cpus_;
  std::unique_ptr<TupleQueue> queue_;
  std::vector<std::future<void>> workers_;
  TupleQueue::Batch current_;
  size_t current_pos_ = 0;

  mutable std::mutex error_mu_;
  Status error_ = Status::OK();
};

}  // namespace bufferdb::parallel


#include "parallel/agg_merge.h"

#include "storage/tuple.h"

namespace bufferdb::parallel {

namespace {

ExprPtr CloneOrNull(const ExprPtr& expr) {
  return expr != nullptr ? expr->Clone() : nullptr;
}

// Number of partial columns spec `func` expands to (layout contract shared
// between MakePartialAggSpecs and the merge operator).
size_t PartialWidth(AggFunc func) {
  return func == AggFunc::kAvg ? 2 : 1;
}

}  // namespace

std::vector<AggSpec> MakePartialAggSpecs(const std::vector<AggSpec>& specs) {
  std::vector<AggSpec> partial;
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggSpec& spec = specs[i];
    // Append-form (not `"p" + s + "_"`) to dodge gcc 12's -O3 -Wrestrict
    // false positive (PR105651).
    std::string prefix = "p";
    prefix += std::to_string(i);
    prefix += "_";
    switch (spec.func) {
      case AggFunc::kCountStar:
        partial.push_back(AggSpec{AggFunc::kCountStar, nullptr,
                                  prefix + "count"});
        break;
      case AggFunc::kCount:
        partial.push_back(AggSpec{AggFunc::kCount, CloneOrNull(spec.arg),
                                  prefix + "count"});
        break;
      case AggFunc::kSum:
        partial.push_back(AggSpec{AggFunc::kSum, CloneOrNull(spec.arg),
                                  prefix + "sum"});
        break;
      case AggFunc::kAvg:
        partial.push_back(AggSpec{AggFunc::kCount, CloneOrNull(spec.arg),
                                  prefix + "count"});
        partial.push_back(AggSpec{AggFunc::kSum, CloneOrNull(spec.arg),
                                  prefix + "sum"});
        break;
      case AggFunc::kMin:
        partial.push_back(AggSpec{AggFunc::kMin, CloneOrNull(spec.arg),
                                  prefix + "min"});
        break;
      case AggFunc::kMax:
        partial.push_back(AggSpec{AggFunc::kMax, CloneOrNull(spec.arg),
                                  prefix + "max"});
        break;
    }
  }
  return partial;
}

AggregateMergeOperator::AggregateMergeOperator(OperatorPtr child,
                                               std::vector<AggSpec> specs)
    : specs_(std::move(specs)) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
  std::vector<Column> cols;
  size_t col = 0;
  for (const AggSpec& spec : specs_) {
    AppendAggFuncs(spec.func, &hot_funcs_);
    first_col_.push_back(col);
    col += PartialWidth(spec.func);
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->result_type() : DataType::kInt64;
    cols.push_back(
        Column{spec.output_name, AggOutputType(spec.func, arg_type)});
  }
  output_schema_ = Schema(std::move(cols));
}

Status AggregateMergeOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  return child(0)->Open(ctx);
}

const uint8_t* AggregateMergeOperator::Next() {
  if (done_) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    return nullptr;
  }
  // Running merge state per final aggregate.
  struct MergeState {
    int64_t count = 0;
    int64_t int_sum = 0;
    double double_sum = 0;
    bool any = false;   // Saw at least one non-NULL partial value.
    Value extremum;
  };
  std::vector<MergeState> states(specs_.size());

  const Schema& in_schema = child(0)->output_schema();
  while (const uint8_t* row = child(0)->Next()) {
    ctx_->ExecModule(module_id(), hot_funcs_);
    TupleView view(row, &in_schema);
    for (size_t i = 0; i < specs_.size(); ++i) {
      MergeState& state = states[i];
      size_t col = first_col_[i];
      switch (specs_[i].func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          state.count += view.GetValue(col).int64_value();
          break;
        case AggFunc::kAvg:
          state.count += view.GetValue(col).int64_value();
          ++col;  // Fall through to merge the sum column.
          [[fallthrough]];
        case AggFunc::kSum: {
          Value v = view.GetValue(col);
          if (v.is_null()) break;
          state.any = true;
          if (v.type() == DataType::kDouble) {
            state.double_sum += v.double_value();
          } else {
            state.int_sum += v.int64_value();
            state.double_sum += static_cast<double>(v.int64_value());
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          Value v = view.GetValue(col);
          if (v.is_null()) break;
          if (!state.any ||
              (specs_[i].func == AggFunc::kMin
                   ? Value::Compare(v, state.extremum) < 0
                   : Value::Compare(v, state.extremum) > 0)) {
            state.extremum = v;
          }
          state.any = true;
          break;
        }
      }
    }
  }
  ctx_->ExecModule(module_id(), hot_funcs_);

  TupleBuilder builder(&output_schema_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const MergeState& state = states[i];
    DataType out_type = output_schema_.column(i).type;
    Value v;
    switch (specs_[i].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        v = Value::Int64(state.count);
        break;
      case AggFunc::kSum:
        v = !state.any ? Value::Null(out_type)
            : out_type == DataType::kDouble
                ? Value::Double(state.double_sum)
                : Value::Int64(state.int_sum);
        break;
      case AggFunc::kAvg:
        v = state.count == 0
                ? Value::Null(DataType::kDouble)
                : Value::Double(state.double_sum /
                                static_cast<double>(state.count));
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        v = state.any ? state.extremum : Value::Null(out_type);
        break;
    }
    builder.Set(i, v);
  }
  const uint8_t* out = builder.Finish(&ctx_->arena);
  ctx_->Touch(out, TupleView(out, &output_schema_).size_bytes());
  done_ = true;
  return out;
}

void AggregateMergeOperator::Close() { child(0)->Close(); }

std::string AggregateMergeOperator::label() const {
  std::string out = "AggMerge(";
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggFuncName(specs_[i].func);
    if (specs_[i].arg != nullptr) {
      // Append-form to dodge gcc 12's -O3 -Wrestrict false positive
      // (PR105651).
      out += "(";
      out += specs_[i].arg->ToString();
      out += ")";
    }
  }
  out += ")";
  return out;
}

}  // namespace bufferdb::parallel

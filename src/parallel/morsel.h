#pragma once

#include <atomic>
#include <cstddef>

namespace bufferdb::parallel {

/// Half-open row range [begin, end) of the driving table.
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
};

/// Lock-free work distributor for a partitioned scan: worker fragments pull
/// fixed-size row ranges ("morsels") off a shared atomic cursor until the
/// table is exhausted. Handing out ranges rather than pre-partitioning the
/// table keeps workers balanced when per-row cost varies (selective
/// predicates, skewed joins).
///
/// TryNext is safe to call from any number of threads concurrently; Reset
/// must only be called while no worker is pulling (the ExchangeOperator
/// resets the cursor in Open, before it launches workers).
class MorselCursor {
 public:
  /// Large enough to amortize the atomic per morsel and give each worker a
  /// cache-friendly sequential run; small enough that a table of a few
  /// hundred thousand rows still splits across 8 workers.
  static constexpr size_t kDefaultMorselRows = 4096;

  explicit MorselCursor(size_t total_rows,
                        size_t morsel_rows = kDefaultMorselRows)
      : total_rows_(total_rows),
        morsel_rows_(morsel_rows == 0 ? kDefaultMorselRows : morsel_rows) {}

  MorselCursor(const MorselCursor&) = delete;
  MorselCursor& operator=(const MorselCursor&) = delete;

  /// Claims the next morsel. Returns false when the table is exhausted.
  bool TryNext(Morsel* morsel) {
    size_t begin = next_.fetch_add(morsel_rows_, std::memory_order_relaxed);
    if (begin >= total_rows_) return false;
    morsel->begin = begin;
    morsel->end = begin + morsel_rows_ < total_rows_ ? begin + morsel_rows_
                                                     : total_rows_;
    return true;
  }

  /// Rewinds to the first row (single-threaded; see class comment).
  void Reset() { next_.store(0, std::memory_order_relaxed); }

  size_t total_rows() const { return total_rows_; }
  size_t morsel_rows() const { return morsel_rows_; }

 private:
  std::atomic<size_t> next_{0};
  size_t total_rows_;
  size_t morsel_rows_;
};

}  // namespace bufferdb::parallel


#include "parallel/exchange.h"

#include <cstring>

namespace bufferdb::parallel {

ExchangeOperator::ExchangeOperator(std::vector<OperatorPtr> fragments,
                                   std::unique_ptr<MorselCursor> cursor,
                                   ThreadPool* pool, size_t batch_rows,
                                   size_t queue_batches)
    : cursor_(std::move(cursor)),
      pool_(pool != nullptr ? pool : &ThreadPool::Global()),
      batch_rows_(batch_rows == 0 ? kDefaultBatchRows : batch_rows),
      queue_batches_(queue_batches == 0 ? kDefaultQueueBatches
                                        : queue_batches) {
  for (OperatorPtr& fragment : fragments) AddChild(std::move(fragment));
  InitHotFuncs(sim::ModuleId::kBuffer);
  // Group boundary for the plan refiner: buffers go *inside* the fragments
  // (per worker), never above the Exchange or merged with its parents.
  set_excluded_from_buffering(true);
}

ExchangeOperator::~ExchangeOperator() {
  if (queue_ != nullptr) queue_->Cancel();
  JoinWorkers();
}

void ExchangeOperator::EnableFragmentSimulation(const sim::SimConfig& config) {
  simulate_fragments_ = true;
  fragment_sim_config_ = config;
}

Status ExchangeOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  if (queue_ != nullptr) queue_->Cancel();
  JoinWorkers();
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error_ = Status::OK();
  }

  // Fresh per-fragment contexts; the previous run's arenas are released
  // here, not in Close (drained row pointers stay valid until re-Open).
  fragment_ctxs_.clear();
  fragment_cpus_.clear();
  current_.clear();
  current_pos_ = 0;
  if (cursor_ != nullptr) cursor_->Reset();
  queue_ = std::make_unique<TupleQueue>(queue_batches_);

  size_t n = num_children();
  for (size_t i = 0; i < n; ++i) {
    auto fctx = std::make_unique<ExecContext>();
    if (simulate_fragments_) {
      fragment_cpus_.push_back(
          std::make_unique<sim::SimCpu>(fragment_sim_config_));
      fctx->cpu = fragment_cpus_.back().get();
    }
    fragment_ctxs_.push_back(std::move(fctx));
  }
  // Register every producer before the first task runs, so the consumer
  // cannot observe producers_ == 0 while workers are still being launched.
  for (size_t i = 0; i < n; ++i) queue_->AddProducer();
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(pool_->Submit([this, i] { RunFragment(i); }));
  }
  return Status::OK();
}

void ExchangeOperator::RunFragment(size_t index) {
  TupleQueue* queue = queue_.get();
  Operator* fragment = child(index);
  bool opened = false;
  try {
    Status st = fragment->Open(fragment_ctxs_[index].get());
    if (!st.ok()) {
      RecordError(std::move(st));
    } else {
      opened = true;
      bool draining = true;
      while (draining) {
        TupleQueue::Batch batch;
        batch.reserve(batch_rows_);
        while (batch.size() < batch_rows_) {
          const uint8_t* row = fragment->Next();
          if (row == nullptr) {
            draining = false;
            break;
          }
          batch.push_back(row);
        }
        if (batch.empty()) break;
        if (!queue->Push(std::move(batch))) break;  // Consumer went away.
      }
    }
  } catch (const std::exception& e) {
    RecordError(Status::Internal(std::string("worker fragment threw: ") +
                                 e.what()));
  } catch (...) {
    RecordError(Status::Internal("worker fragment threw"));
  }
  if (opened) {
    try {
      fragment->Close();
    } catch (...) {
      RecordError(Status::Internal("worker fragment Close threw"));
    }
  }
  queue->ProducerDone();
}

const uint8_t* ExchangeOperator::Next() {
  while (current_pos_ >= current_.size()) {
    current_.clear();
    current_pos_ = 0;
    if (queue_ == nullptr || !queue_->Pop(&current_)) {
      ctx_->ExecModule(module_id(), hot_funcs_);  // End-of-stream bookkeeping.
      return nullptr;
    }
    // One merge-module execution per batch: the consumer-side cost of the
    // Exchange is amortized across the batch, like a buffer refill.
    ctx_->ExecModule(module_id(), hot_funcs_);
  }
  return current_[current_pos_++];
}

size_t ExchangeOperator::NextBatch(const uint8_t** out, size_t max) {
  while (current_pos_ >= current_.size()) {
    current_.clear();
    current_pos_ = 0;
    if (queue_ == nullptr || !queue_->Pop(&current_)) {
      ctx_->ExecModule(module_id(), hot_funcs_);  // End-of-stream bookkeeping.
      return 0;
    }
    ctx_->ExecModule(module_id(), hot_funcs_);  // One merge per popped batch.
  }
  size_t n = current_.size() - current_pos_;
  if (n > max) n = max;
  std::memcpy(out, current_.data() + current_pos_, n * sizeof(const uint8_t*));
  current_pos_ += n;
  return n;
}

void ExchangeOperator::Close() {
  if (queue_ != nullptr) queue_->Cancel();
  JoinWorkers();
  current_.clear();
  current_pos_ = 0;
}

Status ExchangeOperator::error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

void ExchangeOperator::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (error_.ok()) error_ = std::move(status);
}

void ExchangeOperator::JoinWorkers() {
  for (std::future<void>& worker : workers_) {
    if (worker.valid()) worker.wait();
  }
  workers_.clear();
}

std::string ExchangeOperator::label() const {
  std::string out = "Exchange(degree=" + std::to_string(num_children());
  if (cursor_ != nullptr) {
    // Append-form to dodge gcc 12's -O3 -Wrestrict false positive
    // (PR105651).
    out += ", morsel=";
    out += std::to_string(cursor_->morsel_rows());
  }
  out += ")";
  return out;
}

}  // namespace bufferdb::parallel

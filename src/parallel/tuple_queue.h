#pragma once

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace bufferdb::parallel {

/// Bounded multi-producer queue of tuple-pointer batches — the merge side
/// of an ExchangeOperator.
///
/// Rows travel as batches (vectors of row pointers) so producers take the
/// lock once per batch, not once per tuple; this is the same
/// "amortize per-tuple overhead" argument the paper makes for the buffer
/// operator, applied to the thread boundary. The bound provides
/// back-pressure: workers stall instead of materializing an unbounded
/// result when the consumer is slow.
///
/// ## Shutdown protocol
///
/// Every transition is defined under arbitrary producer/consumer
/// concurrency; all entry points may race freely (tuple_queue_test hammers
/// every pairing under TSan):
///
///   - `ProducerDone()`  normal end: each registered producer calls it
///     exactly once; after the last one, Pop() drains the queue and then
///     returns false.
///   - `Close()`         graceful stop: new Push() calls are rejected
///     (return false) and blocked pushers wake and return false, but
///     batches already queued stay poppable — nothing delivered is lost.
///   - `Cancel()`        abandon: like Close(), and additionally drops all
///     queued batches so Pop() fails immediately — used when the consumer
///     walks away from the query and row pointers are about to die with
///     its arena.
///
/// A Push() racing any of the three either fully delivers its batch (a
/// later Pop can observe it, unless a Cancel drops it) or returns false
/// having delivered nothing; there is no partial/limbo state.
class TupleQueue {
 public:
  using Batch = std::vector<const uint8_t*>;

  explicit TupleQueue(size_t max_batches) : max_batches_(max_batches) {}

  TupleQueue(const TupleQueue&) = delete;
  TupleQueue& operator=(const TupleQueue&) = delete;

  /// Registers a producer; every producer must eventually call
  /// ProducerDone exactly once. Must not race the last ProducerDone (the
  /// Exchange registers all producers before submitting any worker).
  void AddProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_;
  }

  void ProducerDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      assert(producers_ > 0 && "ProducerDone without matching AddProducer");
      --producers_;
    }
    not_empty_.notify_all();
  }

  /// Blocks while the queue is full and accepting. Returns false if the
  /// queue was closed or cancelled — the batch was NOT enqueued and the
  /// producer should stop; true means the batch is visible to Pop().
  bool Push(Batch batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || queue_.size() < max_batches_;
    });
    if (closed_) return false;
    queue_.push_back(std::move(batch));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a batch is available or the stream ended. Returns false
  /// when exhausted: the queue is empty and no producer can still fill it
  /// (every producer done, or pushes are being rejected after
  /// Close()/Cancel()).
  bool Pop(Batch* batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] {
      return !queue_.empty() || producers_ == 0 || closed_;
    });
    if (queue_.empty()) return false;
    *batch = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Graceful stop: rejects future (and wakes blocked) pushes, keeps
  /// already-queued batches poppable. Idempotent; may race Cancel().
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Abandon: Close() plus dropping every queued batch, so consumers fail
  /// fast and row pointers owned by a dying arena are never handed out.
  /// Idempotent.
  void Cancel() {
    std::deque<Batch> discarded;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      // Swap under the lock, destroy after unlock: batch destructors can
      // be arbitrarily expensive and nothing blocked needs to wait on them.
      discarded.swap(queue_);
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t max_batches() const { return max_batches_; }

  /// True once Close() or Cancel() was called (pushes are being rejected).
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t max_batches_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Batch> queue_;
  size_t producers_ = 0;
  bool closed_ = false;
};

}  // namespace bufferdb::parallel

#ifndef BUFFERDB_PARALLEL_TUPLE_QUEUE_H_
#define BUFFERDB_PARALLEL_TUPLE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace bufferdb::parallel {

/// Bounded multi-producer single-consumer queue of tuple-pointer batches —
/// the merge side of an ExchangeOperator.
///
/// Rows travel as batches (vectors of row pointers) so producers take the
/// lock once per batch, not once per tuple; this is the same
/// "amortize per-tuple overhead" argument the paper makes for the buffer
/// operator, applied to the thread boundary. The bound provides
/// back-pressure: workers stall instead of materializing an unbounded
/// result when the consumer is slow.
class TupleQueue {
 public:
  using Batch = std::vector<const uint8_t*>;

  explicit TupleQueue(size_t max_batches) : max_batches_(max_batches) {}

  TupleQueue(const TupleQueue&) = delete;
  TupleQueue& operator=(const TupleQueue&) = delete;

  /// Registers a producer; every producer must eventually call
  /// ProducerDone exactly once.
  void AddProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_;
  }

  void ProducerDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --producers_;
    }
    not_empty_.notify_all();
  }

  /// Blocks while the queue is full. Returns false if the queue was
  /// cancelled (consumer abandoned the query) — the producer should stop.
  bool Push(Batch batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return cancelled_ || queue_.size() < max_batches_;
    });
    if (cancelled_) return false;
    queue_.push_back(std::move(batch));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a batch is available or every producer is done. Returns
  /// false when the stream is exhausted (or cancelled).
  bool Pop(Batch* batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] {
      return cancelled_ || !queue_.empty() || producers_ == 0;
    });
    if (cancelled_ || queue_.empty()) return false;
    *batch = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Unblocks every producer and consumer; subsequent pushes/pops fail.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t max_batches() const { return max_batches_; }

 private:
  const size_t max_batches_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Batch> queue_;
  size_t producers_ = 0;
  bool cancelled_ = false;
};

}  // namespace bufferdb::parallel

#endif  // BUFFERDB_PARALLEL_TUPLE_QUEUE_H_

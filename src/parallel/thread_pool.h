#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bufferdb::parallel {

/// Fixed-size worker pool shared by every ExchangeOperator in the process
/// (morsel-driven scheduling wants one pool sized to the hardware, not one
/// thread spawn per query; see "Morsel-Driven Parallelism", Leis et al.).
///
/// Tasks are arbitrary callables; exceptions thrown by a task are captured
/// in the future returned by Submit. The destructor drains nothing: queued
/// tasks that have not started are still executed before the threads join,
/// so submitted work is never silently dropped.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future that resolves when it finishes (or
  /// rethrows the exception it raised).
  std::future<void> Submit(std::function<void()> fn);

  size_t num_threads() const { return threads_.size(); }
  /// Tasks submitted over the pool's lifetime.
  uint64_t tasks_run() const;

  /// Process-wide pool sized to the hardware, created on first use. Query
  /// execution defaults to this instance so concurrent queries share one
  /// set of workers.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  uint64_t tasks_run_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace bufferdb::parallel


#include "parallel/thread_pool.h"

#include <algorithm>

namespace bufferdb::parallel {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

uint64_t ThreadPool::tasks_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_run_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++tasks_run_;
    }
    task();  // Exceptions land in the task's future.
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace bufferdb::parallel

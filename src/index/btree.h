#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bufferdb {

/// In-memory B+-tree mapping int64 keys to row pointers. Duplicate keys are
/// allowed (stored in insertion order among equal keys is not guaranteed).
/// Leaves are linked for range scans; Seek() can report the node path it
/// touched so the executor can charge the accesses to the CPU simulator.
class BTree {
 public:
  static constexpr int kFanout = 64;  // Max children / leaf entries.

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void Insert(int64_t key, const uint8_t* row);

  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    int64_t key() const;
    const uint8_t* row() const;
    /// Address of the current leaf node (for data-cache simulation).
    const void* node_address() const { return leaf_; }
    void Next();

   private:
    friend class BTree;
    const void* leaf_ = nullptr;
    int pos_ = 0;
  };

  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Iterator at the first entry with key >= `key`. If `touched_nodes` is
  /// non-null, the addresses of all nodes visited during the descent are
  /// appended (root to leaf).
  Iterator Seek(int64_t key,
                std::vector<const void*>* touched_nodes = nullptr) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

 private:
  struct Node;
  struct Leaf;
  struct Internal;

  void SplitChild(Internal* parent, int index);
  void FreeNode(Node* node);

  Node* root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace bufferdb


#include "index/btree.h"

#include <cassert>
#include <cstring>

namespace bufferdb {

struct BTree::Node {
  bool is_leaf;
  int count = 0;  // Leaf: entries. Internal: children.
};

struct BTree::Leaf : BTree::Node {
  Leaf() { is_leaf = true; }
  int64_t keys[kFanout];
  const uint8_t* rows[kFanout];
  Leaf* next = nullptr;
};

struct BTree::Internal : BTree::Node {
  Internal() { is_leaf = false; }
  // keys[i] separates children[i] (keys < keys[i]... approximately; equal
  // keys may straddle, which Seek compensates for by scanning forward) from
  // children[i+1]. count = number of children; count-1 separators.
  int64_t keys[kFanout];
  Node* children[kFanout + 1];
};

BTree::BTree() { root_ = new Leaf(); }

BTree::~BTree() { FreeNode(root_); }

void BTree::FreeNode(Node* node) {
  if (!node->is_leaf) {
    Internal* in = static_cast<Internal*>(node);
    for (int i = 0; i < in->count; ++i) FreeNode(in->children[i]);
    delete in;
  } else {
    delete static_cast<Leaf*>(node);
  }
}

void BTree::SplitChild(Internal* parent, int index) {
  Node* child = parent->children[index];
  int64_t separator;
  Node* right;
  if (child->is_leaf) {
    Leaf* left = static_cast<Leaf*>(child);
    Leaf* new_leaf = new Leaf();
    int half = left->count / 2;
    new_leaf->count = left->count - half;
    std::memcpy(new_leaf->keys, left->keys + half,
                sizeof(int64_t) * new_leaf->count);
    std::memcpy(new_leaf->rows, left->rows + half,
                sizeof(const uint8_t*) * new_leaf->count);
    new_leaf->next = left->next;
    left->next = new_leaf;
    left->count = half;
    separator = new_leaf->keys[0];
    right = new_leaf;
  } else {
    Internal* left = static_cast<Internal*>(child);
    Internal* new_internal = new Internal();
    int half = left->count / 2;  // children going to the left node
    separator = left->keys[half - 1];
    new_internal->count = left->count - half;
    std::memcpy(new_internal->children, left->children + half,
                sizeof(Node*) * new_internal->count);
    std::memcpy(new_internal->keys, left->keys + half,
                sizeof(int64_t) * (new_internal->count - 1));
    left->count = half;
    right = new_internal;
  }
  // Shift parent entries to make room at `index`.
  for (int i = parent->count; i > index + 1; --i) {
    parent->children[i] = parent->children[i - 1];
  }
  for (int i = parent->count - 1; i > index; --i) {
    parent->keys[i] = parent->keys[i - 1];
  }
  parent->children[index + 1] = right;
  parent->keys[index] = separator;
  ++parent->count;
}

void BTree::Insert(int64_t key, const uint8_t* row) {
  if (root_->count == kFanout) {
    Internal* new_root = new Internal();
    new_root->count = 1;
    new_root->children[0] = root_;
    SplitChild(new_root, 0);
    root_ = new_root;
    ++height_;
  }
  Node* node = root_;
  while (!node->is_leaf) {
    Internal* in = static_cast<Internal*>(node);
    // Rightmost child whose range may contain `key` (duplicates go right).
    int idx = 0;
    while (idx < in->count - 1 && key >= in->keys[idx]) ++idx;
    if (in->children[idx]->count == kFanout) {
      SplitChild(in, idx);
      if (key >= in->keys[idx]) ++idx;
    }
    node = in->children[idx];
  }
  Leaf* leaf = static_cast<Leaf*>(node);
  int pos = leaf->count;
  while (pos > 0 && leaf->keys[pos - 1] > key) {
    leaf->keys[pos] = leaf->keys[pos - 1];
    leaf->rows[pos] = leaf->rows[pos - 1];
    --pos;
  }
  leaf->keys[pos] = key;
  leaf->rows[pos] = row;
  ++leaf->count;
  ++size_;
}

int64_t BTree::Iterator::key() const {
  const Leaf* leaf = static_cast<const Leaf*>(leaf_);
  return leaf->keys[pos_];
}

const uint8_t* BTree::Iterator::row() const {
  const Leaf* leaf = static_cast<const Leaf*>(leaf_);
  return leaf->rows[pos_];
}

void BTree::Iterator::Next() {
  const Leaf* leaf = static_cast<const Leaf*>(leaf_);
  ++pos_;
  if (pos_ >= leaf->count) {
    leaf_ = leaf->next;
    pos_ = 0;
    // Skip empty leaves (possible only for a never-inserted root).
    while (leaf_ != nullptr && static_cast<const Leaf*>(leaf_)->count == 0) {
      leaf_ = static_cast<const Leaf*>(leaf_)->next;
    }
  }
}

BTree::Iterator BTree::Begin() const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children[0];
  }
  Iterator it;
  const Leaf* leaf = static_cast<const Leaf*>(node);
  it.leaf_ = leaf->count > 0 ? leaf : nullptr;
  it.pos_ = 0;
  return it;
}

BTree::Iterator BTree::Seek(int64_t key,
                            std::vector<const void*>* touched_nodes) const {
  const Node* node = root_;
  if (touched_nodes != nullptr) touched_nodes->push_back(node);
  while (!node->is_leaf) {
    const Internal* in = static_cast<const Internal*>(node);
    // Leftmost child that could contain the first occurrence of `key`.
    int idx = 0;
    while (idx < in->count - 1 && key > in->keys[idx]) ++idx;
    node = in->children[idx];
    if (touched_nodes != nullptr) touched_nodes->push_back(node);
  }
  Iterator it;
  const Leaf* leaf = static_cast<const Leaf*>(node);
  it.leaf_ = leaf->count > 0 ? leaf : nullptr;
  it.pos_ = 0;
  // Position at the first entry >= key (may cross leaf boundaries because
  // equal keys can straddle a separator).
  while (it.Valid() && it.key() < key) it.Next();
  return it;
}

}  // namespace bufferdb

#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/arena.h"

namespace bufferdb {

/// Non-owning accessor over a packed row (layout described in
/// catalog/schema.h). Operators pass rows around as `const uint8_t*`; a
/// TupleView pairs a row pointer with its schema for typed access.
class TupleView {
 public:
  TupleView(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  const uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }

  uint32_t size_bytes() const {
    uint32_t n;
    std::memcpy(&n, data_, 4);
    return n;
  }

  bool IsNull(size_t col) const {
    uint64_t bitmap;
    std::memcpy(&bitmap, data_ + 8, 8);
    return (bitmap >> col) & 1u;
  }

  int64_t GetInt64(size_t col) const {
    int64_t v;
    std::memcpy(&v, SlotPtr(col), 8);
    return v;
  }

  double GetDouble(size_t col) const {
    double v;
    std::memcpy(&v, SlotPtr(col), 8);
    return v;
  }

  bool GetBool(size_t col) const { return GetInt64(col) != 0; }
  int64_t GetDate(size_t col) const { return GetInt64(col); }

  std::string_view GetString(size_t col) const {
    uint64_t slot;
    std::memcpy(&slot, SlotPtr(col), 8);
    uint32_t offset = static_cast<uint32_t>(slot >> 32);
    uint32_t length = static_cast<uint32_t>(slot & 0xffffffffu);
    return std::string_view(reinterpret_cast<const char*>(data_ + offset),
                            length);
  }

  /// Boxed accessor (slower; used at API boundaries and in tests).
  Value GetValue(size_t col) const;

  std::string ToString() const;

 private:
  const uint8_t* SlotPtr(size_t col) const {
    return data_ + Schema::kHeaderBytes + 8 * col;
  }

  const uint8_t* data_;
  const Schema* schema_;
};

/// Builds packed rows into an arena. Reusable: Reset() between rows.
class TupleBuilder {
 public:
  explicit TupleBuilder(const Schema* schema)
      : schema_(schema), values_(schema->num_columns()) {}

  void Reset() {
    for (Value& v : values_) v = Value();
  }

  void Set(size_t col, Value v) { values_[col] = std::move(v); }
  void SetInt64(size_t col, int64_t v) { values_[col] = Value::Int64(v); }
  void SetDouble(size_t col, double v) { values_[col] = Value::Double(v); }
  void SetBool(size_t col, bool v) { values_[col] = Value::Bool(v); }
  void SetDate(size_t col, int64_t days) { values_[col] = Value::Date(days); }
  void SetString(size_t col, std::string s) {
    values_[col] = Value::String(std::move(s));
  }
  void SetNull(size_t col) {
    values_[col] = Value::Null(schema_->column(col).type);
  }

  /// Serializes the staged values into `arena` and returns the row pointer.
  const uint8_t* Finish(Arena* arena) const;

  /// Serializes the concatenation of two existing rows (join output) without
  /// going through boxed values. `left`/`right` follow `left_schema`/
  /// `right_schema`; the builder's schema must be their concatenation.
  static const uint8_t* ConcatRows(const Schema& out_schema,
                                   const Schema& left_schema,
                                   const uint8_t* left,
                                   const Schema& right_schema,
                                   const uint8_t* right, Arena* arena);

 private:
  const Schema* schema_;
  std::vector<Value> values_;
};

}  // namespace bufferdb


#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "expr/dict_view.h"

namespace bufferdb {

class Table;

/// Rows per zone-map block. Matches the default morsel size so a morsel
/// never straddles more blocks than necessary.
constexpr size_t kZoneBlockRows = 4096;

/// Per-block min/max/null statistics for zone-map pruning (DESIGN.md §12).
/// For string columns min/max live in dictionary-code space; the dictionary
/// is sorted, so code order is string order and the same pruning rules
/// apply.
struct ZoneMap {
  size_t row_begin = 0;
  size_t rows = 0;
  uint64_t null_count = 0;
  bool has_nan = false;  // kDouble only: block holds a NaN, min/max unusable.
  int64_t min_i64 = 0;   // kBool/kInt64/kDate/kString(code).
  int64_t max_i64 = 0;
  double min_f64 = 0;  // kDouble.
  double max_f64 = 0;
};

/// One column of a ColumnarTable: a contiguous typed array plus a byte-per-
/// row null vector, with per-block zone maps. Exactly one payload array is
/// populated, selected by `type`:
///   kInt64/kDate  -> i64 (value, NULL rows store 0)
///   kBool         -> i64 (normalized 0/1, NULL rows store 0)
///   kDouble       -> f64 (NULL rows store 0.0)
///   kString       -> codes (int32 index into `dict`, NULL rows store 0)
/// The zero-payload-under-NULL normalization matches the ColumnVector
/// invariant (expr/vector.h), which is what makes zero-copy aliasing of
/// these arrays into the vectorized engine legal.
struct ColumnSegment {
  DataType type = DataType::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<int32_t> codes;
  std::vector<uint8_t> nulls;     // 1 = NULL, byte per row.
  std::vector<std::string> dict;  // kString: sorted unique non-NULL values.
  std::vector<ZoneMap> zones;
};

/// Operator a zone-map conjunct applies; mirrors the comparison subset of
/// BinaryOp without making storage depend on expression headers.
enum class ZoneOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One `col <op> literal` conjunct usable for block pruning. The literal is
/// pre-translated into the column's storage domain (dictionary-code space
/// for strings) by the extractor in exec/column_scan.cc.
struct ZoneConjunct {
  int col = 0;
  ZoneOp op = ZoneOp::kEq;
  bool is_f64 = false;
  int64_t i64 = 0;
  double f64 = 0;
  // Equality literal absent from the dictionary: no stored row can match,
  // every block is prunable regardless of its zone map.
  bool always_false = false;
};

/// True when block `z` of `seg` may contain a row satisfying `c`; false
/// means the whole block is safely skippable. Conservative: any uncertainty
/// (NaN in a double block) returns true.
bool BlockMayMatch(const ZoneMap& z, const ColumnSegment& seg,
                   const ZoneConjunct& c);

/// Columnar image of a packed-row Table: per-column typed segments built at
/// load time, row-aligned with the table's row vector (segment index i holds
/// the decode of table.row(i)). The row store stays authoritative — the
/// batch currency of the engine is still packed-row pointers — the columnar
/// image exists so ColumnScan can publish SoA vectors by aliasing these
/// arrays instead of re-decoding rows.
class ColumnarTable : public DictView {
 public:
  /// Decodes every row of `table` into typed segments, builds sorted
  /// dictionaries for string columns and zone maps for every column.
  static std::unique_ptr<ColumnarTable> Build(const Table& table);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return segments_.size(); }
  const ColumnSegment& segment(size_t col) const { return segments_[col]; }

  // DictView implementation (string predicate compilation on codes).
  bool HasDict(int col) const override;
  int64_t CodeOf(int col, std::string_view s) const override;
  bool PrefixRange(int col, std::string_view prefix, int64_t* lo,
                   int64_t* hi) const override;
  int64_t LowerBound(int col, std::string_view s) const override;
  int64_t UpperBound(int col, std::string_view s) const override;

 private:
  ColumnarTable() = default;

  size_t num_rows_ = 0;
  std::vector<ColumnSegment> segments_;
};

}  // namespace bufferdb

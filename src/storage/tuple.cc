#include "storage/tuple.h"

#include <cassert>

namespace bufferdb {

Value TupleView::GetValue(size_t col) const {
  if (IsNull(col)) return Value::Null(schema_->column(col).type);
  switch (schema_->column(col).type) {
    case DataType::kBool:
      return Value::Bool(GetBool(col));
    case DataType::kInt64:
      return Value::Int64(GetInt64(col));
    case DataType::kDouble:
      return Value::Double(GetDouble(col));
    case DataType::kDate:
      return Value::Date(GetDate(col));
    case DataType::kString:
      return Value::String(std::string(GetString(col)));
  }
  return Value();
}

std::string TupleView::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < schema_->num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += GetValue(i).ToString();
  }
  out += "]";
  return out;
}

const uint8_t* TupleBuilder::Finish(Arena* arena) const {
  size_t fixed = schema_->fixed_bytes();
  size_t var_bytes = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (schema_->column(i).type == DataType::kString && !values_[i].is_null()) {
      var_bytes += values_[i].string_value().size();
    }
  }
  size_t total = fixed + var_bytes;
  assert(total <= UINT32_MAX);
  uint8_t* row = arena->Allocate(total);

  uint32_t total32 = static_cast<uint32_t>(total);
  std::memcpy(row, &total32, 4);
  uint64_t bitmap = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) bitmap |= (uint64_t{1} << i);
  }
  std::memcpy(row + 8, &bitmap, 8);

  uint32_t var_offset = static_cast<uint32_t>(fixed);
  for (size_t i = 0; i < values_.size(); ++i) {
    uint8_t* slot = row + Schema::kHeaderBytes + 8 * i;
    const Value& v = values_[i];
    if (v.is_null()) {
      std::memset(slot, 0, 8);
      continue;
    }
    switch (schema_->column(i).type) {
      case DataType::kBool:
      case DataType::kInt64:
      case DataType::kDate: {
        int64_t x = v.int64_value();
        std::memcpy(slot, &x, 8);
        break;
      }
      case DataType::kDouble: {
        double x = v.type() == DataType::kDouble
                       ? v.double_value()
                       : v.AsDouble();  // Allow int-typed values.
        std::memcpy(slot, &x, 8);
        break;
      }
      case DataType::kString: {
        const std::string& s = v.string_value();
        uint64_t packed = (static_cast<uint64_t>(var_offset) << 32) |
                          static_cast<uint32_t>(s.size());
        std::memcpy(slot, &packed, 8);
        std::memcpy(row + var_offset, s.data(), s.size());
        var_offset += static_cast<uint32_t>(s.size());
        break;
      }
    }
  }
  return row;
}

const uint8_t* TupleBuilder::ConcatRows(const Schema& out_schema,
                                        const Schema& left_schema,
                                        const uint8_t* left,
                                        const Schema& right_schema,
                                        const uint8_t* right, Arena* arena) {
  TupleView lv(left, &left_schema);
  TupleView rv(right, &right_schema);
  size_t ln = left_schema.num_columns();
  size_t rn = right_schema.num_columns();

  size_t fixed = out_schema.fixed_bytes();
  size_t var_bytes = 0;
  for (size_t i = 0; i < ln; ++i) {
    if (left_schema.column(i).type == DataType::kString && !lv.IsNull(i)) {
      var_bytes += lv.GetString(i).size();
    }
  }
  for (size_t i = 0; i < rn; ++i) {
    if (right_schema.column(i).type == DataType::kString && !rv.IsNull(i)) {
      var_bytes += rv.GetString(i).size();
    }
  }
  size_t total = fixed + var_bytes;
  uint8_t* row = arena->Allocate(total);
  uint32_t total32 = static_cast<uint32_t>(total);
  std::memcpy(row, &total32, 4);

  uint64_t bitmap = 0;
  uint32_t var_offset = static_cast<uint32_t>(fixed);
  for (size_t out = 0; out < ln + rn; ++out) {
    bool from_left = out < ln;
    const TupleView& src = from_left ? lv : rv;
    const Schema& src_schema = from_left ? left_schema : right_schema;
    size_t src_col = from_left ? out : out - ln;
    uint8_t* slot = row + Schema::kHeaderBytes + 8 * out;
    if (src.IsNull(src_col)) {
      bitmap |= (uint64_t{1} << out);
      std::memset(slot, 0, 8);
      continue;
    }
    if (src_schema.column(src_col).type == DataType::kString) {
      std::string_view s = src.GetString(src_col);
      uint64_t packed = (static_cast<uint64_t>(var_offset) << 32) |
                        static_cast<uint32_t>(s.size());
      std::memcpy(slot, &packed, 8);
      std::memcpy(row + var_offset, s.data(), s.size());
      var_offset += static_cast<uint32_t>(s.size());
    } else {
      int64_t raw = src.GetInt64(src_col);  // Bit-copy works for all fixed.
      std::memcpy(slot, &raw, 8);
    }
  }
  std::memcpy(row + 8, &bitmap, 8);
  return row;
}

}  // namespace bufferdb

#include "storage/column_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "storage/table.h"
#include "storage/tuple.h"

namespace bufferdb {

namespace {

/// Zone maps for one segment: one ZoneMap per kZoneBlockRows rows.
void BuildZones(ColumnSegment* seg, size_t num_rows) {
  seg->zones.clear();
  for (size_t begin = 0; begin < num_rows; begin += kZoneBlockRows) {
    ZoneMap z;
    z.row_begin = begin;
    z.rows = std::min(kZoneBlockRows, num_rows - begin);
    bool seen = false;
    for (size_t i = begin; i < begin + z.rows; ++i) {
      if (seg->nulls[i]) {
        ++z.null_count;
        continue;
      }
      if (seg->type == DataType::kDouble) {
        double v = seg->f64[i];
        if (std::isnan(v)) {
          z.has_nan = true;
          continue;
        }
        if (!seen || v < z.min_f64) z.min_f64 = v;
        if (!seen || v > z.max_f64) z.max_f64 = v;
      } else {
        int64_t v = seg->type == DataType::kString
                        ? static_cast<int64_t>(seg->codes[i])
                        : seg->i64[i];
        if (!seen || v < z.min_i64) z.min_i64 = v;
        if (!seen || v > z.max_i64) z.max_i64 = v;
      }
      seen = true;
    }
    seg->zones.push_back(z);
  }
}

}  // namespace

bool BlockMayMatch(const ZoneMap& z, const ColumnSegment& seg,
                   const ZoneConjunct& c) {
  if (c.always_false) return false;
  // A comparison against NULL is NULL, which a filter rejects: a block of
  // nothing but NULLs cannot produce a row through any comparison conjunct.
  if (z.null_count >= z.rows) return false;
  if (seg.type == DataType::kDouble) {
    if (!c.is_f64) return true;  // Mixed-domain conjunct: never prune.
    // This engine's Value::Compare orders doubles with `<`/`>`, so a NaN
    // compares "equal" to everything; min/max cannot bound such lanes.
    if (z.has_nan || std::isnan(c.f64)) return true;
    switch (c.op) {
      case ZoneOp::kEq: return c.f64 >= z.min_f64 && c.f64 <= z.max_f64;
      case ZoneOp::kNe: return !(z.min_f64 == z.max_f64 && z.min_f64 == c.f64);
      case ZoneOp::kLt: return z.min_f64 < c.f64;
      case ZoneOp::kLe: return z.min_f64 <= c.f64;
      case ZoneOp::kGt: return z.max_f64 > c.f64;
      case ZoneOp::kGe: return z.max_f64 >= c.f64;
    }
    return true;
  }
  if (c.is_f64) return true;
  switch (c.op) {
    case ZoneOp::kEq: return c.i64 >= z.min_i64 && c.i64 <= z.max_i64;
    case ZoneOp::kNe: return !(z.min_i64 == z.max_i64 && z.min_i64 == c.i64);
    case ZoneOp::kLt: return z.min_i64 < c.i64;
    case ZoneOp::kLe: return z.min_i64 <= c.i64;
    case ZoneOp::kGt: return z.max_i64 > c.i64;
    case ZoneOp::kGe: return z.max_i64 >= c.i64;
  }
  return true;
}

std::unique_ptr<ColumnarTable> ColumnarTable::Build(const Table& table) {
  auto ct = std::unique_ptr<ColumnarTable>(new ColumnarTable());
  const Schema& schema = table.schema();
  const size_t num_rows = table.num_rows();
  ct->num_rows_ = num_rows;
  ct->segments_.resize(schema.num_columns());

  for (size_t col = 0; col < schema.num_columns(); ++col) {
    ColumnSegment& seg = ct->segments_[col];
    seg.type = schema.column(col).type;
    seg.nulls.assign(num_rows, 0);

    switch (seg.type) {
      case DataType::kDouble: {
        seg.f64.assign(num_rows, 0.0);
        for (size_t i = 0; i < num_rows; ++i) {
          TupleView row = table.view(i);
          if (row.IsNull(col)) {
            seg.nulls[i] = 1;
          } else {
            seg.f64[i] = row.GetDouble(col);
          }
        }
        break;
      }
      case DataType::kString: {
        // Pass 1: the sorted dictionary of distinct non-NULL values.
        // string_views into the table's arena stay valid for the whole
        // build, so sorting views avoids copying every row's string twice.
        std::vector<std::string_view> values(num_rows);
        std::vector<std::string_view> distinct;
        distinct.reserve(num_rows);
        for (size_t i = 0; i < num_rows; ++i) {
          TupleView row = table.view(i);
          if (row.IsNull(col)) {
            seg.nulls[i] = 1;
          } else {
            values[i] = row.GetString(col);
            distinct.push_back(values[i]);
          }
        }
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        seg.dict.assign(distinct.begin(), distinct.end());
        // Pass 2: per-row codes. NULL rows keep code 0 (zero payload under
        // NULL, the ColumnVector invariant).
        seg.codes.assign(num_rows, 0);
        for (size_t i = 0; i < num_rows; ++i) {
          if (seg.nulls[i]) continue;
          auto it =
              std::lower_bound(distinct.begin(), distinct.end(), values[i]);
          seg.codes[i] = static_cast<int32_t>(it - distinct.begin());
        }
        break;
      }
      default: {  // kBool / kInt64 / kDate: one inline int64 payload.
        seg.i64.assign(num_rows, 0);
        for (size_t i = 0; i < num_rows; ++i) {
          TupleView row = table.view(i);
          if (row.IsNull(col)) {
            seg.nulls[i] = 1;
          } else if (seg.type == DataType::kBool) {
            seg.i64[i] = row.GetBool(col) ? 1 : 0;
          } else {
            seg.i64[i] = row.GetInt64(col);
          }
        }
        break;
      }
    }
    BuildZones(&seg, num_rows);
  }
  return ct;
}

bool ColumnarTable::HasDict(int col) const {
  return col >= 0 && static_cast<size_t>(col) < segments_.size() &&
         segments_[static_cast<size_t>(col)].type == DataType::kString;
}

int64_t ColumnarTable::CodeOf(int col, std::string_view s) const {
  assert(HasDict(col));
  const auto& dict = segments_[static_cast<size_t>(col)].dict;
  auto it = std::lower_bound(dict.begin(), dict.end(), s);
  if (it == dict.end() || *it != s) return -1;
  return it - dict.begin();
}

bool ColumnarTable::PrefixRange(int col, std::string_view prefix, int64_t* lo,
                                int64_t* hi) const {
  assert(HasDict(col));
  const auto& dict = segments_[static_cast<size_t>(col)].dict;
  // Upper end of the prefix range: the prefix with its last byte bumped.
  // A prefix ending in 0xff has no such successor of the same length; bail
  // to the interpreter rather than reason about shorter successors.
  if (!prefix.empty() &&
      static_cast<unsigned char>(prefix.back()) == 0xffu) {
    return false;
  }
  *lo = std::lower_bound(dict.begin(), dict.end(), prefix) - dict.begin();
  if (prefix.empty()) {
    *hi = static_cast<int64_t>(dict.size());
    return true;
  }
  std::string upper(prefix);
  upper.back() = static_cast<char>(static_cast<unsigned char>(upper.back()) + 1);
  *hi = std::lower_bound(dict.begin(), dict.end(), upper) - dict.begin();
  return true;
}

int64_t ColumnarTable::LowerBound(int col, std::string_view s) const {
  assert(HasDict(col));
  const auto& dict = segments_[static_cast<size_t>(col)].dict;
  return std::lower_bound(dict.begin(), dict.end(), s) - dict.begin();
}

int64_t ColumnarTable::UpperBound(int col, std::string_view s) const {
  assert(HasDict(col));
  const auto& dict = segments_[static_cast<size_t>(col)].dict;
  return std::upper_bound(dict.begin(), dict.end(), s) - dict.begin();
}

}  // namespace bufferdb

#include "storage/table.h"

#include <algorithm>
#include <cassert>

#include "storage/column_table.h"

namespace bufferdb {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Table::~Table() = default;

void Table::AttachColumnar(std::unique_ptr<ColumnarTable> columnar) {
  assert(!columnar || columnar->num_rows() == rows_.size());
  columnar_ = std::move(columnar);
}

const uint8_t* Table::AppendRow(const std::vector<Value>& values) {
  assert(values.size() == schema_.num_columns());
  TupleBuilder builder(&schema_);
  for (size_t i = 0; i < values.size(); ++i) builder.Set(i, values[i]);
  stats_computed_ = false;
  return Append(builder);
}

const ColumnStats& Table::stats(size_t col) {
  if (!stats_computed_) {
    stats_.assign(schema_.num_columns(), ColumnStats());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      if (!IsNumeric(schema_.column(c).type)) continue;
      ColumnStats& s = stats_[c];
      bool first = true;
      for (const uint8_t* row : rows_) {
        TupleView v(row, &schema_);
        if (v.IsNull(c)) {
          ++s.null_count;
          continue;
        }
        double x = schema_.column(c).type == DataType::kDouble
                       ? v.GetDouble(c)
                       : static_cast<double>(v.GetInt64(c));
        if (first) {
          s.min = s.max = x;
          first = false;
        } else {
          s.min = std::min(s.min, x);
          s.max = std::max(s.max, x);
        }
      }
      s.valid = !first;
    }
    stats_computed_ = true;
  }
  return stats_[col];
}

}  // namespace bufferdb

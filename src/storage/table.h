#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/arena.h"
#include "storage/tuple.h"

namespace bufferdb {

class ColumnarTable;

/// Per-column min/max/count statistics used by the planner's cardinality
/// estimation (numeric columns only).
struct ColumnStats {
  bool valid = false;
  double min = 0;
  double max = 0;
  uint64_t null_count = 0;
};

/// Memory-resident append-only table of packed rows. Rows live in the
/// table's arena for the lifetime of the table (the paper's experiments are
/// all on a memory-resident database).
class Table {
 public:
  // Both out of line: ColumnarTable is incomplete here, and inline
  // definitions would instantiate its unique_ptr destructor.
  Table(std::string name, Schema schema);
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Appends a row of boxed values. Returns the stored row pointer.
  const uint8_t* AppendRow(const std::vector<Value>& values);

  /// Appends an already-staged builder row.
  const uint8_t* Append(const TupleBuilder& builder) {
    const uint8_t* row = builder.Finish(&arena_);
    rows_.push_back(row);
    return row;
  }

  size_t num_rows() const { return rows_.size(); }
  const uint8_t* row(size_t i) const { return rows_[i]; }
  const std::vector<const uint8_t*>& rows() const { return rows_; }

  TupleView view(size_t i) const { return TupleView(rows_[i], &schema_); }

  /// Computes (and caches) column statistics.
  const ColumnStats& stats(size_t col);

  /// Attaches a columnar image of this table (storage/column_table.h),
  /// row-aligned with rows(). Loaders call this once after the last append;
  /// the planner substitutes ColumnScan for SeqScan when an image exists.
  void AttachColumnar(std::unique_ptr<ColumnarTable> columnar);
  const ColumnarTable* columnar() const { return columnar_.get(); }

 private:
  std::string name_;
  Schema schema_;
  Arena arena_;
  std::vector<const uint8_t*> rows_;
  std::vector<ColumnStats> stats_;
  bool stats_computed_ = false;
  std::unique_ptr<ColumnarTable> columnar_;
};

}  // namespace bufferdb


#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace bufferdb {

/// One sweep point of the cardinality calibration experiment (§6, §7.3):
/// the Query-1 template executed with and without a buffer operator at a
/// given child output cardinality.
struct CalibrationPoint {
  double cardinality = 0;
  double original_seconds = 0;
  double buffered_seconds = 0;
};

struct ThresholdCalibrationResult {
  /// Smallest swept cardinality from which buffered plans stay faster; the
  /// refiner's cardinality threshold.
  double threshold = 0;
  std::vector<CalibrationPoint> points;

  std::string ToString() const;
};

/// Runs the paper's calibration experiment: a Query-1-like plan
/// (Aggregation over a filtered Scan, the two-operator pipeline whose
/// combined footprint exceeds L1-I) is executed at a range of output
/// cardinalities, buffered and unbuffered, on the CPU simulator. "The
/// cardinality at which the buffered plan begins to beat the unbuffered plan
/// [is] the cardinality threshold for buffering."
///
/// `table_rows` is the size of the synthetic input table; output cardinality
/// is controlled through predicate selectivity, as in the paper.
ThresholdCalibrationResult CalibrateCardinalityThreshold(
    const sim::SimConfig& config = sim::SimConfig(), size_t buffer_size = 1000,
    size_t table_rows = 20000);

}  // namespace bufferdb


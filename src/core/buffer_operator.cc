#include "core/buffer_operator.h"

#include <algorithm>
#include <cstring>

#include "storage/tuple.h"

namespace bufferdb {

BufferOperator::BufferOperator(OperatorPtr child, size_t buffer_size,
                               bool copy_tuples)
    : buffer_size_(buffer_size == 0 ? 1 : buffer_size),
      initial_size_(buffer_size_),
      copy_tuples_(copy_tuples) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

void BufferOperator::EnableAdaptive(const AdaptiveBufferOptions& options) {
  controller_ =
      std::make_unique<AdaptiveBufferController>(options, buffer_size_);
}

void BufferOperator::Resize(size_t new_size) {
  pending_resize_ = new_size == 0 ? 1 : new_size;
}

Status BufferOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  filled_ = 0;
  end_of_tuples_ = false;
  refills_ = 0;
  replays_ = 0;
  total_buffered_ = 0;
  last_refill_tuples_ = 0;
  pass_through_ = controller_ != nullptr && controller_->demoted();
  if (pass_through_) {
    // Runtime re-refinement (§7.3 analog): the observed cardinality came in
    // under the floor, so buffering costs more than it saves here. Serve
    // straight from the child — the unbuffered PCPC path.
    buffer_.clear();
    buffer_base_ = nullptr;
    return child(0)->Open(ctx);
  }
  if (pending_resize_ != 0) {
    buffer_size_ = pending_resize_;
    pending_resize_ = 0;
  }
  if (controller_ != nullptr) {
    size_t first = controller_->OnOpen(ctx, estimated_rows());
    buffer_size_ = first == 0 ? 1 : first;
    // High-water reservation: every capacity the sweep may pick fits
    // without moving the array, so refills stay realloc-free.
    buffer_.reserve(std::max(buffer_size_, controller_->max_capacity()));
  }
  // Reserve the array once per Open; Refill reuses it so the hot loop never
  // reallocates (buffer_reallocs() asserts this in tests). resize keeps the
  // capacity across re-Opens.
  buffer_.resize(buffer_size_, nullptr);
  buffer_base_ = buffer_.data();
  return child(0)->Open(ctx);
}

void BufferOperator::Refill() {
  // Refill boundary: the previous window (if any) delivered `filled_`
  // tuples; the controller prices it and picks the next capacity. Resizes
  // apply only here — pos_/filled_ reset anyway, no slice is in flight, and
  // a valid Rescan replay (single-refill stream) never reaches a second
  // refill, so the replayed array is never disturbed.
  if (controller_ != nullptr) {
    pending_resize_ = controller_->OnRefillBoundary(filled_);
  }
  if (pending_resize_ != 0) {
    if (pending_resize_ != buffer_size_) {
      buffer_size_ = pending_resize_;
      buffer_.resize(buffer_size_, nullptr);
    }
    pending_resize_ = 0;
  }
  ++refills_;
  if (buffer_.data() != buffer_base_) {
    ++buffer_reallocs_;
    buffer_base_ = buffer_.data();
  }
  pos_ = 0;
  filled_ = 0;
  const Schema& schema = child(0)->output_schema();
  while (filled_ < buffer_size_) {
    const uint8_t* tuple = child(0)->Next();
    if (tuple == nullptr) {
      end_of_tuples_ = true;
      break;
    }
    if (copy_tuples_) {
      // Ablation: copy the tuple bytes instead of storing a pointer.
      TupleView view(tuple, &schema);
      uint8_t* copy = ctx_->arena.Allocate(view.size_bytes());
      std::memcpy(copy, tuple, view.size_bytes());
      ctx_->Touch(copy, view.size_bytes());
      tuple = copy;
    }
    buffer_[filled_] = tuple;
    ctx_->Touch(&buffer_[filled_], sizeof(const uint8_t*));
    ++filled_;
  }
  total_buffered_ += filled_;
  last_refill_tuples_ = filled_;
  if (end_of_tuples_ && controller_ != nullptr) {
    controller_->OnStreamEnd(total_buffered_);
  }
}

const uint8_t* BufferOperator::Next() {
  if (pass_through_) return child(0)->Next();
  // GetNext() per the paper's Fig. 6 pseudocode.
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= filled_) {
    if (end_of_tuples_) return nullptr;
    Refill();
    if (filled_ == 0) return nullptr;
  }
  ctx_->Touch(&buffer_[pos_], sizeof(const uint8_t*));
  return buffer_[pos_++];
}

size_t BufferOperator::NextBatch(const uint8_t** out, size_t max) {
  if (pass_through_) return child(0)->NextBatch(out, max);
  // One buffer-module execution per slice, not per tuple: the batch path
  // amortizes the buffer's own GetNext code across the slice (this is what
  // the simulated i-cache counters observe as the batch/buffer interaction).
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= filled_) {
    if (end_of_tuples_) return 0;
    Refill();
    if (filled_ == 0) return 0;
  }
  size_t n = filled_ - pos_;
  if (n > max) n = max;
  std::memcpy(out, buffer_.data() + pos_, n * sizeof(const uint8_t*));
  ctx_->Touch(buffer_.data() + pos_, n * sizeof(const uint8_t*));
  pos_ += n;
  return n;
}

Status BufferOperator::Rescan() {
  if (pass_through_) return child(0)->Rescan();
  // Replay is only valid when the whole child stream sits in the array:
  // exactly one refill happened and it observed end-of-stream. (A second
  // refill overwrites the array, and refills_ == 0 means nothing was read
  // yet, so the state is already "at the beginning".) Replay stays valid
  // under a pending Resize — the pending size only applies at a refill,
  // which a replayed stream never performs. It also trumps demotion: the
  // array already holds the whole stream, so serving it again is cheaper
  // than re-executing the child.
  if (refills_ == 0) return Status::OK();
  if (end_of_tuples_ && refills_ == 1) {
    ++replays_;
    pos_ = 0;
    return Status::OK();
  }
  if (controller_ != nullptr && end_of_tuples_) {
    // Feedback (DESIGN.md §14): the stream's exact length is known
    // (end-of-stream was observed) but it took multiple refills, so this
    // Rescan must re-execute the child. Tell the controller so the re-fill
    // uses a capacity that holds the whole stream and later Rescans replay.
    controller_->OnRescanMiss(total_buffered_);
  }
  return Operator::Rescan();
}

void BufferOperator::Close() {
  buffer_.clear();
  child(0)->Close();
}

std::string BufferOperator::label() const {
  if (controller_ != nullptr) {
    // Stable across the run (re-sizing would churn profile/plan matching):
    // the chosen capacity is reported via AnalyzeDetail()/plan_printer.
    std::string out = "Buffer(adaptive:";
    out += std::to_string(initial_size_);
    out += ")";
    return out;
  }
  return "Buffer(" + std::to_string(buffer_size_) + ")";
}

std::string BufferOperator::AnalyzeDetail() const {
  if (controller_ == nullptr) return std::string();
  return controller_->Summary();
}

}  // namespace bufferdb

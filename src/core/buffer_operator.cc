#include "core/buffer_operator.h"

#include <cstring>

#include "storage/tuple.h"

namespace bufferdb {

BufferOperator::BufferOperator(OperatorPtr child, size_t buffer_size,
                               bool copy_tuples)
    : buffer_size_(buffer_size == 0 ? 1 : buffer_size),
      copy_tuples_(copy_tuples) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

Status BufferOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  buffer_.assign(buffer_size_, nullptr);
  pos_ = 0;
  filled_ = 0;
  end_of_tuples_ = false;
  refills_ = 0;
  return child(0)->Open(ctx);
}

void BufferOperator::Refill() {
  ++refills_;
  pos_ = 0;
  filled_ = 0;
  const Schema& schema = child(0)->output_schema();
  while (filled_ < buffer_size_) {
    const uint8_t* tuple = child(0)->Next();
    if (tuple == nullptr) {
      end_of_tuples_ = true;
      break;
    }
    if (copy_tuples_) {
      // Ablation: copy the tuple bytes instead of storing a pointer.
      TupleView view(tuple, &schema);
      uint8_t* copy = ctx_->arena.Allocate(view.size_bytes());
      std::memcpy(copy, tuple, view.size_bytes());
      ctx_->Touch(copy, view.size_bytes());
      tuple = copy;
    }
    buffer_[filled_] = tuple;
    ctx_->Touch(&buffer_[filled_], sizeof(const uint8_t*));
    ++filled_;
  }
}

const uint8_t* BufferOperator::Next() {
  // GetNext() per the paper's Fig. 6 pseudocode.
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= filled_) {
    if (end_of_tuples_) return nullptr;
    Refill();
    if (filled_ == 0) return nullptr;
  }
  ctx_->Touch(&buffer_[pos_], sizeof(const uint8_t*));
  return buffer_[pos_++];
}

void BufferOperator::Close() {
  buffer_.clear();
  child(0)->Close();
}

std::string BufferOperator::label() const {
  return "Buffer(" + std::to_string(buffer_size_) + ")";
}

}  // namespace bufferdb

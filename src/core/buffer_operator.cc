#include "core/buffer_operator.h"

#include <cstring>

#include "storage/tuple.h"

namespace bufferdb {

BufferOperator::BufferOperator(OperatorPtr child, size_t buffer_size,
                               bool copy_tuples)
    : buffer_size_(buffer_size == 0 ? 1 : buffer_size),
      copy_tuples_(copy_tuples) {
  AddChild(std::move(child));
  InitHotFuncs(module_id());
}

Status BufferOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  // Reserve the array once per Open; Refill reuses it so the hot loop never
  // reallocates (buffer_reallocs() asserts this in tests). resize keeps the
  // capacity across re-Opens.
  buffer_.resize(buffer_size_, nullptr);
  buffer_base_ = buffer_.data();
  pos_ = 0;
  filled_ = 0;
  end_of_tuples_ = false;
  refills_ = 0;
  replays_ = 0;
  return child(0)->Open(ctx);
}

void BufferOperator::Refill() {
  ++refills_;
  if (buffer_.data() != buffer_base_) {
    ++buffer_reallocs_;
    buffer_base_ = buffer_.data();
  }
  pos_ = 0;
  filled_ = 0;
  const Schema& schema = child(0)->output_schema();
  while (filled_ < buffer_size_) {
    const uint8_t* tuple = child(0)->Next();
    if (tuple == nullptr) {
      end_of_tuples_ = true;
      break;
    }
    if (copy_tuples_) {
      // Ablation: copy the tuple bytes instead of storing a pointer.
      TupleView view(tuple, &schema);
      uint8_t* copy = ctx_->arena.Allocate(view.size_bytes());
      std::memcpy(copy, tuple, view.size_bytes());
      ctx_->Touch(copy, view.size_bytes());
      tuple = copy;
    }
    buffer_[filled_] = tuple;
    ctx_->Touch(&buffer_[filled_], sizeof(const uint8_t*));
    ++filled_;
  }
}

const uint8_t* BufferOperator::Next() {
  // GetNext() per the paper's Fig. 6 pseudocode.
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= filled_) {
    if (end_of_tuples_) return nullptr;
    Refill();
    if (filled_ == 0) return nullptr;
  }
  ctx_->Touch(&buffer_[pos_], sizeof(const uint8_t*));
  return buffer_[pos_++];
}

size_t BufferOperator::NextBatch(const uint8_t** out, size_t max) {
  // One buffer-module execution per slice, not per tuple: the batch path
  // amortizes the buffer's own GetNext code across the slice (this is what
  // the simulated i-cache counters observe as the batch/buffer interaction).
  ctx_->ExecModule(module_id(), hot_funcs_);
  if (pos_ >= filled_) {
    if (end_of_tuples_) return 0;
    Refill();
    if (filled_ == 0) return 0;
  }
  size_t n = filled_ - pos_;
  if (n > max) n = max;
  std::memcpy(out, buffer_.data() + pos_, n * sizeof(const uint8_t*));
  ctx_->Touch(buffer_.data() + pos_, n * sizeof(const uint8_t*));
  pos_ += n;
  return n;
}

Status BufferOperator::Rescan() {
  // Replay is only valid when the whole child stream sits in the array:
  // exactly one refill happened and it observed end-of-stream. (A second
  // refill overwrites the array, and refills_ == 0 means nothing was read
  // yet, so the state is already "at the beginning".)
  if (refills_ == 0) return Status::OK();
  if (end_of_tuples_ && refills_ == 1) {
    ++replays_;
    pos_ = 0;
    return Status::OK();
  }
  return Operator::Rescan();
}

void BufferOperator::Close() {
  buffer_.clear();
  child(0)->Close();
}

std::string BufferOperator::label() const {
  return "Buffer(" + std::to_string(buffer_size_) + ")";
}

}  // namespace bufferdb

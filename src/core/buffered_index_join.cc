#include "core/buffered_index_join.h"

#include <algorithm>

#include "storage/tuple.h"

namespace bufferdb {

BufferedIndexJoinOperator::BufferedIndexJoinOperator(OperatorPtr outer,
                                                     const IndexInfo* index,
                                                     ExprPtr outer_key_expr,
                                                     size_t batch_size)
    : index_(index),
      outer_key_expr_(std::move(outer_key_expr)),
      batch_size_(batch_size == 0 ? 1 : batch_size) {
  output_schema_ =
      Schema::Concat(outer->output_schema(), index->table->schema());
  AddChild(std::move(outer));
  InitHotFuncs(module_id());
  // Per-tuple hot path: join driver + the buffer bookkeeping. The batch
  // key-sort code runs once per batch, not per tuple, so it lives in a
  // separate function set (keeping the per-tuple footprint within L1-I).
  AddHotFunc(sim::FuncId::kBufferCore);
  sort_funcs_ = {sim::FuncId::kSortCore, sim::FuncId::kExprCmp};
  for (sim::FuncId f : sim::ModuleBaseFuncs(sim::ModuleId::kIndexScan)) {
    probe_funcs_.push_back(f);
  }
}

Status BufferedIndexJoinOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  results_.clear();
  pos_ = 0;
  outer_done_ = false;
  batches_ = 0;
  return child(0)->Open(ctx);
}

bool BufferedIndexJoinOperator::FillBatch() {
  const Schema& outer_schema = child(0)->output_schema();
  const Schema& inner_schema = index_->table->schema();
  results_.clear();
  pos_ = 0;

  // Phase 1: drain a batch of outer tuples (outer code runs in a long run).
  std::vector<std::pair<int64_t, const uint8_t*>> batch;
  batch.reserve(batch_size_);
  while (batch.size() < batch_size_) {
    const uint8_t* row = child(0)->Next();
    if (row == nullptr) {
      outer_done_ = true;
      break;
    }
    ctx_->ExecModule(module_id(), hot_funcs_);
    Value key = outer_key_expr_->Evaluate(TupleView(row, &outer_schema));
    if (key.is_null()) continue;  // NULL keys never join.
    batch.emplace_back(key.int64_value(), row);
    ctx_->Touch(&batch.back(), sizeof(batch.back()));
  }
  if (batch.empty()) return false;
  ++batches_;

  // Phase 2: sort the batch by key so probes walk the tree in order.
  ctx_->ExecModule(sim::ModuleId::kSort, sort_funcs_);
  std::stable_sort(batch.begin(), batch.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  // Phase 3: probe the index for the whole batch back-to-back.
  std::vector<const void*> touched;
  for (const auto& [key, outer_row] : batch) {
    ctx_->ExecModule(sim::ModuleId::kIndexScan, probe_funcs_);
    touched.clear();
    BTree::Iterator it = index_->btree->Seek(key, &touched);
    for (const void* node : touched) ctx_->Touch(node, 512);
    while (it.Valid() && it.key() == key) {
      const uint8_t* inner_row = it.row();
      ctx_->Touch(inner_row, TupleView(inner_row, &inner_schema).size_bytes());
      const uint8_t* combined = TupleBuilder::ConcatRows(
          output_schema_, outer_schema, outer_row, inner_schema, inner_row,
          &ctx_->arena);
      results_.push_back(combined);
      it.Next();
    }
  }
  return true;
}

const uint8_t* BufferedIndexJoinOperator::Next() {
  while (true) {
    if (pos_ < results_.size()) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      const uint8_t* row = results_[pos_++];
      ctx_->Touch(row, 64);
      return row;
    }
    if (outer_done_) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      return nullptr;
    }
    if (!FillBatch() && results_.empty()) {
      ctx_->ExecModule(module_id(), hot_funcs_);
      return nullptr;
    }
  }
}

void BufferedIndexJoinOperator::Close() {
  results_.clear();
  child(0)->Close();
}

std::string BufferedIndexJoinOperator::label() const {
  return "BufferedIndexJoin(" + index_->name + ", batch=" +
         std::to_string(batch_size_) + ")";
}

}  // namespace bufferdb

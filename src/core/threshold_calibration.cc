#include "core/threshold_calibration.h"

#include <cassert>
#include <cstdio>
#include <memory>

#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "profile/calibration_queries.h"

namespace bufferdb {

namespace {

ExprPtr Col(const Schema& schema, const std::string& name) {
  auto r = MakeColumnRef(schema, name);
  assert(r.ok());
  return std::move(*r);
}

ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto res = MakeBinary(op, std::move(l), std::move(r));
  assert(res.ok());
  return std::move(*res);
}

// SUM(price * (1 - discount) * (1 + tax)), AVG(quantity), COUNT(*) —
// the paper's Query 1 aggregate list.
std::vector<AggSpec> Query1Aggregates(const Schema& schema) {
  std::vector<AggSpec> specs;
  ExprPtr charge = Bin(
      BinaryOp::kMul,
      Bin(BinaryOp::kMul, Col(schema, "price"),
          Bin(BinaryOp::kSub, MakeLiteral(Value::Double(1.0)),
              Col(schema, "discount"))),
      Bin(BinaryOp::kAdd, MakeLiteral(Value::Double(1.0)),
          Col(schema, "tax")));
  specs.push_back(AggSpec{AggFunc::kSum, std::move(charge), "sum_charge"});
  specs.push_back(AggSpec{AggFunc::kAvg, Col(schema, "quantity"), "avg_qty"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "count_order"});
  return specs;
}

double RunTemplate(Table* table, double selectivity, bool buffered,
                   const sim::SimConfig& config, size_t buffer_size) {
  const Schema& schema = table->schema();
  OperatorPtr plan = std::make_unique<SeqScanOperator>(
      table, Bin(BinaryOp::kLe, Col(schema, "sel"),
                 MakeLiteral(Value::Double(selectivity))));
  if (buffered) {
    plan = std::make_unique<BufferOperator>(std::move(plan), buffer_size);
  }
  plan = std::make_unique<AggregationOperator>(std::move(plan),
                                               Query1Aggregates(schema));
  sim::SimCpu cpu(config);
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlan(plan.get(), &ctx);
  assert(rows.ok() && rows->size() == 1);
  (void)rows;
  return cpu.Breakdown().seconds();
}

}  // namespace

std::string ThresholdCalibrationResult::ToString() const {
  std::string out = "cardinality calibration (threshold = " +
                    std::to_string(threshold) + ")\n";
  out += "  cardinality   original(s)   buffered(s)   winner\n";
  for (const CalibrationPoint& p : points) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %11.0f   %11.6f   %11.6f   %s\n",
                  p.cardinality, p.original_seconds, p.buffered_seconds,
                  p.buffered_seconds < p.original_seconds ? "buffered"
                                                          : "original");
    out += line;
  }
  return out;
}

ThresholdCalibrationResult CalibrateCardinalityThreshold(
    const sim::SimConfig& config, size_t buffer_size, size_t table_rows) {
  std::unique_ptr<Table> table =
      profile::BuildSyntheticItems(table_rows, /*seed=*/42);

  ThresholdCalibrationResult result;
  double cardinalities[] = {2,   4,    8,    16,   32,   64,  128,
                            256, 512,  1024, 2048, 4096, 8192};
  for (double card : cardinalities) {
    if (card > static_cast<double>(table_rows)) break;
    double selectivity = card / static_cast<double>(table_rows);
    CalibrationPoint point;
    point.cardinality = card;
    point.original_seconds =
        RunTemplate(table.get(), selectivity, /*buffered=*/false, config,
                    buffer_size);
    point.buffered_seconds =
        RunTemplate(table.get(), selectivity, /*buffered=*/true, config,
                    buffer_size);
    result.points.push_back(point);
  }

  // Threshold: smallest cardinality from which the buffered plan stays
  // ahead for the rest of the sweep.
  result.threshold = result.points.empty()
                         ? 0
                         : result.points.back().cardinality + 1;
  for (size_t i = result.points.size(); i-- > 0;) {
    const CalibrationPoint& p = result.points[i];
    if (p.buffered_seconds < p.original_seconds) {
      result.threshold = p.cardinality;
    } else {
      break;
    }
  }
  return result;
}

}  // namespace bufferdb

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/operator.h"
#include "expr/expression.h"

namespace bufferdb {

/// Extension (Zhou & Ross, "Buffering Accesses to Memory-Resident Index
/// Structures"): an index nested-loop join that *batches* its index probes.
///
/// Instead of probing the B+-tree once per outer tuple — interleaving outer
/// scan, join and index code per tuple — it drains up to `batch_size` outer
/// tuples, sorts the batch by join key, then probes the index for the whole
/// batch back-to-back. This buys the paper's instruction locality (the
/// index code runs in a long run) *plus* data-cache locality in the tree
/// (sorted probes revisit the same upper-level nodes consecutively).
///
/// Output rows within a batch are ordered by join key, not by outer order
/// (the join is still an equi inner join with identical result multiset).
class BufferedIndexJoinOperator final : public Operator {
 public:
  BufferedIndexJoinOperator(OperatorPtr outer, const IndexInfo* index,
                            ExprPtr outer_key_expr, size_t batch_size = 1000);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override { return output_schema_; }
  sim::ModuleId module_id() const override {
    return sim::ModuleId::kNestLoopJoin;
  }
  std::string label() const override;

  uint64_t batches() const { return batches_; }

 private:
  /// Fills probe results for the next batch of outer tuples; returns false
  /// at end of input.
  bool FillBatch();

  const IndexInfo* index_;
  ExprPtr outer_key_expr_;
  size_t batch_size_;
  Schema output_schema_;

  std::vector<sim::FuncId> probe_funcs_;  // Index-descent code.
  std::vector<sim::FuncId> sort_funcs_;   // Once-per-batch key sort.
  std::vector<const uint8_t*> results_;
  size_t pos_ = 0;
  bool outer_done_ = false;
  uint64_t batches_ = 0;
};

}  // namespace bufferdb


#include "core/plan_refiner.h"

#include <algorithm>
#include <cstdio>

#include "exec/fused_pipeline.h"

namespace bufferdb {

std::string RefinementReport::ToString() const {
  std::string out = "execution groups (" + std::to_string(groups.size()) +
                    "), buffers added: " + std::to_string(buffers_added) + "\n";
  for (const ExecutionGroup& g : groups) {
    // Append-form to dodge gcc 12's -O3 -Wrestrict false positive
    // (PR105651).
    out += "  ";
    out += g.ToString();
    out += "\n";
  }
  return out;
}

bool PlanRefiner::Eligible(const Operator& op) const {
  if (op.excluded_from_buffering()) return false;
  // Pipeline breakers already buffer execution below them and are never
  // part of an execution group (§6).
  if (op.num_children() == 1 && op.BlocksInput(0)) return false;
  return true;
}

OperatorPtr PlanRefiner::CloseGroup(OperatorPtr group_top, OpenGroup group,
                                    RefinementReport* report) {
  // The cardinality rule (§6, §7.3): buffering only pays off when the group
  // is invoked often enough. Unknown estimates are treated as large. A
  // batch-draining parent amortizes the buffer's per-tuple code over the
  // batch, so the break-even cardinality drops by the batch width.
  double threshold = options_.cardinality_threshold;
  if (options_.batch_size > 1) {
    threshold = std::max(1.0, threshold / static_cast<double>(options_.batch_size));
  }
  bool profitable = group.output_rows < 0 || group.output_rows >= threshold;
  if (!profitable) {
    if (report != nullptr) {
      report->groups.push_back(ExecutionGroup{std::move(group.op_labels),
                                              group.funcs,
                                              /*buffered=*/false});
    }
    return group_top;
  }
  auto buffer = std::make_unique<BufferOperator>(std::move(group_top),
                                                 options_.buffer_size);
  buffer->set_estimated_rows(group.output_rows);
  if (options_.adaptive_buffering) {
    AdaptiveBufferOptions adaptive = options_.adaptive;
    // The runtime demotion floor defaults to the same (batch-scaled)
    // cardinality break-even the static decision above used, so demotion
    // is exactly "the estimate said profitable, the observed rows say not".
    if (adaptive.demote_row_floor < 0.0) adaptive.demote_row_floor = threshold;
    buffer->EnableAdaptive(adaptive);
  }
  if (report != nullptr) {
    ++report->buffers_added;
    report->groups.push_back(
        ExecutionGroup{std::move(group.op_labels), group.funcs, /*buffered=*/true});
  }
  return buffer;
}

PlanRefiner::RecResult PlanRefiner::RefineRec(OperatorPtr op,
                                              RefinementReport* report) {
  // Refine children first (bottom-up pass).
  size_t n = op->num_children();
  std::vector<std::optional<OpenGroup>> child_open(n);
  for (size_t i = 0; i < n; ++i) {
    RecResult r = RefineRec(op->TakeChild(i), report);
    op->SetChild(i, std::move(r.op));
    child_open[i] = std::move(r.open);
  }

  if (!Eligible(*op)) {
    // This operator is a group boundary: close every open child group by
    // inserting a buffer above it.
    for (size_t i = 0; i < n; ++i) {
      if (child_open[i].has_value()) {
        op->SetChild(i, CloseGroup(op->TakeChild(i),
                                   std::move(*child_open[i]), report));
      }
    }
    return RecResult{std::move(op), std::nullopt};
  }

  // Try to enlarge the children's open groups with this operator.
  if (options_.merge_execution_groups) {
    FuncSet merged;
    // Batched plans run compiled kernel programs where available, so the
    // instruction working set the refiner must pack into L1-I is the
    // (smaller) batched one.
    merged.AddAll(options_.batch_size > 1 ? op->hot_funcs_batched()
                                          : op->hot_funcs());
    if (options_.assume_static_footprints) {
      merged.AddAll(sim::StaticOnlyFuncs());
    }
    merged.UnionWith(buffer_funcs_);
    bool any_open = false;
    for (size_t i = 0; i < n; ++i) {
      if (child_open[i].has_value()) {
        merged.UnionWith(child_open[i]->funcs);
        any_open = true;
      }
    }
    (void)any_open;
    if (merged.TotalBytes() <= options_.l1i_capacity_bytes) {
      OpenGroup group;
      group.funcs = merged;
      for (size_t i = 0; i < n; ++i) {
        if (child_open[i].has_value()) {
          for (std::string& label : child_open[i]->op_labels) {
            group.op_labels.push_back(std::move(label));
          }
        }
      }
      group.op_labels.push_back(op->label());
      group.output_rows = op->estimated_rows();
      return RecResult{std::move(op), std::move(group)};
    }
  }

  // Too large to merge (or merging disabled): close the child groups and
  // start a fresh group at this operator.
  for (size_t i = 0; i < n; ++i) {
    if (child_open[i].has_value()) {
      op->SetChild(
          i, CloseGroup(op->TakeChild(i), std::move(*child_open[i]), report));
    }
  }
  OpenGroup group;
  group.funcs.AddAll(options_.batch_size > 1 ? op->hot_funcs_batched()
                                             : op->hot_funcs());
  if (options_.assume_static_footprints) {
    group.funcs.AddAll(sim::StaticOnlyFuncs());
  }
  group.funcs.UnionWith(buffer_funcs_);
  group.op_labels.push_back(op->label());
  group.output_rows = op->estimated_rows();
  return RecResult{std::move(op), std::move(group)};
}

OperatorPtr PlanRefiner::FuseRec(OperatorPtr op) {
  if (op == nullptr) return op;
  FusedPipelineOptions fuse_opts;
  fuse_opts.l1i_capacity_bytes = options_.l1i_capacity_bytes;
  op = FusedPipelineOperator::TryFuse(std::move(op), fuse_opts);
  // A fused subtree is a leaf (its original chain is retained internally but
  // no longer part of the plan tree); only unfused operators are descended
  // into, which also recurses through Exchange into its fragments.
  if (dynamic_cast<FusedPipelineOperator*>(op.get()) != nullptr) return op;
  for (size_t i = 0; i < op->num_children(); ++i) {
    op->SetChild(i, FuseRec(op->TakeChild(i)));
  }
  return op;
}

OperatorPtr PlanRefiner::Refine(OperatorPtr root, RefinementReport* report) {
  if (options_.fuse_pipelines) root = FuseRec(std::move(root));
  RecResult r = RefineRec(std::move(root), report);
  // The top group's output is sent to the client directly; no buffer above
  // it (§5: "There is no need to put another buffer operator above the top
  // operator").
  if (r.open.has_value() && report != nullptr) {
    report->groups.push_back(ExecutionGroup{std::move(r.open->op_labels),
                                            r.open->funcs,
                                            /*buffered=*/false});
  }
  return std::move(r.op);
}

}  // namespace bufferdb

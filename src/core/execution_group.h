#pragma once

#include <bitset>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/code_layout.h"

namespace bufferdb {

/// Set of simulated-binary functions with shared-function-aware byte
/// accounting: TotalBytes counts every function exactly once, which is the
/// paper's rule for combining module footprints ("we make sure to count
/// common functions only once", §6.1).
class FuncSet {
 public:
  FuncSet() = default;

  void Add(sim::FuncId f) { bits_.set(static_cast<size_t>(f)); }
  void AddAll(std::span<const sim::FuncId> funcs) {
    for (sim::FuncId f : funcs) Add(f);
  }
  void UnionWith(const FuncSet& other) { bits_ |= other.bits_; }

  bool Contains(sim::FuncId f) const {
    return bits_.test(static_cast<size_t>(f));
  }
  bool empty() const { return bits_.none(); }
  size_t count() const { return bits_.count(); }

  /// Combined instruction footprint in bytes (each function counted once).
  uint64_t TotalBytes() const;

  std::vector<sim::FuncId> ToVector() const;
  std::string ToString() const;

 private:
  std::bitset<sim::kNumFuncIds> bits_;
};

/// A candidate unit of buffering: one or more consecutive pipeline operators
/// whose combined footprint (plus a buffer operator's) fits in L1-I.
/// Operators are recorded by label so reports outlive the plan.
struct ExecutionGroup {
  std::vector<std::string> op_labels;
  FuncSet funcs;
  bool buffered = false;  // Whether a Buffer was inserted above this group.

  std::string ToString() const;
};

}  // namespace bufferdb


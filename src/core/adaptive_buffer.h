#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bufferdb {

struct ExecContext;
class Operator;

namespace sim {
class SimCpu;
}
namespace perf {
class PerfCounterGroup;
}

/// Tuning knobs for the runtime-adaptive buffer controller (DESIGN.md §14).
struct AdaptiveBufferOptions {
  /// Candidate capacity sweep range; candidates are geometric (x2) from
  /// min_capacity to max_capacity, plus the statically configured size.
  size_t min_capacity = 64;
  size_t max_capacity = 8192;
  /// Refill windows measured per candidate before moving to the next one.
  /// One suffices on the deterministic simulator; wall-clock signals may
  /// want 2-3 to dampen scheduler noise.
  int samples_per_candidate = 1;
  /// Relative cost improvement a candidate must show over the statically
  /// configured capacity before the controller switches away from it. Keeps
  /// ties (the flat region of Fig. 12) on the predictable static choice.
  double hysteresis = 0.02;
  /// Calibration tuple budget as a fraction of the estimated output rows:
  /// the sweep stops early (locking the best capacity seen) once this many
  /// tuples flowed through exploratory windows, so short streams are not
  /// spent entirely on measurement.
  double calibration_fraction = 0.25;
  /// Absolute floor for the calibration budget in tuples.
  size_t min_calibration_tuples = 2048;
  /// Runtime re-refinement (§6/§7.3 analog): when the stream ends having
  /// produced fewer rows than this floor, the static refiner's cardinality
  /// guess was wrong and the buffer demotes itself to pass-through on its
  /// next Open. Negative means "use the refiner's cardinality threshold"
  /// (the PlanRefiner substitutes its batch-scaled threshold).
  double demote_row_floor = -1.0;
};

/// Per-BufferOperator feedback controller: during the first refills it
/// sweeps candidate capacities and locks the one minimizing a per-tuple
/// cost signal, chosen by availability at Open:
///
///   simulating (ctx->cpu set)  -> simulated cycles (CycleBreakdown over
///                                 SimCounters: L1i/L1d misses + branch
///                                 mispredictions priced per the SimConfig)
///   hardware PMU on the thread -> PerfCounterGroup cycle deltas
///   otherwise                  -> wall-clock ns (always available)
///
/// State machine: kCalibrating -> kLocked (freeze: every subsequent refill
/// boundary is one branch + return, no allocation, no atomics) with a
/// terminal kDemoted reachable from either when the observed output
/// cardinality lands under the demotion floor.
///
/// Thread affinity: a controller belongs to one BufferOperator and runs on
/// that operator's executing thread (under Exchange, the worker thread that
/// opened the fragment — so per-worker controllers read per-worker
/// counters). It holds no shared state and needs no synchronization.
class AdaptiveBufferController {
 public:
  enum class State { kCalibrating, kLocked, kDemoted };

  AdaptiveBufferController(const AdaptiveBufferOptions& options,
                           size_t initial_capacity);

  /// Binds the cost signal for this run and returns the capacity the first
  /// refill should use. Called from BufferOperator::Open on the executing
  /// thread; the only phase allowed to allocate (ENG009). Once locked or
  /// demoted, later Opens return the frozen choice without re-calibrating.
  size_t OnOpen(ExecContext* ctx, double estimated_rows);

  /// Refill boundary: `tuples_served` tuples flowed out of the window that
  /// just ended. Samples the cost signal, advances the sweep, and returns
  /// the capacity for the next refill. O(1), allocation-free.
  size_t OnRefillBoundary(size_t tuples_served);

  /// Child stream exhausted after `total_rows` tuples: locks the sweep if
  /// still calibrating, and demotes when `total_rows` is under the floor.
  void OnStreamEnd(uint64_t total_rows);

  /// A Rescan could not replay from the array — the stream outgrew the
  /// capacity and the buffer fell back to re-executing its child. The stream
  /// length is now known exactly, so adopt `observed_rows + 1`: the next
  /// fill then sees end-of-stream within a single refill, and every later
  /// Rescan replays from the array instead of re-running the child
  /// (BufferOperator::Rescan). Grow-only once locked; no-op when demoted or
  /// when the stream would not fit under max_capacity anyway. O(1),
  /// allocation-free (the actual growth happens at the next Open, which
  /// reserves to max_capacity up front).
  void OnRescanMiss(uint64_t observed_rows);

  State state() const { return state_; }
  bool demoted() const { return state_ == State::kDemoted; }
  bool locked() const { return state_ == State::kLocked; }
  size_t initial_capacity() const { return initial_capacity_; }
  /// Best capacity known so far (== initial until the sweep locks).
  size_t chosen_capacity() const { return chosen_capacity_; }
  size_t max_capacity() const { return options_.max_capacity; }
  double demote_row_floor() const { return options_.demote_row_floor; }
  int windows_measured() const { return windows_measured_; }
  const char* signal_name() const;
  const char* StateName() const;

  /// One-line human summary, e.g.
  /// "adaptive: 1000 -> 2048 (locked, signal=sim, windows=9)".
  std::string Summary() const;

 private:
  enum class Signal { kNone, kSim, kHw, kWall };

  /// Monotonic running cost in the active signal's units (simulated cycles,
  /// hw cycles, or wall ns). Deltas between reads price one refill window.
  double ReadCostNow() const;
  void RecordSample(double cost_per_tuple);
  void Lock();

  AdaptiveBufferOptions options_;
  size_t initial_capacity_;
  size_t chosen_capacity_;
  State state_ = State::kCalibrating;
  Signal signal_ = Signal::kNone;

  const sim::SimCpu* cpu_ = nullptr;          // signal_ == kSim
  const perf::PerfCounterGroup* hw_ = nullptr;  // signal_ == kHw

  std::vector<size_t> candidates_;     // ascending; built once in the ctor.
  std::vector<double> best_cost_;      // per candidate; <0 = unmeasured.
  size_t budget_tuples_ = 0;
  size_t calibration_tuples_ = 0;
  int candidate_ = 0;            // index into candidates_ being measured.
  int samples_taken_ = 0;        // samples recorded for candidates_[candidate_].
  bool warmup_pending_ = true;   // first window is cold-cache; discarded.
  bool window_open_ = false;
  double window_start_cost_ = 0.0;
  int windows_measured_ = 0;
};

/// Post-run runtime stats for one BufferOperator, for EXPLAIN/bench output.
struct BufferRuntimeStats {
  std::string label;
  size_t initial_capacity = 0;
  size_t final_capacity = 0;
  bool adaptive = false;
  bool demoted = false;
  std::string state;  // "static", "calibrating", "locked" or "demoted".
  uint64_t refills = 0;
  uint64_t tuples_buffered = 0;
};

/// Walks an executed plan and appends one BufferRuntimeStats per
/// BufferOperator found (pre-order). Decorator nodes (profilers, contract
/// checkers) are traversed through via the child links.
void CollectBufferStats(const Operator& root,
                        std::vector<BufferRuntimeStats>* out);

}  // namespace bufferdb

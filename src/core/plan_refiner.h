#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer_operator.h"
#include "core/execution_group.h"
#include "exec/operator.h"

namespace bufferdb {

struct RefinementOptions {
  /// L1 instruction cache (trace cache equivalent) capacity, §6.1.
  uint64_t l1i_capacity_bytes = 16 * 1024;
  /// Minimum estimated output cardinality for a group to be worth
  /// buffering, determined by calibration (§6, §7.3). The default is the
  /// crossover measured by CalibrateCardinalityThreshold on the default
  /// simulator configuration (regenerate with bench_fig11_cardinality).
  double cardinality_threshold = 128.0;
  size_t buffer_size = BufferOperator::kDefaultBufferSize;
  /// Batch width the plan's consumers drain buffers with (the NextBatch
  /// fast path). 1 — the default and the paper's setting — models
  /// tuple-at-a-time parents. When > 1, a batch-aware parent above a Buffer
  /// executes the buffer's own code once per slice instead of once per
  /// tuple, so the per-tuple buffering overhead shrinks by the batch width;
  /// the refiner accounts for this by scaling the cardinality threshold
  /// down by the batch width (clamped to >= 1 row), placing buffers above
  /// smaller groups than the tuple path would justify. Instruction
  /// *footprints* are unaffected: the buffer's code must still be resident,
  /// so group formation (§6.1) is identical.
  size_t batch_size = 1;
  /// When false (ablation), every eligible operator becomes its own
  /// execution group — the "too much buffering" regime of §6.
  bool merge_execution_groups = true;
  /// Ablation for §6.1: compute footprints the naive *static* way, charging
  /// every operator the cold code its static call graph could reach. The
  /// overestimate makes groups look too big, so plans get buffers they do
  /// not need.
  bool assume_static_footprints = false;
  /// Runtime-adaptive buffer sizing (DESIGN.md §14): every inserted Buffer
  /// gets an AdaptiveBufferController that sweeps candidate capacities
  /// during the first refills, locks the cheapest, and demotes the buffer
  /// to pass-through when the observed cardinality lands under the
  /// threshold. OFF by default — with the knob off, plans, results and sim
  /// counters are bit-identical to the static refiner.
  bool adaptive_buffering = false;
  /// Controller knobs applied when adaptive_buffering is on. A negative
  /// demote_row_floor (the default) follows the refiner's batch-scaled
  /// cardinality_threshold.
  AdaptiveBufferOptions adaptive;
  /// Intra-group operator fusion (DESIGN.md §15): before grouping, collapse
  /// every maximal Scan -> Filter* -> [Project] chain whose expressions all
  /// compiled to kernel programs into one FusedPipelineOperator — a single
  /// NextBatch loop with no per-stage dispatch between the fused stages.
  /// OFF by default — with the knob off, plans, results and sim counters
  /// are bit-identical to the unfused refiner.
  bool fuse_pipelines = false;
};

struct RefinementReport {
  int buffers_added = 0;
  std::vector<ExecutionGroup> groups;

  std::string ToString() const;
};

/// Post-optimization plan refinement (§6.2).
///
/// Performs a bottom-up pass over a physical plan, partitioning pipeline
/// operators into execution groups whose combined instruction footprint plus
/// a buffer operator's footprint fits in the L1 instruction cache, counting
/// functions shared between operators only once. A Buffer operator is then
/// inserted above every group except the plan root (whose output goes to the
/// client) — blocking parents do not suppress buffering of the pipeline
/// below them (compare Fig. 16, where the scan feeding the hash build is
/// buffered).
///
/// Operators never placed in a group: pipeline breakers (Sort, Materialize —
/// they already buffer execution below them) and operators explicitly
/// excluded by the planner (the inner index scan of a foreign-key index
/// nested-loop join). A buffer is only inserted above a group whose output
/// cardinality reaches the calibration threshold (§7.3) — below it the
/// buffering overhead outweighs the locality benefit.
class PlanRefiner {
 public:
  explicit PlanRefiner(RefinementOptions options = RefinementOptions())
      : options_(options) {
    buffer_funcs_.AddAll(sim::ModuleBaseFuncs(sim::ModuleId::kBuffer));
  }

  /// Returns the refined plan (same tree with Buffer operators spliced in).
  OperatorPtr Refine(OperatorPtr root, RefinementReport* report = nullptr);

  const RefinementOptions& options() const { return options_; }

 private:
  struct OpenGroup {
    FuncSet funcs;
    std::vector<std::string> op_labels;
    double output_rows = -1;
  };
  struct RecResult {
    OperatorPtr op;
    std::optional<OpenGroup> open;
  };

  RecResult RefineRec(OperatorPtr op, RefinementReport* report);
  /// Pre-order fusion pass (options_.fuse_pipelines): tries TryFuse at every
  /// node top-down, so chains fuse maximally; a fused subtree becomes a leaf
  /// and is not descended into.
  OperatorPtr FuseRec(OperatorPtr op);
  OperatorPtr CloseGroup(OperatorPtr group_top, OpenGroup group,
                         RefinementReport* report);
  bool Eligible(const Operator& op) const;

  RefinementOptions options_;
  FuncSet buffer_funcs_;
};

}  // namespace bufferdb


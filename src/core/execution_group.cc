#include "core/execution_group.h"

namespace bufferdb {

uint64_t FuncSet::TotalBytes() const {
  const sim::CodeLayout& layout = sim::CodeLayout::Default();
  uint64_t total = 0;
  for (int i = 0; i < sim::kNumFuncIds; ++i) {
    if (bits_.test(i)) {
      total += layout.info(static_cast<sim::FuncId>(i)).size_bytes;
    }
  }
  return total;
}

std::vector<sim::FuncId> FuncSet::ToVector() const {
  std::vector<sim::FuncId> out;
  for (int i = 0; i < sim::kNumFuncIds; ++i) {
    if (bits_.test(i)) out.push_back(static_cast<sim::FuncId>(i));
  }
  return out;
}

std::string FuncSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < sim::kNumFuncIds; ++i) {
    if (!bits_.test(i)) continue;
    if (!first) out += ", ";
    out += sim::FuncName(static_cast<sim::FuncId>(i));
    first = false;
  }
  out += "}";
  return out;
}

std::string ExecutionGroup::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < op_labels.size(); ++i) {
    if (i > 0) out += " + ";
    out += op_labels[i];
  }
  // Append-form to dodge gcc 12's -O3 -Wrestrict false positive (PR105651).
  out += "] footprint=";
  out += std::to_string(funcs.TotalBytes());
  out += "B";
  if (buffered) out += " (buffered)";
  return out;
}

}  // namespace bufferdb

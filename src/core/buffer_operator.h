#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_buffer.h"
#include "exec/operator.h"

namespace bufferdb {

/// The paper's light-weight buffer operator (§5, Fig. 6).
///
/// Implements the standard open-next-close interface. On demand it drains up
/// to `buffer_size` tuple *pointers* from its child into an array, then
/// serves subsequent GetNext() calls from the array without executing any
/// child code. This turns the per-tuple parent/child instruction
/// interleaving `PCPCPC...` into `PCC...CPP...P` (Fig. 1), restoring
/// instruction-cache temporal locality below and above it.
///
/// Tuples are not copied — only pointers are stored (copying would "reduce
/// the benefit of buffering instructions"); the tuples live in the query
/// arena / base tables until the query completes. `copy_tuples` enables the
/// copying variant as an ablation.
///
/// Capacity is normally fixed at construction; EnableAdaptive() attaches an
/// AdaptiveBufferController that re-sizes the buffer at refill boundaries
/// and can demote it to pass-through (DESIGN.md §14).
class BufferOperator final : public Operator {
 public:
  static constexpr size_t kDefaultBufferSize = 1000;

  explicit BufferOperator(OperatorPtr child,
                          size_t buffer_size = kDefaultBufferSize,
                          bool copy_tuples = false);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  /// Batch fast path: hands out a slice of the already-materialized pointer
  /// array. No tuple is touched — only `min(max, remaining)` pointers are
  /// copied out — so a batch-aware parent drains one refill in
  /// ~`buffer_size/max` calls instead of `buffer_size` virtual Next()s,
  /// and the buffer module's per-tuple code is amortized per slice.
  size_t NextBatch(const uint8_t** out, size_t max) override;

  /// Replay optimization: when the child was fully drained into a single
  /// buffer fill, re-positioning just resets the array cursor — the child
  /// is not re-executed. Big win for nested-loop inner sides. Falls back to
  /// the default Close+Open re-execution otherwise. A demoted (pass-through)
  /// buffer forwards Rescan to the child.
  [[nodiscard]] Status Rescan() override;

  /// In pass-through mode NextBatch() hands out the child's slices
  /// unmodified, so the child's published columns stay valid for them.
  const VectorBatch* BatchColumns() const override {
    return pass_through_ ? child(0)->BatchColumns() : nullptr;
  }

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kBuffer; }
  std::string label() const override;
  std::string AnalyzeDetail() const override;

  /// Attaches a runtime controller (call before Open). The buffer then
  /// starts each refill at the capacity the controller picks, and demotes
  /// to pass-through when the controller says the stream is too short for
  /// buffering to pay off.
  void EnableAdaptive(const AdaptiveBufferOptions& options);
  const AdaptiveBufferController* controller() const {
    return controller_.get();
  }

  /// Changes the refill capacity. Takes effect at the *next* refill (or
  /// Open), never mid-window: in-flight NextBatch slices and a pending
  /// Rescan replay are untouched, so resizing is always stream-transparent.
  /// Growing within the Open-time high-water reservation (the adaptive
  /// sweep's max_capacity) never reallocates; a manual Resize beyond it may,
  /// and buffer_reallocs() counts it.
  void Resize(size_t new_size);

  size_t buffer_size() const { return buffer_size_; }
  /// Capacity configured at construction, before any adaptive re-sizing.
  size_t initial_buffer_size() const { return initial_size_; }
  /// True once the controller demoted this buffer: Next/NextBatch forward
  /// straight to the child (the unbuffered PCPC path).
  bool pass_through() const { return pass_through_; }
  /// Number of times the array was (re)filled from the child.
  uint64_t refills() const { return refills_; }
  /// Number of times Rescan() replayed the array instead of re-executing
  /// the child.
  uint64_t replays() const { return replays_; }
  /// Tuples drained into the array since the last Open (per-refill stats:
  /// tuples_buffered()/refills() is the mean fill, last_refill_tuples() the
  /// final — usually partial — fill).
  uint64_t tuples_buffered() const { return total_buffered_; }
  uint64_t last_refill_tuples() const { return last_refill_tuples_; }
  /// Debug counter: times the pointer array's storage moved after Open.
  /// The array is reserved once per Open and reused across refills, so this
  /// must stay 0 for the hot loop to be allocation-free.
  uint64_t buffer_reallocs() const { return buffer_reallocs_; }

 private:
  void Refill();

  size_t buffer_size_;
  size_t initial_size_;
  bool copy_tuples_;
  std::vector<const uint8_t*> buffer_;
  const uint8_t** buffer_base_ = nullptr;  // buffer_.data() at Open.
  size_t pos_ = 0;
  size_t filled_ = 0;
  size_t pending_resize_ = 0;  // 0 = none; applied at the next refill/Open.
  bool end_of_tuples_ = false;
  bool pass_through_ = false;
  uint64_t refills_ = 0;
  uint64_t replays_ = 0;
  uint64_t buffer_reallocs_ = 0;
  uint64_t total_buffered_ = 0;
  uint64_t last_refill_tuples_ = 0;
  std::unique_ptr<AdaptiveBufferController> controller_;
};

}  // namespace bufferdb

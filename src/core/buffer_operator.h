#ifndef BUFFERDB_CORE_BUFFER_OPERATOR_H_
#define BUFFERDB_CORE_BUFFER_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace bufferdb {

/// The paper's light-weight buffer operator (§5, Fig. 6).
///
/// Implements the standard open-next-close interface. On demand it drains up
/// to `buffer_size` tuple *pointers* from its child into an array, then
/// serves subsequent GetNext() calls from the array without executing any
/// child code. This turns the per-tuple parent/child instruction
/// interleaving `PCPCPC...` into `PCC...CPP...P` (Fig. 1), restoring
/// instruction-cache temporal locality below and above it.
///
/// Tuples are not copied — only pointers are stored (copying would "reduce
/// the benefit of buffering instructions"); the tuples live in the query
/// arena / base tables until the query completes. `copy_tuples` enables the
/// copying variant as an ablation.
class BufferOperator final : public Operator {
 public:
  static constexpr size_t kDefaultBufferSize = 1000;

  explicit BufferOperator(OperatorPtr child,
                          size_t buffer_size = kDefaultBufferSize,
                          bool copy_tuples = false);

  Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kBuffer; }
  std::string label() const override;

  size_t buffer_size() const { return buffer_size_; }
  /// Number of times the array was (re)filled from the child.
  uint64_t refills() const { return refills_; }

 private:
  void Refill();

  size_t buffer_size_;
  bool copy_tuples_;
  std::vector<const uint8_t*> buffer_;
  size_t pos_ = 0;
  size_t filled_ = 0;
  bool end_of_tuples_ = false;
  uint64_t refills_ = 0;
};

}  // namespace bufferdb

#endif  // BUFFERDB_CORE_BUFFER_OPERATOR_H_

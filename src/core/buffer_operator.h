#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace bufferdb {

/// The paper's light-weight buffer operator (§5, Fig. 6).
///
/// Implements the standard open-next-close interface. On demand it drains up
/// to `buffer_size` tuple *pointers* from its child into an array, then
/// serves subsequent GetNext() calls from the array without executing any
/// child code. This turns the per-tuple parent/child instruction
/// interleaving `PCPCPC...` into `PCC...CPP...P` (Fig. 1), restoring
/// instruction-cache temporal locality below and above it.
///
/// Tuples are not copied — only pointers are stored (copying would "reduce
/// the benefit of buffering instructions"); the tuples live in the query
/// arena / base tables until the query completes. `copy_tuples` enables the
/// copying variant as an ablation.
class BufferOperator final : public Operator {
 public:
  static constexpr size_t kDefaultBufferSize = 1000;

  explicit BufferOperator(OperatorPtr child,
                          size_t buffer_size = kDefaultBufferSize,
                          bool copy_tuples = false);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;

  /// Batch fast path: hands out a slice of the already-materialized pointer
  /// array. No tuple is touched — only `min(max, remaining)` pointers are
  /// copied out — so a batch-aware parent drains one refill in
  /// ~`buffer_size/max` calls instead of `buffer_size` virtual Next()s,
  /// and the buffer module's per-tuple code is amortized per slice.
  size_t NextBatch(const uint8_t** out, size_t max) override;

  /// Replay optimization: when the child was fully drained into a single
  /// buffer fill, re-positioning just resets the array cursor — the child
  /// is not re-executed. Big win for nested-loop inner sides. Falls back to
  /// the default Close+Open re-execution otherwise.
  [[nodiscard]] Status Rescan() override;

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return sim::ModuleId::kBuffer; }
  std::string label() const override;

  size_t buffer_size() const { return buffer_size_; }
  /// Number of times the array was (re)filled from the child.
  uint64_t refills() const { return refills_; }
  /// Number of times Rescan() replayed the array instead of re-executing
  /// the child.
  uint64_t replays() const { return replays_; }
  /// Debug counter: times the pointer array's storage moved after Open.
  /// The array is reserved once per Open and reused across refills, so this
  /// must stay 0 for the hot loop to be allocation-free.
  uint64_t buffer_reallocs() const { return buffer_reallocs_; }

 private:
  void Refill();

  size_t buffer_size_;
  bool copy_tuples_;
  std::vector<const uint8_t*> buffer_;
  const uint8_t** buffer_base_ = nullptr;  // buffer_.data() at Open.
  size_t pos_ = 0;
  size_t filled_ = 0;
  bool end_of_tuples_ = false;
  uint64_t refills_ = 0;
  uint64_t replays_ = 0;
  uint64_t buffer_reallocs_ = 0;
};

}  // namespace bufferdb


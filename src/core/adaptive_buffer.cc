#include "core/adaptive_buffer.h"

#include <algorithm>
#include <chrono>

#include "core/buffer_operator.h"
#include "exec/operator.h"
#include "perf/perf_counters.h"
#include "sim/sim_cpu.h"

namespace bufferdb {

AdaptiveBufferController::AdaptiveBufferController(
    const AdaptiveBufferOptions& options, size_t initial_capacity)
    : options_(options),
      initial_capacity_(initial_capacity == 0 ? 1 : initial_capacity),
      chosen_capacity_(initial_capacity_) {
  size_t lo = std::max<size_t>(1, options_.min_capacity);
  size_t hi = std::max(lo, options_.max_capacity);
  options_.min_capacity = lo;
  options_.max_capacity = std::max(hi, initial_capacity_);
  for (size_t c = lo; c < hi; c *= 2) candidates_.push_back(c);
  candidates_.push_back(hi);
  candidates_.push_back(initial_capacity_);
  std::sort(candidates_.begin(), candidates_.end());
  candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                    candidates_.end());
  best_cost_.assign(candidates_.size(), -1.0);
}

size_t AdaptiveBufferController::OnOpen(ExecContext* ctx,
                                        double estimated_rows) {
  if (state_ != State::kCalibrating) return chosen_capacity_;
  // (Re)bind the cost signal each calibrating Open; sweep progress carries
  // across Opens so a Rescan-triggered re-execution resumes, not restarts.
  cpu_ = ctx->cpu;
  hw_ = nullptr;
  if (cpu_ != nullptr) {
    signal_ = Signal::kSim;
  } else {
    perf::PerfCounterGroup& group = perf::ThreadCounterGroup();
    if (group.available() &&
        group.event_supported(perf::HwEvent::kCycles)) {
      signal_ = Signal::kHw;
      hw_ = &group;
    } else {
      signal_ = Signal::kWall;
    }
  }
  if (estimated_rows >= 0.0) {
    double frac = estimated_rows * options_.calibration_fraction;
    budget_tuples_ = std::max(options_.min_calibration_tuples,
                              static_cast<size_t>(frac));
  } else {
    // Unknown cardinality is treated as large (like the refiner does):
    // afford the full sweep.
    budget_tuples_ = static_cast<size_t>(-1);
  }
  window_open_ = false;
  return candidates_[static_cast<size_t>(candidate_)];
}

size_t AdaptiveBufferController::OnRefillBoundary(size_t tuples_served) {
  // Frozen fast path: once locked (or demoted) every boundary is this one
  // branch and a return — zero control overhead in steady state.
  if (state_ != State::kCalibrating) return chosen_capacity_;
  const double now = ReadCostNow();
  if (window_open_ && tuples_served > 0) {
    calibration_tuples_ += tuples_served;
    if (warmup_pending_) {
      // The very first window runs on cold caches; its cost would bias the
      // sweep against whichever candidate went first. Discard it.
      warmup_pending_ = false;
    } else {
      RecordSample((now - window_start_cost_) /
                   static_cast<double>(tuples_served));
    }
  }
  if (state_ != State::kCalibrating) return chosen_capacity_;
  size_t next = candidates_[static_cast<size_t>(candidate_)];
  if (calibration_tuples_ + next > budget_tuples_) {
    // Short stream: don't spend what's left of it on measurement. Lock the
    // best capacity seen so far.
    Lock();
    return chosen_capacity_;
  }
  window_start_cost_ = now;
  window_open_ = true;
  return next;
}

void AdaptiveBufferController::RecordSample(double cost_per_tuple) {
  ++windows_measured_;
  double& best = best_cost_[static_cast<size_t>(candidate_)];
  if (best < 0.0 || cost_per_tuple < best) best = cost_per_tuple;
  if (++samples_taken_ >= options_.samples_per_candidate) {
    samples_taken_ = 0;
    if (++candidate_ >= static_cast<int>(candidates_.size())) Lock();
  }
}

void AdaptiveBufferController::Lock() {
  if (state_ != State::kCalibrating) return;
  double initial_cost = -1.0;
  double best_cost = -1.0;
  size_t best = initial_capacity_;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    double c = best_cost_[i];
    if (c < 0.0) continue;
    if (best_cost < 0.0 || c < best_cost) {
      best_cost = c;
      best = candidates_[i];
    }
    if (candidates_[i] == initial_capacity_) initial_cost = c;
  }
  if (best_cost >= 0.0) {
    // Hysteresis: stay on the statically configured capacity unless the
    // winner is better by a real margin — the flat region of Fig. 12 is
    // full of measurement ties.
    if (initial_cost >= 0.0 &&
        best_cost >= initial_cost * (1.0 - options_.hysteresis)) {
      chosen_capacity_ = initial_capacity_;
    } else {
      chosen_capacity_ = best;
    }
  }
  state_ = State::kLocked;
  window_open_ = false;
}

void AdaptiveBufferController::OnStreamEnd(uint64_t total_rows) {
  if (state_ == State::kCalibrating) Lock();
  if (options_.demote_row_floor >= 0.0 &&
      static_cast<double>(total_rows) < options_.demote_row_floor) {
    // The static refiner's cardinality guess was wrong: this stream is too
    // short for buffering to pay off (§6/§7.3). Pass through from now on.
    state_ = State::kDemoted;
  }
}

void AdaptiveBufferController::OnRescanMiss(uint64_t observed_rows) {
  if (state_ == State::kDemoted) return;
  uint64_t want = observed_rows + 1;  // +1: the fill loop must see the
                                      // terminating null to set end-of-stream
                                      // within the single refill.
  if (want > options_.max_capacity) return;
  if (state_ == State::kCalibrating) {
    // A rescanned stream is about to be re-produced wholesale; finishing the
    // capacity sweep is pointless next to making the re-execution the last
    // one. Freeze on whatever the sweep knows so far, then grow below.
    state_ = State::kLocked;
    window_open_ = false;
  }
  if (static_cast<size_t>(want) > chosen_capacity_) {
    chosen_capacity_ = static_cast<size_t>(want);
  }
}

double AdaptiveBufferController::ReadCostNow() const {
  switch (signal_) {
    case Signal::kSim:
      // Price the counter deltas exactly like the fig12 bench does, so the
      // controller optimizes the metric the sweep is judged on.
      return cpu_->Breakdown().total_cycles();
    case Signal::kHw:
      return static_cast<double>(hw_->ReadNow().cycles);
    case Signal::kWall:
    case Signal::kNone: {
      auto now = std::chrono::steady_clock::now().time_since_epoch();
      return static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
    }
  }
  return 0.0;
}

const char* AdaptiveBufferController::signal_name() const {
  switch (signal_) {
    case Signal::kSim: return "sim";
    case Signal::kHw: return "hw";
    case Signal::kWall: return "wall";
    case Signal::kNone: return "none";
  }
  return "none";
}

const char* AdaptiveBufferController::StateName() const {
  switch (state_) {
    case State::kCalibrating: return "calibrating";
    case State::kLocked: return "locked";
    case State::kDemoted: return "demoted";
  }
  return "calibrating";
}

std::string AdaptiveBufferController::Summary() const {
  // Append-form to dodge gcc 12's -O3 -Wrestrict false positive (PR105651).
  std::string out = "adaptive: ";
  out += std::to_string(initial_capacity_);
  out += " -> ";
  out += std::to_string(chosen_capacity_);
  out += " (";
  out += StateName();
  out += ", signal=";
  out += signal_name();
  out += ", windows=";
  out += std::to_string(windows_measured_);
  out += ")";
  return out;
}

void CollectBufferStats(const Operator& root,
                        std::vector<BufferRuntimeStats>* out) {
  if (const auto* buf = dynamic_cast<const BufferOperator*>(&root)) {
    BufferRuntimeStats s;
    s.label = buf->label();
    s.initial_capacity = buf->initial_buffer_size();
    s.final_capacity = buf->buffer_size();
    const AdaptiveBufferController* c = buf->controller();
    s.adaptive = c != nullptr;
    if (c != nullptr) {
      s.demoted = c->demoted();
      s.state = c->StateName();
      s.final_capacity = c->chosen_capacity();
    } else {
      s.state = "static";
    }
    s.refills = buf->refills();
    s.tuples_buffered = buf->tuples_buffered();
    out->push_back(std::move(s));
  }
  for (size_t i = 0; i < root.num_children(); ++i) {
    CollectBufferStats(*root.child(i), out);
  }
}

}  // namespace bufferdb

#include "perf/perf_counters.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bufferdb::perf {

HwCounters& HwCounters::operator+=(const HwCounters& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  l1i_misses += other.l1i_misses;
  l1d_misses += other.l1d_misses;
  itlb_misses += other.itlb_misses;
  branch_misses += other.branch_misses;
  time_enabled_ns += other.time_enabled_ns;
  time_running_ns += other.time_running_ns;
  return *this;
}

HwCounters HwCounters::operator-(const HwCounters& other) const {
  // Saturating: totals are monotonic per thread, but a region that starts
  // on one thread and is read from another after a reset could underflow.
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  HwCounters d;
  d.cycles = sub(cycles, other.cycles);
  d.instructions = sub(instructions, other.instructions);
  d.l1i_misses = sub(l1i_misses, other.l1i_misses);
  d.l1d_misses = sub(l1d_misses, other.l1d_misses);
  d.itlb_misses = sub(itlb_misses, other.itlb_misses);
  d.branch_misses = sub(branch_misses, other.branch_misses);
  d.time_enabled_ns = sub(time_enabled_ns, other.time_enabled_ns);
  d.time_running_ns = sub(time_running_ns, other.time_running_ns);
  return d;
}

bool HwCounters::AnyNonZero() const {
  return (cycles | instructions | l1i_misses | l1d_misses | itlb_misses |
          branch_misses) != 0;
}

std::string HwCounters::ToJson() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"cycles\": %llu, \"instructions\": %llu, \"l1i_misses\": %llu, "
      "\"l1d_misses\": %llu, \"itlb_misses\": %llu, \"branch_misses\": %llu, "
      "\"time_enabled_ns\": %llu, \"time_running_ns\": %llu}",
      static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(instructions),
      static_cast<unsigned long long>(l1i_misses),
      static_cast<unsigned long long>(l1d_misses),
      static_cast<unsigned long long>(itlb_misses),
      static_cast<unsigned long long>(branch_misses),
      static_cast<unsigned long long>(time_enabled_ns),
      static_cast<unsigned long long>(time_running_ns));
  return buf;
}

const char* HwEventName(HwEvent e) {
  switch (e) {
    case HwEvent::kCycles: return "cycles";
    case HwEvent::kInstructions: return "instructions";
    case HwEvent::kL1iMiss: return "l1i_miss";
    case HwEvent::kL1dMiss: return "l1d_miss";
    case HwEvent::kItlbMiss: return "itlb_miss";
    case HwEvent::kBranchMiss: return "branch_miss";
  }
  return "?";
}

namespace {

bool DisabledByEnv() {
  const char* v = std::getenv("BUFFERDB_PERF_DISABLE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

#ifdef __linux__
int ReadParanoidLevel() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) return -100;
  int level = -100;
  if (std::fscanf(f, "%d", &level) != 1) level = -100;
  std::fclose(f);
  return level;
}

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

EventSpec SpecFor(HwEvent e) {
  auto cache = [](uint64_t id, uint64_t op, uint64_t result) {
    return id | (op << 8) | (result << 16);
  };
  switch (e) {
    case HwEvent::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case HwEvent::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case HwEvent::kL1iMiss:
      return {PERF_TYPE_HW_CACHE,
              cache(PERF_COUNT_HW_CACHE_L1I, PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case HwEvent::kL1dMiss:
      return {PERF_TYPE_HW_CACHE,
              cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case HwEvent::kItlbMiss:
      return {PERF_TYPE_HW_CACHE,
              cache(PERF_COUNT_HW_CACHE_ITLB, PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case HwEvent::kBranchMiss:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES};
  }
  return {PERF_TYPE_HARDWARE, 0};
}

// ENG007: the perf_event_open syscall lives here and only here.
int OpenEvent(HwEvent e, int group_fd) {
  EventSpec spec = SpecFor(e);
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  // The leader starts disabled and is enabled once the whole group has
  // joined, so all members cover the same interval; members inherit the
  // leader's run state.
  if (group_fd < 0) attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING | PERF_FORMAT_ID;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, group_fd,
              /*flags=*/0UL));
}
#endif  // __linux__

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  fds_.fill(-1);
  if (DisabledByEnv()) {
    reason_ = "hardware counters disabled via BUFFERDB_PERF_DISABLE";
    return;
  }
  OpenAll();
}

void PerfCounterGroup::OpenAll() {
#ifndef __linux__
  reason_ = "perf_event_open is Linux-only; this build has no PMU backend";
#else
  int first_errno = 0;
  std::string missing;
  for (int i = 0; i < kNumHwEvents; ++i) {
    int fd = OpenEvent(static_cast<HwEvent>(i), leader_fd_);
    if (fd < 0) {
      if (first_errno == 0) first_errno = errno;
      if (!missing.empty()) missing += ",";
      missing += HwEventName(static_cast<HwEvent>(i));
      continue;
    }
    fds_[static_cast<size_t>(i)] = fd;
    if (leader_fd_ < 0) leader_fd_ = fd;
    ++n_open_;
  }
  if (n_open_ == 0) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "perf_event_open failed for every event: %s "
                  "(kernel.perf_event_paranoid=%d; no PMU exposed in this "
                  "VM/container?)",
                  std::strerror(first_errno), ReadParanoidLevel());
    reason_ = buf;
    return;
  }
  if (n_open_ < kNumHwEvents) {
    reason_ = "events unavailable on this PMU: " + missing;
  }
  // Atomically start the whole group.
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif  // __linux__
}

PerfCounterGroup::~PerfCounterGroup() {
#ifdef __linux__
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

HwCounters PerfCounterGroup::ReadNow() const {
  HwCounters out;
#ifdef __linux__
  if (leader_fd_ < 0) return out;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // then {value, id} per event.
  struct {
    uint64_t nr;
    uint64_t time_enabled;
    uint64_t time_running;
    struct {
      uint64_t value;
      uint64_t id;
    } values[kNumHwEvents];
  } data;
  ssize_t n = read(leader_fd_, &data, sizeof(data));
  if (n < static_cast<ssize_t>(3 * sizeof(uint64_t))) return out;
  out.time_enabled_ns = data.time_enabled;
  out.time_running_ns = data.time_running;
  // Multiplex scaling: if the kernel time-sliced this group, extrapolate
  // counts to the full enabled window (the standard perf tool behavior).
  double scale = 1.0;
  if (data.time_running != 0 && data.time_running < data.time_enabled) {
    scale = static_cast<double>(data.time_enabled) /
            static_cast<double>(data.time_running);
  }
  // The kernel reports values in group-join order; map them back to events
  // by walking fds_ in the same order we opened them.
  size_t slot = 0;
  for (int i = 0; i < kNumHwEvents && slot < data.nr; ++i) {
    if (fds_[static_cast<size_t>(i)] < 0) continue;
    uint64_t v = data.values[slot++].value;
    if (scale != 1.0) {
      v = static_cast<uint64_t>(static_cast<double>(v) * scale);
    }
    switch (static_cast<HwEvent>(i)) {
      case HwEvent::kCycles: out.cycles = v; break;
      case HwEvent::kInstructions: out.instructions = v; break;
      case HwEvent::kL1iMiss: out.l1i_misses = v; break;
      case HwEvent::kL1dMiss: out.l1d_misses = v; break;
      case HwEvent::kItlbMiss: out.itlb_misses = v; break;
      case HwEvent::kBranchMiss: out.branch_misses = v; break;
    }
  }
#endif  // __linux__
  return out;
}

PerfCounterGroup& ThreadCounterGroup() {
  thread_local PerfCounterGroup group;
  return group;
}

}  // namespace bufferdb::perf

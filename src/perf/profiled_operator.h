#pragma once

#include <memory>
#include <string>

#include "exec/operator.h"
#include "perf/perf_region.h"
#include "perf/query_profile.h"

namespace bufferdb::perf {

/// Transparent decorator measuring one operator: every Open/Next/NextBatch/
/// Rescan/Close is bracketed by a PerfRegion accumulating wall time and
/// hardware counters (inclusive of the subtree's work) into the node's
/// OperatorStats, plus call and row counts.
///
/// Counter reads happen on the *calling* thread, so a wrapper inside an
/// Exchange fragment reads the worker thread's counter group (see
/// ThreadCounterGroup) — per-worker attribution needs no extra plumbing.
///
/// The inner operator is owned as child(0), mirroring
/// ContractCheckedOperator, so tree walks still see the real structure.
/// Costs per transfer call: one steady_clock pair always, plus two grouped
/// read(2) syscalls when the PMU is live. That is negligible per batch and
/// a measurable tax per tuple, which is why profiling is opt-in (--hw /
/// EXPLAIN ANALYZE paths), never default-on.
class ProfiledOperator final : public Operator {
 public:
  ProfiledOperator(OperatorPtr inner, OperatorStats* stats)
      : stats_(stats) {
    AddChild(std::move(inner));
  }

  [[nodiscard]] Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    PerfRegion region(&stats_->hw, &stats_->wall_ns);
    ++stats_->opens;
    return child(0)->Open(ctx);
  }

  const uint8_t* Next() override {
    PerfRegion region(&stats_->hw, &stats_->wall_ns);
    ++stats_->next_calls;
    const uint8_t* row = child(0)->Next();
    stats_->rows += row != nullptr ? 1 : 0;
    return row;
  }

  size_t NextBatch(const uint8_t** out, size_t max) override {
    PerfRegion region(&stats_->hw, &stats_->wall_ns);
    ++stats_->batch_calls;
    size_t n = child(0)->NextBatch(out, max);
    stats_->rows += n;
    return n;
  }

  [[nodiscard]] Status Rescan() override {
    PerfRegion region(&stats_->hw, &stats_->wall_ns);
    return child(0)->Rescan();
  }

  void Close() override {
    PerfRegion region(&stats_->hw, &stats_->wall_ns);
    child(0)->Close();
    // Post-run self-description (adaptive buffer capacities etc.); captured
    // at Close so EXPLAIN ANALYZE output reflects the executed query.
    stats_->detail = child(0)->AnalyzeDetail();
  }

  const Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  sim::ModuleId module_id() const override { return child(0)->module_id(); }
  std::string label() const override { return child(0)->label(); }
  bool BlocksInput(size_t i) const override {
    return child(0)->BlocksInput(i);
  }

 private:
  OperatorStats* stats_;
};

/// Recursively wraps every node of a finished physical plan in
/// ProfiledOperator, registering one OperatorStats per node in `profile`
/// (tree shape preserved via parent ids). Subtrees hanging off an
/// ExchangeOperator are tagged with their fragment index so the profile can
/// aggregate per worker. Call this AFTER planning and refinement — the
/// refiner inspects concrete operator types and footprints, which the
/// wrapper deliberately hides.
OperatorPtr ProfilePlan(OperatorPtr root, QueryProfile* profile);

}  // namespace bufferdb::perf

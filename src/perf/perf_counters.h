#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bufferdb::perf {

/// The hardware events the engine observes — the real-machine analogue of
/// sim::SimCounters. Field names intentionally mirror the simulator's so
/// tools/validate_sim.py can compare the two side by side: `l1i_misses`
/// here corresponds to the paper's trace-cache miss counter (the simulator's
/// `l1i_misses`), `branch_misses` to `mispredicts`, `itlb_misses` to
/// `itlb_misses`.
struct HwCounters {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t l1i_misses = 0;
  uint64_t l1d_misses = 0;
  uint64_t itlb_misses = 0;
  uint64_t branch_misses = 0;
  /// Multiplexing metadata from the grouped read: when `time_running_ns` <
  /// `time_enabled_ns` the kernel time-sliced the group against other PMU
  /// users and the values above were already scaled by enabled/running.
  uint64_t time_enabled_ns = 0;
  uint64_t time_running_ns = 0;

  HwCounters& operator+=(const HwCounters& other);
  HwCounters operator-(const HwCounters& other) const;
  bool AnyNonZero() const;

  /// One JSON object, e.g. {"cycles": 123, ...} — no trailing newline.
  std::string ToJson() const;
};

/// Index of each event within a PerfCounterGroup.
enum class HwEvent : int {
  kCycles = 0,
  kInstructions,
  kL1iMiss,
  kL1dMiss,
  kItlbMiss,
  kBranchMiss,
};
inline constexpr int kNumHwEvents = 6;

const char* HwEventName(HwEvent e);

/// RAII wrapper around one perf_event_open(2) counter group bound to the
/// calling thread (pid=0, cpu=-1): all events are opened under a common
/// group leader and read back atomically with a single PERF_FORMAT_GROUP
/// read(2), so a snapshot is consistent across events.
///
/// Degradation ladder (never fails construction):
///  - `BUFFERDB_PERF_DISABLE` set (and not "0")  -> no-op backend, reason
///    says so. Used by tests to force the fallback path deterministically.
///  - non-Linux build                            -> no-op backend.
///  - perf_event_open rejects every event (no PMU in the VM/container,
///    `kernel.perf_event_paranoid` too strict, seccomp)  -> no-op backend,
///    reason carries the syscall errno and the paranoid level.
///  - a subset of events opens (common on older cores that lack e.g. the
///    iTLB-miss cache event)                     -> partial backend:
///    available() is true, the missing events read 0 and are listed in
///    unavailable_reason().
///
/// Thread affinity: counters follow the thread that constructed the group.
/// Under parallel execution every Exchange worker therefore needs its own
/// group — ThreadCounterGroup() below hands out a lazily-built thread_local
/// instance, which is how per-worker attribution stays race-free.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least one hardware event is being counted.
  bool available() const { return n_open_ > 0; }

  /// True when every event in HwEvent opened.
  bool fully_available() const { return n_open_ == kNumHwEvents; }

  bool event_supported(HwEvent e) const {
    return fds_[static_cast<size_t>(e)] >= 0;
  }

  /// Why the backend is degraded; empty iff fully_available(). Always
  /// populated on the no-op backend (the acceptance contract: the reason is
  /// surfaced, not silently swallowed).
  const std::string& unavailable_reason() const { return reason_; }

  /// Snapshot of the running totals since construction (monotonic).
  /// Multiplex-scaled; a no-op backend reads all-zero. Cost: one read(2).
  HwCounters ReadNow() const;

 private:
  void OpenAll();

  std::array<int, kNumHwEvents> fds_;  // -1 = event unavailable.
  int leader_fd_ = -1;
  int n_open_ = 0;
  std::string reason_;
};

/// The calling thread's shared counter group, built on first use. All
/// PerfRegions on a thread read this single group: one group per thread
/// (instead of one per operator) keeps the PMU inside its 4-8 physical
/// counter budget, so the kernel never has to multiplex profiled operators
/// against each other and small bracketed windows stay accurate.
PerfCounterGroup& ThreadCounterGroup();

}  // namespace bufferdb::perf

#include "perf/profiled_operator.h"

#include <utility>

#include "parallel/exchange.h"
#include "sim/code_layout.h"

namespace bufferdb::perf {

namespace {

OperatorPtr WrapRec(OperatorPtr op, QueryProfile* profile, int parent,
                    int fragment) {
  bool is_exchange =
      dynamic_cast<parallel::ExchangeOperator*>(op.get()) != nullptr;
  OperatorStats* stats = profile->AddNode(
      op->label(), sim::ModuleName(op->module_id()), parent, fragment);
  for (size_t i = 0; i < op->num_children(); ++i) {
    int child_fragment = is_exchange ? static_cast<int>(i) : fragment;
    op->SetChild(i, WrapRec(op->TakeChild(i), profile, stats->id,
                            child_fragment));
  }
  return std::make_unique<ProfiledOperator>(std::move(op), stats);
}

}  // namespace

OperatorPtr ProfilePlan(OperatorPtr root, QueryProfile* profile) {
  if (root == nullptr) return root;
  return WrapRec(std::move(root), profile, /*parent=*/-1, /*fragment=*/-1);
}

}  // namespace bufferdb::perf

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "perf/perf_counters.h"

namespace bufferdb {
struct RefinementReport;  // core/plan_refiner.h
}

namespace bufferdb::perf {

/// Per-operator measurement record. Costs are *inclusive*: a node's region
/// brackets its children's work on the same thread (Volcano pull). Exclusive
/// costs are derived by QueryProfile (inclusive minus same-fragment
/// children's inclusive).
///
/// Thread-safety: every node is written by exactly one thread (the thread
/// driving its operator — the consumer thread, or one Exchange worker), and
/// only read after the query drained and workers joined. No atomics needed.
struct OperatorStats {
  int id = -1;
  int parent = -1;  // -1 = plan root.
  /// Exchange worker index executing this subtree; -1 = consumer thread.
  /// Per-worker aggregation falls out of this: nodes sharing a fragment id
  /// ran on the same pool worker.
  int fragment = -1;
  std::string label;
  std::string module;
  /// Operator's post-run self-description (Operator::AnalyzeDetail), e.g.
  /// "adaptive: 1000 -> 2048 (locked, ...)". Empty for most operators.
  std::string detail;
  std::vector<int> children;

  uint64_t opens = 0;
  uint64_t next_calls = 0;
  uint64_t batch_calls = 0;
  uint64_t rows = 0;

  uint64_t wall_ns = 0;  // Inclusive, always populated.
  HwCounters hw;         // Inclusive; all-zero when the PMU backend is a no-op.
};

/// Per-execution-group rollup (the refiner's §6.1 groups mapped onto the
/// measured plan): which buffered/unbuffered group each operator landed in
/// and what it cost on real hardware.
struct GroupStats {
  std::string name;
  bool buffered = false;
  std::vector<int> node_ids;
  uint64_t wall_ns = 0;  // Sum of member exclusive wall time.
  HwCounters hw;         // Sum of member exclusive counters.
};

/// Result of profiling one query execution: the operator tree annotated
/// with call counts, row counts, wall time and hardware counters, plus the
/// PMU backend's availability so consumers can tell "zero misses" from
/// "counters off". Rendered as an EXPLAIN ANALYZE-style text tree or as a
/// single JSON object for tooling (tools/validate_sim.py, bench baselines).
class QueryProfile {
 public:
  QueryProfile();

  QueryProfile(QueryProfile&&) = default;
  QueryProfile& operator=(QueryProfile&&) = default;

  /// Registers a node; the returned pointer stays valid for the profile's
  /// lifetime (deque storage). Called during plan wrapping, before
  /// execution, single-threaded.
  OperatorStats* AddNode(const std::string& label, const std::string& module,
                         int parent, int fragment);

  const std::deque<OperatorStats>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  /// Whether the wrapping thread's PMU backend had any live hardware event.
  bool hw_available() const { return hw_available_; }
  /// Degradation reason (empty only when every event opened).
  const std::string& unavailable_reason() const { return unavailable_reason_; }

  /// Exclusive cost of node `id`: inclusive minus the inclusive costs of
  /// its same-fragment children (children running as Exchange workers are
  /// concurrent, measured by their own thread's counters, and excluded).
  uint64_t ExclusiveWallNs(int id) const;
  HwCounters ExclusiveHw(int id) const;

  /// Inclusive cost of the plan root as seen by the consumer thread.
  uint64_t RootWallNs() const;
  HwCounters RootHw() const;

  /// Sum of exclusive costs over every node, including worker fragments —
  /// total work attributed across all threads. For a serial plan this
  /// telescopes back to exactly RootWallNs()/RootHw().
  uint64_t TotalAttributedWallNs() const;
  HwCounters TotalAttributedHw() const;

  /// Maps the refiner's execution groups onto measured nodes by operator
  /// label (greedy, each node consumed once) and stores the rollup for
  /// ToText()/ToJson(). Nodes not named by any group (Buffer operators, the
  /// plan root, Exchange plumbing) are left out of group rollups.
  void AttributeGroups(const RefinementReport& report);
  const std::vector<GroupStats>& groups() const { return groups_; }

  /// EXPLAIN ANALYZE-style indented tree, one line per operator.
  std::string ToText() const;
  /// One JSON object (no trailing newline) with nodes, totals, group
  /// rollups and PMU availability.
  std::string ToJson() const;

 private:
  std::deque<OperatorStats> nodes_;
  std::vector<GroupStats> groups_;
  bool hw_available_ = false;
  std::string unavailable_reason_;
};

}  // namespace bufferdb::perf

#include "perf/query_profile.h"

#include <algorithm>
#include <cstdio>

#include "core/plan_refiner.h"

namespace bufferdb::perf {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendU64(std::string* out, const char* key, uint64_t v,
               bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(v),
                trailing_comma ? ", " : "");
  out->append(buf);
}

}  // namespace

QueryProfile::QueryProfile() {
  const PerfCounterGroup& group = ThreadCounterGroup();
  hw_available_ = group.available();
  unavailable_reason_ = group.unavailable_reason();
}

OperatorStats* QueryProfile::AddNode(const std::string& label,
                                     const std::string& module, int parent,
                                     int fragment) {
  OperatorStats& node = nodes_.emplace_back();
  node.id = static_cast<int>(nodes_.size()) - 1;
  node.parent = parent;
  node.fragment = fragment;
  node.label = label;
  node.module = module;
  if (parent >= 0 && parent < node.id) {
    nodes_[static_cast<size_t>(parent)].children.push_back(node.id);
  }
  return &node;
}

uint64_t QueryProfile::ExclusiveWallNs(int id) const {
  const OperatorStats& node = nodes_[static_cast<size_t>(id)];
  uint64_t excl = node.wall_ns;
  for (int c : node.children) {
    const OperatorStats& child = nodes_[static_cast<size_t>(c)];
    if (child.fragment != node.fragment) continue;  // Concurrent worker.
    excl = excl >= child.wall_ns ? excl - child.wall_ns : 0;
  }
  return excl;
}

HwCounters QueryProfile::ExclusiveHw(int id) const {
  const OperatorStats& node = nodes_[static_cast<size_t>(id)];
  HwCounters excl = node.hw;
  for (int c : node.children) {
    const OperatorStats& child = nodes_[static_cast<size_t>(c)];
    if (child.fragment != node.fragment) continue;
    excl = excl - child.hw;
  }
  return excl;
}

uint64_t QueryProfile::RootWallNs() const {
  for (const OperatorStats& n : nodes_) {
    if (n.parent == -1) return n.wall_ns;
  }
  return 0;
}

HwCounters QueryProfile::RootHw() const {
  for (const OperatorStats& n : nodes_) {
    if (n.parent == -1) return n.hw;
  }
  return HwCounters();
}

uint64_t QueryProfile::TotalAttributedWallNs() const {
  uint64_t total = 0;
  for (const OperatorStats& n : nodes_) total += ExclusiveWallNs(n.id);
  return total;
}

HwCounters QueryProfile::TotalAttributedHw() const {
  HwCounters total;
  for (const OperatorStats& n : nodes_) total += ExclusiveHw(n.id);
  return total;
}

void QueryProfile::AttributeGroups(const RefinementReport& report) {
  groups_.clear();
  std::vector<bool> consumed(nodes_.size(), false);
  for (const ExecutionGroup& group : report.groups) {
    GroupStats stats;
    stats.buffered = group.buffered;
    for (const std::string& label : group.op_labels) {
      if (!stats.name.empty()) stats.name += " + ";
      stats.name += label;
      for (const OperatorStats& node : nodes_) {
        size_t idx = static_cast<size_t>(node.id);
        if (consumed[idx] || node.label != label) continue;
        consumed[idx] = true;
        stats.node_ids.push_back(node.id);
        stats.wall_ns += ExclusiveWallNs(node.id);
        stats.hw += ExclusiveHw(node.id);
        break;
      }
    }
    groups_.push_back(std::move(stats));
  }
}

std::string QueryProfile::ToText() const {
  std::string out = "QueryProfile";
  if (hw_available_) {
    out += " (hw counters: on";
    if (!unavailable_reason_.empty()) {
      out += "; " + unavailable_reason_;
    }
    out += ")\n";
  } else {
    out += " (hw counters: UNAVAILABLE — " + unavailable_reason_ + ")\n";
  }
  char line[512];
  std::snprintf(line, sizeof(line), "%-52s %10s %10s %10s %10s %12s %12s %10s\n",
                "operator", "calls", "rows", "wall_ms", "excl_ms", "cycles",
                "instr", "l1i_miss");
  out += line;

  // Depth-first over the recorded tree; nodes_ preserves wrap order but the
  // children lists give the true structure.
  struct Frame {
    int id;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    if (it->parent == -1) stack.push_back({it->id, 0});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const OperatorStats& n = nodes_[static_cast<size_t>(f.id)];
    std::string name(static_cast<size_t>(f.depth) * 2, ' ');
    name += n.label;
    if (n.fragment >= 0 &&
        (n.parent < 0 ||
         nodes_[static_cast<size_t>(n.parent)].fragment != n.fragment)) {
      name += " [worker " + std::to_string(n.fragment) + "]";
    }
    HwCounters excl = ExclusiveHw(n.id);
    std::snprintf(line, sizeof(line),
                  "%-52s %10llu %10llu %10.3f %10.3f %12llu %12llu %10llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(n.next_calls + n.batch_calls),
                  static_cast<unsigned long long>(n.rows),
                  static_cast<double>(n.wall_ns) / 1e6,
                  static_cast<double>(ExclusiveWallNs(n.id)) / 1e6,
                  static_cast<unsigned long long>(excl.cycles),
                  static_cast<unsigned long long>(excl.instructions),
                  static_cast<unsigned long long>(excl.l1i_misses));
    out += line;
    if (!n.detail.empty()) {
      out += std::string(static_cast<size_t>(f.depth) * 2 + 2, ' ');
      out += "`- ";
      out += n.detail;
      out += "\n";
    }
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }

  if (!groups_.empty()) {
    out += "execution groups:\n";
    for (const GroupStats& g : groups_) {
      HwCounters hw = g.hw;
      std::snprintf(line, sizeof(line),
                    "  %s[%s]  wall_ms=%.3f cycles=%llu l1i_miss=%llu\n",
                    g.buffered ? "buffered " : "", g.name.c_str(),
                    static_cast<double>(g.wall_ns) / 1e6,
                    static_cast<unsigned long long>(hw.cycles),
                    static_cast<unsigned long long>(hw.l1i_misses));
      out += line;
    }
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  out += "\"hw_available\": ";
  out += hw_available_ ? "true" : "false";
  out += ", \"unavailable_reason\": \"" + JsonEscape(unavailable_reason_) +
         "\", ";
  AppendU64(&out, "root_wall_ns", RootWallNs());
  AppendU64(&out, "total_attributed_wall_ns", TotalAttributedWallNs());
  out += "\"root_hw\": " + RootHw().ToJson() + ", ";
  out += "\"total_attributed_hw\": " + TotalAttributedHw().ToJson() + ", ";
  out += "\"nodes\": [";
  bool first = true;
  for (const OperatorStats& n : nodes_) {
    if (!first) out += ", ";
    first = false;
    out += "{";
    AppendU64(&out, "id", static_cast<uint64_t>(n.id));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"parent\": %d, \"fragment\": %d, ",
                  n.parent, n.fragment);
    out += buf;
    out += "\"label\": \"" + JsonEscape(n.label) + "\", ";
    out += "\"module\": \"" + JsonEscape(n.module) + "\", ";
    out += "\"detail\": \"" + JsonEscape(n.detail) + "\", ";
    AppendU64(&out, "opens", n.opens);
    AppendU64(&out, "next_calls", n.next_calls);
    AppendU64(&out, "batch_calls", n.batch_calls);
    AppendU64(&out, "rows", n.rows);
    AppendU64(&out, "wall_ns", n.wall_ns);
    AppendU64(&out, "excl_wall_ns", ExclusiveWallNs(n.id));
    out += "\"hw\": " + n.hw.ToJson() + ", ";
    out += "\"hw_excl\": " + ExclusiveHw(n.id).ToJson();
    out += "}";
  }
  out += "], \"groups\": [";
  first = true;
  for (const GroupStats& g : groups_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + JsonEscape(g.name) + "\", \"buffered\": ";
    out += g.buffered ? "true" : "false";
    out += ", ";
    AppendU64(&out, "wall_ns", g.wall_ns);
    out += "\"hw\": " + g.hw.ToJson();
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace bufferdb::perf

#pragma once

#include <chrono>
#include <cstdint>

#include "perf/perf_counters.h"

namespace bufferdb::perf {

/// Scoped counter bracket: snapshots the thread's counter group (and the
/// steady clock) on entry and accumulates the delta into the given sinks on
/// destruction. Wall time is accumulated unconditionally, so attribution
/// keeps working on hosts where the PMU backend degraded to a no-op.
///
///   {
///     PerfRegion region(&stats.hw, &stats.wall_ns);
///     ... bracketed work ...
///   }   // stats.hw += delta, stats.wall_ns += elapsed
///
/// Regions nest naturally (the group totals are monotonic), which is how
/// per-operator attribution measures *inclusive* costs: a parent operator's
/// region contains its children's. Exclusive costs are derived by
/// subtraction in QueryProfile.
///
/// A PerfRegion must be destroyed on the thread that created it — it reads
/// ThreadCounterGroup(), which is thread-local.
class PerfRegion {
 public:
  explicit PerfRegion(HwCounters* hw_sink, uint64_t* wall_ns_sink = nullptr)
      : hw_sink_(hw_sink), wall_ns_sink_(wall_ns_sink) {
    PerfCounterGroup& group = ThreadCounterGroup();
    hw_active_ = hw_sink_ != nullptr && group.available();
    if (hw_active_) begin_ = group.ReadNow();
    if (wall_ns_sink_ != nullptr) {
      wall_begin_ = std::chrono::steady_clock::now();
    }
  }

  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

  ~PerfRegion() {
    if (wall_ns_sink_ != nullptr) {
      auto elapsed = std::chrono::steady_clock::now() - wall_begin_;
      *wall_ns_sink_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
    }
    if (hw_active_) {
      *hw_sink_ += ThreadCounterGroup().ReadNow() - begin_;
    }
  }

 private:
  HwCounters* hw_sink_;
  uint64_t* wall_ns_sink_;
  bool hw_active_ = false;
  HwCounters begin_;
  std::chrono::steady_clock::time_point wall_begin_;
};

}  // namespace bufferdb::perf

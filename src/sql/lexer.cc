#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace bufferdb::sql {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      token.type = TokenType::kIdentifier;
      token.text = sql.substr(start, i - start);
      for (char& ch : token.text) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        ++i;
      }
      token.text = sql.substr(start, i - start);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::strtod(token.text.c_str(), nullptr);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = std::strtoll(token.text.c_str(), nullptr, 10);
      }
    } else if (c == '\'') {
      ++i;
      size_t start = i;
      while (i < n && sql[i] != '\'') ++i;
      if (i >= n) {
        return Status::ParseError("unterminated string literal");
      }
      token.type = TokenType::kString;
      token.text = sql.substr(start, i - start);
      ++i;  // Closing quote.
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.type = TokenType::kSymbol;
          token.text = two == "!=" ? "<>" : two;
          tokens.push_back(token);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),*+-/=<>.;";
      if (kSingles.find(c) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(token);
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace bufferdb::sql

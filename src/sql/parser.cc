#include "sql/parser.h"

#include "common/date.h"

namespace bufferdb::sql {

namespace {

ParseExprPtr CloneParseExpr(const ParseExpr& e) {
  auto out = std::make_unique<ParseExpr>();
  out->kind = e.kind;
  out->column_name = e.column_name;
  out->literal = e.literal;
  out->binary_op = e.binary_op;
  out->unary_op = e.unary_op;
  if (e.left != nullptr) out->left = CloneParseExpr(*e.left);
  if (e.right != nullptr) out->right = CloneParseExpr(*e.right);
  return out;
}

ParseExprPtr MakeParseBinary(BinaryOp op, ParseExprPtr l, ParseExprPtr r) {
  auto node = std::make_unique<ParseExpr>();
  node->kind = ParseExpr::Kind::kBinary;
  node->binary_op = op;
  node->left = std::move(l);
  node->right = std::move(r);
  return node;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    if (!MatchKeyword("select")) return Error("expected SELECT");
    stmt.distinct = MatchKeyword("distinct");
    BUFFERDB_RETURN_IF_ERROR(ParseSelectList(&stmt));
    if (!MatchKeyword("from")) return Error("expected FROM");
    BUFFERDB_RETURN_IF_ERROR(ParseFromList(&stmt));
    if (MatchKeyword("where")) {
      auto expr = ParseExprOr();
      if (!expr.ok()) return expr.status();
      stmt.where = std::move(*expr);
    }
    if (MatchKeyword("group")) {
      if (!MatchKeyword("by")) return Error("expected BY after GROUP");
      do {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected column in GROUP BY");
        }
        stmt.group_by.push_back(ParseQualifiedName());
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("having")) {
      auto expr = ParseExprOr();
      if (!expr.ok()) return expr.status();
      stmt.having = std::move(*expr);
    }
    if (MatchKeyword("order")) {
      if (!MatchKeyword("by")) return Error("expected BY after ORDER");
      do {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected column in ORDER BY");
        }
        ParsedOrderBy ob;
        ob.column = ParseQualifiedName();
        if (MatchKeyword("desc")) {
          ob.descending = true;
        } else {
          MatchKeyword("asc");
        }
        stmt.order_by.push_back(std::move(ob));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt.limit = Peek().int_value;
      Advance();
    }
    MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) return Error("trailing input");
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool MatchKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kIdentifier && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kIdentifier && Peek().text == kw;
  }
  bool MatchSymbol(const std::string& s) {
    if (Peek().type == TokenType::kSymbol && Peek().text == s) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekSymbol(const std::string& s, size_t ahead = 0) const {
    return Peek(ahead).type == TokenType::kSymbol && Peek(ahead).text == s;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  // name | name.name
  std::string ParseQualifiedName() {
    std::string name = Peek().text;
    Advance();
    if (PeekSymbol(".")) {
      Advance();
      name += ".";
      name += Peek().text;
      Advance();
    }
    return name;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    do {
      ParsedSelectItem item;
      std::optional<AggFunc> agg = PeekAggFunc();
      if (agg.has_value() && PeekSymbol("(", 1)) {
        Advance();  // Function name.
        Advance();  // '('.
        item.is_aggregate = true;
        item.agg_func = *agg;
        if (*agg == AggFunc::kCountStar || (*agg == AggFunc::kCount &&
                                            PeekSymbol("*"))) {
          if (!MatchSymbol("*")) return Error("expected * in COUNT(*)");
          item.agg_func = AggFunc::kCountStar;
        } else {
          auto expr = ParseExprAdd();
          if (!expr.ok()) return expr.status();
          item.expr = std::move(*expr);
        }
        if (!MatchSymbol(")")) return Error("expected ) after aggregate");
      } else {
        auto expr = ParseExprAdd();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(*expr);
      }
      if (MatchKeyword("as")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Peek().text;
        Advance();
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));
    return Status::OK();
  }

  std::optional<AggFunc> PeekAggFunc() const {
    if (Peek().type != TokenType::kIdentifier) return std::nullopt;
    const std::string& t = Peek().text;
    if (t == "count") return AggFunc::kCount;
    if (t == "sum") return AggFunc::kSum;
    if (t == "avg") return AggFunc::kAvg;
    if (t == "min") return AggFunc::kMin;
    if (t == "max") return AggFunc::kMax;
    return std::nullopt;
  }

  Status ParseFromList(SelectStatement* stmt) {
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected table name");
      }
      stmt->from_tables.push_back(Peek().text);
      Advance();
    } while (MatchSymbol(","));
    return Status::OK();
  }

  // Expression grammar: or -> and -> not -> comparison -> add -> mul -> unary
  // -> primary.
  Result<ParseExprPtr> ParseExprOr() {
    auto left = ParseExprAnd();
    if (!left.ok()) return left;
    while (MatchKeyword("or")) {
      auto right = ParseExprAnd();
      if (!right.ok()) return right;
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kBinary;
      node->binary_op = BinaryOp::kOr;
      node->left = std::move(*left);
      node->right = std::move(*right);
      *left = std::move(node);
    }
    return left;
  }

  Result<ParseExprPtr> ParseExprAnd() {
    auto left = ParseExprNot();
    if (!left.ok()) return left;
    while (MatchKeyword("and")) {
      auto right = ParseExprNot();
      if (!right.ok()) return right;
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kBinary;
      node->binary_op = BinaryOp::kAnd;
      node->left = std::move(*left);
      node->right = std::move(*right);
      *left = std::move(node);
    }
    return left;
  }

  Result<ParseExprPtr> ParseExprNot() {
    if (MatchKeyword("not")) {
      auto operand = ParseExprNot();
      if (!operand.ok()) return operand;
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kUnary;
      node->unary_op = UnaryOp::kNot;
      node->left = std::move(*operand);
      return node;
    }
    return ParseComparison();
  }

  Result<ParseExprPtr> ParseComparison() {
    auto left = ParseExprAdd();
    if (!left.ok()) return left;
    static const struct {
      const char* sym;
      BinaryOp op;
    } kOps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                {"<>", BinaryOp::kNe}, {"=", BinaryOp::kEq},
                {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& candidate : kOps) {
      if (PeekSymbol(candidate.sym)) {
        Advance();
        auto right = ParseExprAdd();
        if (!right.ok()) return right;
        auto node = std::make_unique<ParseExpr>();
        node->kind = ParseExpr::Kind::kBinary;
        node->binary_op = candidate.op;
        node->left = std::move(*left);
        node->right = std::move(*right);
        return Result<ParseExprPtr>(std::move(node));
      }
    }
    // x BETWEEN a AND b  ->  x >= a AND x <= b.
    if (PeekKeyword("between")) {
      Advance();
      auto lo = ParseExprAdd();
      if (!lo.ok()) return lo;
      if (!MatchKeyword("and")) return Error("expected AND in BETWEEN");
      auto hi = ParseExprAdd();
      if (!hi.ok()) return hi;
      auto ge = MakeParseBinary(BinaryOp::kGe, CloneParseExpr(**left),
                                std::move(*lo));
      auto le = MakeParseBinary(BinaryOp::kLe, std::move(*left),
                                std::move(*hi));
      return Result<ParseExprPtr>(
          MakeParseBinary(BinaryOp::kAnd, std::move(ge), std::move(le)));
    }
    // x [NOT] LIKE 'pattern'.
    bool negated_like = false;
    if (PeekKeyword("not") && Peek(1).type == TokenType::kIdentifier &&
        Peek(1).text == "like") {
      Advance();
      negated_like = true;
    }
    if (PeekKeyword("like")) {
      Advance();
      auto pattern = ParseExprAdd();
      if (!pattern.ok()) return pattern;
      auto like = MakeParseBinary(BinaryOp::kLike, std::move(*left),
                                  std::move(*pattern));
      if (!negated_like) return Result<ParseExprPtr>(std::move(like));
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kUnary;
      node->unary_op = UnaryOp::kNot;
      node->left = std::move(like);
      return Result<ParseExprPtr>(std::move(node));
    }
    if (negated_like) return Error("expected LIKE after NOT");
    // x [NOT] IN (v1, v2, ...)  ->  [NOT] (x = v1 OR x = v2 OR ...).
    bool negated_in = false;
    if (PeekKeyword("not") && Peek(1).type == TokenType::kIdentifier &&
        Peek(1).text == "in") {
      Advance();
      negated_in = true;
    }
    if (PeekKeyword("in")) {
      Advance();
      if (!MatchSymbol("(")) return Error("expected ( after IN");
      ParseExprPtr disjunction;
      do {
        auto v = ParseExprAdd();
        if (!v.ok()) return v;
        auto eq = MakeParseBinary(BinaryOp::kEq, CloneParseExpr(**left),
                                  std::move(*v));
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : MakeParseBinary(BinaryOp::kOr,
                                            std::move(disjunction),
                                            std::move(eq));
      } while (MatchSymbol(","));
      if (!MatchSymbol(")")) return Error("expected ) after IN list");
      if (!negated_in) return Result<ParseExprPtr>(std::move(disjunction));
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kUnary;
      node->unary_op = UnaryOp::kNot;
      node->left = std::move(disjunction);
      return Result<ParseExprPtr>(std::move(node));
    }
    if (negated_in) return Error("expected IN after NOT");
    // IS NULL / IS NOT NULL.
    if (PeekKeyword("is")) {
      Advance();
      bool negated = MatchKeyword("not");
      if (!MatchKeyword("null")) return Error("expected NULL after IS");
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kUnary;
      node->unary_op = negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull;
      node->left = std::move(*left);
      return Result<ParseExprPtr>(std::move(node));
    }
    return left;
  }

  Result<ParseExprPtr> ParseExprAdd() {
    auto left = ParseExprMul();
    if (!left.ok()) return left;
    while (PeekSymbol("+") || PeekSymbol("-")) {
      BinaryOp op = PeekSymbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      auto right = ParseExprMul();
      if (!right.ok()) return right;
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kBinary;
      node->binary_op = op;
      node->left = std::move(*left);
      node->right = std::move(*right);
      *left = std::move(node);
    }
    return left;
  }

  Result<ParseExprPtr> ParseExprMul() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    while (PeekSymbol("*") || PeekSymbol("/")) {
      BinaryOp op = PeekSymbol("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      Advance();
      auto right = ParseUnary();
      if (!right.ok()) return right;
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kBinary;
      node->binary_op = op;
      node->left = std::move(*left);
      node->right = std::move(*right);
      *left = std::move(node);
    }
    return left;
  }

  Result<ParseExprPtr> ParseUnary() {
    if (PeekSymbol("-")) {
      Advance();
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto node = std::make_unique<ParseExpr>();
      node->kind = ParseExpr::Kind::kUnary;
      node->unary_op = UnaryOp::kNegate;
      node->left = std::move(*operand);
      return Result<ParseExprPtr>(std::move(node));
    }
    return ParsePrimary();
  }

  Result<ParseExprPtr> ParsePrimary() {
    auto node = std::make_unique<ParseExpr>();
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger:
        node->kind = ParseExpr::Kind::kLiteral;
        node->literal = Value::Int64(token.int_value);
        Advance();
        return Result<ParseExprPtr>(std::move(node));
      case TokenType::kFloat:
        node->kind = ParseExpr::Kind::kLiteral;
        node->literal = Value::Double(token.float_value);
        Advance();
        return Result<ParseExprPtr>(std::move(node));
      case TokenType::kString:
        node->kind = ParseExpr::Kind::kLiteral;
        node->literal = Value::String(token.text);
        Advance();
        return Result<ParseExprPtr>(std::move(node));
      case TokenType::kIdentifier: {
        if (token.text == "date" && Peek(1).type == TokenType::kString) {
          Advance();
          auto days = ParseDate(Peek().text);
          if (!days.ok()) return days.status();
          node->kind = ParseExpr::Kind::kLiteral;
          node->literal = Value::Date(*days);
          Advance();
          return Result<ParseExprPtr>(std::move(node));
        }
        node->kind = ParseExpr::Kind::kColumn;
        node->column_name = ParseQualifiedName();
        return Result<ParseExprPtr>(std::move(node));
      }
      case TokenType::kSymbol:
        if (token.text == "(") {
          Advance();
          auto inner = ParseExprOr();
          if (!inner.ok()) return inner;
          if (!MatchSymbol(")")) return Error("expected )");
          return inner;
        }
        break;
      case TokenType::kEnd:
        break;
    }
    return Error("unexpected token '" + token.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string ParseExpr::ToString() const {
  // Append-form throughout (not `"(" + s + ...`) to dodge gcc 12's -O3
  // -Wrestrict false positive (PR105651).
  std::string out;
  switch (kind) {
    case Kind::kColumn:
      return column_name;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      out += "(";
      out += left->ToString();
      out += " ";
      out += BinaryOpName(binary_op);
      out += " ";
      out += right->ToString();
      out += ")";
      return out;
    case Kind::kUnary:
      out += "(";
      out += unary_op == UnaryOp::kNot ? "NOT " : "-";
      out += left->ToString();
      out += ")";
      return out;
  }
  return "?";
}

Result<SelectStatement> ParseSelect(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace bufferdb::sql

#include "sql/binder.h"

#include <algorithm>

#include "expr/evaluator.h"

namespace bufferdb::sql {

namespace {

struct Scope {
  std::vector<Table*> tables;
  std::vector<size_t> offsets;  // Column offset of each table in the
                                // combined schema.
  const Schema* schema = nullptr;
};

// Resolves a (possibly qualified) column name to an index in the combined
// schema.
Result<int> ResolveColumn(const Scope& scope, const std::string& name) {
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    std::string table_name = name.substr(0, dot);
    std::string column_name = name.substr(dot + 1);
    for (size_t t = 0; t < scope.tables.size(); ++t) {
      if (scope.tables[t]->name() == table_name) {
        int col = scope.tables[t]->schema().FindColumn(column_name);
        if (col < 0) {
          return Status::NotFound("no column " + column_name + " in " +
                                  table_name);
        }
        return static_cast<int>(scope.offsets[t]) + col;
      }
    }
    return Status::NotFound("table not in FROM: " + table_name);
  }
  int found = -1;
  for (size_t c = 0; c < scope.schema->num_columns(); ++c) {
    if (scope.schema->column(c).name == name) {
      if (found >= 0) return Status::InvalidArgument("ambiguous column: " + name);
      found = static_cast<int>(c);
    }
  }
  if (found < 0) return Status::NotFound("no such column: " + name);
  return found;
}

Result<ExprPtr> BindExpr(const ParseExpr& pe, const Scope& scope) {
  switch (pe.kind) {
    case ParseExpr::Kind::kColumn: {
      BUFFERDB_ASSIGN_OR_RETURN(col, ResolveColumn(scope, pe.column_name));
      return ExprPtr(MakeColumnRefUnchecked(
          col, scope.schema->column(col).type, scope.schema->column(col).name));
    }
    case ParseExpr::Kind::kLiteral:
      return ExprPtr(MakeLiteral(pe.literal));
    case ParseExpr::Kind::kBinary: {
      BUFFERDB_ASSIGN_OR_RETURN(left, BindExpr(*pe.left, scope));
      BUFFERDB_ASSIGN_OR_RETURN(right, BindExpr(*pe.right, scope));
      return MakeBinary(pe.binary_op, std::move(left), std::move(right));
    }
    case ParseExpr::Kind::kUnary: {
      BUFFERDB_ASSIGN_OR_RETURN(operand, BindExpr(*pe.left, scope));
      return MakeUnary(pe.unary_op, std::move(operand));
    }
  }
  return Status::Internal("bad parse expr");
}

// Clones `expr`, shifting every column index by -offset and renaming to the
// local table schema (used to push a conjunct down to one table's scan).
ExprPtr Localize(const Expression& expr, int offset, const Schema& local) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(expr);
      int local_col = col.column() - offset;
      return MakeColumnRefUnchecked(local_col, local.column(local_col).type,
                                    local.column(local_col).name);
    }
    case ExprKind::kLiteral:
      return expr.Clone();
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      auto out = MakeBinary(b.op(), Localize(b.left(), offset, local),
                            Localize(b.right(), offset, local));
      return std::move(*out);
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      auto out = MakeUnary(u.op(), Localize(u.operand(), offset, local));
      return std::move(*out);
    }
  }
  return nullptr;
}

void FlattenConjuncts(ParseExpr* expr, std::vector<ParseExpr*>* out) {
  if (expr->kind == ParseExpr::Kind::kBinary &&
      expr->binary_op == BinaryOp::kAnd) {
    FlattenConjuncts(expr->left.get(), out);
    FlattenConjuncts(expr->right.get(), out);
  } else {
    out->push_back(expr);
  }
}

ExprPtr AndCombine(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  auto r = MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
  return std::move(*r);
}

// Which tables does a bound conjunct reference? Returns a bitmask with one
// bit per FROM table, using the tables' column offsets in the combined
// schema.
unsigned TableMask(const Expression& expr, const std::vector<size_t>& offsets,
                   size_t total_columns) {
  std::vector<int> cols;
  CollectColumns(expr, &cols);
  unsigned mask = 0;
  for (int c : cols) {
    for (size_t t = 0; t < offsets.size(); ++t) {
      size_t end = t + 1 < offsets.size() ? offsets[t + 1] : total_columns;
      if (static_cast<size_t>(c) >= offsets[t] &&
          static_cast<size_t>(c) < end) {
        mask |= 1u << t;
        break;
      }
    }
  }
  return mask;
}

int SingleTableOf(unsigned mask) {
  for (int t = 0; t < 32; ++t) {
    if (mask == (1u << t)) return t;
  }
  return -1;
}

}  // namespace

Result<LogicalQuery> Binder::Bind(const SelectStatement& stmt) {
  LogicalQuery query;
  if (stmt.from_tables.empty() || stmt.from_tables.size() > 6) {
    return Status::NotImplemented("FROM must list between 1 and 6 tables");
  }

  Scope scope;
  for (const std::string& name : stmt.from_tables) {
    Table* table = catalog_->GetTable(name);
    if (table == nullptr) return Status::NotFound("no such table: " + name);
    query.tables.push_back(table);
    scope.tables.push_back(table);
  }
  query.filters.resize(query.tables.size());
  {
    std::vector<Column> cols;
    size_t offset = 0;
    for (Table* table : query.tables) {
      scope.offsets.push_back(offset);
      for (const Column& c : table->schema().columns()) cols.push_back(c);
      offset += table->schema().num_columns();
    }
    if (cols.size() > Schema::kMaxColumns) {
      return Status::NotImplemented("joined schema exceeds 64 columns");
    }
    query.input_schema = Schema(std::move(cols));
  }
  scope.schema = &query.input_schema;

  // WHERE: classify conjuncts into per-table filters, equi-join edges and
  // cross-table predicates.
  if (stmt.where != nullptr) {
    std::vector<ParseExpr*> conjuncts;
    FlattenConjuncts(stmt.where.get(), &conjuncts);
    for (ParseExpr* pe : conjuncts) {
      BUFFERDB_ASSIGN_OR_RETURN(bound_raw, BindExpr(*pe, scope));
      ExprPtr bound = FoldConstants(std::move(bound_raw));
      if (bound->result_type() != DataType::kBool) {
        return Status::TypeError("WHERE clause must be boolean: " +
                                 bound->ToString());
      }
      unsigned mask =
          TableMask(*bound, scope.offsets, query.input_schema.num_columns());
      int single = SingleTableOf(mask);
      if (mask == 0) single = 0;  // Constant predicate: attach to t0.
      if (single >= 0) {
        query.filters[single] = AndCombine(
            std::move(query.filters[single]),
            Localize(*bound, static_cast<int>(scope.offsets[single]),
                     query.tables[single]->schema()));
        continue;
      }
      // Cross-table: an equality between single columns of two tables is a
      // join edge; everything else is a cross predicate.
      bool is_edge = false;
      if (bound->kind() == ExprKind::kBinary) {
        const auto& b = static_cast<const BinaryExpr&>(*bound);
        if (b.op() == BinaryOp::kEq &&
            b.left().kind() == ExprKind::kColumnRef &&
            b.right().kind() == ExprKind::kColumnRef) {
          int lc = static_cast<const ColumnRefExpr&>(b.left()).column();
          int rc = static_cast<const ColumnRefExpr&>(b.right()).column();
          auto table_of = [&scope, &query](int c) {
            for (size_t t = scope.offsets.size(); t-- > 0;) {
              if (static_cast<size_t>(c) >= scope.offsets[t]) {
                return static_cast<int>(t);
              }
            }
            (void)query;
            return 0;
          };
          int lt = table_of(lc), rt = table_of(rc);
          if (lt != rt) {
            LogicalJoinEdge edge;
            edge.left_table = lt;
            edge.left_col = lc - static_cast<int>(scope.offsets[lt]);
            edge.right_table = rt;
            edge.right_col = rc - static_cast<int>(scope.offsets[rt]);
            if (edge.left_table > edge.right_table) {
              std::swap(edge.left_table, edge.right_table);
              std::swap(edge.left_col, edge.right_col);
            }
            query.joins.push_back(edge);
            is_edge = true;
          }
        }
      }
      if (!is_edge) query.cross_predicates.push_back(std::move(bound));
    }
  }
  // Every table after the first must be reachable through join edges; the
  // planner verifies connectivity in FROM order, but catch the obvious
  // no-join case here for a better message.
  if (query.tables.size() > 1 && query.joins.empty()) {
    return Status::NotImplemented(
        "multi-table queries require equi-join predicates");
  }

  // SELECT list.
  for (const ParsedSelectItem& item : stmt.items) {
    if (item.is_aggregate) query.has_aggregates = true;
  }
  bool seen_aggregate = false;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const ParsedSelectItem& item = stmt.items[i];
    OutputItem out;
    out.is_aggregate = item.is_aggregate;
    out.agg = item.agg_func;
    if (item.expr != nullptr) {
      BUFFERDB_ASSIGN_OR_RETURN(bound, BindExpr(*item.expr, scope));
      out.expr = std::move(bound);
    }
    if (!item.alias.empty()) {
      out.name = item.alias;
    } else if (item.is_aggregate) {
      std::string base = AggFuncName(item.agg_func);
      std::transform(base.begin(), base.end(), base.begin(), ::tolower);
      base.erase(std::remove_if(base.begin(), base.end(),
                                [](char c) { return c == '(' || c == ')' ||
                                                    c == '*'; }),
                 base.end());
      out.name = base + "_" + std::to_string(i);
    } else if (out.expr->kind() == ExprKind::kColumnRef) {
      out.name = static_cast<const ColumnRefExpr&>(*out.expr).name();
    } else {
      out.name = "expr_" + std::to_string(i);
    }

    if (query.has_aggregates && !item.is_aggregate) {
      if (seen_aggregate) {
        return Status::NotImplemented(
            "group-by columns must precede aggregates in SELECT");
      }
      if (out.expr->kind() != ExprKind::kColumnRef) {
        return Status::NotImplemented(
            "non-aggregate SELECT items must be plain columns");
      }
      const std::string& col_name =
          static_cast<const ColumnRefExpr&>(*out.expr).name();
      bool in_group = std::any_of(
          stmt.group_by.begin(), stmt.group_by.end(),
          [&](const std::string& g) {
            size_t dot = g.find('.');
            return (dot == std::string::npos ? g : g.substr(dot + 1)) ==
                   col_name;
          });
      if (!in_group) {
        return Status::InvalidArgument("column " + col_name +
                                       " must appear in GROUP BY");
      }
      out.is_group_key = true;
    }
    if (item.is_aggregate) seen_aggregate = true;
    query.items.push_back(std::move(out));
  }

  // Every GROUP BY column must be selected (subset restriction).
  size_t selected_groups = 0;
  for (const OutputItem& item : query.items) {
    if (item.is_group_key) ++selected_groups;
  }
  if (query.has_aggregates && selected_groups != stmt.group_by.size()) {
    return Status::NotImplemented(
        "every GROUP BY column must appear in SELECT");
  }

  // HAVING binds to the output schema (group keys + aggregate aliases).
  if (stmt.having != nullptr) {
    std::vector<Column> out_cols;
    for (const OutputItem& item : query.items) {
      DataType type;
      if (item.is_aggregate) {
        DataType arg = item.expr != nullptr ? item.expr->result_type()
                                            : DataType::kInt64;
        type = AggOutputType(item.agg, arg);
      } else {
        type = item.expr->result_type();
      }
      out_cols.push_back(Column{item.name, type});
    }
    Schema output_schema(std::move(out_cols));
    Scope output_scope;
    output_scope.schema = &output_schema;
    BUFFERDB_ASSIGN_OR_RETURN(having, BindExpr(*stmt.having, output_scope));
    if (having->result_type() != DataType::kBool) {
      return Status::TypeError("HAVING must be boolean");
    }
    if (!query.has_aggregates) {
      return Status::InvalidArgument("HAVING requires aggregation");
    }
    query.having = std::move(having);
  }
  query.distinct = stmt.distinct;

  for (const ParsedOrderBy& ob : stmt.order_by) {
    size_t dot = ob.column.find('.');
    query.order_by.emplace_back(
        dot == std::string::npos ? ob.column : ob.column.substr(dot + 1),
        ob.descending);
  }
  query.limit = stmt.limit;
  return query;
}

Result<LogicalQuery> Binder::BindSql(const std::string& sql) {
  BUFFERDB_ASSIGN_OR_RETURN(stmt, ParseSelect(sql));
  return Bind(stmt);
}

}  // namespace bufferdb::sql

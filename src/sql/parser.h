#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/status.h"
#include "exec/aggregation.h"
#include "expr/expression.h"
#include "sql/lexer.h"

namespace bufferdb::sql {

/// Untyped parse-tree expression (resolved against the catalog by the
/// binder).
struct ParseExpr {
  enum class Kind : uint8_t {
    kColumn,   // text = possibly qualified name ("lineitem.l_shipdate").
    kLiteral,  // literal carries the value (int/float/string/date).
    kBinary,
    kUnary,
  };

  Kind kind;
  std::string column_name;
  Value literal;
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNegate;
  std::unique_ptr<ParseExpr> left;
  std::unique_ptr<ParseExpr> right;

  std::string ToString() const;
};

using ParseExprPtr = std::unique_ptr<ParseExpr>;

struct ParsedSelectItem {
  bool is_aggregate = false;
  AggFunc agg_func = AggFunc::kCountStar;
  ParseExprPtr expr;  // Aggregate argument or plain expression; null for
                      // COUNT(*).
  std::string alias;  // Empty if none given.
};

struct ParsedOrderBy {
  std::string column;  // Output-column name or alias.
  bool descending = false;
};

/// One SELECT statement of the supported subset:
///   SELECT [DISTINCT] item [, item]*
///   FROM table [, table]*
///   [WHERE predicate]          -- AND/OR/NOT, comparisons, BETWEEN, IN, LIKE
///   [GROUP BY column [, column]*]
///   [HAVING predicate]         -- over output columns/aliases
///   [ORDER BY column [ASC|DESC] [, ...]]
///   [LIMIT n]
struct SelectStatement {
  bool distinct = false;
  std::vector<ParsedSelectItem> items;
  std::vector<std::string> from_tables;
  ParseExprPtr where;
  std::vector<std::string> group_by;
  ParseExprPtr having;
  std::vector<ParsedOrderBy> order_by;
  std::optional<int64_t> limit;
};

/// Parses one SELECT statement (trailing ';' optional).
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace bufferdb::sql


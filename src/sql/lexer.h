#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bufferdb::sql {

enum class TokenType : uint8_t {
  kIdentifier,  // May be a keyword; parser matches case-insensitively.
  kInteger,
  kFloat,
  kString,     // 'quoted'
  kSymbol,     // One of ( ) , * + - / = < > <= >= <> . ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Original text (identifiers uppercased for matching).
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;  // For error messages.
};

/// Tokenizes a SQL string. Identifiers are case-insensitive (normalized to
/// lowercase in `text`); keywords are just identifiers.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace bufferdb::sql


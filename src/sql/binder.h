#pragma once

#include "catalog/catalog.h"
#include "plan/logical_plan.h"
#include "sql/parser.h"

namespace bufferdb::sql {

/// Resolves a parsed SELECT against the catalog, producing the planner's
/// LogicalQuery:
///  - FROM tables are looked up (1 or 2 supported);
///  - WHERE conjuncts are classified into per-table filters, one equi-join
///    predicate, and a residual cross-table predicate;
///  - SELECT items are type-checked and bound to the (joined) input schema.
///
/// Restrictions of the subset (diagnosed, not silently ignored): every
/// GROUP BY column must be selected, non-aggregate select items must be
/// GROUP BY columns and precede all aggregates.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  Result<LogicalQuery> Bind(const SelectStatement& stmt);

  /// Convenience: parse + bind.
  Result<LogicalQuery> BindSql(const std::string& sql);

 private:
  const Catalog* catalog_;
};

}  // namespace bufferdb::sql


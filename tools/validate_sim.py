#!/usr/bin/env python3
"""Simulator-fidelity check: does the CPU simulator predict real hardware?

Consumes the JSON-lines output of `bench_sim_vs_hw` (one record per
query x buffer-size configuration, each carrying the simulated AND the
perf_event_open-measured L1i-miss counts for the original and the buffered
plan) and answers two questions:

  1. Direction agreement: for what fraction of configurations does the
     simulator predict the correct *sign* of the buffered-vs-original L1i
     delta?  The paper's core claim is directional (buffering reduces
     instruction-cache misses), so this is the headline number; the
     acceptance bar is >= 80%.
  2. Rank correlation (Spearman): do configurations the simulator ranks as
     bigger wins also show bigger wins on real hardware?  Reported
     informationally -- PMU noise at smoke scale makes a hard gate on rho
     too flaky.

Hardware counters are unavailable on many CI runners (containers without a
PMU, perf_event_paranoid >= 2).  Records with "hw_available": false are
counted and skipped; if *no* record carries hardware data the script exits 0
with a SKIPPED verdict unless --require-hw is given.  The simulated side is
deterministic, so a basic sanity gate (buffering must not *increase*
simulated L1i misses in any configuration) applies even without a PMU.

A second mode cross-checks *instruction footprints* instead of cache
misses: `--footprint-audit` takes the JSON report of
`tools/footprint_audit.py` (shared-once bytes measured from the real
binary's call graph) and `--footprint-sim` takes the JSON-lines output of
`bench_table2_footprints` (the simulator's per-module footprints).  The
two measure different binaries by different methods, so absolute bytes are
not comparable; what must hold is the *ordering* -- modules the audit
measures as bigger must simulate bigger.  Gate: Spearman rho >= 0.5 over
the modules present on both sides, and every simulated module must appear
in the audit.

Usage:
  bench_sim_vs_hw --smoke | tools/validate_sim.py
  tools/validate_sim.py results.jsonl [--min-agreement 0.8] [--require-hw]
  tools/validate_sim.py --footprint-audit fp.json --footprint-sim t2.jsonl
  tools/validate_sim.py --self-test
"""

from __future__ import annotations

import argparse
import json
import sys


def spearman_rho(xs: list[float], ys: list[float]) -> float | None:
    """Spearman rank correlation with average ranks for ties.

    Returns None when either side is constant (rho undefined).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        return None

    def ranks(vals: list[float]) -> list[float]:
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        rank = [0.0] * len(vals)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and vals[order[j + 1]] == vals[order[i]]:
                j += 1
            avg = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                rank[order[k]] = avg
            i = j + 1
        return rank

    rx, ry = ranks(xs), ranks(ys)
    n = float(len(xs))
    mx, my = sum(rx) / n, sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 or vy == 0.0:
        return None
    return cov / (vx * vy) ** 0.5


def load_records(stream) -> list[dict]:
    records = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"validate_sim: not JSON: {line[:80]!r} ({exc})")
        # Skip the run header and records from other benches.
        if obj.get("bench") == "sim_vs_hw" and "config" in obj:
            records.append(obj)
    return records


def validate(records: list[dict], min_agreement: float,
             require_hw: bool, out=sys.stdout) -> int:
    if not records:
        print("validate_sim: FAIL: no sim_vs_hw records in input", file=out)
        return 1

    failures = 0
    # Simulator-side sanity: deterministic, gated unconditionally. Only
    # configurations where the refiner actually inserted buffers are expected
    # to improve; zero-buffer configs must be exactly unchanged.
    for r in records:
        name = r["config"]
        if r["buffers_added"] > 0:
            if r["sim_buf_l1i"] >= r["sim_orig_l1i"]:
                print(f"validate_sim: FAIL: {name}: buffering increased "
                      f"simulated L1i misses ({r['sim_orig_l1i']} -> "
                      f"{r['sim_buf_l1i']})", file=out)
                failures += 1
        elif r["sim_buf_l1i"] != r["sim_orig_l1i"]:
            print(f"validate_sim: FAIL: {name}: refiner added no buffers "
                  f"but simulated L1i changed ({r['sim_orig_l1i']} -> "
                  f"{r['sim_buf_l1i']})", file=out)
            failures += 1

    hw = [r for r in records if r.get("hw_available")]
    skipped = len(records) - len(hw)
    if skipped:
        print(f"validate_sim: {skipped}/{len(records)} records have no "
              f"hardware counters (no PMU); skipped", file=out)

    if not hw:
        if require_hw:
            print("validate_sim: FAIL: --require-hw but no record carries "
                  "hardware counters", file=out)
            return 1
        verdict = "FAIL" if failures else "SKIPPED (sim-only checks passed)"
        print(f"validate_sim: hw comparison {verdict}", file=out)
        return 1 if failures else 0

    # Direction agreement on buffered-vs-original L1i deltas. Ignore
    # configurations whose deltas are too small to have a meaningful sign
    # (hw delta within 2% of the original count, or sim delta zero).
    agree = 0
    considered = []
    for r in hw:
        sim_delta = r["sim_orig_l1i"] - r["sim_buf_l1i"]
        hw_delta = r["hw_orig_l1i"] - r["hw_buf_l1i"]
        if sim_delta == 0 or abs(hw_delta) < 0.02 * max(r["hw_orig_l1i"], 1):
            continue
        considered.append(r)
        same = (sim_delta > 0) == (hw_delta > 0)
        agree += same
        mark = "ok" if same else "DISAGREE"
        print(f"validate_sim: {r['config']}: sim dL1i={sim_delta} "
              f"hw dL1i={hw_delta} [{mark}]", file=out)

    if considered:
        frac = agree / len(considered)
        print(f"validate_sim: direction agreement {agree}/{len(considered)} "
              f"= {frac:.0%} (bar {min_agreement:.0%})", file=out)
        if frac < min_agreement:
            failures += 1
    else:
        print("validate_sim: no configuration had a significant L1i delta; "
              "direction check skipped", file=out)

    rho = spearman_rho(
        [float(r["sim_orig_l1i"] - r["sim_buf_l1i"]) for r in hw],
        [float(r["hw_orig_l1i"] - r["hw_buf_l1i"]) for r in hw])
    if rho is not None:
        print(f"validate_sim: Spearman rho(sim dL1i, hw dL1i) = {rho:.3f} "
              f"over {len(hw)} configs (informational)", file=out)

    print(f"validate_sim: {'FAIL' if failures else 'PASS'}", file=out)
    return 1 if failures else 0


def load_footprint_sim(stream) -> dict[str, int]:
    """Reads bench_table2_footprints JSON lines -> {module: simulated bytes}."""
    sim = {}
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"validate_sim: not JSON: {line[:80]!r} ({exc})")
        if obj.get("bench") == "table2_footprints" and "module" in obj:
            sim[obj["module"]] = int(obj["bytes"])
    return sim


def validate_footprints(audit: dict, sim: dict[str, int],
                        min_rho: float, out=sys.stdout) -> int:
    """Cross-checks audited (real-binary) vs simulated per-module footprints.

    `audit` is the parsed --json report of tools/footprint_audit.py; `sim`
    maps module name -> simulated shared-once bytes.  Absolute bytes differ
    by construction (different binaries, different accounting), so the gate
    is ordinal: Spearman rho over common modules >= min_rho, and no
    simulated module may be missing from the audit (that means the module
    manifest drifted from sim::ModuleName).
    """
    audited = {name: m["shared_once_bytes"]
               for name, m in audit.get("modules", {}).items()}
    if not audited:
        print("validate_sim: footprint FAIL: audit report has no modules",
              file=out)
        return 1
    if not sim:
        print("validate_sim: footprint FAIL: no table2_footprints records",
              file=out)
        return 1

    failures = 0
    missing = sorted(set(sim) - set(audited))
    if missing:
        print(f"validate_sim: footprint FAIL: simulated modules absent from "
              f"the audit: {', '.join(missing)}", file=out)
        failures += 1

    common = sorted(set(sim) & set(audited))
    if len(common) < 3:
        print(f"validate_sim: footprint FAIL: only {len(common)} modules on "
              f"both sides; need >= 3 for a rank comparison", file=out)
        return 1

    for name in common:
        print(f"validate_sim: footprint {name}: audited {audited[name]} B, "
              f"simulated {sim[name]} B", file=out)

    rho = spearman_rho([float(audited[n]) for n in common],
                       [float(sim[n]) for n in common])
    if rho is None:
        print("validate_sim: footprint FAIL: rank correlation undefined "
              "(constant footprints on one side)", file=out)
        return 1
    print(f"validate_sim: footprint Spearman rho(audited, simulated) = "
          f"{rho:.3f} over {len(common)} modules (bar {min_rho:.2f})",
          file=out)
    if rho < min_rho:
        failures += 1

    print(f"validate_sim: footprint {'FAIL' if failures else 'PASS'}",
          file=out)
    return 1 if failures else 0


def _rec(config, sim_o, sim_b, hw_o, hw_b, hw_ok=True, buffers=1):
    return {"bench": "sim_vs_hw", "config": config, "buffers_added": buffers,
            "sim_orig_l1i": sim_o, "sim_buf_l1i": sim_b,
            "hw_available": hw_ok, "hw_orig_l1i": hw_o, "hw_buf_l1i": hw_b}


def self_test() -> int:
    import io

    # rho: perfect agreement, perfect inversion, ties.
    assert spearman_rho([1, 2, 3], [10, 20, 30]) == 1.0
    assert spearman_rho([1, 2, 3], [30, 20, 10]) == -1.0
    assert spearman_rho([1, 1, 1], [1, 2, 3]) is None
    r = spearman_rho([1, 2, 2, 4], [1, 3, 2, 4])
    assert r is not None and 0.7 < r < 1.0

    # All directions agree -> PASS.
    good = [_rec("a", 1000, 100, 5000, 900),
            _rec("b", 2000, 100, 9000, 800)]
    assert validate(good, 0.8, False, io.StringIO()) == 0

    # Hardware contradicts the simulator everywhere -> FAIL.
    bad = [_rec("a", 1000, 100, 900, 5000),
           _rec("b", 2000, 100, 800, 9000)]
    assert validate(bad, 0.8, False, io.StringIO()) == 1

    # No PMU: skipped unless required.
    nohw = [_rec("a", 1000, 100, 0, 0, hw_ok=False)]
    assert validate(nohw, 0.8, False, io.StringIO()) == 0
    assert validate(nohw, 0.8, True, io.StringIO()) == 1

    # Sim-side sanity gates fire even without hardware.
    worse = [_rec("a", 100, 1000, 0, 0, hw_ok=False)]
    assert validate(worse, 0.8, False, io.StringIO()) == 1
    drift = [_rec("a", 100, 99, 0, 0, hw_ok=False, buffers=0)]
    assert validate(drift, 0.8, False, io.StringIO()) == 1

    # Tiny hw deltas (noise) are excluded from the direction vote.
    noisy = [_rec("a", 1000, 100, 100000, 99999),
             _rec("b", 2000, 100, 9000, 800)]
    assert validate(noisy, 0.8, False, io.StringIO()) == 0

    # Footprint cross-check: ordering agrees -> PASS despite different
    # absolute bytes.
    def _audit(**mods):
        return {"modules": {n: {"shared_once_bytes": b}
                            for n, b in mods.items()}}
    aligned = _audit(Scan=40000, Sort=34000, Buffer=20000, Limit=17000)
    sim_ok = {"Scan": 9000, "Sort": 8000, "Buffer": 5000, "Limit": 4000}
    assert validate_footprints(aligned, sim_ok, 0.5, io.StringIO()) == 0
    # Ordering inverted -> FAIL.
    sim_bad = {"Scan": 4000, "Sort": 5000, "Buffer": 8000, "Limit": 9000}
    assert validate_footprints(aligned, sim_bad, 0.5, io.StringIO()) == 1
    # Simulated module the audit doesn't know (manifest drift) -> FAIL.
    sim_drift = dict(sim_ok, NewOperator=1)
    assert validate_footprints(aligned, sim_drift, 0.5, io.StringIO()) == 1
    # Too few common modules for a rank comparison -> FAIL.
    assert validate_footprints(_audit(Scan=1, Sort=2),
                               {"Scan": 1, "Sort": 2}, 0.5,
                               io.StringIO()) == 1
    # Empty inputs -> FAIL.
    assert validate_footprints({}, sim_ok, 0.5, io.StringIO()) == 1
    assert validate_footprints(aligned, {}, 0.5, io.StringIO()) == 1

    records = load_footprint_sim(io.StringIO(
        '{"bench": "table2_footprints", "scale_factor": 0.002}\n'
        '{"bench": "table2_footprints", "module": "Scan", "bytes": 9000}\n'
        '{"bench": "other", "module": "Scan", "bytes": 1}\n'))
    assert records == {"Scan": 9000}

    print("validate_sim: self-test OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", nargs="?", help="JSON-lines file (default stdin)")
    ap.add_argument("--min-agreement", type=float, default=0.8,
                    help="direction-agreement bar (default 0.8)")
    ap.add_argument("--require-hw", action="store_true",
                    help="fail instead of skipping when no PMU data present")
    ap.add_argument("--footprint-audit", metavar="FP_JSON",
                    help="footprint_audit.py --json report; enables the "
                         "footprint cross-check mode")
    ap.add_argument("--footprint-sim", metavar="T2_JSONL",
                    help="bench_table2_footprints JSON lines (default stdin "
                         "in footprint mode)")
    ap.add_argument("--min-rho", type=float, default=0.5,
                    help="footprint rank-correlation bar (default 0.5)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if args.footprint_audit:
        with open(args.footprint_audit, encoding="utf-8") as f:
            audit = json.load(f)
        if args.footprint_sim:
            with open(args.footprint_sim, encoding="utf-8") as f:
                sim = load_footprint_sim(f)
        else:
            sim = load_footprint_sim(sys.stdin)
        return validate_footprints(audit, sim, args.min_rho)

    if args.input:
        with open(args.input, encoding="utf-8") as f:
            records = load_records(f)
    else:
        records = load_records(sys.stdin)
    return validate(records, args.min_agreement, args.require_hw)


if __name__ == "__main__":
    sys.exit(main())

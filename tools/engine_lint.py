#!/usr/bin/env python3
"""Repo-specific static analysis for the bufferdb engine.

Machine-checks the invariants the hot paths rely on but the compiler cannot
see (see DESIGN.md section 9):

  ENG001 hot-alloc          No allocation (new/malloc, vector growth,
                            std::string construction) inside Next() /
                            NextBatch() bodies. These run once per tuple or
                            once per batch; an allocation there defeats the
                            paper's instruction-cache argument and shows up
                            directly in CPI. Annotate intentional cases with
                            `// LINT: allow-alloc(<reason>)` on the same or
                            the preceding line.
  ENG002 nodiscard-status   Every Status-returning function declared in a
                            header carries [[nodiscard]]; a dropped Status
                            is a silently ignored error.
  ENG003 operator-contract  Every class deriving from Operator declares the
                            full Open/Next/Close contract, and declares
                            Rescan whenever its doc comment claims replay /
                            rescan behavior. Suppress with
                            `// LINT: allow-partial-operator(<reason>)`.
  ENG004 header-hygiene     Headers start with `#pragma once` (no classic
                            include guards) and never say `using namespace`.
  ENG005 thread-containment std::thread / pthread_create only appear under
                            src/parallel/ -- every other layer must go
                            through the ThreadPool so shutdown, error
                            propagation and TSan coverage stay centralized.
                            Annotate with `// LINT: allow-thread(<reason>)`.
  ENG006 scalar-eval        No per-tuple Expression::Evaluate /
                            EvaluatePredicate calls inside NextBatch()
                            bodies: the batch fast path must evaluate
                            expressions through compiled kernel programs
                            (expr/vector_eval.h). The deliberate interpreter
                            fallback (compiler returned nullptr) is annotated
                            `// LINT: allow-scalar-eval(<reason>)` on the
                            same or the preceding line.
  ENG007 syscall-containment perf_event_open / raw syscall() only appear
                            under src/perf/ -- hardware-counter access goes
                            through perf::PerfCounterGroup so the degraded
                            no-PMU path, the fd lifetime and the paranoid-
                            level diagnostics stay in one place. Annotate
                            with `// LINT: allow-syscall(<reason>)`.
  ENG008 row-decode         No RowBatchDecoder::Decode calls inside
                            NextBatch() bodies: batch-native operators must
                            decode through RowBatchDecoder::DecodeMissing so
                            columns a ColumnScan (or any publishing child)
                            already exposes via BatchColumns() are aliased
                            instead of re-decoded. The deliberate cases (a
                            leaf decoding rows it gathered itself, with no
                            batch source to alias from) are annotated
                            `// LINT: allow-row-decode(<reason>)` on the
                            same or the preceding line.
  ENG010 fused-reentry      Fused pipeline sources (fused_pipeline.*) never
                            re-enter their collapsed chain: no virtual
                            Next()/NextBatch() calls on fused children and no
                            per-tuple Evaluate/EvaluatePredicate interpreter
                            calls anywhere in the operator -- the whole point
                            of fusion is that the retained chain exists only
                            for schemas/labels while the stages execute as
                            inline kernel programs. Annotate deliberate cases
                            `// LINT: allow-eng010(<reason>)`.
  ENG009 adaptive-hot-path  The adaptive buffer controller
                            (core/adaptive_buffer.*) sits on every refill
                            boundary of every adaptive buffer, and its
                            frozen fast path is advertised as "one branch +
                            return" (DESIGN.md section 14). No allocation
                            and no locks/atomics in any of its function
                            bodies outside the cold phases: the
                            constructor, OnOpen(), Summary(), and the
                            post-run stats walk. Annotate deliberate cases
                            `// LINT: allow-eng009(<reason>)`.

Suppressions use one canonical grammar across all rules:
`// LINT: allow-<rule>(<reason>)`. The deprecated aliases
`// engine-lint: allow-<rule>(...)` and bare `// allow-<rule> (...)` are
still honored but should not appear in new code.

Usage:
  engine_lint.py [--root DIR] [--format {text,json}] [--self-test] [paths ...]

Exit status: 0 when clean, 1 when findings were reported, 2 on usage error.
Runs as a tier-1 ctest (`engine_lint`, `engine_lint_selftest`) and in the
`lint` CI job; stdlib only, no third-party deps.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

HEADER_EXTS = {".h", ".hpp"}
SOURCE_EXTS = {".h", ".hpp", ".cc", ".cpp"}

# Canonical suppression grammar, one form for every rule:
#   `// LINT: allow-<rule>(<reason>)`
# on the offending line or the //-comment block right above it.  The
# historical spellings -- `// engine-lint: allow-<rule>(...)` (early ENG008)
# and the bare `// allow-<rule> (...)` (early ENG006) -- are deprecated
# aliases: annotated_lines() matches the bare `allow-<rule>` token, which all
# three spellings contain, so old annotations keep working while every
# message and doc advertises only the canonical form.
ALLOW_ALLOC = "LINT: allow-alloc"
ALLOW_PARTIAL_OPERATOR = "LINT: allow-partial-operator"
ALLOW_THREAD = "LINT: allow-thread"
ALLOW_SCALAR_EVAL = "LINT: allow-scalar-eval"
ALLOW_SYSCALL = "LINT: allow-syscall"
ALLOW_ROW_DECODE = "LINT: allow-row-decode"
ALLOW_ENG009 = "LINT: allow-eng009"
ALLOW_ENG010 = "LINT: allow-eng010"


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self) -> str:
        return json.dumps({"file": self.path, "line": self.line,
                           "rule": self.rule, "message": self.message},
                          sort_keys=True)


# ---------------------------------------------------------------------------
# Lexing helpers
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines and
    column positions so findings can be mapped back to file:line."""
    out = list(text)
    i = 0
    n = len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                    m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:])
                    if m:
                        delim = m.group(1)
                        end = text.find(f"){delim}\"", i)
                        if end == -1:
                            end = n - 1
                        for j in range(i + 1, min(end + len(delim) + 2, n)):
                            if out[j] != "\n":
                                out[j] = " "
                        i = end + len(delim) + 2
                        continue
                state = "string"
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            else:
                out[i] = " "
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = "code"
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = "code"
            elif c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def annotated_lines(raw: str, marker: str) -> set[int]:
    """Line numbers carrying a suppression annotation (before stripping).

    `marker` is the canonical `LINT: allow-<rule>` spelling; matching is on
    the bare `allow-<rule>` token so the deprecated `engine-lint:`-prefixed
    and bare aliases are honored too.
    """
    token = marker.split(": ", 1)[-1]
    lines = set()
    for idx, line in enumerate(raw.splitlines(), start=1):
        if token in line:
            lines.add(idx)
    return lines


def is_annotated(raw_lines: list[str], allowed: set[int], line: int) -> bool:
    """True if `line` carries the marker, or a contiguous block of //-comment
    lines immediately above it does (multi-line annotation comments)."""
    if line in allowed:
        return True
    probe = line - 1
    while probe >= 1 and raw_lines[probe - 1].lstrip().startswith("//"):
        if probe in allowed:
            return True
        probe -= 1
    return False


def match_brace_block(text: str, open_idx: int) -> int:
    """Given index of '{', returns index one past its matching '}'. Assumes
    comment/string-stripped input."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------------------
# ENG001: no allocation in Next()/NextBatch() hot loops
# ---------------------------------------------------------------------------

HOT_FUNC_DEF_RE = re.compile(
    r"(?:const\s+uint8_t\s*\*|size_t|std::size_t)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)*(?:Next|NextBatch)\s*\([^;{}]*\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?(?:final\s*)?\{"
)

ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"\bnew\s*\("), "placement/operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "malloc-family call"),
    (re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|resize|reserve|append|assign|insert)\s*\("),
     "container growth"),
    (re.compile(r"\bstd::string\s*[({]"), "std::string construction"),
    (re.compile(r"\bstd::string\s+\w+\s*[=;]"), "std::string construction"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string"),
    (re.compile(r"\bmake_(?:unique|shared)\s*[<(]"), "make_unique/make_shared"),
]


def check_hot_alloc(path: str, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []
    allowed = annotated_lines(raw, ALLOW_ALLOC)
    raw_lines = raw.splitlines()
    for m in HOT_FUNC_DEF_RE.finditer(stripped):
        open_idx = stripped.index("{", m.start())
        end_idx = match_brace_block(stripped, open_idx)
        body = stripped[open_idx:end_idx]
        body_base = open_idx
        for pattern, what in ALLOC_PATTERNS:
            for hit in pattern.finditer(body):
                line = line_of(stripped, body_base + hit.start())
                if is_annotated(raw_lines, allowed, line):
                    continue
                findings.append(Finding(
                    path, line, "ENG001",
                    f"{what} inside Next()/NextBatch() hot loop; allocate in "
                    f"Open() or annotate `// {ALLOW_ALLOC}(<reason>)`"))
    return findings


# ---------------------------------------------------------------------------
# ENG002: [[nodiscard]] on Status-returning functions in headers
# ---------------------------------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"^\s*(?:(?:virtual|static|inline|constexpr|explicit|friend)\s+)*"
    r"(?:::)?(?:bufferdb\s*::\s*)?Status\s+[A-Za-z_]\w*\s*\(")


def check_nodiscard(path: str, raw: str, stripped: str) -> list[Finding]:
    if Path(path).suffix not in HEADER_EXTS:
        return []
    findings: list[Finding] = []
    lines = stripped.splitlines()
    for idx, line in enumerate(lines):
        if not STATUS_DECL_RE.match(line):
            continue
        prev = lines[idx - 1].strip() if idx > 0 else ""
        if "[[nodiscard]]" in line or prev.endswith("[[nodiscard]]"):
            continue
        findings.append(Finding(
            path, idx + 1, "ENG002",
            "Status-returning function must be marked [[nodiscard]]"))
    return findings


# ---------------------------------------------------------------------------
# ENG003: Operator subclasses implement the full Open/Next/Close contract
# ---------------------------------------------------------------------------

OPERATOR_CLASS_RE = re.compile(
    r"class\s+([A-Za-z_]\w*)\s*(?:final\s*)?:\s*public\s+"
    r"(?:[A-Za-z_]\w*::)*Operator\b[^{]*\{")


def check_operator_contract(path: str, raw: str, stripped: str) -> list[Finding]:
    if Path(path).suffix not in HEADER_EXTS:
        return []
    findings: list[Finding] = []
    allowed = annotated_lines(raw, ALLOW_PARTIAL_OPERATOR)
    raw_lines = raw.splitlines()
    for m in OPERATOR_CLASS_RE.finditer(stripped):
        class_line = line_of(stripped, m.start())
        # Suppression marker on any of the 3 lines above the class head.
        if any(line in allowed for line in range(max(1, class_line - 3), class_line + 1)):
            continue
        open_idx = stripped.index("{", m.start())
        end_idx = match_brace_block(stripped, open_idx)
        body = stripped[open_idx:end_idx]
        name = m.group(1)
        required = {
            "Open": re.compile(r"\bStatus\s+Open\s*\("),
            "Next": re.compile(r"\bNext\s*\(\s*\)"),
            "Close": re.compile(r"\bvoid\s+Close\s*\(\s*\)"),
        }
        for method, pattern in required.items():
            if not pattern.search(body):
                findings.append(Finding(
                    path, class_line, "ENG003",
                    f"Operator subclass {name} does not declare {method}(); "
                    f"the full Open/Next/Close contract must be overridden "
                    f"together (or annotate `// {ALLOW_PARTIAL_OPERATOR}(<reason>)`)"))
        # Rescan-where-claimed: if the doc comment right above the class
        # talks about Rescan/replay, the class must actually override it.
        doc_start = class_line - 1
        doc: list[str] = []
        while doc_start >= 1 and raw_lines[doc_start - 1].lstrip().startswith("//"):
            doc.append(raw_lines[doc_start - 1])
            doc_start -= 1
        doc_text = "\n".join(doc)
        if re.search(r"\bRescan\b", doc_text) and not re.search(
                r"\bStatus\s+Rescan\s*\(", body):
            findings.append(Finding(
                path, class_line, "ENG003",
                f"Operator subclass {name}'s doc comment claims Rescan "
                f"behavior but the class does not override Rescan()"))
    return findings


# ---------------------------------------------------------------------------
# ENG004: header hygiene
# ---------------------------------------------------------------------------

GUARD_RE = re.compile(r"^\s*#ifndef\s+\w+_H_?\b")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")


def check_header_hygiene(path: str, raw: str, stripped: str) -> list[Finding]:
    if Path(path).suffix not in HEADER_EXTS:
        return []
    findings: list[Finding] = []
    lines = stripped.splitlines()
    first_code_line = None
    for idx, line in enumerate(lines, start=1):
        if line.strip():
            first_code_line = (idx, line.strip())
            break
    if first_code_line is None or first_code_line[1] != "#pragma once":
        findings.append(Finding(
            path, first_code_line[0] if first_code_line else 1, "ENG004",
            "header must start with `#pragma once`"))
    for idx, line in enumerate(lines, start=1):
        if GUARD_RE.match(line):
            findings.append(Finding(
                path, idx, "ENG004",
                "classic include guard; use `#pragma once` instead"))
        if USING_NAMESPACE_RE.match(line):
            findings.append(Finding(
                path, idx, "ENG004",
                "`using namespace` in a header leaks into every includer"))
    return findings


# ---------------------------------------------------------------------------
# ENG005: raw threads only under src/parallel/
# ---------------------------------------------------------------------------

THREAD_RE = re.compile(r"\bstd::(?:thread|jthread)\b|\bpthread_create\s*\(")


def check_thread_containment(path: str, raw: str, stripped: str) -> list[Finding]:
    normalized = path.replace(os.sep, "/")
    if "/parallel/" in normalized or normalized.startswith("parallel/"):
        return []
    allowed = annotated_lines(raw, ALLOW_THREAD)
    raw_lines = raw.splitlines()
    findings: list[Finding] = []
    for m in THREAD_RE.finditer(stripped):
        line = line_of(stripped, m.start())
        if is_annotated(raw_lines, allowed, line):
            continue
        findings.append(Finding(
            path, line, "ENG005",
            "raw thread primitive outside src/parallel/; use "
            "parallel::ThreadPool (or annotate `// LINT: allow-thread(<reason>)`)"))
    return findings


# ---------------------------------------------------------------------------
# ENG006: no per-tuple interpreter calls in NextBatch() bodies
# ---------------------------------------------------------------------------

BATCH_FUNC_DEF_RE = re.compile(
    r"(?:size_t|std::size_t)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)*NextBatch\s*\([^;{}]*\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?(?:final\s*)?\{"
)

SCALAR_EVAL_RE = re.compile(
    r"\bEvaluatePredicate\s*\(|(?:\.|->)\s*Evaluate\s*\(")


def check_scalar_eval(path: str, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []
    allowed = annotated_lines(raw, ALLOW_SCALAR_EVAL)
    raw_lines = raw.splitlines()
    for m in BATCH_FUNC_DEF_RE.finditer(stripped):
        open_idx = stripped.index("{", m.start())
        end_idx = match_brace_block(stripped, open_idx)
        body = stripped[open_idx:end_idx]
        for hit in SCALAR_EVAL_RE.finditer(body):
            line = line_of(stripped, open_idx + hit.start())
            if is_annotated(raw_lines, allowed, line):
                continue
            findings.append(Finding(
                path, line, "ENG006",
                "per-tuple expression interpreter inside NextBatch(); use a "
                "compiled kernel program (expr/vector_eval.h) or annotate the "
                f"fallback `// {ALLOW_SCALAR_EVAL}(<reason>)`"))
    return findings


# ---------------------------------------------------------------------------
# ENG008: no raw RowBatchDecoder::Decode in NextBatch() bodies
# ---------------------------------------------------------------------------

# `Decode(` specifically: `DecodeMissing(` continues with `M` and does not
# match, which is the point -- DecodeMissing aliases published columns.
ROW_DECODE_RE = re.compile(r"\bRowBatchDecoder\s*::\s*Decode\s*\(")


def check_row_decode(path: str, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []
    allowed = annotated_lines(raw, ALLOW_ROW_DECODE)
    raw_lines = raw.splitlines()
    for m in BATCH_FUNC_DEF_RE.finditer(stripped):
        open_idx = stripped.index("{", m.start())
        end_idx = match_brace_block(stripped, open_idx)
        body = stripped[open_idx:end_idx]
        for hit in ROW_DECODE_RE.finditer(body):
            line = line_of(stripped, open_idx + hit.start())
            if is_annotated(raw_lines, allowed, line):
                continue
            findings.append(Finding(
                path, line, "ENG008",
                "RowBatchDecoder::Decode inside NextBatch(); use "
                "DecodeMissing with the child's BatchColumns() so published "
                "columns are aliased instead of re-decoded, or annotate "
                f"`// {ALLOW_ROW_DECODE}(<reason>)`"))
    return findings


# ---------------------------------------------------------------------------
# ENG007: perf_event_open / raw syscall() only under src/perf/
# ---------------------------------------------------------------------------

SYSCALL_RE = re.compile(r"\bperf_event_open\b|(?<![\w:])syscall\s*\(")


def check_syscall_containment(path: str, raw: str, stripped: str) -> list[Finding]:
    normalized = path.replace(os.sep, "/")
    if "/perf/" in normalized or normalized.startswith("perf/"):
        return []
    allowed = annotated_lines(raw, ALLOW_SYSCALL)
    raw_lines = raw.splitlines()
    findings: list[Finding] = []
    for m in SYSCALL_RE.finditer(stripped):
        line = line_of(stripped, m.start())
        if is_annotated(raw_lines, allowed, line):
            continue
        findings.append(Finding(
            path, line, "ENG007",
            "perf_event_open / raw syscall outside src/perf/; use "
            "perf::PerfCounterGroup so PMU degradation and fd lifetime stay "
            "centralized (or annotate `// LINT: allow-syscall(<reason>)`)"))
    return findings


# ---------------------------------------------------------------------------
# ENG009: adaptive buffer controller hot paths stay allocation- and lock-free
# ---------------------------------------------------------------------------

# Functions of the controller allowed to allocate / touch synchronization:
# everything else in adaptive_buffer.* runs per refill boundary (or per
# stream end / rescan miss) and must stay O(1) and allocation-free.
ENG009_COLD_FUNCS = {
    "AdaptiveBufferController",  # constructor: builds the candidate ladder
    "OnOpen",                    # per-run signal binding
    "EnableAdaptive",            # one-time controller attachment
    "Summary",                   # human-readable reporting
    "CollectBufferStats",        # post-run telemetry walk
}

# A function definition: `name(params) [const] [: init-list] {`. Params may
# not contain parens or semicolons (rules out for/if/while headers beyond
# the keyword filter); the optional init-list clause lets the constructor
# match so its body registers as cold instead of leaking hot-scanned
# fragments like `chosen_capacity_(x) {`.
ENG009_FUNC_DEF_RE = re.compile(
    r"([A-Za-z_]\w*)\s*\(([^;{}()]*)\)\s*(?:const\s*)?(?:noexcept\s*)?"
    r"(?::[^{;]*?)?\{")

ENG009_KEYWORDS = {"if", "while", "for", "switch", "catch", "return"}

ENG009_BAN_PATTERNS = ALLOC_PATTERNS + [
    (re.compile(r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex|"
                r"lock_guard|unique_lock|scoped_lock|shared_lock|"
                r"condition_variable)\b"), "lock primitive"),
    (re.compile(r"\bstd::atomic\b|\bstd::atomic_\w+"), "atomic"),
    (re.compile(r"(?:\.|->)\s*(?:lock|try_lock|unlock)\s*\("),
     "explicit lock call"),
]


def check_adaptive_hot_path(path: str, raw: str, stripped: str) -> list[Finding]:
    name = Path(path).name
    if not name.startswith("adaptive_buffer"):
        return []
    findings: list[Finding] = []
    allowed = annotated_lines(raw, ALLOW_ENG009)
    raw_lines = raw.splitlines()
    consumed_until = 0
    for m in ENG009_FUNC_DEF_RE.finditer(stripped):
        if m.start() < consumed_until:
            continue  # nested inside a body already classified
        func = m.group(1)
        if func in ENG009_KEYWORDS:
            continue
        open_idx = stripped.index("{", m.start())
        end_idx = match_brace_block(stripped, open_idx)
        consumed_until = end_idx
        if func in ENG009_COLD_FUNCS:
            continue
        body = stripped[open_idx:end_idx]
        for pattern, what in ENG009_BAN_PATTERNS:
            for hit in pattern.finditer(body):
                line = line_of(stripped, open_idx + hit.start())
                if is_annotated(raw_lines, allowed, line):
                    continue
                findings.append(Finding(
                    path, line, "ENG009",
                    f"{what} in adaptive-buffer hot function {func}(); "
                    f"only the cold phases "
                    f"({', '.join(sorted(ENG009_COLD_FUNCS))}) may — move "
                    f"it there or annotate `// {ALLOW_ENG009}(<reason>)`"))
    return findings


# ---------------------------------------------------------------------------
# ENG010: fused pipelines never re-enter their collapsed chain
# ---------------------------------------------------------------------------

# Any virtual pull on another operator: `x->Next(...)` / `x.NextBatch(...)`.
# The fused operator's own plain-call recursion (`NextBatch(out, n)` with no
# object expression, used by its Next() drain) deliberately does not match.
ENG010_CHILD_CALL_RE = re.compile(r"(?:\.|->)\s*Next(?:Batch)?\s*\(")

ENG010_EVAL_RE = re.compile(
    r"\bEvaluatePredicate\s*\(|(?:\.|->)\s*Evaluate\s*\(")


def check_fused_reentry(path: str, raw: str, stripped: str) -> list[Finding]:
    if not Path(path).name.startswith("fused_pipeline"):
        return []
    findings: list[Finding] = []
    allowed = annotated_lines(raw, ALLOW_ENG010)
    raw_lines = raw.splitlines()
    for pattern, what in (
            (ENG010_CHILD_CALL_RE, "virtual Next()/NextBatch() call"),
            (ENG010_EVAL_RE, "per-tuple expression interpreter call")):
        for m in pattern.finditer(stripped):
            line = line_of(stripped, m.start())
            if is_annotated(raw_lines, allowed, line):
                continue
            findings.append(Finding(
                path, line, "ENG010",
                f"{what} in a fused pipeline; the collapsed chain is kept "
                f"only for schemas/labels and must never execute -- run the "
                f"stage's compiled kernel program inline instead (or "
                f"annotate `// {ALLOW_ENG010}(<reason>)`)"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

ALL_CHECKS = [
    check_hot_alloc,
    check_nodiscard,
    check_operator_contract,
    check_header_hygiene,
    check_thread_containment,
    check_scalar_eval,
    check_syscall_containment,
    check_row_decode,
    check_adaptive_hot_path,
    check_fused_reentry,
]


def lint_file(path: Path, display: str) -> list[Finding]:
    try:
        raw = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(display, 1, "ENG000", f"unreadable: {e}")]
    stripped = strip_comments_and_strings(raw)
    findings: list[Finding] = []
    for check in ALL_CHECKS:
        findings.extend(check(display, raw, stripped))
    return findings


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    if paths:
        candidates: list[Path] = []
        for p in paths:
            pp = (root / p) if not os.path.isabs(p) else Path(p)
            if pp.is_dir():
                candidates.extend(sorted(pp.rglob("*")))
            else:
                candidates.append(pp)
    else:
        candidates = sorted((root / "src").rglob("*"))
    return [p for p in candidates
            if p.is_file() and p.suffix in SOURCE_EXTS]


def run_lint(root: Path, paths: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for f in collect_files(root, paths):
        try:
            display = str(f.relative_to(root))
        except ValueError:
            display = str(f)
        findings.extend(lint_file(f, display))
    return findings


# ---------------------------------------------------------------------------
# Self-test: seed one violation per rule class, assert each is caught, then
# assert a clean translation unit produces no findings.
# ---------------------------------------------------------------------------

SEEDED_BAD = {
    "src/exec/bad_alloc.cc": (
        "ENG001",
        """\
#include "exec/bad_alloc.h"
namespace bufferdb {
const uint8_t* BadOp::Next() {
  rows_.push_back(nullptr);  // growth in the hot loop
  return nullptr;
}
}  // namespace bufferdb
""",
    ),
    "src/exec/bad_alloc_str.cc": (
        "ENG001",
        """\
namespace bufferdb {
size_t BadOp::NextBatch(const uint8_t** out, size_t max) {
  std::string label = "oops";
  (void)out; (void)max; (void)label;
  return 0;
}
}  // namespace bufferdb
""",
    ),
    "src/exec/bad_status.h": (
        "ENG002",
        """\
#pragma once
namespace bufferdb {
class Thing {
 public:
  Status DoWork(int x);
};
}  // namespace bufferdb
""",
    ),
    "src/exec/bad_contract.h": (
        "ENG003",
        """\
#pragma once
#include "exec/operator.h"
namespace bufferdb {
/// Supports Rescan replay of the materialized run.
class HalfOp : public Operator {
 public:
  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  // Close() missing, Rescan claimed but missing.
};
}  // namespace bufferdb
""",
    ),
    "src/exec/bad_guard.h": (
        "ENG004",
        """\
#ifndef BUFFERDB_EXEC_BAD_GUARD_H_
#define BUFFERDB_EXEC_BAD_GUARD_H_
using namespace std;
#endif  // BUFFERDB_EXEC_BAD_GUARD_H_
""",
    ),
    "src/exec/bad_thread.cc": (
        "ENG005",
        """\
#include <thread>
namespace bufferdb {
void Spawn() { std::thread t([] {}); t.join(); }
}  // namespace bufferdb
""",
    ),
    "src/exec/bad_syscall.cc": (
        "ENG007",
        """\
#include <sys/syscall.h>
#include <unistd.h>
namespace bufferdb {
long OpenCounter() {
  return syscall(__NR_perf_event_open, nullptr, 0, -1, -1, 0);
}
}  // namespace bufferdb
""",
    ),
    "src/exec/bad_scalar_eval.cc": (
        "ENG006",
        """\
#include "exec/bad_scalar_eval.h"
namespace bufferdb {
size_t BadOp::NextBatch(const uint8_t** out, size_t max) {
  size_t n = 0;
  for (size_t i = 0; i < max; ++i) {
    if (EvaluatePredicate(*predicate_, row_, schema_)) out[n++] = row_;
  }
  return n;
}
}  // namespace bufferdb
""",
    ),
    "src/core/adaptive_buffer.cc": (
        "ENG009",
        """\
#include "core/adaptive_buffer.h"
namespace bufferdb {
AdaptiveBufferController::AdaptiveBufferController(size_t initial)
    : chosen_capacity_(initial) {
  candidates_.push_back(initial);  // cold: the ctor may allocate
}
size_t AdaptiveBufferController::OnRefillBoundary(size_t tuples_served) {
  samples_.push_back(tuples_served);  // allocation on the per-refill path
  std::lock_guard<std::mutex> hold(mu_);  // and a lock on top
  return tuples_served;
}
}  // namespace bufferdb
""",
    ),
    "src/exec/fused_pipeline_bad.cc": (
        "ENG010",
        """\
#include "exec/fused_pipeline.h"
namespace bufferdb {
size_t FusedPipelineOperator::NextBatch(const uint8_t** out, size_t max) {
  // Re-entering the collapsed chain defeats the fusion.
  size_t n = chain_->NextBatch(out, max);
  for (size_t i = 0; i < n; ++i) {
    Value v = predicate_->Evaluate(out[i]);  // and so does the interpreter
    (void)v;
  }
  return n;
}
}  // namespace bufferdb
""",
    ),
    "src/exec/bad_row_decode.cc": (
        "ENG008",
        """\
#include "exec/bad_row_decode.h"
namespace bufferdb {
size_t BadOp::NextBatch(const uint8_t** out, size_t max) {
  size_t n = child(0)->NextBatch(out, max);
  RowBatchDecoder::Decode(out, n, schema_, cols_, &vbatch_);
  return n;
}
}  // namespace bufferdb
""",
    ),
}

SEEDED_CLEAN = {
    "src/exec/good.h": """\
#pragma once
#include "exec/operator.h"
namespace bufferdb {
/// A well-behaved operator. Supports Rescan replay.
class GoodOp final : public Operator {
 public:
  [[nodiscard]] Status Open(ExecContext* ctx) override;
  const uint8_t* Next() override;
  void Close() override;
  [[nodiscard]] Status Rescan() override;
};
}  // namespace bufferdb
""",
    "src/exec/good.cc": """\
#include "exec/good.h"
namespace bufferdb {
const uint8_t* GoodOp::Next() {
  // A comment mentioning new and push_back must not trip the lint.
  const char* s = "string with new and malloc( inside";
  (void)s;
  scratch_.push_back(nullptr);  // LINT: allow-alloc(cold path, test fixture)
  return nullptr;
}
size_t GoodOp::NextBatch(const uint8_t** out, size_t max) {
  (void)out;
  // The annotated interpreter fallback must not trip ENG006.
  Value v = evaluator_->Evaluate(row_);  // LINT: allow-scalar-eval(fallback)
  (void)v;
  // DecodeMissing is the sanctioned batch decode: never trips ENG008.
  RowBatchDecoder::DecodeMissing(out, max, schema_, cols_, nullptr, &vbatch_);
  // LINT: allow-row-decode(leaf: gathered rows, no batch source)
  RowBatchDecoder::Decode(out, max, schema_, cols_, &vbatch_);
  return max != 0 ? 0 : 0;
}
const uint8_t* GoodOp::NextHelper() {
  // Evaluate outside NextBatch() (tuple-at-a-time path) is fine.
  return EvaluatePredicate(*pred_, row_, schema_) ? row_ : nullptr;
}
}  // namespace bufferdb
""",
    "src/core/adaptive_buffer.h": """\
#pragma once
#include <cstdint>
#include <vector>
namespace bufferdb {
/// ENG009 fixture: hot controller functions that stay allocation-free pass,
/// and the canonical annotation silences a deliberate cold-side exception.
class AdaptiveBufferController {
 public:
  size_t OnRefillBoundary(size_t tuples_served) {
    if (tuples_served > best_) best_ = tuples_served;
    return best_;
  }
  void OnStreamEnd(uint64_t total_rows) {
    trace_.push_back(total_rows);  // LINT: allow-eng009(test fixture)
  }
 private:
  size_t best_ = 0;
  std::vector<uint64_t> trace_;
};
}  // namespace bufferdb
""",
    "src/perf/good_syscall.cc": """\
#include <sys/syscall.h>
#include <unistd.h>
namespace bufferdb::perf {
// ENG007: perf_event_open lives under src/perf/, so this is the one place
// a raw syscall is allowed without an annotation.
long OpenCounter() { return syscall(__NR_perf_event_open, nullptr, 0, -1, -1, 0); }
}  // namespace bufferdb::perf
""",
    "src/exec/fused_pipeline_good.cc": """\
#include "exec/fused_pipeline.h"
namespace bufferdb {
// ENG010 fixture: a fused pipeline that drives its stages through compiled
// programs, drains itself via a PLAIN NextBatch recursion (no object
// expression, so it is not a virtual child pull), and annotates the one
// deliberate exception.
const uint8_t* FusedPipelineOperator::Next() {
  if (drain_pos_ == drain_n_) {
    drain_n_ = NextBatch(drain_.data(), kDefaultBatchSize);
    drain_pos_ = 0;
  }
  return drain_pos_ < drain_n_ ? drain_[drain_pos_++] : nullptr;
}
size_t FusedPipelineOperator::NextBatch(const uint8_t** out, size_t max) {
  size_t n = predicates_[0]->RunFilter(vbatch_, &sel_);
  (void)out;
  (void)max;
  return n;
}
std::string FusedPipelineOperator::AnalyzeDetail() const {
  // LINT: allow-eng010(cold EXPLAIN path, never on the batch loop)
  Value v = items_[0].expr->Evaluate(sample_row_);
  return v.ToString();
}
}  // namespace bufferdb
""",
    "src/exec/good_legacy_alias.cc": """\
#include "exec/good.h"
namespace bufferdb {
// The deprecated annotation spellings (pre-unification) must keep
// suppressing: `engine-lint:`-prefixed and bare `allow-*` forms.
size_t GoodOp::NextBatch(const uint8_t** out, size_t max) {
  Value v = evaluator_->Evaluate(row_);  // allow-scalar-eval (fallback)
  (void)v;
  // engine-lint: allow-row-decode(leaf: gathered rows, no batch source)
  RowBatchDecoder::Decode(out, max, schema_, cols_, &vbatch_);
  return 0;
}
}  // namespace bufferdb
""",
    "src/exec/good_annotated_syscall.cc": """\
#include <unistd.h>
namespace bufferdb {
long ThreadId() {
  return syscall(186);  // LINT: allow-syscall(gettid for log correlation)
}
// A comment mentioning syscall( or perf_event_open must not trip ENG007.
}  // namespace bufferdb
""",
}


def self_test() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="engine_lint_selftest_") as tmp:
        root = Path(tmp)
        for rel, payload in SEEDED_BAD.items():
            _, content = payload
            dest = root / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(content, encoding="utf-8")
        for rel, content in SEEDED_CLEAN.items():
            dest = root / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(content, encoding="utf-8")

        findings = run_lint(root, [])
        by_file: dict[str, set[str]] = {}
        for f in findings:
            by_file.setdefault(f.path.replace(os.sep, "/"), set()).add(f.rule)

        for rel, (expected_rule, _) in SEEDED_BAD.items():
            got = by_file.get(rel, set())
            if expected_rule not in got:
                failures.append(
                    f"seeded violation {rel} expected {expected_rule}, got {sorted(got)}")
        # The ENG003 seed must produce BOTH a missing-Close and a
        # missing-Rescan finding.
        contract = [f for f in findings if f.rule == "ENG003"]
        messages = " | ".join(f.message for f in contract)
        if "Close" not in messages or "Rescan" not in messages:
            failures.append(f"ENG003 seed missed Close/Rescan: {messages!r}")
        for rel in SEEDED_CLEAN:
            got = by_file.get(rel, set())
            if got:
                noise = [f.render() for f in findings if f.path.replace(os.sep, "/") == rel]
                failures.append(f"clean file {rel} produced findings: {noise}")

        # --format json: every finding round-trips with the exact keys the
        # CI problem matcher consumes.
        for f in findings:
            obj = json.loads(f.as_json())
            if obj != {"file": f.path, "line": f.line, "rule": f.rule,
                       "message": f.message}:
                failures.append(f"as_json round-trip mismatch: {obj}")
                break

    if failures:
        print("engine_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("engine_lint self-test passed "
          f"({len(SEEDED_BAD)} seeded violations caught, clean files quiet)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="finding output format: `text` (file:line: "
                             "[RULE] message) or `json` (one object per "
                             "line with file/line/rule/message keys, for "
                             "the CI problem matcher and tooling)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed one violation per rule class and verify "
                             "each is detected")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: src/)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"engine_lint: root {root} is not a directory", file=sys.stderr)
        return 2

    findings = run_lint(root, args.paths)
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f.as_json() if args.format == "json" else f.render())
    if findings:
        print(f"engine_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Benchmark regression gate: compare bench JSON output against baselines.

Every bench in this repo writes JSON lines to stdout (enforced by
`--json-strict`).  CI archives one `<bench>.jsonl` per bench and this script
compares it against the checked-in `bench/baselines/<bench>.jsonl`, flattening
nested objects to dotted metric paths (`original.sim.l1i_misses`) and judging
each metric against a policy table:

  simulated counters   deterministic at a fixed scale factor; a change means
                       the engine's instruction/cache behavior changed.
                       Lower is better; regression when current exceeds
                       baseline by more than --tolerance (default 15%).
  time metrics         (seconds / wall_ns / ns_per_row) noisy on shared CI
                       runners; gated at --time-tolerance (default 60%) so
                       only order-of-magnitude regressions trip the gate,
                       while the deterministic counters catch real ones.
  speedups/reductions  higher is better; percentage-point metrics use an
                       absolute slack so near-zero baselines don't explode.
  hw_* counters        real PMU counters; compared only when BOTH runs report
                       "hw_available": true, silently skipped otherwise
                       (containers and locked-down runners have no PMU).
  identity fields      (config names, row counts, iteration counts, flags)
                       must match exactly -- a mismatch means the baseline is
                       stale and must be regenerated, not compared.

Records are matched positionally within each file and their identity fields
cross-checked.  Anything not covered by a policy is recorded in the report
but never gated.

Usage:
  bench_compare.py --baseline bench/baselines --current out/ [--report diff.md]
  bench_compare.py --baseline base.jsonl --current cur.jsonl
  bench_compare.py --self-test
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

# Fields that identify a record rather than measure it: must be equal.
# The adaptive-buffering outcome fields are identity on purpose: the
# controller is deterministic on the simulator, so a changed chosen capacity
# or demotion decision is a behavior change, not measurement noise.
IDENTITY_FIELDS = {
    "bench", "config", "query", "comparison", "predicate", "scale_factor",
    "smoke", "hw", "rows", "sim_rows", "key_range", "batch_width",
    "batch_size", "buffer_size", "sim_buffer_size", "iters", "keep_fraction",
    "buffers_added", "groups_out", "selected", "outputs_identical", "avx2",
    "decode_rows_out", "string_rows_out", "rows_out", "series",
    "adaptive_chosen_size", "adaptive_demoted", "best_static",
}

# (regex on the dotted metric path, direction, kind)
#   direction: "lower" | "higher"
#   kind: "rel"  -- relative tolerance, "abs_pct" -- percentage-point slack,
#         "time" -- relative, but against the (looser) time tolerance.
POLICIES = [
    (re.compile(r"(^|\.)sim\.(instructions|module_calls|l1i_misses|"
                r"l1d_misses|l2_misses|l2_i_misses|itlb_misses|mispredicts|"
                r"l1i_accesses|l1d_accesses|l2_accesses|itlb_accesses|"
                r"branches)$"), "lower", "rel"),
    (re.compile(r"^sim_(orig|buf|tuple|batch|row|col|fused|unfused)_"
                r"(l1i|itlb|mispredicts|instructions|l1i_misses|"
                r"l1i_accesses)"), "lower", "rel"),
    (re.compile(r"reduction_pct$|improvement_pct$"), "higher", "abs_pct"),
    # Speedups are ratios of same-machine times: cross-runner comparable,
    # but still wall-clock noisy -- gated at >= 30% regardless of --tolerance.
    (re.compile(r"(^|\.)speedup"), "higher", "ratio"),
    (re.compile(r"seconds$|wall_ns$|ns_per_row$"), "lower", "time"),
    (re.compile(r"(^|\.)hw(\.|_)"), "lower", "hw"),
]

ABS_PCT_SLACK = 10.0  # percentage points a *_pct metric may drop.


def flatten(obj, prefix=""):
    out = {}
    for key, val in obj.items():
        path = f"{prefix}{key}"
        if isinstance(val, dict):
            out.update(flatten(val, path + "."))
        else:
            out[path] = val
    return out


def load_jsonl(path):
    records = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def policy_for(path):
    leaf = path.rsplit(".", 1)[-1]
    for rx, direction, kind in POLICIES:
        if rx.search(path) or rx.search(leaf):
            return direction, kind
    return None


class Comparison:
    def __init__(self, tolerance, time_tolerance):
        self.tolerance = tolerance
        self.time_tolerance = time_tolerance
        self.lines = []       # report rows
        self.regressions = []
        self.skipped_hw = 0

    def check_metric(self, where, path, base, cur, hw_ok):
        pol = policy_for(path)
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            return
        if pol is None:
            self.lines.append((where, path, base, cur, "info"))
            return
        direction, kind = pol
        if kind == "hw":
            if not hw_ok:
                self.skipped_hw += 1
                return
            kind = "time" if path.endswith("wall_ns") else "rel"
        if kind == "abs_pct":
            regressed = cur < base - ABS_PCT_SLACK
            status = "REGRESSED" if regressed else "ok"
        else:
            if kind == "time":
                tol = self.time_tolerance
            elif kind == "ratio":
                tol = max(self.tolerance, 0.3)
            else:
                tol = self.tolerance
            if base == 0:
                regressed = (cur > 0) if direction == "lower" else False
            elif direction == "lower":
                regressed = cur > base * (1.0 + tol)
            else:
                regressed = cur < base * (1.0 - tol)
            status = "REGRESSED" if regressed else "ok"
        self.lines.append((where, path, base, cur, status))
        if status == "REGRESSED":
            self.regressions.append(f"{where}: {path}: {base} -> {cur}")

    def compare_records(self, where, base, cur):
        fb, fc = flatten(base), flatten(cur)
        for field in IDENTITY_FIELDS:
            if fb.get(field) != fc.get(field):
                self.regressions.append(
                    f"{where}: identity field {field!r} differs "
                    f"({fb.get(field)!r} vs {fc.get(field)!r}) -- stale "
                    f"baseline? regenerate bench/baselines")
                return
        hw_ok = bool(fb.get("hw_available")) and bool(fc.get("hw_available"))
        for path, bval in sorted(fb.items()):
            if path.rsplit(".", 1)[-1] in IDENTITY_FIELDS:
                continue
            if path not in fc:
                self.regressions.append(f"{where}: metric {path} missing "
                                        f"from current run")
                continue
            self.check_metric(where, path, bval, fc[path], hw_ok)

    def compare_files(self, name, base_path, cur_path):
        base, cur = load_jsonl(base_path), load_jsonl(cur_path)
        if not base:
            # An empty-but-present baseline would otherwise compare equal to
            # an empty current run and silently gate nothing.
            self.regressions.append(
                f"{name}: baseline file is empty ({base_path}) -- "
                f"regenerate bench/baselines from a real run")
            return
        if len(base) != len(cur):
            self.regressions.append(
                f"{name}: record count differs ({len(base)} baseline vs "
                f"{len(cur)} current) -- stale baseline?")
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            self.compare_records(f"{name}[{i}]", b, c)

    def report(self):
        out = ["# bench_compare report", ""]
        out.append(f"{len(self.lines)} metrics compared, "
                   f"{len(self.regressions)} regression(s), "
                   f"{self.skipped_hw} hw metric(s) skipped (no PMU)")
        out.append("")
        if self.regressions:
            out.append("## Regressions")
            out.extend(f"- {r}" for r in self.regressions)
            out.append("")
        out.append("## All metrics")
        out.append("| record | metric | baseline | current | status |")
        out.append("|---|---|---|---|---|")
        for where, path, base, cur, status in self.lines:
            out.append(f"| {where} | {path} | {base} | {cur} | {status} |")
        return "\n".join(out) + "\n"


def run(baseline, current, tolerance, time_tolerance, report_path, out):
    cmp_ = Comparison(tolerance, time_tolerance)
    if os.path.isdir(baseline):
        names = sorted(n for n in os.listdir(baseline) if n.endswith(".jsonl"))
        if not names:
            print(f"bench_compare: FAIL: no .jsonl baselines in {baseline}",
                  file=out)
            return 1
        for name in names:
            cur_path = os.path.join(current, name)
            if not os.path.exists(cur_path):
                cmp_.regressions.append(f"{name}: current run missing "
                                        f"({cur_path} not found)")
                continue
            cmp_.compare_files(name, os.path.join(baseline, name), cur_path)
    else:
        cmp_.compare_files(os.path.basename(baseline), baseline, current)

    if report_path:
        with open(report_path, "w", encoding="utf-8") as f:
            f.write(cmp_.report())
    for reg in cmp_.regressions:
        print(f"bench_compare: REGRESSION: {reg}", file=out)
    print(f"bench_compare: {len(cmp_.lines)} metrics, "
          f"{len(cmp_.regressions)} regression(s), "
          f"{cmp_.skipped_hw} hw skipped", file=out)
    print(f"bench_compare: {'FAIL' if cmp_.regressions else 'PASS'}",
          file=out)
    return 1 if cmp_.regressions else 0


def self_test() -> int:
    import io
    import tempfile

    base_rec = {"bench": "x", "config": "a", "rows": 100,
                "sim_orig_l1i": 1000, "sim_buf_l1i": 100,
                "tuple_seconds": 1.0, "speedup": 2.0,
                "sim": {"l1i_misses": 5000, "instructions": 100000},
                "hw_available": False, "hw_orig_l1i": 0}

    def write(dirname, name, recs):
        path = os.path.join(dirname, name)
        with open(path, "w", encoding="utf-8") as f:
            for r in recs:
                f.write(json.dumps(r) + "\n")
        return path

    with tempfile.TemporaryDirectory() as tmp:
        bdir, cdir = os.path.join(tmp, "b"), os.path.join(tmp, "c")
        os.makedirs(bdir)
        os.makedirs(cdir)
        write(bdir, "x.jsonl", [base_rec])

        # Identical -> PASS.
        write(cdir, "x.jsonl", [base_rec])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 0

        # Counter regression beyond tolerance -> FAIL.
        worse = dict(base_rec, sim_orig_l1i=1300)
        write(cdir, "x.jsonl", [worse])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 1

        # Counter improvement -> PASS (lower is better).
        better = dict(base_rec, sim_orig_l1i=500)
        write(cdir, "x.jsonl", [better])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 0

        # Time within the loose time tolerance -> PASS; way beyond -> FAIL.
        slow_ok = dict(base_rec, tuple_seconds=1.5)
        write(cdir, "x.jsonl", [slow_ok])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 0
        slow_bad = dict(base_rec, tuple_seconds=2.5)
        write(cdir, "x.jsonl", [slow_bad])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 1

        # Speedup ratio: 25% drop tolerated, 40% drop gated.
        write(cdir, "x.jsonl", [dict(base_rec, speedup=1.5)])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 0
        write(cdir, "x.jsonl", [dict(base_rec, speedup=1.2)])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 1

        # hw metrics skipped when either side lacks a PMU: a huge hw_orig_l1i
        # change must NOT fail while hw_available is false.
        hw_noise = dict(base_rec, hw_orig_l1i=10**9)
        write(cdir, "x.jsonl", [hw_noise])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 0
        # ...but gated when both sides have counters.
        hw_base = dict(base_rec, hw_available=True, hw_orig_l1i=1000)
        hw_bad = dict(base_rec, hw_available=True, hw_orig_l1i=5000)
        write(bdir, "x.jsonl", [hw_base])
        write(cdir, "x.jsonl", [hw_bad])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 1
        write(bdir, "x.jsonl", [base_rec])

        # Identity drift (row count changed) -> FAIL with stale-baseline hint.
        drift = dict(base_rec, rows=200)
        write(cdir, "x.jsonl", [drift])
        sink = io.StringIO()
        assert run(bdir, cdir, 0.15, 0.6, None, sink) == 1
        assert "stale" in sink.getvalue()

        # Fused-pipeline counters are gated like the other sim counters.
        fused_base = dict(base_rec, sim_fused_l1i_accesses=1000)
        fused_bad = dict(base_rec, sim_fused_l1i_accesses=1400)
        write(bdir, "x.jsonl", [fused_base])
        write(cdir, "x.jsonl", [fused_bad])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 1
        write(bdir, "x.jsonl", [base_rec])

        # Empty baseline file -> explicit FAIL (even against an empty current
        # run), not a silent zero-record PASS.
        write(bdir, "empty.jsonl", [])
        write(cdir, "empty.jsonl", [])
        sink = io.StringIO()
        assert run(bdir, cdir, 0.15, 0.6, None, sink) == 1
        assert "empty" in sink.getvalue()
        os.unlink(os.path.join(bdir, "empty.jsonl"))
        os.unlink(os.path.join(cdir, "empty.jsonl"))
        write(cdir, "x.jsonl", [base_rec])
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 0

        # Missing current file -> FAIL.
        os.unlink(os.path.join(cdir, "x.jsonl"))
        assert run(bdir, cdir, 0.15, 0.6, None, io.StringIO()) == 1

        # Report file is written and mentions the regression.
        write(cdir, "x.jsonl", [worse])
        report = os.path.join(tmp, "diff.md")
        assert run(bdir, cdir, 0.15, 0.6, report, io.StringIO()) == 1
        with open(report, encoding="utf-8") as f:
            text = f.read()
        assert "sim_orig_l1i" in text and "REGRESSED" in text

    print("bench_compare: self-test OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="baseline .jsonl file or directory")
    ap.add_argument("--current", help="current .jsonl file or directory")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="relative tolerance for counters (default 0.15)")
    ap.add_argument("--time-tolerance", type=float, default=0.6,
                    help="relative tolerance for wall-clock metrics "
                         "(default 0.6; CI runners are noisy)")
    ap.add_argument("--report", help="write a markdown diff report here")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required")
    return run(args.baseline, args.current, args.tolerance,
               args.time_tolerance, args.report, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Instruction-footprint audit of the *real* engine binary.

The paper's argument rests on per-operator instruction footprints (Table 2),
measured by walking call graphs and counting shared functions only once
(§6.1). `src/sim/code_layout.cc` hand-calibrates a synthetic binary to those
numbers; this tool applies the same methodology to the build artifacts the
engine actually ships, so an inlining or template-bloat regression that blows
the L1i working set fails CI instead of silently eroding the project's whole
premise.

Pipeline (stdlib only, like engine_lint.py):

  1. `nm --print-size --defined-only -C` gives every .text symbol and size.
  2. `objdump -drC` gives the static call graph: direct `call`/tail-`jmp`
     operands (via `<symbol>` annotations in linked binaries, relocation
     records in archives) plus an indirect-call heuristic: any function
     containing an indirect `call *`/`jmp *` gains edges to every override
     of the Operator virtual slots (Open/Next/NextBatch/Close/Rescan) — the
     vtable dispatch a linker-level call graph cannot see.
  3. A checked-in manifest (tools/footprint_modules.json) maps demangled
     symbol patterns to the paper's operator modules, using exactly the
     names `sim::ModuleName` emits (drift between the two is a failure).
  4. Per module, the reachable .text closure is computed from its root
     symbols. Traversal stops at symbols owned by a *different* module
     (that code is the other module's footprint, per the paper's per-module
     accounting); unowned helpers (executor glue, libstdc++) are included.
     Two totals are reported per §6.1:
       - shared-once: every reachable symbol counted once;
       - exclusive:   only symbols no other module also reaches.
  5. Budgets (tools/footprint_budgets.json) gate the shared-once totals;
     an overrun exits 1 with a markdown diff report.
  6. The static-over-dynamic overestimate is reported by diffing the
     reachable sets against the hot-symbol patterns (the dynamic profile's
     proxy): §6.1 notes static reachability overestimates what dynamic
     profiling observes.

The audit also closes the loop into the simulator: `--emit-calibration`
writes per-module measured footprints in the format
`sim::CodeLayout::LoadCalibration` consumes, so `--calibration=FILE` bench
runs drive the simulator with the audited layout, and validate_sim.py
cross-checks simulated vs. audited footprints.

Usage:
  footprint_audit.py --binary build/src/libbufferdb.a [--binary ...]
                     [--manifest tools/footprint_modules.json]
                     [--budgets tools/footprint_budgets.json]
                     [--code-layout src/sim/code_layout.cc]
                     [--report report.md] [--json report.json]
                     [--emit-calibration calibration.txt]
  footprint_audit.py --self-test

Exit status: 0 clean, 1 findings (budget overrun, unmapped hot symbol,
module-name drift), 2 usage/tool error.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

CACHE_LINE = 64

# nm: "addr size type name"; code symbols only (t/T/w/W).
NM_LINE_RE = re.compile(
    r"^([0-9a-fA-F]+)\s+([0-9a-fA-F]+)\s+([tTwW])\s+(.+?)\s*$")

# objdump: "0000000000001234 <demangled name>:" opens a function body.
FUNC_HEADER_RE = re.compile(r"^[0-9a-fA-F]+\s+<(.+)>:\s*$")

# Direct call / tail jump with a resolved symbol annotation:
#   "call   4005d0 <bufferdb::SeqScanOperator::Next()>"
#   "jmp    4010a0 <foo+0x40>"   (offset form: branch or tail call)
DIRECT_CALL_RE = re.compile(
    r"\b(?:call|jmp)[a-z]?\s+(?:0x)?[0-9a-fA-F]+\s+<([^>]+)>")

# Relocation record naming the call target (archives / object files):
#   "  5e: R_X86_64_PLT32  operator new[](unsigned long)-0x4"
RELOC_RE = re.compile(
    r"^\s*[0-9a-fA-F]+:\s+R_X86_64_(?:PLT32|PC32|GOTPCREL(?:X)?)\s+(.+?)\s*$")

# Indirect call/jump through a register or memory slot ("call *%rax").
INDIRECT_RE = re.compile(r"\b(?:call|jmp)[a-z]?\s+\*")

# PLT-resolved indirect jump comment: "# c4000 <memset@GLIBC_2.2.5>".
PLT_COMMENT_RE = re.compile(r"#\s*[0-9a-fA-F]+\s+<([^>]+)>")

# ModuleName() literals in src/sim/code_layout.cc: the canonical module-name
# set the manifest and budgets must match exactly.
MODULE_NAME_FUNC_RE = re.compile(
    r"const\s+char\*\s+ModuleName\s*\([^)]*\)\s*\{(.*?)\n\}", re.S)
RETURN_LITERAL_RE = re.compile(r'return\s+"([^"]+)"')


def normalize_symbol(name: str) -> str:
    """Canonical symbol identity: strip @VERSION and @plt decorations."""
    return re.sub(r"@[\w.]+$", "", name.strip())


@dataclass
class Binary:
    """Parsed symbol table + static call graph of one build artifact."""
    path: str
    sizes: dict[str, int] = field(default_factory=dict)
    calls: dict[str, set[str]] = field(default_factory=dict)
    indirect_sites: dict[str, int] = field(default_factory=dict)


def parse_nm(text: str, binary: Binary) -> None:
    for line in text.splitlines():
        m = NM_LINE_RE.match(line)
        if not m:
            continue
        size = int(m.group(2), 16)
        name = normalize_symbol(m.group(4))
        if size <= 0:
            continue
        # Weak/template symbols can appear in several archive members;
        # the linker keeps one, so take the largest observed size once.
        binary.sizes[name] = max(binary.sizes.get(name, 0), size)


def parse_objdump(text: str, binary: Binary) -> None:
    current: str | None = None
    for line in text.splitlines():
        header = FUNC_HEADER_RE.match(line)
        if header:
            current = normalize_symbol(header.group(1))
            continue
        if current is None:
            continue
        reloc = RELOC_RE.match(line)
        if reloc:
            target = normalize_symbol(re.sub(r"[+-]0x[0-9a-fA-F]+$", "",
                                             reloc.group(1)))
            if target and target != current:
                binary.calls.setdefault(current, set()).add(target)
            continue
        hit = DIRECT_CALL_RE.search(line)
        if hit:
            target = normalize_symbol(re.sub(r"\+0x[0-9a-fA-F]+$", "",
                                             hit.group(1)))
            if target and target != current:
                binary.calls.setdefault(current, set()).add(target)
            continue
        if INDIRECT_RE.search(line):
            plt = PLT_COMMENT_RE.search(line)
            if plt:
                # PLT trampoline with a resolved target: a direct call in
                # disguise, not a vtable dispatch.
                target = normalize_symbol(plt.group(1))
                if target and target != current:
                    binary.calls.setdefault(current, set()).add(target)
            else:
                binary.indirect_sites[current] = (
                    binary.indirect_sites.get(current, 0) + 1)


def run_tool(cmd: list[str]) -> str:
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    except FileNotFoundError:
        raise SystemExit(f"footprint_audit: tool not found: {cmd[0]}")
    except subprocess.CalledProcessError as exc:
        raise SystemExit(
            f"footprint_audit: {' '.join(cmd)} failed: {exc.stderr.strip()}")
    return proc.stdout


def load_binary(path: str, nm_cmd: str, objdump_cmd: str) -> Binary:
    binary = Binary(path=path)
    parse_nm(run_tool([nm_cmd, "--print-size", "--defined-only", "-C", path]),
             binary)
    parse_objdump(run_tool([objdump_cmd, "-drC", path]), binary)
    return binary


def merge_binaries(binaries: list[Binary]) -> Binary:
    merged = Binary(path=" + ".join(b.path for b in binaries))
    for b in binaries:
        for name, size in b.sizes.items():
            merged.sizes[name] = max(merged.sizes.get(name, 0), size)
        for name, targets in b.calls.items():
            merged.calls.setdefault(name, set()).update(targets)
        for name, count in b.indirect_sites.items():
            merged.indirect_sites[name] = (
                merged.indirect_sites.get(name, 0) + count)
    return merged


# ---------------------------------------------------------------------------
# Module attribution
# ---------------------------------------------------------------------------


@dataclass
class Manifest:
    modules: dict[str, list[re.Pattern]]       # name -> symbol patterns
    operator_class: re.Pattern                 # Operator subclass symbols
    virtual_slots: list[str]                   # Open/Next/... slot names
    hot_patterns: list[re.Pattern]             # dynamic-profile proxy


def load_manifest(path: Path) -> Manifest:
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"footprint_audit: cannot read manifest {path}: {exc}")
    try:
        modules = {name: [re.compile(p) for p in spec["patterns"]]
                   for name, spec in raw["modules"].items()}
        return Manifest(
            modules=modules,
            operator_class=re.compile(raw["operator_class_pattern"]),
            virtual_slots=list(raw["virtual_slots"]),
            hot_patterns=[re.compile(p) for p in raw["hot_patterns"]])
    except (KeyError, re.error) as exc:
        raise SystemExit(f"footprint_audit: malformed manifest {path}: {exc}")


def owner_of(symbol: str, manifest: Manifest) -> str | None:
    """First module (manifest order) whose pattern matches; None = shared."""
    for module, patterns in manifest.modules.items():
        for pattern in patterns:
            if pattern.search(symbol):
                return module
    return None


def virtual_overrides(binary: Binary, manifest: Manifest) -> set[str]:
    """Symbols implementing an Operator virtual slot (vtable targets)."""
    overrides = set()
    slot_re = re.compile(
        r"::(?:%s)\(" % "|".join(re.escape(s) for s in manifest.virtual_slots))
    for name in binary.sizes:
        if manifest.operator_class.search(name) and slot_re.search(name):
            overrides.add(name)
    return overrides


@dataclass
class ModuleFootprint:
    name: str
    roots: set[str] = field(default_factory=set)
    reachable: set[str] = field(default_factory=set)   # roots + shared code
    shared_once_bytes: int = 0
    exclusive_bytes: int = 0
    hot_bytes: int = 0

    @property
    def cache_lines(self) -> int:
        return (self.shared_once_bytes + CACHE_LINE - 1) // CACHE_LINE


def analyze(binary: Binary, manifest: Manifest) -> dict[str, ModuleFootprint]:
    owners = {name: owner_of(name, manifest) for name in binary.sizes}
    overrides = virtual_overrides(binary, manifest)

    def successors(symbol: str) -> set[str]:
        targets = set(binary.calls.get(symbol, ()))
        if binary.indirect_sites.get(symbol):
            # Vtable-slot heuristic: an indirect call site may dispatch to
            # any Operator virtual override. The module-boundary cut below
            # keeps foreign operators out of this module's footprint.
            targets |= overrides
        return targets

    footprints: dict[str, ModuleFootprint] = {}
    for module in manifest.modules:
        fp = ModuleFootprint(name=module)
        fp.roots = {s for s, o in owners.items() if o == module}
        # BFS; descend through own and unowned symbols, stop at (and do not
        # count) symbols owned by a different module.
        stack = sorted(fp.roots)
        seen = set(stack)
        while stack:
            sym = stack.pop()
            fp.reachable.add(sym)
            for target in successors(sym):
                if target in seen or target not in binary.sizes:
                    continue
                seen.add(target)
                if owners.get(target) not in (None, module):
                    continue  # a different operator module's code
                stack.append(target)
        fp.shared_once_bytes = sum(binary.sizes[s] for s in fp.reachable)
        fp.hot_bytes = sum(
            binary.sizes[s] for s in fp.reachable
            if any(p.search(s) for p in manifest.hot_patterns))
        footprints[module] = fp

    reach_count: dict[str, int] = {}
    for fp in footprints.values():
        for sym in fp.reachable:
            reach_count[sym] = reach_count.get(sym, 0) + 1
    for fp in footprints.values():
        fp.exclusive_bytes = sum(
            binary.sizes[s] for s in fp.reachable if reach_count[s] == 1)
    return footprints


def unmapped_hot_symbols(binary: Binary, manifest: Manifest) -> list[str]:
    """Operator-virtual symbols no manifest rule attributes to a module.

    These are exactly the symbols a new (or renamed) operator contributes:
    hot by construction, but invisible to the per-module budgets until the
    manifest learns about them — so their existence fails the audit.
    """
    overrides = virtual_overrides(binary, manifest)
    return sorted(s for s in overrides if owner_of(s, manifest) is None)


def module_names_from_code_layout(path: Path) -> set[str]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"footprint_audit: cannot read {path}: {exc}")
    m = MODULE_NAME_FUNC_RE.search(text)
    if not m:
        raise SystemExit(
            f"footprint_audit: no ModuleName() definition found in {path}")
    names = set(RETURN_LITERAL_RE.findall(m.group(1)))
    names.discard("Unknown")
    if not names:
        raise SystemExit(
            f"footprint_audit: ModuleName() in {path} returned no literals")
    return names


# ---------------------------------------------------------------------------
# Gates + reports
# ---------------------------------------------------------------------------


@dataclass
class AuditResult:
    footprints: dict[str, ModuleFootprint]
    budgets: dict[str, int]
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def apply_gates(binary: Binary, manifest: Manifest,
                footprints: dict[str, ModuleFootprint],
                budgets: dict[str, int],
                sim_module_names: set[str] | None) -> AuditResult:
    result = AuditResult(footprints=footprints, budgets=budgets)

    if sim_module_names is not None:
        manifest_names = set(manifest.modules)
        for missing in sorted(sim_module_names - manifest_names):
            result.failures.append(
                f"module-name drift: sim::ModuleName emits {missing!r} but "
                f"the manifest has no such module")
        for extra in sorted(manifest_names - sim_module_names):
            result.failures.append(
                f"module-name drift: manifest module {extra!r} is unknown "
                f"to sim::ModuleName")

    for missing in sorted(set(manifest.modules) - set(budgets)):
        result.failures.append(
            f"budget missing: module {missing!r} has no entry in the "
            f"budgets file")
    for extra in sorted(set(budgets) - set(manifest.modules)):
        result.failures.append(
            f"budget drift: budgets file names unknown module {extra!r}")

    for module, fp in footprints.items():
        budget = budgets.get(module)
        if budget is not None and fp.shared_once_bytes > budget:
            result.failures.append(
                f"budget overrun: {module} reachable footprint "
                f"{fp.shared_once_bytes} bytes exceeds budget {budget} "
                f"(+{fp.shared_once_bytes - budget})")

    for symbol in unmapped_hot_symbols(binary, manifest):
        result.failures.append(
            f"unmapped hot symbol: {symbol} implements an Operator virtual "
            f"but no manifest pattern attributes it to a module")
    return result


def markdown_report(binary: Binary, result: AuditResult) -> str:
    lines = ["# Instruction-footprint audit", "",
             f"Artifacts: `{binary.path}`", "",
             f"Symbols: {len(binary.sizes)}   "
             f".text bytes: {sum(binary.sizes.values())}", "",
             "| module | budget (B) | shared-once (B) | headroom | "
             "64B lines | exclusive (B) | hot (B) | static/hot |",
             "|---|---|---|---|---|---|---|---|"]
    for module, fp in sorted(result.footprints.items(),
                             key=lambda kv: -kv[1].shared_once_bytes):
        budget = result.budgets.get(module)
        if budget:
            headroom = f"{(budget - fp.shared_once_bytes) / budget:+.0%}"
            if fp.shared_once_bytes > budget:
                headroom = f"**OVERRUN {headroom}**"
        else:
            headroom = "n/a"
        ratio = (f"{fp.shared_once_bytes / fp.hot_bytes:.1f}x"
                 if fp.hot_bytes else "n/a")
        lines.append(
            f"| {module} | {budget if budget else '—'} | "
            f"{fp.shared_once_bytes} | {headroom} | {fp.cache_lines} | "
            f"{fp.exclusive_bytes} | {fp.hot_bytes} | {ratio} |")
    lines.append("")
    lines.append("`shared-once`: reachable .text, each symbol counted once "
                 "(§6.1). `exclusive`: reachable from this module only. "
                 "`hot`: reachable symbols matching the dynamic-profile "
                 "proxy patterns; `static/hot` is the §6.1 static-over-"
                 "dynamic overestimate.")
    lines.append("")
    if result.failures:
        lines.append("## Failures")
        lines.append("")
        for failure in result.failures:
            lines.append(f"- {failure}")
    else:
        lines.append("All modules within budget; no unmapped hot symbols.")
    lines.append("")
    return "\n".join(lines)


def json_report(binary: Binary, result: AuditResult) -> dict:
    return {
        "tool": "footprint_audit",
        "binary": binary.path,
        "text_bytes": sum(binary.sizes.values()),
        "symbols": len(binary.sizes),
        "modules": {
            module: {
                "shared_once_bytes": fp.shared_once_bytes,
                "exclusive_bytes": fp.exclusive_bytes,
                "cache_lines": fp.cache_lines,
                "hot_bytes": fp.hot_bytes,
                "root_symbols": len(fp.roots),
                "reachable_symbols": len(fp.reachable),
                "budget_bytes": result.budgets.get(module),
            }
            for module, fp in sorted(result.footprints.items())
        },
        "failures": result.failures,
    }


def calibration_text(result: AuditResult) -> str:
    lines = ["# bufferdb code-layout calibration",
             "# generated by tools/footprint_audit.py from the audited "
             "binary; load with",
             "# sim::CodeLayout::LoadCalibration (bench flag "
             "--calibration=<this file>)."]
    for module, fp in sorted(result.footprints.items()):
        if fp.shared_once_bytes > 0:
            lines.append(f"module {module} {fp.shared_once_bytes}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Self-test: synthetic nm/objdump fixtures, one per failure class
# ---------------------------------------------------------------------------

FIXTURE_MANIFEST = {
    "modules": {
        "Scan": {"patterns": [r"bufferdb::SeqScanOperator::"]},
        "Sort": {"patterns": [r"bufferdb::SortOperator::"]},
    },
    "operator_class_pattern": r"bufferdb::\w+Operator::",
    "virtual_slots": ["Open", "Next", "NextBatch", "Close", "Rescan"],
    "hot_patterns": [r"Operator::Next"],
}

FIXTURE_CODE_LAYOUT = """\
const char* ModuleName(ModuleId module) {
  switch (module) {
    case ModuleId::kSeqScan:
      return "Scan";
    case ModuleId::kSort:
      return "Sort";
    case ModuleId::kNumModules:
      break;
  }
  return "Unknown";
}
"""


def _nm_line(addr: int, size: int, kind: str, name: str) -> str:
    return f"{addr:016x} {size:016x} {kind} {name}"


def _fixture_binary() -> Binary:
    """Hand-built nm/objdump texts exercising every parser path.

    Call graph:
      Scan::Next  --direct-->  helper_shared --tail-jmp--> leaf_shared
      Sort::Next  --direct-->  helper_shared
      Sort::Next  --direct-->  Scan::Next          (cut: foreign module)
      dispatch    --indirect-> {Scan::Next, Sort::Next}  (vtable heuristic)
      Scan::Open  --reloc--->  helper_reloc        (archive-style record)
    """
    nm_text = "\n".join([
        _nm_line(0x1000, 0x400, "T", "bufferdb::SeqScanOperator::Next()"),
        _nm_line(0x1400, 0x200, "T", "bufferdb::SeqScanOperator::Open()"),
        _nm_line(0x1600, 0x300, "T", "bufferdb::SortOperator::Next()"),
        _nm_line(0x1900, 0x100, "t", "helper_shared()"),
        _nm_line(0x1a00, 0x80, "t", "leaf_shared()"),
        _nm_line(0x1a80, 0x40, "W", "helper_reloc()"),
        _nm_line(0x1b00, 0x150, "T", "bufferdb::ExecutePlan()"),
        _nm_line(0x2000, 0x999, "T", "unrelated_cold()"),
    ])
    objdump_text = "\n".join([
        "0000000000001000 <bufferdb::SeqScanOperator::Next()>:",
        "    1000:\te8 00 00 00 00\tcall   1900 <helper_shared()>",
        "    1005:\t74 10          \tje     1015 "
        "<bufferdb::SeqScanOperator::Next()+0x15>",
        "0000000000001400 <bufferdb::SeqScanOperator::Open()>:",
        "    1400:\te8 00 00 00 00\tcall   1405 "
        "<bufferdb::SeqScanOperator::Open()+0x5>",
        "\t\t\t1401: R_X86_64_PLT32\thelper_reloc()-0x4",
        "0000000000001600 <bufferdb::SortOperator::Next()>:",
        "    1600:\te8 00 00 00 00\tcall   1900 <helper_shared()>",
        "    1605:\te8 00 00 00 00\tcall   1000 "
        "<bufferdb::SeqScanOperator::Next()>",
        "0000000000001900 <helper_shared()>:",
        "    1900:\teb 00          \tjmp    1a00 <leaf_shared()>",
        "0000000000001a00 <leaf_shared()>:",
        "    1a00:\tc3             \tret",
        "0000000000001b00 <bufferdb::ExecutePlan()>:",
        "    1b00:\tff d0          \tcall   *%rax",
        "0000000000002000 <unrelated_cold()>:",
        "    2000:\tc3             \tret",
    ])
    binary = Binary(path="<fixture>")
    parse_nm(nm_text, binary)
    parse_objdump(objdump_text, binary)
    return binary


def self_test() -> int:
    failures: list[str] = []

    def check(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="footprint_audit_selftest_") as tmp:
        root = Path(tmp)
        manifest_path = root / "footprint_modules.json"
        manifest_path.write_text(json.dumps(FIXTURE_MANIFEST))
        manifest = load_manifest(manifest_path)
        layout_path = root / "code_layout.cc"
        layout_path.write_text(FIXTURE_CODE_LAYOUT)

        binary = _fixture_binary()
        check(binary.sizes["bufferdb::SeqScanOperator::Next()"] == 0x400,
              "nm parse: symbol size")
        check("helper_reloc()" in
              binary.calls["bufferdb::SeqScanOperator::Open()"],
              "objdump parse: relocation-record call target")
        check("leaf_shared()" in binary.calls["helper_shared()"],
              "objdump parse: tail-jmp edge")
        check(binary.indirect_sites.get("bufferdb::ExecutePlan()") == 1,
              "objdump parse: indirect call site")

        footprints = analyze(binary, manifest)
        scan, sort = footprints["Scan"], footprints["Sort"]
        # Scan: Next(0x400) + Open(0x200) + helper_shared(0x100) +
        # leaf_shared(0x80) + helper_reloc(0x40); shared helpers counted once.
        check(scan.shared_once_bytes == 0x400 + 0x200 + 0x100 + 0x80 + 0x40,
              f"shared-once accounting (got {scan.shared_once_bytes:#x})")
        # Sort reaches helper/leaf too but NOT Scan's code (module cut).
        check(sort.shared_once_bytes == 0x300 + 0x100 + 0x80,
              f"module-boundary cut (got {sort.shared_once_bytes:#x})")
        # Exclusive drops the helpers both modules reach.
        check(scan.exclusive_bytes == 0x400 + 0x200 + 0x40,
              f"exclusive accounting (got {scan.exclusive_bytes:#x})")
        check(sort.exclusive_bytes == 0x300, "sort exclusive accounting")
        check(scan.hot_bytes == 0x400, "hot-pattern accounting")
        check("unrelated_cold()" not in scan.reachable | sort.reachable,
              "unreachable code stays unattributed")

        # Clean gates: budgets with headroom, matching module names.
        sim_names = module_names_from_code_layout(layout_path)
        check(sim_names == {"Scan", "Sort"}, "ModuleName literal extraction")
        good_budgets = {"Scan": 0x1000, "Sort": 0x1000}
        clean = apply_gates(binary, manifest, footprints, good_budgets,
                            sim_names)
        check(clean.ok, f"clean fixture produced failures: {clean.failures}")

        # Failure class 1: budget overrun.
        overrun = apply_gates(binary, manifest, footprints,
                              {"Scan": 0x100, "Sort": 0x1000}, sim_names)
        check(any("budget overrun: Scan" in f for f in overrun.failures),
              "budget overrun not detected")

        # Failure class 2: unmapped hot symbol (new operator, no manifest
        # rule). TopNOperator::Next appears in the binary but no pattern
        # claims it.
        binary2 = _fixture_binary()
        parse_nm(_nm_line(0x3000, 0x123, "T",
                          "bufferdb::TopNOperator::Next()"), binary2)
        fp2 = analyze(binary2, manifest)
        unmapped = apply_gates(binary2, manifest, fp2, good_budgets, sim_names)
        check(any("unmapped hot symbol" in f and "TopNOperator" in f
                  for f in unmapped.failures),
              "unmapped hot symbol not detected")

        # Failure class 3: manifest/module-name drift, both directions.
        drift = apply_gates(binary, manifest, footprints, good_budgets,
                            {"Scan", "Sort", "MergeJoin"})
        check(any("drift" in f and "MergeJoin" in f for f in drift.failures),
              "sim-name drift (missing manifest module) not detected")
        drift2 = apply_gates(binary, manifest, footprints, good_budgets,
                             {"Scan"})
        check(any("drift" in f and "Sort" in f for f in drift2.failures),
              "manifest-name drift (unknown module) not detected")

        # Failure class 4: budget file missing a module.
        missing = apply_gates(binary, manifest, footprints, {"Scan": 0x1000},
                              sim_names)
        check(any("budget missing" in f and "Sort" in f
                  for f in missing.failures),
              "missing budget entry not detected")

        # Reports and calibration round-trip through the real formats.
        md = markdown_report(binary, overrun)
        check("OVERRUN" in md and "| Scan |" in md, "markdown report content")
        js = json_report(binary, clean)
        check(js["modules"]["Scan"]["shared_once_bytes"] ==
              scan.shared_once_bytes, "json report content")
        calib = calibration_text(clean)
        check(f"module Scan {scan.shared_once_bytes}" in calib,
              "calibration emission")
        check(module_names_from_code_layout(
            Path(__file__).resolve().parent.parent /
            "src" / "sim" / "code_layout.cc") >= {"Scan", "Buffer", "TopN"},
            "real code_layout.cc module-name extraction")

    if failures:
        print("footprint_audit self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("footprint_audit self-test passed "
          "(parsers, shared-once/exclusive accounting, module cut, and all "
          "gate failure classes verified)")
    return 0


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    root_default = Path(__file__).resolve().parent.parent
    parser.add_argument("--binary", action="append", default=[],
                        help="build artifact to audit (.a archive or linked "
                             "binary); repeatable, results are merged")
    parser.add_argument("--manifest",
                        default=str(root_default / "tools" /
                                    "footprint_modules.json"))
    parser.add_argument("--budgets",
                        default=str(root_default / "tools" /
                                    "footprint_budgets.json"))
    parser.add_argument("--code-layout",
                        default=str(root_default / "src" / "sim" /
                                    "code_layout.cc"),
                        help="source file whose ModuleName() literals are "
                             "the canonical module-name set ('' to skip)")
    parser.add_argument("--report", help="write a markdown report here")
    parser.add_argument("--json", help="write a JSON report here")
    parser.add_argument("--emit-calibration",
                        help="write measured footprints in the "
                             "CodeLayout::LoadCalibration format")
    parser.add_argument("--nm-cmd", default="nm")
    parser.add_argument("--objdump-cmd", default="objdump")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.binary:
        parser.error("at least one --binary is required (or --self-test)")

    manifest = load_manifest(Path(args.manifest))
    try:
        budgets_raw = json.loads(Path(args.budgets).read_text(
            encoding="utf-8"))
        budgets = {name: int(spec["budget_bytes"])
                   for name, spec in budgets_raw["budgets"].items()}
    except (OSError, json.JSONDecodeError, KeyError, TypeError,
            ValueError) as exc:
        print(f"footprint_audit: cannot read budgets {args.budgets}: {exc}",
              file=sys.stderr)
        return 2

    sim_names = (module_names_from_code_layout(Path(args.code_layout))
                 if args.code_layout else None)

    binaries = [load_binary(p, args.nm_cmd, args.objdump_cmd)
                for p in args.binary]
    binary = merge_binaries(binaries)
    if not binary.sizes:
        print(f"footprint_audit: no code symbols found in {binary.path}",
              file=sys.stderr)
        return 2

    footprints = analyze(binary, manifest)
    result = apply_gates(binary, manifest, footprints, budgets, sim_names)

    if args.report:
        Path(args.report).write_text(markdown_report(binary, result),
                                     encoding="utf-8")
    if args.json:
        Path(args.json).write_text(
            json.dumps(json_report(binary, result), indent=2) + "\n",
            encoding="utf-8")
    if args.emit_calibration:
        Path(args.emit_calibration).write_text(calibration_text(result),
                                               encoding="utf-8")

    for module, fp in sorted(result.footprints.items(),
                             key=lambda kv: -kv[1].shared_once_bytes):
        budget = result.budgets.get(module, 0)
        print(f"footprint_audit: {module:20s} shared-once "
              f"{fp.shared_once_bytes:8d} B ({fp.cache_lines:5d} lines)  "
              f"exclusive {fp.exclusive_bytes:8d} B  budget {budget:8d} B")
    for failure in result.failures:
        print(f"footprint_audit: FAIL: {failure}", file=sys.stderr)
    if result.failures:
        print(f"footprint_audit: {len(result.failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("footprint_audit: PASS "
          f"({len(result.footprints)} modules within budget)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// Join-strategy example (the paper's §7.5): runs Query 3 under all three
// join methods — index nested loop, hash, merge — with and without plan
// refinement, printing the exact buffered plan shapes of Figs. 15-17.
//
//   ./build/examples/join_strategies [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "plan/physical_planner.h"
#include "plan/plan_printer.h"
#include "sim/sim_cpu.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

using namespace bufferdb;  // NOLINT: example code.

namespace {

constexpr char kQuery3[] = R"sql(
    SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount)
    FROM lineitem, orders
    WHERE l_orderkey = o_orderkey
      AND l_shipdate <= DATE '1998-09-02'
)sql";

double RunOnce(const Catalog& catalog, const LogicalQuery& query,
               JoinStrategy strategy, bool refine, bool print_plan) {
  PlannerOptions options;
  options.join_strategy = strategy;
  options.refine = refine;
  PhysicalPlanner planner(&catalog, options);
  auto plan = planner.CreatePlan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  if (print_plan) std::printf("%s", PrintPlan(**plan).c_str());
  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(plan->get(), &ctx);
  if (!rows.ok()) {
    std::fprintf(stderr, "exec: %s\n", rows.status().ToString().c_str());
    std::exit(1);
  }
  if (print_plan) {
    std::printf("  -> sum=%s count=%s avg=%s\n",
                (*rows)[0][0].ToString().c_str(),
                (*rows)[0][1].ToString().c_str(),
                (*rows)[0][2].ToString().c_str());
  }
  return cpu.Breakdown().seconds();
}

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig config;
  if (argc > 1) config.scale_factor = std::atof(argv[1]);
  Catalog catalog;
  Status st = tpch::LoadTpch(config, &catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  sql::Binder binder(&catalog);
  auto query = binder.BindSql(kQuery3);
  if (!query.ok()) {
    std::fprintf(stderr, "bind: %s\n", query.status().ToString().c_str());
    return 1;
  }

  for (JoinStrategy strategy :
       {JoinStrategy::kIndexNestLoop, JoinStrategy::kHashJoin,
        JoinStrategy::kMergeJoin}) {
    std::printf("==== %s join ====\n", JoinStrategyName(strategy));
    std::printf("original plan:\n");
    double original = RunOnce(catalog, *query, strategy, false, true);
    std::printf("refined plan:\n");
    double buffered = RunOnce(catalog, *query, strategy, true, true);
    std::printf("elapsed: %.4f -> %.4f sim-sec (%.1f%% improvement)\n\n",
                original, buffered, 100.0 * (1.0 - buffered / original));
  }
  return 0;
}

// Pricing-summary example: the full TPC-H Q1 (grouped by returnflag and
// linestatus) executed through the SQL front end, showing the refined plan,
// the result table, and the simulated counter comparison — the paper's §4
// motivating workload end to end.
//
//   ./build/examples/tpch_pricing_summary [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "plan/physical_planner.h"
#include "plan/plan_printer.h"
#include "sim/sim_cpu.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

using namespace bufferdb;  // NOLINT: example code.

namespace {

constexpr char kPricingSummary[] = R"sql(
    SELECT l_returnflag, l_linestatus,
           SUM(l_quantity) AS sum_qty,
           SUM(l_extendedprice) AS sum_base_price,
           SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
           SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
           AVG(l_quantity) AS avg_qty,
           AVG(l_extendedprice) AS avg_price,
           AVG(l_discount) AS avg_disc,
           COUNT(*) AS count_order
    FROM lineitem
    WHERE l_shipdate <= DATE '1998-09-02'
    GROUP BY l_returnflag, l_linestatus
    ORDER BY l_returnflag, l_linestatus
)sql";

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig config;
  if (argc > 1) config.scale_factor = std::atof(argv[1]);
  Catalog catalog;
  Status st = tpch::LoadTpch(config, &catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  sql::Binder binder(&catalog);
  auto query = binder.BindSql(kPricingSummary);
  if (!query.ok()) {
    std::fprintf(stderr, "bind: %s\n", query.status().ToString().c_str());
    return 1;
  }

  double elapsed[2];
  for (int pass = 0; pass < 2; ++pass) {
    bool refine = pass == 1;
    PlannerOptions options;
    options.refine = refine;
    PhysicalPlanner planner(&catalog, options);
    RefinementReport report;
    auto plan = planner.CreatePlan(*query, &report);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s plan:\n%s", refine ? "refined" : "original",
                PrintPlan(**plan).c_str());
    if (refine) std::printf("%s", report.ToString().c_str());

    sim::SimCpu cpu;
    ExecContext ctx;
    ctx.cpu = &cpu;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    if (!rows.ok()) {
      std::fprintf(stderr, "exec: %s\n", rows.status().ToString().c_str());
      return 1;
    }
    if (!refine) {
      const Schema& schema = (*plan)->output_schema();
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        std::printf("%-16s", schema.column(c).name.c_str());
      }
      std::printf("\n");
      for (const auto& row : *rows) {
        for (const Value& v : row) std::printf("%-16s", v.ToString().c_str());
        std::printf("\n");
      }
    }
    elapsed[pass] = cpu.Breakdown().seconds();
    std::printf("%s\n",
                cpu.Breakdown().ToString(refine ? "refined" : "original")
                    .c_str());
  }
  std::printf("plan refinement improved the pricing summary by %.1f%%\n",
              100.0 * (1.0 - elapsed[1] / elapsed[0]));
  return 0;
}

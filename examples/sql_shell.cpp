// Interactive SQL shell over the memory-resident TPC-H database. Each
// statement is planned twice (original and refined); results come from the
// refined plan, followed by both plans and the simulated-counter comparison.
//
//   ./build/examples/sql_shell [scale_factor]
//   bufferdb> SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10;
//
// Meta commands: \tables, \plan on|off, \q

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "catalog/catalog.h"
#include "plan/physical_planner.h"
#include "plan/plan_printer.h"
#include "sim/sim_cpu.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

using namespace bufferdb;  // NOLINT: example code.

namespace {

void ExecuteStatement(const Catalog& catalog, const std::string& sql,
                      bool show_plans) {
  sql::Binder binder(&catalog);
  auto query = binder.BindSql(sql);
  if (!query.ok()) {
    std::printf("error: %s\n", query.status().ToString().c_str());
    return;
  }

  double seconds[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    bool refine = pass == 1;
    PlannerOptions options;
    options.refine = refine;
    PhysicalPlanner planner(&catalog, options);
    auto plan = planner.CreatePlan(*query);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return;
    }
    sim::SimCpu cpu;
    ExecContext ctx;
    ctx.cpu = &cpu;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    if (!rows.ok()) {
      std::printf("error: %s\n", rows.status().ToString().c_str());
      return;
    }
    seconds[pass] = cpu.Breakdown().seconds();
    if (refine) {
      const Schema& schema = (*plan)->output_schema();
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        std::printf("%s%s", c > 0 ? " | " : "", schema.column(c).name.c_str());
      }
      std::printf("\n");
      size_t shown = 0;
      for (const auto& row : *rows) {
        if (++shown > 20) {
          std::printf("... (%zu rows total)\n", rows->size());
          break;
        }
        for (size_t c = 0; c < row.size(); ++c) {
          std::printf("%s%s", c > 0 ? " | " : "", row[c].ToString().c_str());
        }
        std::printf("\n");
      }
      std::printf("(%zu rows)\n", rows->size());
    }
    if (show_plans) {
      std::printf("%s plan:\n%s", refine ? "refined" : "original",
                  PrintPlan(**plan).c_str());
    }
  }
  std::printf("simulated: original %.4fs, refined %.4fs (%.1f%% faster)\n",
              seconds[0], seconds[1],
              100.0 * (1.0 - seconds[1] / seconds[0]));
}

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  if (argc > 1) config.scale_factor = std::atof(argv[1]);
  Catalog catalog;
  Status st = tpch::LoadTpch(config, &catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("BufferDB SQL shell — TPC-H SF %.3f loaded. \\q to quit.\n",
              config.scale_factor);

  bool show_plans = true;
  std::string line, statement;
  while (true) {
    std::printf("%s", statement.empty() ? "bufferdb> " : "      ... ");
    if (!std::getline(std::cin, line)) break;
    if (line == "\\q") break;
    if (line == "\\tables") {
      for (const std::string& name : catalog.TableNames()) {
        std::printf("  %-10s %8zu rows\n", name.c_str(),
                    catalog.GetTable(name)->num_rows());
      }
      continue;
    }
    if (line == "\\plan on") {
      show_plans = true;
      continue;
    }
    if (line == "\\plan off") {
      show_plans = false;
      continue;
    }
    statement += line;
    statement += " ";
    if (line.find(';') == std::string::npos && !line.empty()) continue;
    if (statement.find_first_not_of(" ;") == std::string::npos) {
      statement.clear();
      continue;
    }
    ExecuteStatement(catalog, statement, show_plans);
    statement.clear();
  }
  return 0;
}

// Quickstart: load TPC-H, run the paper's Query 1 with and without the
// buffer operator, and compare the simulated hardware counters.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "plan/physical_planner.h"
#include "plan/plan_printer.h"
#include "sim/sim_cpu.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

using namespace bufferdb;  // NOLINT: example code.

namespace {

constexpr char kQuery1[] = R"sql(
    SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
           AVG(l_quantity) AS avg_qty,
           COUNT(*) AS count_order
    FROM lineitem
    WHERE l_shipdate <= DATE '1998-09-02';
)sql";

sim::CycleBreakdown RunOnce(const Catalog& catalog, bool refine) {
  sql::Binder binder(&catalog);
  auto query = binder.BindSql(kQuery1);
  if (!query.ok()) {
    std::fprintf(stderr, "bind error: %s\n", query.status().ToString().c_str());
    std::exit(1);
  }

  PlannerOptions options;
  options.refine = refine;
  PhysicalPlanner planner(&catalog, options);
  RefinementReport report;
  auto plan = planner.CreatePlan(*query, &report);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("%s plan:\n%s", refine ? "refined" : "original",
              PrintPlan(**plan).c_str());
  if (refine) std::printf("%s", report.ToString().c_str());

  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(plan->get(), &ctx);
  if (!rows.ok()) {
    std::fprintf(stderr, "exec error: %s\n", rows.status().ToString().c_str());
    std::exit(1);
  }
  for (const auto& row : *rows) {
    std::printf("result: sum_charge=%s avg_qty=%s count_order=%s\n",
                row[0].ToString().c_str(), row[1].ToString().c_str(),
                row[2].ToString().c_str());
  }
  return cpu.Breakdown();
}

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig config;
  if (argc > 1) config.scale_factor = std::atof(argv[1]);

  Catalog catalog;
  Status st = tpch::LoadTpch(config, &catalog);
  if (!st.ok()) {
    std::fprintf(stderr, "load error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("TPC-H SF %.3f: %zu lineitem rows\n\n", config.scale_factor,
              catalog.GetTable("lineitem")->num_rows());

  sim::CycleBreakdown original = RunOnce(catalog, /*refine=*/false);
  std::printf("\n%s\n", original.ToString("original (demand-pull)").c_str());

  sim::CycleBreakdown buffered = RunOnce(catalog, /*refine=*/true);
  std::printf("\n%s\n", buffered.ToString("buffered (refined)").c_str());

  double miss_drop =
      100.0 * (1.0 - static_cast<double>(buffered.counters.l1i_misses) /
                         static_cast<double>(original.counters.l1i_misses));
  double speedup = 100.0 * (1.0 - buffered.seconds() / original.seconds());
  std::printf("trace-cache misses reduced by %.1f%%, query %.1f%% faster\n",
              miss_drop, speedup);
  return 0;
}

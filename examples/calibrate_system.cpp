// System-calibration example: the one-time per-system step the paper
// prescribes (§6) — measure per-operator instruction footprints via dynamic
// call graphs and find the cardinality threshold via the Query-1 template —
// then persist the result so future sessions can load instead of re-running.
//
//   ./build/examples/calibrate_system [output_path]

#include <cstdio>

#include "core/plan_refiner.h"
#include "profile/calibration_io.h"
#include "sim/code_layout.h"

using namespace bufferdb;  // NOLINT: example code.

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "bufferdb_calibration.txt";

  std::printf("Calibrating (footprints + cardinality threshold)...\n\n");
  auto calibration = profile::CalibrateAndSave(path);
  if (!calibration.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 calibration.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", calibration->footprints.ToString().c_str());
  std::printf("\ncardinality threshold: %.0f\n",
              calibration->cardinality_threshold);
  std::printf("saved to %s\n\n", path.c_str());

  // A later session loads the file instead of re-measuring, and feeds the
  // values into the plan refiner.
  auto loaded = profile::LoadCalibration(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  RefinementOptions options;
  options.cardinality_threshold = loaded->cardinality_threshold;
  PlanRefiner refiner(options);
  std::printf("reloaded OK; PlanRefiner configured with threshold %.0f and "
              "L1I capacity %llu bytes\n",
              refiner.options().cardinality_threshold,
              static_cast<unsigned long long>(
                  refiner.options().l1i_capacity_bytes));

  // Show the static-vs-dynamic contrast the paper discusses in §6.1.
  std::printf("\nstatic vs dynamic footprint (why the paper profiles "
              "dynamically):\n");
  for (auto module : {sim::ModuleId::kSeqScan, sim::ModuleId::kSort}) {
    std::printf("  %-12s dynamic %5llu B   static estimate %5llu B\n",
                sim::ModuleName(module),
                static_cast<unsigned long long>(
                    loaded->footprints.footprint_bytes(module)),
                static_cast<unsigned long long>(
                    loaded->footprints.StaticEstimateBytes(module)));
  }
  return 0;
}

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "index/btree.h"

namespace bufferdb {
namespace {

// Rows are faked with small integer-tagged pointers.
const uint8_t* FakeRow(uintptr_t id) {
  return reinterpret_cast<const uint8_t*>(id + 1);
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Seek(5).Valid());
}

TEST(BTreeTest, SingleEntry) {
  BTree tree;
  tree.Insert(10, FakeRow(1));
  auto it = tree.Begin();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 10);
  EXPECT_EQ(it.row(), FakeRow(1));
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, SeekExactAndMissing) {
  BTree tree;
  for (int64_t k : {10, 20, 30, 40}) tree.Insert(k, FakeRow(k));
  EXPECT_EQ(tree.Seek(20).key(), 20);
  EXPECT_EQ(tree.Seek(25).key(), 30);  // First >= 25.
  EXPECT_EQ(tree.Seek(5).key(), 10);
  EXPECT_FALSE(tree.Seek(41).Valid());
}

TEST(BTreeTest, SeekRecordsDescentPath) {
  BTree tree;
  for (int64_t k = 0; k < 10000; ++k) tree.Insert(k, FakeRow(k));
  std::vector<const void*> path;
  tree.Seek(5000, &path);
  EXPECT_EQ(static_cast<int>(path.size()), tree.height());
  EXPECT_GE(tree.height(), 2);
}

class BTreeModelTest : public ::testing::TestWithParam<int> {};

// Property: after random insertions (with duplicates), iteration from
// Begin() yields exactly the sorted multiset, and every Seek(k) lands on the
// first entry >= k.
TEST_P(BTreeModelTest, MatchesMultimapModel) {
  const int n = GetParam();
  BTree tree;
  std::multimap<int64_t, const uint8_t*> model;
  Rng rng(static_cast<uint64_t>(n) * 7919);
  for (int i = 0; i < n; ++i) {
    int64_t key = rng.Uniform(0, n / 2);  // Force duplicates.
    const uint8_t* row = FakeRow(static_cast<uintptr_t>(i));
    tree.Insert(key, row);
    model.emplace(key, row);
  }
  ASSERT_EQ(tree.size(), model.size());

  // Full scan: keys in nondecreasing order, same multiset of keys.
  std::multimap<int64_t, int> scanned;
  int64_t prev = INT64_MIN;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_GE(it.key(), prev);
    prev = it.key();
    scanned.emplace(it.key(), 0);
  }
  ASSERT_EQ(scanned.size(), model.size());
  auto mit = model.begin();
  for (auto sit = scanned.begin(); sit != scanned.end(); ++sit, ++mit) {
    EXPECT_EQ(sit->first, mit->first);
  }

  // Seeks at, between, below and above existing keys.
  for (int64_t probe = -1; probe <= n / 2 + 1; probe += 3) {
    auto it = tree.Seek(probe);
    auto model_it = model.lower_bound(probe);
    if (model_it == model.end()) {
      EXPECT_FALSE(it.Valid()) << "probe " << probe;
    } else {
      ASSERT_TRUE(it.Valid()) << "probe " << probe;
      EXPECT_EQ(it.key(), model_it->first) << "probe " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeModelTest,
                         ::testing::Values(1, 2, 63, 64, 65, 500, 5000,
                                           20000));

TEST(BTreeTest, DuplicateKeysAllReturned) {
  BTree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(7, FakeRow(i));
  tree.Insert(3, FakeRow(1000));
  tree.Insert(11, FakeRow(2000));
  int count = 0;
  for (auto it = tree.Seek(7); it.Valid() && it.key() == 7; it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(BTreeTest, SequentialInsertKeepsHeightLogarithmic) {
  BTree tree;
  for (int64_t k = 0; k < 100000; ++k) tree.Insert(k, FakeRow(k));
  EXPECT_EQ(tree.size(), 100000u);
  EXPECT_LE(tree.height(), 4);  // 64-fanout: 64^3 >> 1e5.
}

TEST(BTreeTest, ReverseInsertOrder) {
  BTree tree;
  for (int64_t k = 1000; k >= 0; --k) tree.Insert(k, FakeRow(k));
  int64_t expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), expected++);
  }
  EXPECT_EQ(expected, 1001);
}

}  // namespace
}  // namespace bufferdb

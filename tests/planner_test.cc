#include <gtest/gtest.h>

#include "common/date.h"
#include "plan/cardinality.h"
#include "plan/physical_planner.h"
#include "plan/plan_printer.h"
#include "sql/binder.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

constexpr char kQuery3[] =
    "SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount) "
    "FROM lineitem, orders "
    "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";

class PlannerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  OperatorPtr MustPlan(const std::string& sql, PlannerOptions options = {}) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(*plan);
  }

  std::vector<std::vector<Value>> RunSql(const std::string& sql,
                                         PlannerOptions options = {}) {
    OperatorPtr plan = MustPlan(sql, options);
    ExecContext ctx;
    auto rows = ExecutePlanRows(plan.get(), &ctx);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return rows.ok() ? *rows : std::vector<std::vector<Value>>{};
  }

  static Catalog* catalog_;
};

Catalog* PlannerTest::catalog_ = nullptr;

TEST_F(PlannerTest, Query1PlanShape) {
  OperatorPtr plan = MustPlan(
      "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'");
  EXPECT_EQ(plan->module_id(), sim::ModuleId::kAggregation);
  EXPECT_EQ(plan->child(0)->module_id(), sim::ModuleId::kSeqScanFiltered);
  EXPECT_GT(plan->child(0)->estimated_rows(), 0);
}

TEST_F(PlannerTest, AutoJoinPicksIndexNestLoopForPkJoin) {
  OperatorPtr plan = MustPlan(kQuery3);
  const Operator* join = plan->child(0);
  EXPECT_EQ(join->module_id(), sim::ModuleId::kNestLoopJoin);
  // Inner unique index scan marked excluded from buffering (§6).
  EXPECT_TRUE(join->child(1)->excluded_from_buffering());
  EXPECT_EQ(join->child(1)->module_id(), sim::ModuleId::kIndexScan);
}

TEST_F(PlannerTest, ForcedHashJoin) {
  PlannerOptions options;
  options.join_strategy = JoinStrategy::kHashJoin;
  OperatorPtr plan = MustPlan(kQuery3, options);
  EXPECT_EQ(plan->child(0)->module_id(), sim::ModuleId::kHashJoinProbe);
  EXPECT_TRUE(plan->child(0)->BlocksInput(1));
}

TEST_F(PlannerTest, ForcedMergeJoinUsesIndexOrderOnInner) {
  PlannerOptions options;
  options.join_strategy = JoinStrategy::kMergeJoin;
  OperatorPtr plan = MustPlan(kQuery3, options);
  const Operator* join = plan->child(0);
  ASSERT_EQ(join->module_id(), sim::ModuleId::kMergeJoin);
  EXPECT_EQ(join->child(0)->module_id(), sim::ModuleId::kSort);
  // orders side: the pk index provides sorted order without a Sort.
  EXPECT_EQ(join->child(1)->module_id(), sim::ModuleId::kIndexScan);
}

TEST_F(PlannerTest, AllJoinStrategiesReturnSameAnswer) {
  std::vector<std::vector<Value>> results[3];
  JoinStrategy strategies[] = {JoinStrategy::kIndexNestLoop,
                               JoinStrategy::kHashJoin,
                               JoinStrategy::kMergeJoin};
  for (int i = 0; i < 3; ++i) {
    PlannerOptions options;
    options.join_strategy = strategies[i];
    results[i] = RunSql(kQuery3, options);
    ASSERT_EQ(results[i].size(), 1u) << JoinStrategyName(strategies[i]);
  }
  for (int i = 1; i < 3; ++i) {
    EXPECT_NEAR(results[0][0][0].double_value(),
                results[i][0][0].double_value(), 1e-6);
    EXPECT_EQ(results[0][0][1], results[i][0][1]);
    EXPECT_NEAR(results[0][0][2].double_value(),
                results[i][0][2].double_value(), 1e-12);
  }
}

TEST_F(PlannerTest, RefinedAndOriginalPlansAgree) {
  PlannerOptions refined;
  refined.refine = true;
  auto a = RunSql(kQuery3);
  auto b = RunSql(kQuery3, refined);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(a[0][0].double_value(), b[0][0].double_value(), 1e-6);
  EXPECT_EQ(a[0][1], b[0][1]);
}

TEST_F(PlannerTest, GroupByOrderByLimitPipeline) {
  auto rows = RunSql(
      "SELECT l_returnflag, COUNT(*) AS c FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");
  ASSERT_EQ(rows.size(), 3u);  // R, A, N in some sorted order: A, N, R.
  EXPECT_EQ(rows[0][0], Value::String("A"));
  EXPECT_EQ(rows[1][0], Value::String("N"));
  EXPECT_EQ(rows[2][0], Value::String("R"));
  int64_t total = rows[0][1].int64_value() + rows[1][1].int64_value() +
                  rows[2][1].int64_value();
  EXPECT_EQ(total, static_cast<int64_t>(
                       catalog_->GetTable("lineitem")->num_rows()));
}

TEST_F(PlannerTest, ProjectionWithLimit) {
  auto rows = RunSql("SELECT o_orderkey, o_totalprice FROM orders LIMIT 7");
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
}

TEST_F(PlannerTest, OrderByDescending) {
  auto rows = RunSql(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC LIMIT 3");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GT(rows[0][0].int64_value(), rows[1][0].int64_value());
  EXPECT_GT(rows[1][0].int64_value(), rows[2][0].int64_value());
}

TEST_F(PlannerTest, PlanPrinterRendersTree) {
  PlannerOptions options;
  options.refine = true;
  OperatorPtr plan = MustPlan(kQuery3, options);
  std::string printed = PrintPlan(*plan);
  EXPECT_NE(printed.find("NestLoop"), std::string::npos);
  EXPECT_NE(printed.find("Buffer"), std::string::npos);
  EXPECT_NE(printed.find("rows="), std::string::npos);
  EXPECT_NE(printed.find("footprint="), std::string::npos);
  EXPECT_NE(printed.find("[no-buffer]"), std::string::npos);
}

TEST_F(PlannerTest, SelectivityEstimateTracksDatePredicate) {
  Table* lineitem = catalog_->GetTable("lineitem");
  const Schema& s = lineitem->schema();
  auto col = MakeColumnRef(s, "l_shipdate");
  ASSERT_TRUE(col.ok());
  auto pred = MakeBinary(
      BinaryOp::kLe, std::move(*col),
      MakeLiteral(Value::Date(MakeDate(1998, 9, 2))));
  ASSERT_TRUE(pred.ok());
  double selectivity = EstimateSelectivity(**pred, lineitem);
  // ~96% of shipdates fall before 1998-09-02.
  EXPECT_GT(selectivity, 0.85);
  EXPECT_LE(selectivity, 1.0);
}

TEST_F(PlannerTest, JoinCardinalityForPkFkJoin) {
  EXPECT_DOUBLE_EQ(EstimateEquiJoinRows(1000, 500, 500, true), 1000);
  EXPECT_DOUBLE_EQ(EstimateEquiJoinRows(1000, 250, 500, true), 500);
  EXPECT_DOUBLE_EQ(EstimateEquiJoinRows(100, 50, 50, false), 50);
}

TEST_F(PlannerTest, NestLoopRequiresInnerIndex) {
  sql::Binder binder(catalog_);
  // customer has no index on c_nationkey; joining with nation (also no
  // index on n_nationkey) cannot use index nested loop.
  auto q = binder.BindSql(
      "SELECT COUNT(*) FROM customer, nation "
      "WHERE c_nationkey = n_nationkey");
  ASSERT_TRUE(q.ok()) << q.status();
  PlannerOptions options;
  options.join_strategy = JoinStrategy::kIndexNestLoop;
  PhysicalPlanner planner(catalog_, options);
  EXPECT_FALSE(planner.CreatePlan(*q).ok());
}

TEST_F(PlannerTest, HashJoinFallbackWhenNoIndex) {
  auto rows = RunSql(
      "SELECT COUNT(*) FROM customer, nation WHERE c_nationkey = n_nationkey");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0],
            Value::Int64(static_cast<int64_t>(
                catalog_->GetTable("customer")->num_rows())));
}

// Operator constructors fold constant subtrees before compiling the kernel
// program, so a predicate written as `l_quantity < 10 + 15` plans (and
// prints) as `l_quantity < 25`.
TEST_F(PlannerTest, ConstantSubtreesFoldedAtPlanTime) {
  OperatorPtr plan = MustPlan(
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10 + 15");
  const std::string printed = PrintPlan(*plan);
  EXPECT_NE(printed.find("25"), std::string::npos) << printed;
  EXPECT_EQ(printed.find("10 + 15"), std::string::npos) << printed;

  auto folded = RunSql(
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10 + 15");
  auto plain = RunSql("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25");
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0][0], plain[0][0]);
}

TEST_F(PlannerTest, AggregateArgumentsFoldedAtPlanTime) {
  // SUM(l_quantity * (2 + 3)) must fold the constant factor and agree with
  // the pre-multiplied query.
  auto folded = RunSql("SELECT SUM(l_quantity * (2 + 3)) FROM lineitem");
  auto plain = RunSql("SELECT SUM(l_quantity * 5) FROM lineitem");
  ASSERT_EQ(folded.size(), 1u);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(folded[0][0], plain[0][0]);
}

// A/B hook: PlannerOptions::vectorize_expressions toggles the compiled
// kernel programs per plan; results must be identical either way.
TEST_F(PlannerTest, VectorizedAndInterpretedPlansAgree) {
  const char* queries[] = {
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25",
      "SELECT SUM(l_extendedprice), AVG(l_discount) FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'",
      kQuery3,
  };
  for (const char* sql : queries) {
    PlannerOptions vec;
    vec.vectorize_expressions = true;
    PlannerOptions interp;
    interp.vectorize_expressions = false;
    auto a = RunSql(sql, vec);
    auto b = RunSql(sql, interp);
    ASSERT_EQ(a.size(), b.size()) << sql;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].size(), b[i].size()) << sql;
      for (size_t j = 0; j < a[i].size(); ++j) {
        EXPECT_EQ(a[i][j], b[i][j]) << sql << " row " << i << " col " << j;
      }
    }
  }
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

class PlannerExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  std::vector<std::vector<Value>> RunSql(const std::string& sql) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, PlannerOptions{});
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    last_plan_ = PrintPlan(**plan);
    ExecContext ctx;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return rows.ok() ? *rows : std::vector<std::vector<Value>>{};
  }

  std::string last_plan_;
  static Catalog* catalog_;
};

Catalog* PlannerExtensionsTest::catalog_ = nullptr;

TEST_F(PlannerExtensionsTest, HavingFiltersGroups) {
  auto all = RunSql(
      "SELECT l_returnflag, COUNT(*) AS c FROM lineitem "
      "GROUP BY l_returnflag");
  auto filtered = RunSql(
      "SELECT l_returnflag, COUNT(*) AS c FROM lineitem "
      "GROUP BY l_returnflag HAVING c > 2000");
  EXPECT_NE(last_plan_.find("Filter"), std::string::npos);
  ASSERT_EQ(all.size(), 3u);
  size_t expected = 0;
  for (const auto& row : all) {
    if (row[1].int64_value() > 2000) ++expected;
  }
  EXPECT_EQ(filtered.size(), expected);
}

TEST_F(PlannerExtensionsTest, HavingWithoutAggregatesRejected) {
  sql::Binder binder(catalog_);
  EXPECT_FALSE(
      binder.BindSql("SELECT l_orderkey FROM lineitem HAVING l_orderkey > 1")
          .ok());
}

TEST_F(PlannerExtensionsTest, SelectDistinct) {
  auto rows = RunSql("SELECT DISTINCT l_returnflag FROM lineitem");
  EXPECT_NE(last_plan_.find("Distinct"), std::string::npos);
  EXPECT_EQ(rows.size(), 3u);  // R, A, N.
}

TEST_F(PlannerExtensionsTest, OrderByLimitFusedIntoTopN) {
  auto rows = RunSql(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC LIMIT 5");
  EXPECT_NE(last_plan_.find("TopN(5)"), std::string::npos);
  EXPECT_EQ(last_plan_.find("Sort"), std::string::npos);
  ASSERT_EQ(rows.size(), 5u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1][1].double_value(), rows[i][1].double_value());
  }
}

TEST_F(PlannerExtensionsTest, TopNMatchesSortLimit) {
  // Force Sort+Limit by ordering on a query without LIMIT, then truncating.
  auto sorted = RunSql(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC");
  auto topn = RunSql(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC LIMIT 10");
  ASSERT_GE(sorted.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(topn[i][0], sorted[i][0]);
  }
}

TEST_F(PlannerExtensionsTest, LikePredicateEndToEnd) {
  auto promo = RunSql(
      "SELECT COUNT(*) AS c FROM part WHERE p_type LIKE 'PROMO%'");
  auto total = RunSql("SELECT COUNT(*) AS c FROM part");
  ASSERT_EQ(promo.size(), 1u);
  EXPECT_GT(promo[0][0].int64_value(), 0);
  EXPECT_LT(promo[0][0].int64_value(), total[0][0].int64_value());
}

TEST_F(PlannerExtensionsTest, InListEndToEnd) {
  auto rows = RunSql(
      "SELECT COUNT(*) AS c FROM lineitem "
      "WHERE l_shipmode IN ('MAIL', 'SHIP')");
  auto mail = RunSql(
      "SELECT COUNT(*) AS c FROM lineitem WHERE l_shipmode = 'MAIL'");
  auto ship = RunSql(
      "SELECT COUNT(*) AS c FROM lineitem WHERE l_shipmode = 'SHIP'");
  EXPECT_EQ(rows[0][0].int64_value(),
            mail[0][0].int64_value() + ship[0][0].int64_value());
}

TEST_F(PlannerExtensionsTest, BetweenEndToEnd) {
  auto rows = RunSql(
      "SELECT COUNT(*) AS c FROM lineitem "
      "WHERE l_discount BETWEEN 0.05 AND 0.07");
  auto manual = RunSql(
      "SELECT COUNT(*) AS c FROM lineitem "
      "WHERE l_discount >= 0.05 AND l_discount <= 0.07");
  EXPECT_EQ(rows[0][0], manual[0][0]);
  EXPECT_GT(rows[0][0].int64_value(), 0);
}

TEST_F(PlannerExtensionsTest, TpchQ6Faithful) {
  auto rows = RunSql(
      "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' "
      "AND l_shipdate < DATE '1995-01-01' "
      "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0][0].is_null());
  EXPECT_GT(rows[0][0].double_value(), 0.0);
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

class MultiJoinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  std::vector<std::vector<Value>> RunSql(const std::string& sql,
                                         PlannerOptions options = {}) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    ExecContext ctx;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return rows.ok() ? *rows : std::vector<std::vector<Value>>{};
  }

  static Catalog* catalog_;
};

Catalog* MultiJoinTest::catalog_ = nullptr;

// Real TPC-H Q3 shape: customer x orders x lineitem, left-deep.
constexpr char kQ3[] =
    "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
    "AND c_mktsegment = 'BUILDING' "
    "AND o_orderdate < DATE '1995-03-15' "
    "AND l_shipdate > DATE '1995-03-15' "
    "GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 10";

TEST_F(MultiJoinTest, TpchQ3RunsEndToEnd) {
  auto rows = RunSql(kQ3);
  ASSERT_GT(rows.size(), 0u);
  ASSERT_LE(rows.size(), 10u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1][1].double_value(), rows[i][1].double_value());
  }
}

TEST_F(MultiJoinTest, ThreeTableStrategiesAgree) {
  constexpr char kCountQ[] =
      "SELECT COUNT(*) AS c FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
      "AND c_acctbal > 0";
  PlannerOptions hash;
  hash.join_strategy = JoinStrategy::kHashJoin;
  PlannerOptions merge;
  merge.join_strategy = JoinStrategy::kMergeJoin;
  auto a = RunSql(kCountQ);          // Auto: INLJ over pk indexes.
  auto b = RunSql(kCountQ, hash);
  auto c = RunSql(kCountQ, merge);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0][0], b[0][0]);
  EXPECT_EQ(a[0][0], c[0][0]);
  EXPECT_GT(a[0][0].int64_value(), 0);
}

TEST_F(MultiJoinTest, RefinementPreservesThreeTableResults) {
  PlannerOptions refined;
  refined.refine = true;
  auto plain = RunSql(kQ3);
  auto buffered = RunSql(kQ3, refined);
  ASSERT_EQ(plain.size(), buffered.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i][0], buffered[i][0]);
    EXPECT_NEAR(plain[i][1].double_value(), buffered[i][1].double_value(),
                1e-6);
  }
}

TEST_F(MultiJoinTest, RedundantEdgeBecomesFilter) {
  // Two edges between the same pair: one drives the join, the other must
  // still be enforced (here it is always true, so counts match).
  auto with_redundant = RunSql(
      "SELECT COUNT(*) AS c FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey AND l_orderkey = o_orderkey");
  auto plain = RunSql(
      "SELECT COUNT(*) AS c FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey");
  EXPECT_EQ(with_redundant[0][0], plain[0][0]);
}

TEST_F(MultiJoinTest, DisconnectedTableRejected) {
  sql::Binder binder(catalog_);
  auto q = binder.BindSql(
      "SELECT COUNT(*) FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND c_acctbal > 0");
  ASSERT_TRUE(q.ok());
  PhysicalPlanner planner(catalog_, PlannerOptions{});
  EXPECT_FALSE(planner.CreatePlan(*q).ok());
}

TEST_F(MultiJoinTest, FourTableChain) {
  auto rows = RunSql(
      "SELECT COUNT(*) AS c FROM nation, customer, orders, lineitem "
      "WHERE n_nationkey = c_nationkey AND c_custkey = o_custkey "
      "AND o_orderkey = l_orderkey AND n_name = 'FRANCE'");
  ASSERT_EQ(rows.size(), 1u);
  // France is 1 of 25 nations; expect some but not all lineitems.
  EXPECT_GT(rows[0][0].int64_value(), 0);
  EXPECT_LT(rows[0][0].int64_value(),
            static_cast<int64_t>(catalog_->GetTable("lineitem")->num_rows()));
}

TEST_F(MultiJoinTest, CrossPredicateAppliedAtTop) {
  auto rows = RunSql(
      "SELECT COUNT(*) AS c FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey AND l_extendedprice > o_totalprice");
  ASSERT_EQ(rows.size(), 1u);
  // A single lineitem rarely exceeds its whole order's total price, but it
  // happens for one-line orders with discounts/taxes; just check it is a
  // strict subset.
  auto all = RunSql(
      "SELECT COUNT(*) AS c FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey");
  EXPECT_LT(rows[0][0].int64_value(), all[0][0].int64_value());
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

class BufferedIndexStrategyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* BufferedIndexStrategyTest::catalog_ = nullptr;

TEST_F(BufferedIndexStrategyTest, AggregateMatchesIndexNestLoop) {
  constexpr char kSql[] =
      "SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount) "
      "FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";
  sql::Binder binder(catalog_);
  std::vector<std::vector<Value>> results[2];
  JoinStrategy strategies[] = {JoinStrategy::kIndexNestLoop,
                               JoinStrategy::kBufferedIndex};
  for (int i = 0; i < 2; ++i) {
    auto q = binder.BindSql(kSql);
    ASSERT_TRUE(q.ok());
    PlannerOptions options;
    options.join_strategy = strategies[i];
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    ASSERT_TRUE(plan.ok()) << plan.status();
    if (i == 1) {
      EXPECT_NE(PrintPlan(**plan).find("BufferedIndexJoin"),
                std::string::npos);
    }
    ExecContext ctx;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    ASSERT_TRUE(rows.ok());
    results[i] = *rows;
  }
  EXPECT_NEAR(results[0][0][0].double_value(), results[1][0][0].double_value(),
              1e-6);
  EXPECT_EQ(results[0][0][1], results[1][0][1]);
}

TEST_F(BufferedIndexStrategyTest, RequiresInnerIndex) {
  sql::Binder binder(catalog_);
  auto q = binder.BindSql(
      "SELECT COUNT(*) FROM customer, nation WHERE c_nationkey = n_nationkey");
  ASSERT_TRUE(q.ok());
  PlannerOptions options;
  options.join_strategy = JoinStrategy::kBufferedIndex;
  PhysicalPlanner planner(catalog_, options);
  EXPECT_FALSE(planner.CreatePlan(*q).ok());
}

}  // namespace
}  // namespace bufferdb

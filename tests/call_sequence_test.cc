#include <gtest/gtest.h>

#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "profile/call_sequence.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Col;
using testutil::MakeKvTable;

// Runs Agg over Scan (optionally buffered) and returns the recorded module
// call sequence.
profile::CallSequenceRecorder Record(Table* table, size_t buffer_size) {
  OperatorPtr plan = std::make_unique<SeqScanOperator>(table, nullptr);
  if (buffer_size > 0) {
    plan = std::make_unique<BufferOperator>(std::move(plan), buffer_size);
  }
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  AggregationOperator agg(std::move(plan), std::move(specs));

  profile::CallSequenceRecorder recorder;
  sim::SimCpu cpu;
  cpu.set_call_graph_sink(&recorder);
  ExecContext ctx;
  ctx.cpu = &cpu;
  auto rows = ExecutePlanRows(&agg, &ctx);
  EXPECT_TRUE(rows.ok());
  return recorder;
}

TEST(CallSequenceTest, UnbufferedPlanInterleavesPerTuple) {
  auto table = MakeKvTable("t", {{1, 1}, {2, 2}, {3, 3}});
  profile::CallSequenceRecorder rec = Record(table.get(), 0);
  // Fig. 1(a): PCPCPC... — scan (C, first appearance) then agg (P)
  // alternate for every tuple; the trailing calls handle end-of-stream.
  std::string seq = rec.Sequence();
  EXPECT_EQ(seq.substr(0, 6), "CPCPCP");
  EXPECT_GE(rec.Transitions(), 6u);
}

TEST(CallSequenceTest, BufferedPlanBatchesRuns) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({i, 0});
  auto table = MakeKvTable("t", rows);
  profile::CallSequenceRecorder rec = Record(table.get(), 5);
  // Fig. 1(b): scans batch into runs of the buffer size; the parent and the
  // buffer alternate while draining.
  std::string seq = rec.Sequence();
  EXPECT_NE(seq.find("CCCCC"), std::string::npos) << seq;
  EXPECT_NE(seq.find('B'), std::string::npos) << seq;
}

TEST(CallSequenceTest, BufferingReducesScanAggTransitions) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({i, 0});
  auto table = MakeKvTable("t", rows);
  uint64_t unbuffered = Record(table.get(), 0).Transitions();
  // With the buffer, scan-runs happen once per refill; transitions between
  // the *scan* and everything else collapse by ~buffer_size even though
  // buffer<->agg alternation remains.
  profile::CallSequenceRecorder buffered = Record(table.get(), 100);
  std::string seq = buffered.Sequence();
  uint64_t scan_runs = 0;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == 'C' && (i == 0 || seq[i - 1] != 'C')) ++scan_runs;
  }
  EXPECT_LE(scan_runs, 12u);          // ~1000/100 refills.
  EXPECT_GE(unbuffered, 2u * 1000u);  // Per-tuple alternation.
}

TEST(CallSequenceTest, CompressedFormatAndLegend) {
  auto table = MakeKvTable("t", {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}});
  profile::CallSequenceRecorder rec = Record(table.get(), 5);
  std::string compressed = rec.Compressed(4);
  EXPECT_NE(compressed.find("C{5}"), std::string::npos) << compressed;
  std::string legend = rec.Legend();
  EXPECT_NE(legend.find("B = Buffer"), std::string::npos);
  EXPECT_NE(legend.find("C = Scan"), std::string::npos);
}

TEST(CallSequenceTest, CapsRecordingAtMaxCalls) {
  profile::CallSequenceRecorder rec(/*max_calls=*/4);
  sim::FuncId funcs[] = {sim::FuncId::kScanCore};
  for (int i = 0; i < 10; ++i) {
    rec.OnModuleCall(sim::ModuleId::kSeqScan, funcs);
  }
  EXPECT_EQ(rec.Sequence().size(), 4u);
  EXPECT_EQ(rec.total_calls(), 10u);
  EXPECT_NE(rec.Compressed().find("+6 calls"), std::string::npos);
}

TEST(CallSequenceTest, ResetClearsState) {
  profile::CallSequenceRecorder rec;
  sim::FuncId funcs[] = {sim::FuncId::kScanCore};
  rec.OnModuleCall(sim::ModuleId::kSeqScan, funcs);
  rec.Reset();
  EXPECT_EQ(rec.total_calls(), 0u);
  EXPECT_TRUE(rec.Sequence().empty());
}

}  // namespace
}  // namespace bufferdb

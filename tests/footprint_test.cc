#include <gtest/gtest.h>

#include "profile/calibration_queries.h"
#include "profile/call_graph.h"
#include "profile/footprint.h"

namespace bufferdb::profile {
namespace {

class FootprintTest : public ::testing::Test {
 protected:
  // Calibration is deterministic; run it once for the suite.
  static void SetUpTestSuite() {
    table_ = new FootprintTable(CalibrateFootprints());
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static FootprintTable* table_;
};

FootprintTable* FootprintTest::table_ = nullptr;

TEST_F(FootprintTest, AllOperatorModulesObserved) {
  for (auto module :
       {sim::ModuleId::kSeqScan, sim::ModuleId::kSeqScanFiltered,
        sim::ModuleId::kIndexScan, sim::ModuleId::kSort,
        sim::ModuleId::kNestLoopJoin, sim::ModuleId::kMergeJoin,
        sim::ModuleId::kHashJoinBuild, sim::ModuleId::kHashJoinProbe,
        sim::ModuleId::kAggregation, sim::ModuleId::kHashAggregation,
        sim::ModuleId::kBuffer, sim::ModuleId::kMaterialize,
        sim::ModuleId::kProject}) {
    EXPECT_TRUE(table_->has(module)) << sim::ModuleName(module);
  }
}

TEST_F(FootprintTest, MeasuredFootprintsMatchTable2) {
  // The dynamically measured footprints reproduce the paper's Table 2
  // (within the documented AVG deviation).
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kSeqScan), 9000u);
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kSeqScanFiltered), 13000u);
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kIndexScan), 14000u);
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kSort), 14000u);
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kNestLoopJoin), 11000u);
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kMergeJoin), 12000u);
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kHashJoinBuild), 12000u);
  EXPECT_EQ(table_->footprint_bytes(sim::ModuleId::kHashJoinProbe), 10000u);
  EXPECT_LT(table_->footprint_bytes(sim::ModuleId::kBuffer), 1000u);
}

TEST_F(FootprintTest, AggregationIncludesOnlyObservedAggregates) {
  // The calibration aggregation query used COUNT(*): base + count code.
  uint64_t agg = table_->footprint_bytes(sim::ModuleId::kAggregation);
  EXPECT_GE(agg, 10000u);
  EXPECT_LE(agg, 11000u);
  EXPECT_TRUE(
      table_->funcs(sim::ModuleId::kAggregation).Contains(sim::FuncId::kAggCount));
  EXPECT_FALSE(
      table_->funcs(sim::ModuleId::kAggregation).Contains(sim::FuncId::kAggSum));
}

TEST_F(FootprintTest, CombinedCountsSharedOnce) {
  sim::ModuleId pair[] = {sim::ModuleId::kSeqScanFiltered,
                          sim::ModuleId::kAggregation};
  uint64_t combined = table_->CombinedBytes(pair);
  uint64_t sum = table_->footprint_bytes(pair[0]) +
                 table_->footprint_bytes(pair[1]);
  EXPECT_LT(combined, sum);
  EXPECT_GE(combined,
            std::max(table_->footprint_bytes(pair[0]),
                     table_->footprint_bytes(pair[1])));
}

TEST_F(FootprintTest, ToStringListsModules) {
  std::string s = table_->ToString();
  EXPECT_NE(s.find("Scan(pred)"), std::string::npos);
  EXPECT_NE(s.find("Buffer"), std::string::npos);
}

TEST(CallGraphRecorderTest, RecordsCallsAndFuncs) {
  CallGraphRecorder recorder;
  sim::FuncId funcs[] = {sim::FuncId::kExecCommon, sim::FuncId::kScanCore};
  recorder.OnModuleCall(sim::ModuleId::kSeqScan, funcs);
  recorder.OnModuleCall(sim::ModuleId::kSeqScan, funcs);
  EXPECT_EQ(recorder.calls(sim::ModuleId::kSeqScan), 2u);
  EXPECT_TRUE(recorder.observed(sim::ModuleId::kSeqScan));
  EXPECT_FALSE(recorder.observed(sim::ModuleId::kSort));
  EXPECT_EQ(recorder.funcs(sim::ModuleId::kSeqScan).count(), 2u);
  recorder.Reset();
  EXPECT_FALSE(recorder.observed(sim::ModuleId::kSeqScan));
}

TEST(CalibrationDataTest, SyntheticItemsAreDeterministic) {
  auto a = BuildSyntheticItems(100, 5);
  auto b = BuildSyntheticItems(100, 5);
  ASSERT_EQ(a->num_rows(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a->view(i).ToString(), b->view(i).ToString());
  }
  auto c = BuildSyntheticItems(100, 6);
  EXPECT_NE(a->view(0).ToString(), c->view(0).ToString());
}

TEST(CalibrationDataTest, SelColumnUniform) {
  auto t = BuildSyntheticItems(10000, 11);
  int below_half = 0;
  int col = t->schema().FindColumn("sel");
  ASSERT_GE(col, 0);
  for (size_t i = 0; i < t->num_rows(); ++i) {
    double sel = t->view(i).GetDouble(col);
    ASSERT_GE(sel, 0.0);
    ASSERT_LT(sel, 1.0);
    if (sel < 0.5) ++below_half;
  }
  EXPECT_NEAR(below_half, 5000, 300);
}

}  // namespace
}  // namespace bufferdb::profile

namespace bufferdb::profile {
namespace {

TEST(StaticFootprintTest, StaticEstimateOverestimates) {
  // §6.1: "this method is inaccurate (it gives an overestimate of the
  // size) because ... some functions in static call graphs are never
  // called."
  FootprintTable table = CalibrateFootprints();
  for (auto module : {sim::ModuleId::kSeqScan, sim::ModuleId::kSort,
                      sim::ModuleId::kHashJoinProbe}) {
    EXPECT_GT(table.StaticEstimateBytes(module),
              table.footprint_bytes(module) + 13000)
        << sim::ModuleName(module);
  }
}

TEST(StaticFootprintTest, StaticEstimateWouldBreakRefinementDecisions) {
  // With static estimates, even Query 2's Scan+Agg "exceeds" the 16KB L1I —
  // the refiner would buffer plans that need no buffering.
  FootprintTable table = CalibrateFootprints();
  sim::ModuleId q2[] = {sim::ModuleId::kSeqScanFiltered,
                        sim::ModuleId::kAggregation};
  EXPECT_LE(table.CombinedBytes(q2), 16384u);  // Dynamic: fits.
  FuncSet static_set;
  static_set.AddAll(table.funcs(q2[0]).ToVector());
  static_set.AddAll(table.funcs(q2[1]).ToVector());
  static_set.AddAll(sim::StaticOnlyFuncs());
  EXPECT_GT(static_set.TotalBytes(), 16384u);  // Static: spuriously too big.
}

TEST(StaticFootprintTest, ColdFunctionsNeverObservedDynamically) {
  FootprintTable table = CalibrateFootprints();
  for (int m = 0; m < sim::kNumModuleIds; ++m) {
    auto module = static_cast<sim::ModuleId>(m);
    if (!table.has(module)) continue;
    for (sim::FuncId cold : sim::StaticOnlyFuncs()) {
      EXPECT_FALSE(table.funcs(module).Contains(cold))
          << sim::ModuleName(module);
    }
  }
}

}  // namespace
}  // namespace bufferdb::profile

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/date.h"

namespace bufferdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
}

TEST(ValueTest, FactoriesSetTypeAndValue) {
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_EQ(Value::Int64(7).type(), DataType::kInt64);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Date(MakeDate(1995, 6, 17)).date_value(),
            MakeDate(1995, 6, 17));
  EXPECT_FALSE(Value::Int64(0).is_null());
}

TEST(ValueTest, AsDoubleWidensIntegers) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
}

TEST(ValueTest, CompareNumericCrossTypes) {
  EXPECT_LT(Value::Compare(Value::Int64(2), Value::Double(2.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.0), Value::Int64(2)), 0);
  EXPECT_EQ(Value::Compare(Value::Int64(2), Value::Double(2.0)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::Compare(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_EQ(Value::Compare(Value::String("x"), Value::String("x")), 0);
  EXPECT_GT(Value::Compare(Value::String("b"), Value::String("a")), 0);
}

TEST(ValueTest, EqualityIncludesNulls) {
  EXPECT_EQ(Value::Null(), Value::Null(DataType::kDouble));
  EXPECT_FALSE(Value::Null() == Value::Int64(0));
  EXPECT_EQ(Value::Int64(5), Value::Int64(5));
  EXPECT_FALSE(Value::String("a") == Value::String("b"));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Date(MakeDate(1998, 9, 2)).ToString(), "1998-09-02");
  EXPECT_EQ(Value::String("q").ToString(), "q");
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeName(DataType::kString), "STRING");
}

TEST(DataTypeTest, NumericClassification) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_TRUE(IsNumeric(DataType::kDate));
  EXPECT_TRUE(IsNumeric(DataType::kBool));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

TEST(SchemaTest, FindColumn) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.FindColumn("a"), 0);
  EXPECT_EQ(s.FindColumn("b"), 1);
  EXPECT_EQ(s.FindColumn("c"), -1);
  EXPECT_EQ(s.num_columns(), 2u);
}

TEST(SchemaTest, FixedBytes) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.fixed_bytes(), Schema::kHeaderBytes + 16);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema left({{"a", DataType::kInt64}});
  Schema right({{"b", DataType::kDouble}, {"c", DataType::kString}});
  Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.num_columns(), 3u);
  EXPECT_EQ(joined.column(0).name, "a");
  EXPECT_EQ(joined.column(1).name, "b");
  EXPECT_EQ(joined.column(2).name, "c");
  EXPECT_EQ(joined.column(2).type, DataType::kString);
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s({{"x", DataType::kDate}});
  EXPECT_EQ(s.ToString(), "(x:DATE)");
}

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "sim/sim_cpu.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Col;
using testutil::Lit;
using testutil::MakeKvTable;
using testutil::RunPlan;

std::unique_ptr<Table> SequentialTable(int n) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int i = 0; i < n; ++i) rows.push_back({i, i * 0.5});
  return MakeKvTable("t", rows);
}

class BufferSizeTest : public ::testing::TestWithParam<size_t> {};

// Core transparency property (paper §5): a Buffer operator changes the
// execution pattern, never the result stream — same tuples, same order,
// for any buffer size and input size, including sizes that divide the input
// exactly and sizes larger than the input.
TEST_P(BufferSizeTest, TransparentForAnyBufferSize) {
  for (int n : {0, 1, 7, 100, 1000, 1001}) {
    auto table = SequentialTable(n);
    SeqScanOperator plain(table.get(), nullptr);
    auto expected = RunPlan(&plain);

    BufferOperator buffered(
        std::make_unique<SeqScanOperator>(table.get(), nullptr), GetParam());
    auto got = RunPlan(&buffered);
    ASSERT_EQ(got.size(), expected.size()) << "n=" << n;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i][0], expected[i][0]) << "n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferSizeTest,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 4096));

TEST(BufferOperatorTest, ZeroSizeIsClampedToOne) {
  auto table = SequentialTable(5);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 0);
  EXPECT_EQ(buffer.buffer_size(), 1u);
  EXPECT_EQ(RunPlan(&buffer).size(), 5u);
}

TEST(BufferOperatorTest, RefillCountMatchesMath) {
  auto table = SequentialTable(1000);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 100);
  RunPlan(&buffer);
  // 10 full refills plus one final empty-detecting refill.
  EXPECT_EQ(buffer.refills(), 11u);
}

TEST(BufferOperatorTest, ExactMultipleStillTerminates) {
  auto table = SequentialTable(200);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 200);
  EXPECT_EQ(RunPlan(&buffer).size(), 200u);
  EXPECT_EQ(buffer.refills(), 2u);
}

TEST(BufferOperatorTest, EmptyChild) {
  auto table = SequentialTable(0);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 10);
  EXPECT_TRUE(RunPlan(&buffer).empty());
  EXPECT_EQ(buffer.refills(), 1u);
}

TEST(BufferOperatorTest, ReturnsNullForeverAfterEnd) {
  auto table = SequentialTable(3);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 10);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  for (int i = 0; i < 3; ++i) EXPECT_NE(buffer.Next(), nullptr);
  EXPECT_EQ(buffer.Next(), nullptr);
  EXPECT_EQ(buffer.Next(), nullptr);
  buffer.Close();
}

TEST(BufferOperatorTest, PointersNotCopies) {
  // The returned tuple pointers are the child's own rows (the paper's no-copy
  // design).
  auto table = SequentialTable(10);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 4);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(buffer.Next(), table->row(i));
  }
  buffer.Close();
}

TEST(BufferOperatorTest, CopyModeProducesEqualValuesAtDifferentAddresses) {
  auto table = SequentialTable(10);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 4,
      /*copy_tuples=*/true);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  for (size_t i = 0; i < 10; ++i) {
    const uint8_t* row = buffer.Next();
    ASSERT_NE(row, nullptr);
    EXPECT_NE(row, table->row(i));
    EXPECT_EQ(TupleView(row, &table->schema()).GetInt64(0),
              static_cast<int64_t>(i));
  }
  buffer.Close();
}

TEST(BufferOperatorTest, WorksAboveFilteredScan) {
  auto table = SequentialTable(100);
  const Schema& s = table->schema();
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(
          table.get(),
          Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(37)))),
      8);
  EXPECT_EQ(RunPlan(&buffer).size(), 37u);
}

TEST(BufferOperatorTest, StackedBuffersRemainTransparent) {
  auto table = SequentialTable(50);
  auto inner = std::make_unique<BufferOperator>(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 7);
  BufferOperator outer(std::move(inner), 3);
  auto rows = RunPlan(&outer);
  ASSERT_EQ(rows.size(), 50u);
  EXPECT_EQ(rows[49][0], Value::Int64(49));
}

TEST(BufferOperatorTest, NextBatchHandsOutPointerArraySlices) {
  // The batch path is zero-copy twice over: the tuples stay where the child
  // produced them AND the slice handed out is a straight window of the
  // buffer's pointer array, in order.
  auto table = SequentialTable(10);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 100);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  const uint8_t* batch[4];
  size_t total = 0;
  while (size_t n = buffer.NextBatch(batch, 4)) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i], table->row(total + i));
    }
    total += n;
  }
  EXPECT_EQ(total, 10u);
  buffer.Close();
}

TEST(BufferOperatorTest, RescanReplaysArrayWhenInputFullyBuffered) {
  // Satellite: when one Refill consumed the whole child stream, Rescan
  // rewinds the pointer array instead of re-executing the subtree below.
  auto table = SequentialTable(50);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 100);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 50; ++i) {
      const uint8_t* row = buffer.Next();
      ASSERT_NE(row, nullptr) << "pass " << pass << " i " << i;
      EXPECT_EQ(row, table->row(i));
    }
    EXPECT_EQ(buffer.Next(), nullptr);
    ASSERT_TRUE(buffer.Rescan().ok());
  }
  EXPECT_EQ(buffer.replays(), 3u);
  EXPECT_EQ(buffer.refills(), 1u);  // The child ran exactly once.
  buffer.Close();
}

TEST(BufferOperatorTest, RescanBeforeAnyReadIsANoOp) {
  auto table = SequentialTable(5);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 100);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  ASSERT_TRUE(buffer.Rescan().ok());
  EXPECT_EQ(buffer.replays(), 0u);
  int count = 0;
  while (buffer.Next() != nullptr) ++count;
  EXPECT_EQ(count, 5);
  buffer.Close();
}

TEST(BufferOperatorTest, RescanFallsBackWhenInputExceedsBuffer) {
  // More than one refill: the array holds only the tail, so Rescan must
  // re-execute the child rather than replay.
  auto table = SequentialTable(50);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 10);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  int count = 0;
  while (buffer.Next() != nullptr) ++count;
  ASSERT_EQ(count, 50);
  ASSERT_TRUE(buffer.Rescan().ok());
  EXPECT_EQ(buffer.replays(), 0u);
  count = 0;
  while (buffer.Next() != nullptr) ++count;
  EXPECT_EQ(count, 50);
  buffer.Close();
}

TEST(BufferOperatorTest, RefillNeverReallocatesThePointerArray) {
  // Satellite: Open reserves the array once; the refill loop must reuse it.
  // 10000 rows through a 64-slot buffer = 157 refills, zero reallocations.
  auto table = SequentialTable(10000);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 64);
  EXPECT_EQ(RunPlan(&buffer).size(), 10000u);
  EXPECT_GT(buffer.refills(), 150u);
  EXPECT_EQ(buffer.buffer_reallocs(), 0u);
}

TEST(BufferOperatorTest, ResizeMidStreamKeepsResultIdentity) {
  // Satellite: Resize() between reads must never disturb the stream. The new
  // capacity applies at the next refill boundary, so tuples keep flowing in
  // order across shrink and grow while a window is in flight.
  auto table = SequentialTable(100);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 10);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  size_t i = 0;
  for (; i < 25; ++i) {  // mid-window: 25 = 2 full refills + half a third
    ASSERT_EQ(buffer.Next(), table->row(i));
  }
  buffer.Resize(3);
  for (; i < 31; ++i) {  // cross the pending-resize refill boundary
    ASSERT_EQ(buffer.Next(), table->row(i));
  }
  EXPECT_EQ(buffer.buffer_size(), 3u);  // applied at the refill, not before
  buffer.Resize(64);
  for (; i < 100; ++i) {
    ASSERT_EQ(buffer.Next(), table->row(i));
  }
  EXPECT_EQ(buffer.Next(), nullptr);
  EXPECT_EQ(buffer.buffer_size(), 64u);
  buffer.Close();
}

TEST(BufferOperatorTest, ResizeThenRescanStillReplaysIdentically) {
  // Satellite: a pending Resize must not invalidate the Rescan replay — the
  // pending capacity only applies at a refill, which a replayed
  // (single-refill, fully buffered) stream never performs.
  auto table = SequentialTable(50);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 100);
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  for (int i = 0; i < 50; ++i) ASSERT_EQ(buffer.Next(), table->row(i));
  EXPECT_EQ(buffer.Next(), nullptr);
  buffer.Resize(5);
  ASSERT_TRUE(buffer.Rescan().ok());
  EXPECT_EQ(buffer.replays(), 1u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(buffer.Next(), table->row(static_cast<size_t>(i)))
        << "replayed tuple " << i;
  }
  EXPECT_EQ(buffer.Next(), nullptr);
  EXPECT_EQ(buffer.refills(), 1u);  // the child still ran exactly once
  buffer.Close();
}

TEST(BufferOperatorTest, ResizeUnderContractCheckerWithSlicePoisoning) {
  // Satellite: drive the batch path through the contract checker while
  // resizing mid-stream. Every NextBatch() poisons the previous slice, so
  // this fails loudly if a resize ever served a stale window; meanwhile the
  // delivered values must stay the full stream in order.
  auto table = SequentialTable(60);
  auto buffer = std::make_unique<BufferOperator>(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 7);
  BufferOperator* raw = buffer.get();
  ContractCheckedOperator checked(std::move(buffer));
  ExecContext ctx;
  ASSERT_TRUE(checked.Open(&ctx).ok());
  const uint8_t* slice[4];
  std::vector<int64_t> seen;
  bool resized = false;
  while (size_t n = checked.NextBatch(slice, 4)) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NE(slice[i], ContractCheckedOperator::PoisonPointer());
      seen.push_back(TupleView(slice[i], &table->schema()).GetInt64(0));
    }
    if (!resized && seen.size() >= 20) {
      raw->Resize(3);
      resized = true;
    }
  }
  // The final call (returning 0) poisoned the last handed-out slice.
  EXPECT_EQ(slice[0], ContractCheckedOperator::PoisonPointer());
  ASSERT_EQ(seen.size(), 60u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int64_t>(i));
  }
  EXPECT_EQ(raw->buffer_size(), 3u);
  checked.Close();
}

TEST(BufferOperatorTest, ReducesInstructionCacheMissesUnderSim) {
  // The headline effect at operator level: Aggregation over Scan with and
  // without a buffer in between.
  auto table = SequentialTable(20000);
  const Schema& s = table->schema();
  auto make_aggs = [&s]() {
    std::vector<AggSpec> specs;
    specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "sum_v"});
    specs.push_back(AggSpec{AggFunc::kAvg, Col(s, "v"), "avg_v"});
    specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt"});
    return specs;
  };
  ExprPtr pred = Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(0)));

  sim::SimCpu cpu_plain;
  {
    AggregationOperator agg(
        std::make_unique<SeqScanOperator>(table.get(), pred->Clone()),
        make_aggs());
    ExecContext ctx;
    ctx.cpu = &cpu_plain;
    auto rows = ExecutePlanRows(&agg, &ctx);
    ASSERT_TRUE(rows.ok());
  }
  sim::SimCpu cpu_buffered;
  {
    AggregationOperator agg(
        std::make_unique<BufferOperator>(
            std::make_unique<SeqScanOperator>(table.get(), pred->Clone()),
            1000),
        make_aggs());
    ExecContext ctx;
    ctx.cpu = &cpu_buffered;
    auto rows = ExecutePlanRows(&agg, &ctx);
    ASSERT_TRUE(rows.ok());
  }
  // Large reduction in L1-I misses and a net cycle win.
  EXPECT_LT(cpu_buffered.counters().l1i_misses,
            cpu_plain.counters().l1i_misses / 4);
  EXPECT_LT(cpu_buffered.Breakdown().total_cycles(),
            cpu_plain.Breakdown().total_cycles());
}

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/branch_predictor.h"

namespace bufferdb::sim {
namespace {

TEST(BranchPredictorTest, BimodalLearnsStronglyBiasedBranch) {
  BranchPredictor bp(PredictorKind::kBimodal, 1024, 0);
  for (int i = 0; i < 1000; ++i) bp.Access(0x1000, true);
  EXPECT_LT(bp.mispredicts(), 3u);  // Warmup only.
}

TEST(BranchPredictorTest, BimodalFlapsOnAlternatingDirections) {
  // A shared-function site whose dominant direction depends on the calling
  // operator (the paper's §4 effect): strict alternation defeats 2-bit
  // counters.
  BranchPredictor bp(PredictorKind::kBimodal, 1024, 0);
  for (int i = 0; i < 1000; ++i) bp.Access(0x1000, i % 2 == 0);
  EXPECT_GT(bp.mispredicts(), 400u);
}

TEST(BranchPredictorTest, BimodalHandlesLongRunsOfEachDirection) {
  // Buffered execution turns per-call alternation into long runs; the same
  // counters then predict well.
  BranchPredictor bp(PredictorKind::kBimodal, 1024, 0);
  for (int run = 0; run < 10; ++run) {
    bool dir = run % 2 == 0;
    for (int i = 0; i < 1000; ++i) bp.Access(0x1000, dir);
  }
  // Only a couple of mispredictions per direction switch.
  EXPECT_LT(bp.mispredicts(), 10u * 3u);
}

TEST(BranchPredictorTest, GshareLearnsShortPeriodicPattern) {
  BranchPredictor bp(PredictorKind::kGshare, 4096, 12);
  uint64_t warmup_mispredicts = 0;
  for (int i = 0; i < 5000; ++i) {
    bp.Access(0x2000, i % 3 != 0);  // Period-3 loop branch.
    if (i == 499) warmup_mispredicts = bp.mispredicts();
  }
  // After warmup the pattern is fully predictable from history.
  EXPECT_LT(bp.mispredicts() - warmup_mispredicts, 100u);
}

TEST(BranchPredictorTest, BimodalCannotLearnPeriodicPattern) {
  BranchPredictor bp(PredictorKind::kBimodal, 4096, 0);
  for (int i = 0; i < 3000; ++i) bp.Access(0x2000, i % 3 != 0);
  // Predicts taken always -> ~1/3 mispredicted.
  EXPECT_GT(bp.mispredicts(), 800u);
}

TEST(BranchPredictorTest, RandomOutcomesNearChance) {
  BranchPredictor bp(PredictorKind::kGshare, 4096, 12);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) bp.Access(0x3000, rng.Next() & 1);
  double rate = static_cast<double>(bp.mispredicts()) / 10000.0;
  EXPECT_GT(rate, 0.40);
  EXPECT_LT(rate, 0.60);
}

TEST(BranchPredictorTest, CountsBranches) {
  BranchPredictor bp(PredictorKind::kBimodal, 64, 0);
  for (int i = 0; i < 17; ++i) bp.Access(0x10, true);
  EXPECT_EQ(bp.branches(), 17u);
}

TEST(BranchPredictorTest, ResetClearsStateAndStats) {
  BranchPredictor bp(PredictorKind::kBimodal, 64, 0);
  for (int i = 0; i < 100; ++i) bp.Access(0x10, false);
  bp.Reset();
  EXPECT_EQ(bp.branches(), 0u);
  EXPECT_EQ(bp.mispredicts(), 0u);
  // Initial state is weakly-taken: first not-taken access mispredicts.
  EXPECT_TRUE(bp.Access(0x10, false));
}

TEST(BranchPredictorTest, AliasingDegradesSmallTables) {
  // Many distinct biased sites with opposite directions: a tiny table
  // aliases them and thrashes, a large one separates them.
  auto run = [](uint32_t entries) {
    BranchPredictor bp(PredictorKind::kBimodal, entries, 0);
    for (int round = 0; round < 200; ++round) {
      for (uint64_t site = 0; site < 512; ++site) {
        bool direction = ((site * 2654435761u) >> 7) & 1;
        bp.Access(site << 2, direction);
      }
    }
    return bp.mispredicts();
  };
  EXPECT_GT(run(16), run(4096) * 5);
}

}  // namespace
}  // namespace bufferdb::sim

#include <gtest/gtest.h>

#include "common/arena.h"
#include "storage/tuple.h"

namespace bufferdb {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"flag", DataType::kBool},
                 {"name", DataType::kString},
                 {"day", DataType::kDate}});
}

TEST(TupleTest, RoundTripAllTypes) {
  Schema schema = TestSchema();
  Arena arena;
  TupleBuilder b(&schema);
  b.SetInt64(0, 42);
  b.SetDouble(1, 3.25);
  b.SetBool(2, true);
  b.SetString(3, "hello world");
  b.SetDate(4, 10592);
  const uint8_t* row = b.Finish(&arena);

  TupleView v(row, &schema);
  EXPECT_EQ(v.GetInt64(0), 42);
  EXPECT_DOUBLE_EQ(v.GetDouble(1), 3.25);
  EXPECT_TRUE(v.GetBool(2));
  EXPECT_EQ(v.GetString(3), "hello world");
  EXPECT_EQ(v.GetDate(4), 10592);
  for (size_t c = 0; c < 5; ++c) EXPECT_FALSE(v.IsNull(c));
}

TEST(TupleTest, NullBitmap) {
  Schema schema = TestSchema();
  Arena arena;
  TupleBuilder b(&schema);
  b.SetInt64(0, 1);
  b.SetNull(1);
  b.SetBool(2, false);
  b.SetNull(3);
  b.SetDate(4, 0);
  const uint8_t* row = b.Finish(&arena);

  TupleView v(row, &schema);
  EXPECT_FALSE(v.IsNull(0));
  EXPECT_TRUE(v.IsNull(1));
  EXPECT_FALSE(v.IsNull(2));
  EXPECT_TRUE(v.IsNull(3));
  EXPECT_FALSE(v.IsNull(4));
  EXPECT_TRUE(v.GetValue(1).is_null());
  EXPECT_EQ(v.GetValue(1).type(), DataType::kDouble);
}

TEST(TupleTest, SizeAccountsForStrings) {
  Schema schema = TestSchema();
  Arena arena;
  TupleBuilder b(&schema);
  b.SetInt64(0, 1);
  b.SetDouble(1, 0);
  b.SetBool(2, false);
  b.SetString(3, std::string(100, 'x'));
  b.SetDate(4, 0);
  const uint8_t* row = b.Finish(&arena);
  TupleView v(row, &schema);
  EXPECT_EQ(v.size_bytes(), schema.fixed_bytes() + 100);
  EXPECT_EQ(v.GetString(3).size(), 100u);
}

TEST(TupleTest, EmptyString) {
  Schema schema({{"s", DataType::kString}});
  Arena arena;
  TupleBuilder b(&schema);
  b.SetString(0, "");
  const uint8_t* row = b.Finish(&arena);
  TupleView v(row, &schema);
  EXPECT_EQ(v.GetString(0), "");
  EXPECT_FALSE(v.IsNull(0));
}

TEST(TupleTest, MultipleStringsKeepOffsets) {
  Schema schema({{"a", DataType::kString},
                 {"b", DataType::kString},
                 {"c", DataType::kString}});
  Arena arena;
  TupleBuilder b(&schema);
  b.SetString(0, "first");
  b.SetString(1, "");
  b.SetString(2, "third-string");
  const uint8_t* row = b.Finish(&arena);
  TupleView v(row, &schema);
  EXPECT_EQ(v.GetString(0), "first");
  EXPECT_EQ(v.GetString(1), "");
  EXPECT_EQ(v.GetString(2), "third-string");
}

TEST(TupleTest, GetValueBoxes) {
  Schema schema = TestSchema();
  Arena arena;
  TupleBuilder b(&schema);
  b.SetInt64(0, 9);
  b.SetDouble(1, 1.5);
  b.SetBool(2, true);
  b.SetString(3, "s");
  b.SetDate(4, 3);
  const uint8_t* row = b.Finish(&arena);
  TupleView v(row, &schema);
  EXPECT_EQ(v.GetValue(0), Value::Int64(9));
  EXPECT_EQ(v.GetValue(1), Value::Double(1.5));
  EXPECT_EQ(v.GetValue(3), Value::String("s"));
}

TEST(TupleTest, BuilderResetClearsValues) {
  Schema schema({{"a", DataType::kInt64}});
  Arena arena;
  TupleBuilder b(&schema);
  b.SetInt64(0, 5);
  b.Finish(&arena);
  b.Reset();
  const uint8_t* row = b.Finish(&arena);
  EXPECT_TRUE(TupleView(row, &schema).IsNull(0));
}

TEST(TupleTest, ConcatRowsJoinsFields) {
  Schema left({{"a", DataType::kInt64}, {"s", DataType::kString}});
  Schema right({{"b", DataType::kDouble}, {"t", DataType::kString}});
  Schema out = Schema::Concat(left, right);
  Arena arena;

  TupleBuilder lb(&left);
  lb.SetInt64(0, 11);
  lb.SetString(1, "left");
  const uint8_t* lrow = lb.Finish(&arena);

  TupleBuilder rb(&right);
  rb.SetNull(0);
  rb.SetString(1, "right");
  const uint8_t* rrow = rb.Finish(&arena);

  const uint8_t* joined =
      TupleBuilder::ConcatRows(out, left, lrow, right, rrow, &arena);
  TupleView v(joined, &out);
  EXPECT_EQ(v.GetInt64(0), 11);
  EXPECT_EQ(v.GetString(1), "left");
  EXPECT_TRUE(v.IsNull(2));
  EXPECT_EQ(v.GetString(3), "right");
}

TEST(TupleTest, ConcatRowsToStringMatchesManualBuild) {
  Schema left({{"a", DataType::kInt64}});
  Schema right({{"b", DataType::kInt64}});
  Schema out = Schema::Concat(left, right);
  Arena arena;
  TupleBuilder lb(&left), rb(&right), ob(&out);
  lb.SetInt64(0, 1);
  rb.SetInt64(0, 2);
  ob.SetInt64(0, 1);
  ob.SetInt64(1, 2);
  const uint8_t* joined = TupleBuilder::ConcatRows(
      out, left, lb.Finish(&arena), right, rb.Finish(&arena), &arena);
  const uint8_t* direct = ob.Finish(&arena);
  EXPECT_EQ(TupleView(joined, &out).ToString(),
            TupleView(direct, &out).ToString());
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

// Append-form name builder: `"s" + std::to_string(i)` trips gcc 12's -O3
// -Wrestrict false positive (PR105651) under -Werror.
std::string NumberedName(const char* prefix, int i) {
  std::string out = prefix;
  out += std::to_string(i);
  return out;
}

TEST(WideSchemaTest, FortyColumnsRoundTrip) {
  // Joined TPC-H schemas exceed 32 columns; the 64-bit null bitmap must
  // address all of them.
  std::vector<Column> cols;
  for (int i = 0; i < 40; ++i) {
    cols.push_back(Column{NumberedName("c", i),
                          i % 3 == 0 ? DataType::kString : DataType::kInt64});
  }
  Schema schema(cols);
  Arena arena;
  TupleBuilder b(&schema);
  for (int i = 0; i < 40; ++i) {
    if (i % 7 == 0) {
      b.SetNull(i);
    } else if (i % 3 == 0) {
      b.SetString(i, NumberedName("s", i));
    } else {
      b.SetInt64(i, i * 100);
    }
  }
  const uint8_t* row = b.Finish(&arena);
  TupleView v(row, &schema);
  for (int i = 0; i < 40; ++i) {
    if (i % 7 == 0) {
      EXPECT_TRUE(v.IsNull(i)) << i;
    } else if (i % 3 == 0) {
      EXPECT_EQ(v.GetString(i), NumberedName("s", i)) << i;
    } else {
      EXPECT_EQ(v.GetInt64(i), i * 100) << i;
    }
  }
}

TEST(WideSchemaTest, ConcatAcross32ColumnBoundary) {
  std::vector<Column> left_cols, right_cols;
  for (int i = 0; i < 30; ++i) {
    left_cols.push_back(Column{NumberedName("l", i), DataType::kInt64});
  }
  for (int i = 0; i < 10; ++i) {
    right_cols.push_back(Column{NumberedName("r", i), DataType::kInt64});
  }
  Schema left(left_cols), right(right_cols);
  Schema out = Schema::Concat(left, right);
  ASSERT_EQ(out.num_columns(), 40u);

  Arena arena;
  TupleBuilder lb(&left), rb(&right);
  for (int i = 0; i < 30; ++i) lb.SetInt64(i, i);
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      rb.SetNull(i);
    } else {
      rb.SetInt64(i, 1000 + i);
    }
  }
  const uint8_t* joined = TupleBuilder::ConcatRows(
      out, left, lb.Finish(&arena), right, rb.Finish(&arena), &arena);
  TupleView v(joined, &out);
  EXPECT_EQ(v.GetInt64(29), 29);
  // Columns 30..39 come from the right side: nulls must land past bit 31.
  EXPECT_TRUE(v.IsNull(30));
  EXPECT_EQ(v.GetInt64(31), 1001);
  EXPECT_TRUE(v.IsNull(38));
  EXPECT_EQ(v.GetInt64(39), 1009);
}

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include "core/threshold_calibration.h"

namespace bufferdb {
namespace {

class ThresholdCalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small table keeps the suite fast; the experiment sweeps output
    // cardinality via predicate selectivity either way.
    result_ = new ThresholdCalibrationResult(CalibrateCardinalityThreshold(
        sim::SimConfig(), /*buffer_size=*/1000, /*table_rows=*/8000));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static ThresholdCalibrationResult* result_;
};

ThresholdCalibrationResult* ThresholdCalibrationTest::result_ = nullptr;

TEST_F(ThresholdCalibrationTest, ProducesSweepPoints) {
  EXPECT_GE(result_->points.size(), 8u);
  for (const CalibrationPoint& p : result_->points) {
    EXPECT_GT(p.original_seconds, 0.0);
    EXPECT_GT(p.buffered_seconds, 0.0);
  }
}

TEST_F(ThresholdCalibrationTest, BufferedWinsAtHighCardinality) {
  const CalibrationPoint& last = result_->points.back();
  EXPECT_LT(last.buffered_seconds, last.original_seconds);
}

TEST_F(ThresholdCalibrationTest, ThresholdIsFiniteAndPositive) {
  EXPECT_GT(result_->threshold, 0.0);
  EXPECT_LE(result_->threshold, result_->points.back().cardinality);
}

TEST_F(ThresholdCalibrationTest, BufferedStaysAheadBeyondThreshold) {
  for (const CalibrationPoint& p : result_->points) {
    if (p.cardinality >= result_->threshold) {
      EXPECT_LT(p.buffered_seconds, p.original_seconds)
          << "cardinality " << p.cardinality;
    }
  }
}

TEST_F(ThresholdCalibrationTest, ElapsedTimeGrowsWithCardinality) {
  // More qualifying tuples means more aggregation work in both plans.
  EXPECT_GT(result_->points.back().original_seconds,
            result_->points.front().original_seconds);
}

TEST_F(ThresholdCalibrationTest, ReportIsPrintable) {
  std::string s = result_->ToString();
  EXPECT_NE(s.find("threshold"), std::string::npos);
  EXPECT_NE(s.find("buffered"), std::string::npos);
}

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include "storage/table.h"

namespace bufferdb {
namespace {

Schema SimpleSchema() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}});
}

TEST(TableTest, AppendAndRead) {
  Table t("t", SimpleSchema());
  for (int i = 0; i < 10; ++i) {
    t.AppendRow({Value::Int64(i), Value::Double(i * 0.5)});
  }
  ASSERT_EQ(t.num_rows(), 10u);
  for (int i = 0; i < 10; ++i) {
    TupleView v = t.view(i);
    EXPECT_EQ(v.GetInt64(0), i);
    EXPECT_DOUBLE_EQ(v.GetDouble(1), i * 0.5);
  }
}

TEST(TableTest, RowsAreStableAcrossAppends) {
  Table t("t", SimpleSchema());
  t.AppendRow({Value::Int64(1), Value::Double(1)});
  const uint8_t* first = t.row(0);
  for (int i = 0; i < 10000; ++i) {
    t.AppendRow({Value::Int64(i), Value::Double(i)});
  }
  EXPECT_EQ(t.row(0), first);
  EXPECT_EQ(TupleView(first, &t.schema()).GetInt64(0), 1);
}

TEST(TableTest, StatsMinMax) {
  Table t("t", SimpleSchema());
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({Value::Int64(i - 50), Value::Double(i * 2.0)});
  }
  const ColumnStats& k = t.stats(0);
  ASSERT_TRUE(k.valid);
  EXPECT_DOUBLE_EQ(k.min, -50);
  EXPECT_DOUBLE_EQ(k.max, 49);
  const ColumnStats& v = t.stats(1);
  EXPECT_DOUBLE_EQ(v.min, 0);
  EXPECT_DOUBLE_EQ(v.max, 198);
}

TEST(TableTest, StatsCountNulls) {
  Table t("t", SimpleSchema());
  t.AppendRow({Value::Int64(1), Value::Null(DataType::kDouble)});
  t.AppendRow({Value::Int64(2), Value::Double(5)});
  t.AppendRow({Value::Int64(3), Value::Null(DataType::kDouble)});
  EXPECT_EQ(t.stats(1).null_count, 2u);
  EXPECT_DOUBLE_EQ(t.stats(1).min, 5);
}

TEST(TableTest, StatsInvalidForStrings) {
  Table t("t", Schema({{"s", DataType::kString}}));
  t.AppendRow({Value::String("x")});
  EXPECT_FALSE(t.stats(0).valid);
}

TEST(TableTest, StatsRecomputedAfterAppend) {
  Table t("t", SimpleSchema());
  t.AppendRow({Value::Int64(1), Value::Double(1)});
  EXPECT_DOUBLE_EQ(t.stats(0).max, 1);
  t.AppendRow({Value::Int64(99), Value::Double(1)});
  EXPECT_DOUBLE_EQ(t.stats(0).max, 99);
}

TEST(TableTest, StatsEmptyTable) {
  Table t("t", SimpleSchema());
  EXPECT_FALSE(t.stats(0).valid);
}

}  // namespace
}  // namespace bufferdb

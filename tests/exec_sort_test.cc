#include <gtest/gtest.h>

#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Col;
using testutil::MakeKvTable;
using testutil::RunPlan;

std::unique_ptr<SortOperator> SortBy(Table* table, const std::string& column,
                                     bool descending) {
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(table->schema(), column), descending});
  return std::make_unique<SortOperator>(
      std::make_unique<SeqScanOperator>(table, nullptr), std::move(keys));
}

TEST(SortTest, AscendingByInt) {
  auto table = MakeKvTable("t", {{3, 1}, {1, 2}, {2, 3}});
  auto sort = SortBy(table.get(), "k", false);
  auto rows = RunPlan(sort.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[1][0], Value::Int64(2));
  EXPECT_EQ(rows[2][0], Value::Int64(3));
}

TEST(SortTest, DescendingByDouble) {
  auto table = MakeKvTable("t", {{1, 1.5}, {2, 9.5}, {3, 4.5}});
  auto sort = SortBy(table.get(), "v", true);
  auto rows = RunPlan(sort.get());
  EXPECT_EQ(rows[0][1], Value::Double(9.5));
  EXPECT_EQ(rows[2][1], Value::Double(1.5));
}

TEST(SortTest, StableForEqualKeys) {
  auto table = MakeKvTable("t", {{1, 10}, {1, 20}, {1, 30}, {0, 5}});
  auto sort = SortBy(table.get(), "k", false);
  auto rows = RunPlan(sort.get());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][1], Value::Double(5));
  // Input order preserved among the equal keys.
  EXPECT_EQ(rows[1][1], Value::Double(10));
  EXPECT_EQ(rows[2][1], Value::Double(20));
  EXPECT_EQ(rows[3][1], Value::Double(30));
}

TEST(SortTest, NullsSortLast) {
  Schema schema({{"k", DataType::kInt64}});
  Table table("t", schema);
  table.AppendRow({Value::Null(DataType::kInt64)});
  table.AppendRow({Value::Int64(2)});
  table.AppendRow({Value::Null(DataType::kInt64)});
  table.AppendRow({Value::Int64(1)});

  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(schema, "k"), false});
  SortOperator sort(std::make_unique<SeqScanOperator>(&table, nullptr),
                    std::move(keys));
  auto rows = RunPlan(&sort);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[1][0], Value::Int64(2));
  EXPECT_TRUE(rows[2][0].is_null());
  EXPECT_TRUE(rows[3][0].is_null());
}

TEST(SortTest, MultiKeySort) {
  auto table = MakeKvTable("t", {{2, 1}, {1, 9}, {2, 0}, {1, 3}});
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(table->schema(), "k"), false});
  keys.push_back(SortKey{Col(table->schema(), "v"), true});
  SortOperator sort(
      std::make_unique<SeqScanOperator>(table.get(), nullptr),
      std::move(keys));
  auto rows = RunPlan(&sort);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[0][1], Value::Double(9));
  EXPECT_EQ(rows[1][1], Value::Double(3));
  EXPECT_EQ(rows[2][1], Value::Double(1));
  EXPECT_EQ(rows[3][1], Value::Double(0));
}

TEST(SortTest, EmptyInput) {
  auto table = MakeKvTable("t", {});
  auto sort = SortBy(table.get(), "k", false);
  EXPECT_TRUE(RunPlan(sort.get()).empty());
}

TEST(SortTest, IsPipelineBreaker) {
  auto table = MakeKvTable("t", {{1, 1}});
  auto sort = SortBy(table.get(), "k", false);
  EXPECT_TRUE(sort->BlocksInput(0));
}

TEST(SortTest, RescanReplaysWithoutResort) {
  auto table = MakeKvTable("t", {{2, 0}, {1, 0}});
  auto sort = SortBy(table.get(), "k", false);
  ExecContext ctx;
  ASSERT_TRUE(sort->Open(&ctx).ok());
  EXPECT_NE(sort->Next(), nullptr);
  ASSERT_TRUE(sort->Rescan().ok());
  const uint8_t* first = sort->Next();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(TupleView(first, &sort->output_schema()).GetInt64(0), 1);
  sort->Close();
}

TEST(SortTest, LargeRandomInputIsSorted) {
  std::vector<std::pair<int64_t, double>> rows;
  uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    rows.push_back({static_cast<int64_t>(state % 1000), i * 1.0});
  }
  auto table = MakeKvTable("t", rows);
  auto sort = SortBy(table.get(), "k", false);
  auto out = RunPlan(sort.get());
  ASSERT_EQ(out.size(), 5000u);
  for (size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1][0].int64_value(), out[i][0].int64_value());
  }
}

}  // namespace
}  // namespace bufferdb

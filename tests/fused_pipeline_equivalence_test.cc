// Fused-pipeline equivalence suite (DESIGN.md §15): fusing a
// Scan -> Filter* -> [Project] chain into one FusedPipelineOperator must be
// invisible in results. Covers
//   1. hand-built chains (seq and columnar sources, multi-filter stacks,
//      empty results, NULL lanes, dictionary-coded string predicates) fused
//      via TryFuse, contract-checked, across batch widths 1/7/256/1024 and
//      both drain interfaces,
//   2. the TryFuse structural rules: non-chains and single operators stay
//      unfused, the L1-I footprint gate hands the chain back intact, the
//      fused working set excludes the per-stage dispatch glue,
//   3. planner integration: RefinementOptions::fuse_pipelines off keeps
//      plans bit-identical (no FusedPipeline node, same printed plan); on,
//      results match the unfused reference across Exchange degrees 1/2/8,
//      composed with adaptive buffering (BUFFERDB_ADAPTIVE_BUFFERING-style
//      runtime controllers).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/plan_refiner.h"
#include "exec/column_scan.h"
#include "exec/filter.h"
#include "exec/fused_pipeline.h"
#include "exec/project.h"
#include "exec/seq_scan.h"
#include "plan/physical_planner.h"
#include "plan/plan_printer.h"
#include "sim/code_layout.h"
#include "sql/binder.h"
#include "storage/column_table.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Canonical;
using testutil::Col;
using testutil::ContractChecked;
using testutil::Lit;
using testutil::RunPlan;

std::vector<std::vector<Value>> RunPlanBatched(Operator* root, size_t batch) {
  ExecContext ctx;
  auto rows = ExecutePlanBatched(root, &ctx, batch);
  EXPECT_TRUE(rows.ok()) << rows.status();
  if (!rows.ok()) return {};
  std::vector<std::vector<Value>> out;
  const Schema& schema = root->output_schema();
  for (const uint8_t* row : *rows) {
    TupleView view(row, &schema);
    std::vector<Value> values;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      values.push_back(view.GetValue(c));
    }
    out.push_back(std::move(values));
  }
  return out;
}

// (k INT64, v DOUBLE, s STRING) table with periodic NULLs in every column;
// columnar image optional. 997 rows by default so no width under test
// divides the input evenly.
std::unique_ptr<Table> MakeTestTable(size_t n, bool columnar) {
  Schema schema({{"k", DataType::kInt64},
                 {"v", DataType::kDouble},
                 {"s", DataType::kString}});
  auto table = std::make_unique<Table>("ft", schema);
  const char* kVocab[] = {"alpha", "beta", "gamma", "delta", "omega"};
  for (size_t i = 0; i < n; ++i) {
    Value k = (i % 11 == 3) ? Value::Null(DataType::kInt64)
                            : Value::Int64(static_cast<int64_t>(i % 500));
    Value v = (i % 13 == 5)
                  ? Value::Null(DataType::kDouble)
                  : Value::Double(static_cast<double>(i % 1000) / 4.0);
    Value s = (i % 17 == 7) ? Value::Null(DataType::kString)
                            : Value::String(kVocab[(i * 7) % 5]);
    table->AppendRow({k, v, s});
  }
  if (columnar) table->AttachColumnar(ColumnarTable::Build(*table));
  return table;
}

std::vector<ProjectItem> KvProjection(const Schema& s) {
  std::vector<ProjectItem> items;
  items.push_back(ProjectItem{
      Bin(BinaryOp::kMul, Col(s, "v"), Lit(Value::Double(2.0))), "v2"});
  items.push_back(ProjectItem{Col(s, "k"), "k"});
  items.push_back(ProjectItem{
      Bin(BinaryOp::kAdd, Col(s, "k"), Lit(Value::Int64(1000))), "k2"});
  return items;
}

// ---------------------------------------------------------------------------
// 1. Hand-built chains: fused output == unfused output, both interfaces.
// ---------------------------------------------------------------------------

class FusedEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  size_t batch() const { return GetParam(); }

  // Builds the chain twice via `factory`; the second copy must actually
  // fuse. Compares the unfused tuple-at-a-time output against the fused
  // operator drained through both interfaces, all contract-checked.
  template <typename Factory>
  void CheckFusedEquivalent(Factory factory, size_t expect_stages) {
    OperatorPtr reference = ContractChecked(factory());
    auto expected = RunPlan(reference.get());

    OperatorPtr fused =
        FusedPipelineOperator::TryFuse(factory(), FusedPipelineOptions());
    auto* hook = dynamic_cast<FusedPipelineOperator*>(fused.get());
    ASSERT_NE(hook, nullptr) << "chain did not fuse";
    EXPECT_EQ(hook->num_stages(), expect_stages);
    OperatorPtr checked = ContractChecked(std::move(fused));
    auto batched = RunPlanBatched(checked.get(), batch());
    ASSERT_EQ(expected.size(), batched.size());
    EXPECT_EQ(Canonical(expected), Canonical(batched));

    OperatorPtr fused_tuple =
        ContractChecked(FusedPipelineOperator::TryFuse(factory(),
                                                       FusedPipelineOptions()));
    EXPECT_EQ(Canonical(expected), Canonical(RunPlan(fused_tuple.get())));
  }
};

TEST_P(FusedEquivalenceTest, SeqScanPredicateProject) {
  auto table = MakeTestTable(997, /*columnar=*/false);
  const Schema& s = table->schema();
  CheckFusedEquivalent(
      [&]() -> OperatorPtr {
        return std::make_unique<ProjectOperator>(
            std::make_unique<SeqScanOperator>(
                table.get(),
                Bin(BinaryOp::kLt, Col(s, "v"), Lit(Value::Double(120.0)))),
            KvProjection(s));
      },
      /*expect_stages=*/2);
}

TEST_P(FusedEquivalenceTest, SeqScanFilterProject) {
  auto table = MakeTestTable(997, /*columnar=*/false);
  const Schema& s = table->schema();
  CheckFusedEquivalent(
      [&]() -> OperatorPtr {
        return std::make_unique<ProjectOperator>(
            std::make_unique<FilterOperator>(
                std::make_unique<SeqScanOperator>(table.get(), nullptr),
                Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(9)))),
            KvProjection(s));
      },
      /*expect_stages=*/3);
}

TEST_P(FusedEquivalenceTest, MultiFilterStack) {
  auto table = MakeTestTable(997, /*columnar=*/false);
  const Schema& s = table->schema();
  CheckFusedEquivalent(
      [&]() -> OperatorPtr {
        OperatorPtr plan = std::make_unique<SeqScanOperator>(
            table.get(),
            Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(3))));
        plan = std::make_unique<FilterOperator>(
            std::move(plan),
            Bin(BinaryOp::kLt, Col(s, "v"), Lit(Value::Double(200.0))));
        plan = std::make_unique<FilterOperator>(
            std::move(plan),
            Bin(BinaryOp::kNe, Col(s, "k"), Lit(Value::Int64(100))));
        return std::make_unique<ProjectOperator>(std::move(plan),
                                                 KvProjection(s));
      },
      /*expect_stages=*/4);
}

TEST_P(FusedEquivalenceTest, FilterOnlyNoProject) {
  auto table = MakeTestTable(997, /*columnar=*/false);
  const Schema& s = table->schema();
  CheckFusedEquivalent(
      [&]() -> OperatorPtr {
        return std::make_unique<FilterOperator>(
            std::make_unique<SeqScanOperator>(table.get(), nullptr),
            Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(50))));
      },
      /*expect_stages=*/2);
}

TEST_P(FusedEquivalenceTest, EverythingFilteredOut) {
  auto table = MakeTestTable(997, /*columnar=*/false);
  const Schema& s = table->schema();
  CheckFusedEquivalent(
      [&]() -> OperatorPtr {
        return std::make_unique<ProjectOperator>(
            std::make_unique<FilterOperator>(
                std::make_unique<SeqScanOperator>(table.get(), nullptr),
                Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(-1)))),
            KvProjection(s));
      },
      /*expect_stages=*/3);
}

TEST_P(FusedEquivalenceTest, ColumnarSourceWithStringPredicate) {
  // The scan predicate mixes a dictionary-coded string equality with a
  // numeric range, so the fused gather must widen codes AND alias value
  // segments; zone conjuncts carry over (counter checked below).
  auto table = MakeTestTable(997, /*columnar=*/true);
  const Schema& s = table->schema();
  CheckFusedEquivalent(
      [&]() -> OperatorPtr {
        return std::make_unique<ProjectOperator>(
            std::make_unique<FilterOperator>(
                std::make_unique<ColumnScanOperator>(
                    table.get(),
                    Bin(BinaryOp::kAnd,
                        Bin(BinaryOp::kEq, Col(s, "s"),
                            Lit(Value::String("alpha"))),
                        Bin(BinaryOp::kLt, Col(s, "k"),
                            Lit(Value::Int64(400))))),
                Bin(BinaryOp::kGe, Col(s, "v"), Lit(Value::Double(10.0)))),
            KvProjection(s));
      },
      /*expect_stages=*/3);
}

TEST_P(FusedEquivalenceTest, MixedNextAndNextBatchDrain) {
  auto table = MakeTestTable(997, /*columnar=*/false);
  const Schema& s = table->schema();
  auto factory = [&]() -> OperatorPtr {
    return std::make_unique<ProjectOperator>(
        std::make_unique<SeqScanOperator>(
            table.get(),
            Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(5)))),
        KvProjection(s));
  };
  auto expected = Canonical(RunPlan(ContractChecked(factory()).get()));

  OperatorPtr fused =
      FusedPipelineOperator::TryFuse(factory(), FusedPipelineOptions());
  ASSERT_NE(dynamic_cast<FusedPipelineOperator*>(fused.get()), nullptr);
  ExecContext ctx;
  ASSERT_TRUE(fused->Open(&ctx).ok());
  std::vector<std::vector<Value>> rows;
  const Schema& out_schema = fused->output_schema();
  std::vector<const uint8_t*> slice(batch());
  auto box = [&](const uint8_t* row) {
    TupleView view(row, &out_schema);
    std::vector<Value> values;
    for (size_t c = 0; c < out_schema.num_columns(); ++c) {
      values.push_back(view.GetValue(c));
    }
    rows.push_back(std::move(values));
  };
  for (;;) {
    const uint8_t* row = fused->Next();
    if (row == nullptr) break;
    box(row);
    size_t n = fused->NextBatch(slice.data(), batch());
    for (size_t i = 0; i < n; ++i) box(slice[i]);
    if (n == 0) break;
  }
  fused->Close();
  EXPECT_EQ(expected, Canonical(rows));
}

INSTANTIATE_TEST_SUITE_P(Widths, FusedEquivalenceTest,
                         ::testing::Values(1, 7, 256, 1024));

// ---------------------------------------------------------------------------
// 2. TryFuse structural rules.
// ---------------------------------------------------------------------------

TEST(FusedPipelineStructureTest, SingleOperatorStaysUnfused) {
  auto table = MakeTestTable(100, /*columnar=*/false);
  const Schema& s = table->schema();
  OperatorPtr scan = std::make_unique<SeqScanOperator>(
      table.get(), Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(10))));
  Operator* raw = scan.get();
  OperatorPtr out =
      FusedPipelineOperator::TryFuse(std::move(scan), FusedPipelineOptions());
  EXPECT_EQ(out.get(), raw);  // Same object handed back, not a copy.
}

TEST(FusedPipelineStructureTest, UncompilablePredicateStaysUnfused) {
  // String LIKE on a row store never compiles to a kernel program, so the
  // chain must be refused and handed back untouched.
  auto table = MakeTestTable(100, /*columnar=*/false);
  OperatorPtr filtered = std::make_unique<FilterOperator>(
      std::make_unique<SeqScanOperator>(table.get(), nullptr),
      Bin(BinaryOp::kLike, Col(table->schema(), "s"),
          Lit(Value::String("al%"))));
  Operator* raw = filtered.get();
  OperatorPtr out = FusedPipelineOperator::TryFuse(std::move(filtered),
                                                   FusedPipelineOptions());
  EXPECT_EQ(out.get(), raw);
}

TEST(FusedPipelineStructureTest, FootprintGateHandsChainBack) {
  auto table = MakeTestTable(100, /*columnar=*/false);
  const Schema& s = table->schema();
  auto make_chain = [&]() -> OperatorPtr {
    return std::make_unique<ProjectOperator>(
        std::make_unique<SeqScanOperator>(
            table.get(),
            Bin(BinaryOp::kLt, Col(s, "v"), Lit(Value::Double(50.0)))),
        KvProjection(s));
  };
  FusedPipelineOptions tiny;
  tiny.l1i_capacity_bytes = 64;  // Nothing fits.
  OperatorPtr out = FusedPipelineOperator::TryFuse(make_chain(), tiny);
  EXPECT_EQ(dynamic_cast<FusedPipelineOperator*>(out.get()), nullptr);
  EXPECT_NE(dynamic_cast<ProjectOperator*>(out.get()), nullptr);
  // The handed-back chain still executes.
  auto expected = RunPlan(make_chain().get());
  EXPECT_EQ(Canonical(expected), Canonical(RunPlan(out.get())));
}

TEST(FusedPipelineStructureTest, FusedWorkingSetExcludesDispatchGlue) {
  auto table = MakeTestTable(100, /*columnar=*/false);
  const Schema& s = table->schema();
  OperatorPtr fused = FusedPipelineOperator::TryFuse(
      std::make_unique<ProjectOperator>(
          std::make_unique<FilterOperator>(
              std::make_unique<SeqScanOperator>(table.get(), nullptr),
              Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(0)))),
          KvProjection(s)),
      FusedPipelineOptions());
  auto* hook = dynamic_cast<FusedPipelineOperator*>(fused.get());
  ASSERT_NE(hook, nullptr);
  for (sim::FuncId f : hook->hot_funcs()) {
    EXPECT_NE(f, sim::FuncId::kExecCommon)
        << "fused working set must not charge the per-stage dispatch glue";
  }
  // Union of drive loop + scan/filter/project kernels + vector-eval core.
  const sim::CodeLayout& layout = sim::CodeLayout::Default();
  uint64_t expect = layout.info(sim::FuncId::kFusedPipelineCore).size_bytes +
                    layout.info(sim::FuncId::kScanCore).size_bytes +
                    layout.info(sim::FuncId::kVectorEvalCore).size_bytes +
                    layout.info(sim::FuncId::kFilterCore).size_bytes +
                    layout.info(sim::FuncId::kProjectCore).size_bytes;
  EXPECT_EQ(hook->fused_footprint_bytes(), expect);
}

TEST(FusedPipelineStructureTest, ZoneMapPruningCarriesOver) {
  // Ascending k over 3 full blocks: k < kZoneBlockRows prunes 2 blocks in
  // ColumnScan, and the fused chain must keep that skip.
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>("zm", schema);
  for (size_t i = 0; i < 3 * kZoneBlockRows; ++i) {
    table->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::Double(static_cast<double>(i % 90))});
  }
  table->AttachColumnar(ColumnarTable::Build(*table));
  const Schema& s = table->schema();
  auto make_chain = [&]() -> OperatorPtr {
    return std::make_unique<ProjectOperator>(
        std::make_unique<ColumnScanOperator>(
            table.get(),
            Bin(BinaryOp::kLt, Col(s, "k"),
                Lit(Value::Int64(static_cast<int64_t>(kZoneBlockRows))))),
        KvProjection(s));
  };
  auto expected = RunPlan(make_chain().get());
  OperatorPtr fused =
      FusedPipelineOperator::TryFuse(make_chain(), FusedPipelineOptions());
  auto* hook = dynamic_cast<FusedPipelineOperator*>(fused.get());
  ASSERT_NE(hook, nullptr);
  auto actual = RunPlanBatched(fused.get(), 1024);
  EXPECT_EQ(Canonical(expected), Canonical(actual));
  EXPECT_GE(hook->blocks_pruned(), 2u);
}

TEST(FusedPipelineStructureTest, PrinterRendersStageChain) {
  auto table = MakeTestTable(100, /*columnar=*/false);
  const Schema& s = table->schema();
  OperatorPtr fused = FusedPipelineOperator::TryFuse(
      std::make_unique<ProjectOperator>(
          std::make_unique<FilterOperator>(
              std::make_unique<SeqScanOperator>(table.get(), nullptr),
              Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(0)))),
          KvProjection(s)),
      FusedPipelineOptions());
  ASSERT_NE(dynamic_cast<FusedPipelineOperator*>(fused.get()), nullptr);
  std::string printed = PrintPlan(*fused);
  EXPECT_NE(printed.find("FusedPipeline"), std::string::npos) << printed;
  EXPECT_NE(printed.find("* Project"), std::string::npos) << printed;
  EXPECT_NE(printed.find("* Filter"), std::string::npos) << printed;
  EXPECT_NE(printed.find("* Scan(ft)"), std::string::npos) << printed;
}

// ---------------------------------------------------------------------------
// 3. Planner integration: the knob is invisible in results, off means no
//    fusion at all.
// ---------------------------------------------------------------------------

class FusedPlanTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  OperatorPtr MustPlan(const std::string& sql, PlannerOptions options) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(*plan);
  }

  static Catalog* catalog_;
};

Catalog* FusedPlanTest::catalog_ = nullptr;

TEST_P(FusedPlanTest, KnobOffPlansAreIdentical) {
  const char kSql[] =
      "SELECT l_orderkey, l_quantity FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'";
  PlannerOptions base;
  base.refine = true;
  base.batch_size = GetParam();
  OperatorPtr plain = MustPlan(kSql, base);  // fuse_pipelines defaults off.
  PlannerOptions off = base;
  off.refinement.fuse_pipelines = false;
  OperatorPtr knob_off = MustPlan(kSql, off);
  EXPECT_EQ(PrintPlan(*plain, true), PrintPlan(*knob_off, true));
  EXPECT_EQ(PrintPlan(*knob_off).find("FusedPipeline"), std::string::npos);
}

TEST_P(FusedPlanTest, KnobOnMatchesReferenceAcrossDegrees) {
  const char* kQueries[] = {
      "SELECT l_orderkey, l_quantity FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'",
      "SELECT o_orderkey, o_totalprice FROM orders "
      "WHERE o_orderpriority = '1-URGENT'",
      "SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'",
  };
  for (const char* sql : kQueries) {
    PlannerOptions reference;
    reference.batch_size = GetParam();
    OperatorPtr serial = MustPlan(sql, reference);
    auto expected = Canonical(RunPlanBatched(serial.get(), GetParam()));
    for (size_t degree : {1u, 2u, 8u}) {
      PlannerOptions on;
      on.parallel_degree = degree;
      on.batch_size = GetParam();
      on.refine = true;
      on.refinement.fuse_pipelines = true;
      OperatorPtr plan = MustPlan(sql, on);
      auto actual = Canonical(RunPlanBatched(plan.get(), GetParam()));
      EXPECT_EQ(expected, actual) << "degree " << degree << " sql: " << sql;
    }
  }
}

TEST_P(FusedPlanTest, KnobOnActuallyFusesScanProjection) {
  // A pure scan-filter-project query must contain a fused node when the
  // knob is on (batched plans compile their expressions).
  if (GetParam() < 2) return;  // Tuple plans keep per-stage operators.
  const char kSql[] =
      "SELECT l_orderkey, l_quantity FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'";
  PlannerOptions on;
  on.batch_size = GetParam();
  on.refine = true;
  on.refinement.fuse_pipelines = true;
  OperatorPtr plan = MustPlan(kSql, on);
  EXPECT_NE(PrintPlan(*plan).find("FusedPipeline"), std::string::npos)
      << PrintPlan(*plan);
}

TEST_P(FusedPlanTest, ComposesWithAdaptiveBuffering) {
  const char kSql[] =
      "SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";
  PlannerOptions reference;
  reference.batch_size = GetParam();
  OperatorPtr serial = MustPlan(kSql, reference);
  auto expected = RunPlanBatched(serial.get(), GetParam());
  ASSERT_EQ(expected.size(), 1u);
  PlannerOptions both;
  both.batch_size = GetParam();
  both.refine = true;
  both.refinement.fuse_pipelines = true;
  both.refinement.adaptive_buffering = true;
  OperatorPtr plan = MustPlan(kSql, both);
  auto actual = RunPlanBatched(plan.get(), GetParam());
  ASSERT_EQ(actual.size(), 1u);
  ASSERT_EQ(expected[0].size(), actual[0].size());
  for (size_t c = 0; c < expected[0].size(); ++c) {
    EXPECT_TRUE(expected[0][c] == actual[0][c])
        << "col " << c << ": " << expected[0][c].ToString() << " vs "
        << actual[0][c].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FusedPlanTest,
                         ::testing::Values(1, 7, 256, 1024));

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/index_scan.h"
#include "exec/limit.h"
#include "exec/materialize.h"
#include "exec/project.h"
#include "exec/seq_scan.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Col;
using testutil::Lit;
using testutil::MakeKvTable;
using testutil::RunPlan;

TEST(SeqScanTest, FullScanReturnsAllRows) {
  auto table = MakeKvTable("t", {{1, 1.0}, {2, 2.0}, {3, 3.0}});
  SeqScanOperator scan(table.get(), nullptr);
  auto rows = RunPlan(&scan);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[2][1], Value::Double(3.0));
}

TEST(SeqScanTest, PredicateFilters) {
  auto table = MakeKvTable("t", {{1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0}});
  const Schema& s = table->schema();
  SeqScanOperator scan(table.get(),
                       Bin(BinaryOp::kGt, Col(s, "k"), Lit(Value::Int64(2))));
  auto rows = RunPlan(&scan);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(3));
}

TEST(SeqScanTest, EmptyTable) {
  auto table = MakeKvTable("t", {});
  SeqScanOperator scan(table.get(), nullptr);
  EXPECT_TRUE(RunPlan(&scan).empty());
}

TEST(SeqScanTest, RescanRestartsFromTop) {
  auto table = MakeKvTable("t", {{1, 1.0}, {2, 2.0}});
  SeqScanOperator scan(table.get(), nullptr);
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  EXPECT_NE(scan.Next(), nullptr);
  EXPECT_NE(scan.Next(), nullptr);
  EXPECT_EQ(scan.Next(), nullptr);
  ASSERT_TRUE(scan.Rescan().ok());
  EXPECT_NE(scan.Next(), nullptr);
  scan.Close();
}

TEST(SeqScanTest, ModuleDependsOnPredicate) {
  auto table = MakeKvTable("t", {{1, 1.0}});
  SeqScanOperator plain(table.get(), nullptr);
  EXPECT_EQ(plain.module_id(), sim::ModuleId::kSeqScan);
  SeqScanOperator filtered(
      table.get(),
      Bin(BinaryOp::kGt, Col(table->schema(), "k"), Lit(Value::Int64(0))));
  EXPECT_EQ(filtered.module_id(), sim::ModuleId::kSeqScanFiltered);
}

class IndexScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::pair<int64_t, double>> rows;
    for (int64_t i = 0; i < 100; ++i) rows.push_back({i % 50, i * 1.0});
    ASSERT_TRUE(catalog_.AddTable(MakeKvTable("t", rows)).ok());
    ASSERT_TRUE(catalog_.CreateIndex("t_k", "t", "k").ok());
    index_ = catalog_.GetIndex("t_k");
  }
  Catalog catalog_;
  const IndexInfo* index_ = nullptr;
};

TEST_F(IndexScanTest, FullRangeIsSorted) {
  IndexScanOperator scan(index_, std::nullopt, std::nullopt, nullptr);
  auto rows = RunPlan(&scan);
  ASSERT_EQ(rows.size(), 100u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][0].int64_value(), rows[i][0].int64_value());
  }
}

TEST_F(IndexScanTest, BoundedRange) {
  IndexScanOperator scan(index_, int64_t{10}, int64_t{12}, nullptr);
  auto rows = RunPlan(&scan);
  ASSERT_EQ(rows.size(), 6u);  // Keys 10,11,12 each twice.
  for (const auto& row : rows) {
    EXPECT_GE(row[0].int64_value(), 10);
    EXPECT_LE(row[0].int64_value(), 12);
  }
}

TEST_F(IndexScanTest, EqualKeyMode) {
  IndexScanOperator scan(index_, std::nullopt, std::nullopt, nullptr);
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  scan.BindEqualKey(7);
  ASSERT_TRUE(scan.Rescan().ok());
  int count = 0;
  while (const uint8_t* row = scan.Next()) {
    TupleView v(row, &scan.output_schema());
    EXPECT_EQ(v.GetInt64(0), 7);
    ++count;
  }
  EXPECT_EQ(count, 2);

  // Rebinding works repeatedly.
  scan.BindEqualKey(49);
  ASSERT_TRUE(scan.Rescan().ok());
  count = 0;
  while (scan.Next() != nullptr) ++count;
  EXPECT_EQ(count, 2);
  scan.Close();
}

TEST_F(IndexScanTest, EqualKeyMissingReturnsNothing) {
  IndexScanOperator scan(index_, std::nullopt, std::nullopt, nullptr);
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  scan.BindEqualKey(12345);
  ASSERT_TRUE(scan.Rescan().ok());
  EXPECT_EQ(scan.Next(), nullptr);
  scan.Close();
}

TEST_F(IndexScanTest, ResidualPredicate) {
  const Schema& s = catalog_.GetTable("t")->schema();
  IndexScanOperator scan(
      index_, int64_t{0}, int64_t{49},
      Bin(BinaryOp::kGe, Col(s, "v"), Lit(Value::Double(50.0))));
  auto rows = RunPlan(&scan);
  EXPECT_EQ(rows.size(), 50u);  // Second copy of each key has v >= 50.
}

TEST(ProjectTest, ComputesExpressions) {
  auto table = MakeKvTable("t", {{2, 1.5}, {3, 0.5}});
  const Schema& s = table->schema();
  std::vector<ProjectItem> items;
  items.push_back(ProjectItem{
      Bin(BinaryOp::kMul, Col(s, "k"), Col(s, "v")), "product"});
  items.push_back(ProjectItem{Col(s, "k"), "k"});
  ProjectOperator project(std::make_unique<SeqScanOperator>(table.get(),
                                                            nullptr),
                          std::move(items));
  auto rows = RunPlan(&project);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Double(3.0));
  EXPECT_EQ(rows[1][0], Value::Double(1.5));
  EXPECT_EQ(project.output_schema().column(0).name, "product");
}

TEST(MaterializeTest, BuffersAndRescans) {
  auto table = MakeKvTable("t", {{1, 1}, {2, 2}, {3, 3}});
  MaterializeOperator mat(
      std::make_unique<SeqScanOperator>(table.get(), nullptr));
  ExecContext ctx;
  ASSERT_TRUE(mat.Open(&ctx).ok());
  int count = 0;
  while (mat.Next() != nullptr) ++count;
  EXPECT_EQ(count, 3);
  ASSERT_TRUE(mat.Rescan().ok());
  count = 0;
  while (mat.Next() != nullptr) ++count;
  EXPECT_EQ(count, 3);
  EXPECT_EQ(mat.num_buffered(), 3u);
  EXPECT_TRUE(mat.BlocksInput(0));
  mat.Close();
}

TEST(LimitTest, CapsAndOffsets) {
  auto table = MakeKvTable("t", {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}});
  {
    LimitOperator limit(std::make_unique<SeqScanOperator>(table.get(),
                                                          nullptr),
                        2);
    auto rows = RunPlan(&limit);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], Value::Int64(1));
  }
  {
    LimitOperator limit(std::make_unique<SeqScanOperator>(table.get(),
                                                          nullptr),
                        2, /*offset=*/3);
    auto rows = RunPlan(&limit);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], Value::Int64(4));
  }
  {
    LimitOperator limit(std::make_unique<SeqScanOperator>(table.get(),
                                                          nullptr),
                        100);
    EXPECT_EQ(RunPlan(&limit).size(), 5u);
  }
}

}  // namespace
}  // namespace bufferdb

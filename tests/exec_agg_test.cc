#include <gtest/gtest.h>

#include "exec/aggregation.h"
#include "exec/hash_aggregation.h"
#include "exec/seq_scan.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Col;
using testutil::Lit;
using testutil::MakeKvTable;
using testutil::RunPlan;

std::vector<AggSpec> Specs(Table* table) {
  const Schema& s = table->schema();
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt"});
  specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "sum_v"});
  specs.push_back(AggSpec{AggFunc::kAvg, Col(s, "v"), "avg_v"});
  specs.push_back(AggSpec{AggFunc::kMin, Col(s, "k"), "min_k"});
  specs.push_back(AggSpec{AggFunc::kMax, Col(s, "k"), "max_k"});
  return specs;
}

TEST(AggregationTest, AllFunctions) {
  auto table = MakeKvTable("t", {{1, 10.0}, {5, 20.0}, {3, 30.0}});
  AggregationOperator agg(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), Specs(table.get()));
  auto rows = RunPlan(&agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(3));
  EXPECT_EQ(rows[0][1], Value::Double(60.0));
  EXPECT_EQ(rows[0][2], Value::Double(20.0));
  EXPECT_EQ(rows[0][3], Value::Int64(1));
  EXPECT_EQ(rows[0][4], Value::Int64(5));
}

TEST(AggregationTest, EmptyInputSemantics) {
  auto table = MakeKvTable("t", {});
  AggregationOperator agg(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), Specs(table.get()));
  auto rows = RunPlan(&agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(0));  // COUNT(*) = 0.
  EXPECT_TRUE(rows[0][1].is_null());       // SUM = NULL.
  EXPECT_TRUE(rows[0][2].is_null());       // AVG = NULL.
  EXPECT_TRUE(rows[0][3].is_null());       // MIN = NULL.
}

TEST(AggregationTest, NullArgumentsIgnored) {
  Schema schema({{"v", DataType::kDouble}});
  Table table("t", schema);
  table.AppendRow({Value::Double(10)});
  table.AppendRow({Value::Null(DataType::kDouble)});
  table.AppendRow({Value::Double(20)});

  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt_star"});
  specs.push_back(AggSpec{AggFunc::kCount, Col(schema, "v"), "cnt_v"});
  specs.push_back(AggSpec{AggFunc::kAvg, Col(schema, "v"), "avg_v"});
  AggregationOperator agg(std::make_unique<SeqScanOperator>(&table, nullptr),
                          std::move(specs));
  auto rows = RunPlan(&agg);
  EXPECT_EQ(rows[0][0], Value::Int64(3));      // COUNT(*) counts all rows.
  EXPECT_EQ(rows[0][1], Value::Int64(2));      // COUNT(v) skips NULL.
  EXPECT_EQ(rows[0][2], Value::Double(15.0));  // AVG over non-NULL.
}

TEST(AggregationTest, IntegerSumStaysInt) {
  auto table = MakeKvTable("t", {{1, 0}, {2, 0}});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, Col(table->schema(), "k"), "s"});
  AggregationOperator agg(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), std::move(specs));
  EXPECT_EQ(agg.output_schema().column(0).type, DataType::kInt64);
  auto rows = RunPlan(&agg);
  EXPECT_EQ(rows[0][0], Value::Int64(3));
}

TEST(AggregationTest, SumOverExpression) {
  auto table = MakeKvTable("t", {{2, 3.0}, {4, 5.0}});
  const Schema& s = table->schema();
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{
      AggFunc::kSum, Bin(BinaryOp::kMul, Col(s, "k"), Col(s, "v")), "s"});
  AggregationOperator agg(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), std::move(specs));
  auto rows = RunPlan(&agg);
  EXPECT_EQ(rows[0][0], Value::Double(26.0));
}

TEST(AggregationTest, HotFuncsIncludeAggregateCode) {
  auto table = MakeKvTable("t", {{1, 1}});
  AggregationOperator agg(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), Specs(table.get()));
  const auto& funcs = agg.hot_funcs();
  auto has = [&funcs](sim::FuncId f) {
    return std::find(funcs.begin(), funcs.end(), f) != funcs.end();
  };
  EXPECT_TRUE(has(sim::FuncId::kAggCount));
  EXPECT_TRUE(has(sim::FuncId::kAggSum));
  EXPECT_TRUE(has(sim::FuncId::kAggAvgExtra));
  EXPECT_TRUE(has(sim::FuncId::kAggMin));
  EXPECT_TRUE(has(sim::FuncId::kAggMax));
}

TEST(HashAggregationTest, GroupsCorrectly) {
  auto table = MakeKvTable(
      "t", {{1, 10}, {2, 20}, {1, 30}, {2, 40}, {3, 50}});
  const Schema& s = table->schema();
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(s, "k"), "k"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "sum_v"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt"});
  HashAggregationOperator agg(
      std::make_unique<SeqScanOperator>(table.get(), nullptr),
      std::move(groups), std::move(specs));
  auto rows = RunPlan(&agg);
  auto canonical = testutil::Canonical(rows);
  ASSERT_EQ(canonical.size(), 3u);
  EXPECT_EQ(canonical[0], "1|40.0000|2|");
  EXPECT_EQ(canonical[1], "2|60.0000|2|");
  EXPECT_EQ(canonical[2], "3|50.0000|1|");
}

TEST(HashAggregationTest, GroupByStringKey) {
  Schema schema({{"flag", DataType::kString}, {"v", DataType::kDouble}});
  Table table("t", schema);
  table.AppendRow({Value::String("A"), Value::Double(1)});
  table.AppendRow({Value::String("B"), Value::Double(2)});
  table.AppendRow({Value::String("A"), Value::Double(3)});

  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(schema, "flag"), "flag"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, Col(schema, "v"), "s"});
  HashAggregationOperator agg(
      std::make_unique<SeqScanOperator>(&table, nullptr), std::move(groups),
      std::move(specs));
  auto canonical = testutil::Canonical(RunPlan(&agg));
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[0], "A|4.0000|");
  EXPECT_EQ(canonical[1], "B|2.0000|");
}

TEST(HashAggregationTest, NullGroupKeyFormsItsOwnGroup) {
  Schema schema({{"k", DataType::kInt64}});
  Table table("t", schema);
  table.AppendRow({Value::Null(DataType::kInt64)});
  table.AppendRow({Value::Int64(1)});
  table.AppendRow({Value::Null(DataType::kInt64)});

  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(schema, "k"), "k"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  HashAggregationOperator agg(
      std::make_unique<SeqScanOperator>(&table, nullptr), std::move(groups),
      std::move(specs));
  auto canonical = testutil::Canonical(RunPlan(&agg));
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[0], "1|1|");
  EXPECT_EQ(canonical[1], "NULL|2|");
}

TEST(HashAggregationTest, EmptyInputYieldsNoGroups) {
  auto table = MakeKvTable("t", {});
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(table->schema(), "k"), "k"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  HashAggregationOperator agg(
      std::make_unique<SeqScanOperator>(table.get(), nullptr),
      std::move(groups), std::move(specs));
  EXPECT_TRUE(RunPlan(&agg).empty());
}

TEST(AggAccumulatorTest, MinMaxTrackExtrema) {
  AggAccumulator acc;
  for (int64_t v : {5, 2, 9, 2}) acc.Update(AggFunc::kMin, Value::Int64(v));
  EXPECT_EQ(acc.Final(AggFunc::kMin, DataType::kInt64), Value::Int64(2));
  AggAccumulator acc2;
  for (int64_t v : {5, 2, 9, 2}) acc2.Update(AggFunc::kMax, Value::Int64(v));
  EXPECT_EQ(acc2.Final(AggFunc::kMax, DataType::kInt64), Value::Int64(9));
}

TEST(AggOutputTypeTest, Rules) {
  EXPECT_EQ(AggOutputType(AggFunc::kCountStar, DataType::kString),
            DataType::kInt64);
  EXPECT_EQ(AggOutputType(AggFunc::kSum, DataType::kInt64), DataType::kInt64);
  EXPECT_EQ(AggOutputType(AggFunc::kSum, DataType::kDouble),
            DataType::kDouble);
  EXPECT_EQ(AggOutputType(AggFunc::kAvg, DataType::kInt64), DataType::kDouble);
  EXPECT_EQ(AggOutputType(AggFunc::kMin, DataType::kDate), DataType::kDate);
}

}  // namespace
}  // namespace bufferdb
